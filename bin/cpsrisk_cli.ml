(* cpsrisk — command-line front end of the risk-assessment framework.

   Subcommands:
     casestudy   reproduce the paper's §VII water-tank evaluation
     pipeline    run the Fig. 1 pipeline end to end
     matrices    print the qualitative risk matrices (Table I, IEC 61508)
     model       parse, validate and inspect a textual system model
     lint        static analysis of ASP programs and system models
     analyze     semantic fixpoint analysis of an ASP program
     threats     threat landscape of a typed model
     solve       run the embedded ASP solver on a program file
     score       CVSS v3.1 calculator
     sweep       batch what-if analysis through the parallel sweep engine
     serve       persistent assessment service on a Unix-domain socket
     request     client for a running assessment service *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* casestudy                                                            *)
(* ------------------------------------------------------------------ *)

let casestudy backend =
  print_endline "Water tank case study (paper §VII)\n";
  (match backend with
  | `Dynamics ->
      print_string
        (Cpsrisk.Report.table_ii
           ~fault_ids:[ "F1"; "F2"; "F3"; "F4" ]
           ~mitigation_ids:[ "M1"; "M2" ]
           (Cpsrisk.Water_tank.table_ii_rows ()))
  | `Asp ->
      List.iter
        (fun (label, scenario) ->
          let verdicts = Cpsrisk.Water_tank.asp_verdicts ~scenario () in
          Printf.printf "%-4s %s\n" label
            (String.concat "  "
               (List.map
                  (fun (r, v) ->
                    Printf.sprintf "%s=%s" r (if v then "Violated" else "-"))
                  verdicts)))
        Cpsrisk.Water_tank.paper_scenarios);
  print_newline ();
  let rows = Cpsrisk.Water_tank.full_sweep ~mitigations:[ "M1"; "M2" ] () in
  (match Epa.Analysis.most_severe rows with
  | worst :: _ ->
      Printf.printf
        "most severe combination: {%s} (%d violations from %d faults)\n"
        (String.concat "," worst.Epa.Analysis.scenario.Epa.Scenario.faults)
        (List.length (Epa.Analysis.violations worst))
        (List.length worst.Epa.Analysis.scenario.Epa.Scenario.faults)
  | [] -> ());
  0

let backend_arg =
  let backend_conv = Arg.enum [ ("dynamics", `Dynamics); ("asp", `Asp) ] in
  Arg.(
    value & opt backend_conv `Dynamics
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Analysis backend: $(b,dynamics) (LTLf model checking) or \
              $(b,asp) (generated temporal ASP program).")

let casestudy_cmd =
  Cmd.v
    (Cmd.info "casestudy" ~doc:"Reproduce the paper's water-tank evaluation (Table II)")
    Term.(const casestudy $ backend_arg)

(* ------------------------------------------------------------------ *)
(* pipeline                                                             *)
(* ------------------------------------------------------------------ *)

let pipeline budget semantic_lint =
  let artifacts =
    Cpsrisk.Pipeline.run
      (Cpsrisk.Pipeline.water_tank_config ?budget ~semantic_lint ())
  in
  print_string (Cpsrisk.Pipeline.render_log artifacts);
  print_newline ();
  print_endline "confirmed hazards (ranked):";
  List.iter
    (fun h ->
      Printf.printf "  %-28s risk %s\n"
        (Epa.Scenario.label h.Cpsrisk.Pipeline.row.Epa.Analysis.scenario)
        (Qual.Level.to_string h.Cpsrisk.Pipeline.risk))
    artifacts.Cpsrisk.Pipeline.confirmed_hazards;
  0

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N" ~doc:"Mitigation budget constraint.")

let semantic_lint_flag =
  Arg.(
    value & flag
    & info [ "semantic-lint" ]
        ~doc:
          "Fail fast when the generated full-activation ASP encoding \
           carries a semantic lint ($(b,L200)+) warning or error.")

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Run the seven-step Fig. 1 pipeline end to end")
    Term.(const pipeline $ budget_arg $ semantic_lint_flag)

(* ------------------------------------------------------------------ *)
(* matrices                                                             *)
(* ------------------------------------------------------------------ *)

let matrices () =
  print_endline "Table I — O-RA risk matrix (LM x LEF):\n";
  print_string (Cpsrisk.Report.table_i ());
  print_endline "\nIEC 61508 risk classes (likelihood x consequence):\n";
  print_string (Cpsrisk.Report.iec_matrix ());
  print_endline "\nHierarchical evaluation matrix (Fig. 3):\n";
  print_string (Cpsrisk.Report.hierarchical_matrix ());
  0

let matrices_cmd =
  Cmd.v
    (Cmd.info "matrices" ~doc:"Print the qualitative risk matrices")
    Term.(const matrices $ const ())

(* ------------------------------------------------------------------ *)
(* model                                                                *)
(* ------------------------------------------------------------------ *)

let model_cmd_run file =
  match Archimate.Text.parse (read_file file) with
  | exception Archimate.Text.Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      1
  | m ->
      print_string (Cpsrisk.Report.model_inventory m);
      let issues = Archimate.Validate.run m in
      if issues = [] then print_endline "\nvalidation: clean"
      else begin
        print_endline "\nvalidation:";
        List.iter
          (fun i -> Format.printf "  %a@." Archimate.Validate.pp_issue i)
          issues
      end;
      if Archimate.Validate.is_valid m then 0 else 1

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Textual system model.")

let model_cmd =
  Cmd.v
    (Cmd.info "model" ~doc:"Parse, validate and inspect a textual system model")
    Term.(const model_cmd_run $ file_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

(* the paper's S5 scenario: both mitigations and the worst fault pair, so
   every predicate family is populated *)
let builtin_program () =
  let scenario = List.assoc "S5" Cpsrisk.Water_tank.paper_scenarios in
  Cpsrisk.Water_tank.asp_program ~scenario ()

let semlint_config threshold =
  match threshold with
  | None -> Analysis.Semlint.default_config
  | Some t -> { Analysis.Semlint.blowup_threshold = t }

let lint_run file builtin json strict list_codes semantic threshold =
  let module D = Lint.Diagnostic in
  if list_codes then begin
    List.iter
      (fun (code, sev, doc) ->
        Printf.printf "%-6s %-8s %s\n" code (D.severity_to_string sev) doc)
      (Lint.codes @ Analysis.Semlint.codes);
    0
  end
  else
    let config = semlint_config threshold in
    let semantic_diags program =
      if semantic then Analysis.Semlint.run ~config program else []
    in
    let diags =
      match builtin, file with
      | Some `Water_tank, _ ->
          let program = builtin_program () in
          let encode atom time_term =
            if atom = "alert" then
              Asp.Lit.Pos (Asp.Atom.make "alert" [ time_term ])
            else Telingo.Compile.default_encoding atom time_term
          in
          let requirements =
            List.map
              (fun (r : Epa.Requirement.t) ->
                (r.Epa.Requirement.id, r.Epa.Requirement.formula))
              Cpsrisk.Water_tank.requirements
          in
          Some
            (D.sort
               (Lint.run_program ~requirements ~encode program
               @ semantic_diags program))
      | None, Some file -> (
          match read_file file with
          | exception Sys_error msg ->
              Printf.eprintf "%s\n" msg;
              None
          | src ->
              if Filename.check_suffix file ".model" then
                Some (Lint.run_model_source src)
              else
                let semantic =
                  (* a syntax error is already a diagnostic of the
                     syntactic battery; skip the semantic pass then *)
                  match Asp.Parser.parse_program src with
                  | exception Asp.Parser.Error _ -> []
                  | program -> semantic_diags program
                in
                Some (D.sort (Lint.run_source src @ semantic)))
      | None, None ->
          Printf.eprintf
            "lint: a FILE or --builtin water-tank is required\n";
          None
    in
    match diags with
    | None -> 2
    | Some diags ->
        if json then print_endline (D.list_to_json diags)
        else begin
          List.iter (fun d -> print_endline (D.to_string d)) diags;
          Printf.printf "lint: %s\n" (D.summary diags)
        end;
        if D.has_errors diags || (strict && not (D.is_clean diags)) then 1
        else 0

let lint_file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:"ASP program ($(b,.lp)) or textual system model ($(b,.model)); \
              files ending in $(b,.model) get the model checks, everything \
              else the program checks.")

let builtin_arg =
  Arg.(
    value
    & opt (some (enum [ ("water-tank", `Water_tank) ])) None
    & info [ "builtin" ] ~docv:"NAME"
        ~doc:"Lint a built-in encoding instead of a file ($(b,water-tank): \
              the generated S5 scenario program with requirement coverage).")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")

let strict_flag =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit non-zero on warnings too, not just errors.")

let list_codes_flag =
  Arg.(
    value & flag
    & info [ "list-codes" ] ~doc:"Print the table of diagnostic codes and exit.")

let semantic_flag =
  Arg.(
    value & flag
    & info [ "semantic" ]
        ~doc:
          "Also run the fixpoint semantic analysis (codes $(b,L200)+): \
           inferred-domain dead rules, always-false comparisons, \
           subsumed/duplicate rules, type clashes, grounding-blowup \
           prediction.")

let threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "blowup-threshold" ] ~docv:"N"
        ~doc:
          "Estimated ground instantiations at which $(b,L212) flags a rule \
           (default 512).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis of ASP programs and system models"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the pre-grounding check battery and prints located \
              diagnostics. Exit status is 0 when no error-severity \
              diagnostic was produced, 1 otherwise (with $(b,--strict), \
              warnings also fail), 2 on usage errors. Info-severity \
              diagnostics never affect the exit status.";
         ])
    Term.(
      const lint_run $ lint_file_arg $ builtin_arg $ json_flag $ strict_flag
      $ list_codes_flag $ semantic_flag $ threshold_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_run file builtin json threshold =
  let module D = Lint.Diagnostic in
  let program =
    match builtin, file with
    | Some `Water_tank, _ -> Some (builtin_program ())
    | None, Some file -> (
        match Asp.Parser.parse_program (read_file file) with
        | exception Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            None
        | exception Asp.Parser.Error msg ->
            Printf.eprintf "parse error: %s\n" msg;
            None
        | p -> Some p)
    | None, None ->
        Printf.eprintf "analyze: a FILE or --builtin water-tank is required\n";
        None
  in
  match program with
  | None -> 2
  | Some program ->
      let info = Analysis.Infer.analyze program in
      let diags =
        Analysis.Semlint.run_infer ~config:(semlint_config threshold) info
      in
      if json then print_endline (D.list_to_json diags)
      else begin
        print_string (Analysis.Report.render info);
        if diags <> [] then begin
          print_endline "\nsemantic diagnostics:";
          List.iter (fun d -> print_endline ("  " ^ D.to_string d)) diags
        end;
        Printf.printf "\nanalyze: %s\n" (D.summary diags)
      end;
      if D.has_errors diags then 1 else 0

let analyze_file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"ASP program to analyze.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Semantic analysis of an ASP program (domains, costs, dead code)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the bottom-up fixpoint abstract interpretation: inferred \
              per-argument domains and cardinality estimates per predicate, \
              estimated firings and instantiation cost per rule, \
              stratification and tightness, and the $(b,L200)+ semantic \
              diagnostics. Exit status is 1 when an error-severity \
              diagnostic was produced, 2 on usage errors, 0 otherwise.";
         ])
    Term.(
      const analyze_run $ analyze_file_arg $ builtin_arg $ json_flag
      $ threshold_arg)

(* ------------------------------------------------------------------ *)
(* threats                                                              *)
(* ------------------------------------------------------------------ *)

let threats file =
  match Archimate.Text.parse (read_file file) with
  | exception Archimate.Text.Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
  | m ->
      List.iter
        (fun (e : Archimate.Element.t) ->
          match Archimate.Element.property "component_type" e with
          | None -> ()
          | Some ty ->
              let threats = Threatdb.Db.threats_for_type ty in
              if threats <> [] then begin
                Printf.printf "%s (%s):\n" e.Archimate.Element.id ty;
                List.iter
                  (fun (t : Threatdb.Db.threat) ->
                    Printf.printf "  %-6s %-36s severity %s\n"
                      t.Threatdb.Db.technique.Threatdb.Attck.id
                      t.Threatdb.Db.technique.Threatdb.Attck.name
                      (Qual.Level.to_string t.Threatdb.Db.severity))
                  threats
              end)
        (Archimate.Model.elements m);
      0

let threats_cmd =
  Cmd.v
    (Cmd.info "threats" ~doc:"Threat landscape of a typed system model")
    Term.(const threats $ file_arg)

(* ------------------------------------------------------------------ *)
(* solve                                                                *)
(* ------------------------------------------------------------------ *)

let solve file limit optimal stats max_guess solver jobs no_preprocess no_share
    =
  match Asp.Parser.parse_program (read_file file) with
  | exception Asp.Parser.Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
  | program -> (
      let ground_stats = Asp.Grounder.Stats.create () in
      match Asp.Grounder.ground ~stats:ground_stats program with
      | exception Asp.Grounder.Unsafe msg | exception Asp.Grounder.Overflow msg ->
          Printf.eprintf "grounding error: %s\n" msg;
          1
      | ground -> (
          (* --no-preprocess means "raw CDNL": both the clause-level
             preprocessing and the propagation-only tier are bypassed *)
          let config =
            {
              Asp.Solver.Config.default with
              Asp.Solver.Config.preprocess = not no_preprocess;
              cheap_tier = not no_preprocess;
            }
          in
          match
            match solver with
            | `Dfs ->
                if optimal then Asp.Dfs.solve_optimal_with_stats ?max_guess ground
                else Asp.Dfs.solve_with_stats ?limit ?max_guess ground
            | `Cdnl -> (
                match jobs with
                | Some j when j > 1 ->
                    let share = not no_share in
                    let r =
                      if optimal then
                        Engine.Par.optimal ~jobs:j ~share ~config ground
                      else Engine.Par.enumerate ~jobs:j ?limit ~share ~config
                          ground
                    in
                    (r.Engine.Par.models, r.Engine.Par.stats)
                | _ ->
                    if optimal then
                      Asp.Solver.solve_optimal_with_stats ?max_guess ~config
                        ground
                    else
                      Asp.Solver.solve_with_stats ?limit ?max_guess ~config
                        ground)
          with
          | exception Asp.Dfs.Unsupported msg ->
              Printf.eprintf "unsupported program: %s\n" msg;
              1
          | models, search_stats -> (
              let shows = ground.Asp.Ground.shows in
              let project m =
                if shows = [] then m else Asp.Model.project shows m
              in
              let report_stats () =
                if stats then begin
                  Printf.printf "Ground: %s\n"
                    (Asp.Grounder.Stats.to_string ground_stats);
                  Printf.printf "Stats: %s\n"
                    (Asp.Solver.Stats.to_string search_stats)
                end
              in
              match models with
              | [] ->
                  print_endline "UNSATISFIABLE";
                  report_stats ();
                  1
              | models ->
                  List.iteri
                    (fun i m ->
                      Printf.printf "Answer %d: %s\n" (i + 1)
                        (Asp.Model.to_string (project m)))
                    models;
                  Printf.printf "SATISFIABLE (%d model%s)\n"
                    (List.length models)
                    (if List.length models = 1 then "" else "s");
                  report_stats ();
                  0)))

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "models" ] ~docv:"N" ~doc:"Stop after $(docv) models.")

let optimal_arg =
  Arg.(
    value & flag
    & info [ "opt" ] ~doc:"Report only weak-constraint-optimal models.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print search statistics (decisions, pruned subtrees, rule \
           firings, leaves, models, wall time) after solving.")

let max_guess_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-guess" ] ~docv:"N"
        ~doc:
          "With $(b,--solver=dfs): refuse programs whose choice space spans \
           more than $(docv) atoms (default 64). The CDNL solver has no cap \
           and ignores this option.")

let solver_arg =
  Arg.(
    value
    & opt (enum [ ("cdnl", `Cdnl); ("dfs", `Dfs) ]) `Cdnl
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          "Solving engine: $(b,cdnl) (conflict-driven nogood learning, the \
           default) or $(b,dfs) (the retained pruned depth-first search).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Enumerate on $(docv) worker domains via guiding-path splitting \
           (CDNL only; the merged result is identical to a sequential \
           solve).")

let no_preprocess_arg =
  Arg.(
    value & flag
    & info [ "no-preprocess" ]
        ~doc:
          "Disable completion-nogood preprocessing (unit propagation, \
           duplicate/subsumed-clause removal, body-variable equivalence and \
           pure-literal reduction) and the propagation-only cheap tier; the \
           CDNL search then runs on the raw completion. Mainly for A/B \
           measurement and differential testing.")

let no_share_arg =
  Arg.(
    value & flag
    & info [ "no-share" ]
        ~doc:
          "With $(b,--jobs): disable learned-nogood sharing between the \
           guiding-path worker domains. The result is identical either way; \
           only the work per domain changes.")

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"Run the embedded ASP solver on a program file")
    Term.(
      const solve $ file_arg $ limit_arg $ optimal_arg $ stats_arg
      $ max_guess_arg $ solver_arg $ jobs_arg $ no_preprocess_arg
      $ no_share_arg)

(* ------------------------------------------------------------------ *)
(* score                                                                *)
(* ------------------------------------------------------------------ *)

let score vector =
  match Threatdb.Cvss.of_vector vector with
  | Error msg ->
      Printf.eprintf "invalid vector: %s\n" msg;
      1
  | Ok base ->
      let s = Threatdb.Cvss.base_score base in
      Printf.printf "%s\nbase score: %.1f (%s)\n"
        (Threatdb.Cvss.to_vector base) s
        (Threatdb.Cvss.severity_to_string (Threatdb.Cvss.severity s));
      0

let vector_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"VECTOR" ~doc:"CVSS v3.1 vector string.")

let score_cmd =
  Cmd.v
    (Cmd.info "score" ~doc:"CVSS v3.1 base-score calculator")
    Term.(const score $ vector_arg)

(* ------------------------------------------------------------------ *)
(* attackgraph                                                          *)
(* ------------------------------------------------------------------ *)

let attackgraph file dot =
  let model =
    match file with
    | Some f -> Archimate.Text.parse (read_file f)
    | None -> Cpsrisk.Water_tank.refined_model
  in
  let g = Attackgraph.Graph.generate model in
  if dot then begin
    print_string (Attackgraph.Graph.to_dot g);
    0
  end
  else begin
    let n_nodes, n_edges = Attackgraph.Graph.size g in
    Printf.printf "nodes: %d, edges: %d\n" n_nodes n_edges;
    let scenarios = Attackgraph.Graph.attack_scenarios ~max_length:5 g in
    Printf.printf "entry->goal scenarios (max 5 steps): %d\n\n"
      (List.length scenarios);
    List.iteri
      (fun i path ->
        if i < 20 then
          Printf.printf "[%s] %s\n"
            (Qual.Level.to_string (Attackgraph.Graph.severity path))
            (String.concat " -> "
               (List.map (Format.asprintf "%a" Attackgraph.Graph.pp_node) path)))
      scenarios;
    if List.length scenarios > 20 then
      Printf.printf "... (%d more)\n" (List.length scenarios - 20);
    0
  end

let optional_file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:"Textual system model (defaults to the built-in case study).")

let dot_flag =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a listing.")

let attackgraph_cmd =
  Cmd.v
    (Cmd.info "attackgraph"
       ~doc:"Generate the attack graph of a typed system model")
    Term.(const attackgraph $ optional_file_arg $ dot_flag)

(* ------------------------------------------------------------------ *)
(* dot (model diagram)                                                  *)
(* ------------------------------------------------------------------ *)

let dot_cmd_run file =
  let model =
    match file with
    | Some f -> Archimate.Text.parse (read_file f)
    | None -> Cpsrisk.Water_tank.refined_model
  in
  print_string (Archimate.Dot.render model);
  0

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Render a system model as Graphviz")
    Term.(const dot_cmd_run $ optional_file_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                                *)
(* ------------------------------------------------------------------ *)

let sweep mutations model jobs horizon stats json no_preprocess no_share =
  ignore no_share;
  (* sweep jobs solve distinct programs, so there is no nogood exchange to
     disable; --no-share is accepted for symmetry with solve --jobs *)
  let solver_config =
    if no_preprocess then
      Some
        {
          Asp.Solver.Config.default with
          Asp.Solver.Config.preprocess = false;
          cheap_tier = false;
        }
    else None
  in
  let with_config spec =
    match solver_config with
    | None -> spec
    | Some _ -> { spec with Engine.Job.solver_config }
  in
  let deltas =
    match mutations with
    | None -> None
    | Some file -> (
        match Engine.Delta.parse (read_file file) with
        | Ok ds -> Some ds
        | Error e ->
            Printf.eprintf "%s: %s\n" file (Engine.Delta.error_to_string e);
            exit 2)
  in
  match model with
  | None ->
      (* water-tank temporal backend; default workload: the full 2^4
         fault-combination space, Table II style *)
      let deltas =
        match deltas with
        | Some ds -> ds
        | None -> Cpsrisk.Sweeps.all_fault_deltas Cpsrisk.Water_tank.faults
      in
      let spec = with_config (Cpsrisk.Sweeps.water_tank_spec ?horizon deltas) in
      let report = Engine.Sweep.run ?jobs spec in
      if json then print_endline (Engine.Sweep.to_json report)
      else begin
        Array.iter
          (fun (r : Engine.Job.result) ->
            Printf.printf "%-28s %s%s\n"
              (Engine.Delta.label r.Engine.Job.delta)
              (String.concat "  "
                 (List.map
                    (fun (req, v) ->
                      Printf.sprintf "%s=%s" req
                        (if v then "Violated" else "-"))
                    (Cpsrisk.Sweeps.verdicts r)))
              (if r.Engine.Job.cached then "  [cached]" else ""))
          report.Engine.Sweep.results;
        if stats then begin
          print_newline ();
          print_string (Engine.Sweep.render report)
        end
      end;
      0
  | Some file -> (
      match Archimate.Text.parse (read_file file) with
      | exception Archimate.Text.Error msg ->
          Printf.eprintf "parse error: %s\n" msg;
          1
      | m ->
          let deltas =
            match deltas with
            | Some ds -> ds
            | None -> Cpsrisk.Sweeps.model_element_deltas m
          in
          let spec = with_config (Cpsrisk.Sweeps.topology_spec m deltas) in
          let report = Engine.Sweep.run ?jobs spec in
          if json then print_endline (Engine.Sweep.to_json report)
          else begin
            Array.iter
              (fun (r : Engine.Job.result) ->
                let affected = Cpsrisk.Sweeps.affected r in
                Printf.printf "%-28s -> %s%s\n"
                  (Engine.Delta.label r.Engine.Job.delta)
                  (if affected = [] then "(contained)"
                   else String.concat ", " affected)
                  (if r.Engine.Job.cached then "  [cached]" else ""))
              report.Engine.Sweep.results;
            if stats then begin
              print_newline ();
              print_string (Engine.Sweep.render report)
            end
          end;
          0)

let mutations_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"MUTATIONS"
        ~doc:
          "Mutations file, one delta per line: $(b,[LABEL:] FAULTS [/ \
           MITIGATIONS] [! ASP]) with comma-separated id lists, $(b,-) for \
           none, $(b,#) comments. Defaults to the backend's full what-if \
           space (every fault combination, or one injection per model \
           component).")

let sweep_model_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "model" ] ~docv:"FILE"
        ~doc:
          "Sweep a textual system model with static error propagation \
           instead of the built-in water-tank temporal encoding; delta \
           faults name injected component ids, delta mitigations shield \
           the associated components.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains (default: the hardware's useful parallelism).")

let horizon_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "horizon" ] ~docv:"N"
        ~doc:"Temporal horizon of the water-tank encoding (default 12).")

let sweep_stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the engine report: domains, wall time, cache hit rate, \
           aggregated fresh-solve statistics.")

let sweep_json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the full machine-readable report as JSON.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Batch what-if analysis through the parallel sweep engine"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs every mutation delta against the shared base encoding \
              through the cache-reusing scenario-sweep engine: the base \
              program is built, fingerprinted and grounded once, jobs fan \
              out over worker domains, and structurally identical deltas \
              are solved once. Results are deterministic regardless of \
              $(b,--jobs).";
         ])
    Term.(
      const sweep $ mutations_arg $ sweep_model_arg $ jobs_arg $ horizon_arg
      $ sweep_stats_flag $ sweep_json_flag $ no_preprocess_arg $ no_share_arg)

(* ------------------------------------------------------------------ *)
(* refine / mitigate                                                    *)
(* ------------------------------------------------------------------ *)

let refine levels entries mode jobs scratch no_share stats json =
  match
    Cpsrisk.Pipeline.refine_hierarchy ?jobs ~levels ~entries ~mode
      ~share:(not no_share) ~scratch ()
  with
  | outcome ->
      if json then print_endline (Cpsrisk.Pipeline.refine_to_json outcome)
      else print_string (Cpsrisk.Pipeline.render_refine ~stats outcome);
      0
  | exception Invalid_argument msg ->
      Printf.eprintf "cpsrisk refine: %s\n" msg;
      1

let refine_cmd =
  let levels_arg =
    Arg.(
      value
      & opt int Cpsrisk.Hierarchy.default_levels
      & info [ "levels"; "l" ] ~docv:"N"
          ~doc:"Refinement levels of the zone hierarchy.")
  in
  let entries_arg =
    Arg.(
      value
      & opt int Cpsrisk.Hierarchy.default_entries
      & info [ "entries"; "e" ] ~docv:"N"
          ~doc:"Candidate entry-point hypotheses (must exceed --levels).")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("assume", `Assume); ("increment", `Increment) ]) `Assume
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Candidate encoding: $(b,assume) pins hypotheses with solver \
             assumptions over one shared ground program (enables \
             learned-nogood carry); $(b,increment) extends the warm \
             grounder per candidate (deduplicated through the cache).")
  in
  let scratch_flag =
    Arg.(
      value & flag
      & info [ "scratch" ]
          ~doc:
            "Run the retained cold-grounding oracle instead of the \
             incremental driver (same outcome, no reuse).")
  in
  let no_share_flag =
    Arg.(
      value & flag
      & info [ "no-share" ]
          ~doc:"Disable learned-nogood carry between candidate solves.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print solver/cache/grounding statistics: fresh solves vs \
             cache hits, nogoods carried and published, extend-vs-scratch \
             grounding reuse.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit rounds, verdicts and stats as JSON.")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Incremental CEGAR over the hierarchical case study"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the layered-zone refinement schedule through the \
              incremental CEGAR driver: the base abstraction is grounded \
              once, every refinement level extends the warm grounder state \
              of the previous one, candidate hypotheses are assessed in \
              parallel, and (in assume mode) conflict clauses learned \
              while refuting one candidate prune the others. The outcome \
              is bit-for-bit the one of $(b,--scratch), which re-grounds \
              everything from nothing each round.";
         ])
    Term.(
      const refine $ levels_arg $ entries_arg $ mode_arg $ jobs_arg
      $ scratch_flag $ no_share_flag $ stats_flag $ json_flag)

let mitigate frontier case budget budgets pareto jobs horizon stats json =
  let f =
    match case with
    | `Hierarchy -> Cpsrisk.Hierarchy.frontier ()
    | `Water_tank -> Cpsrisk.Pipeline.water_tank_frontier ?horizon ()
  in
  let request =
    if pareto then Cpsrisk.Pipeline.Frontier_pareto
    else
      match budgets with
      | Some bs -> Cpsrisk.Pipeline.Frontier_sweep bs
      | None -> Cpsrisk.Pipeline.Frontier_optimal budget
  in
  let answer, report =
    if frontier then Cpsrisk.Pipeline.mitigate_frontier ?jobs f request
    else
      (* the retained scratch search: cold per-evaluation grounding, no
         cache, no pool — the differential oracle of --frontier *)
      let p = Mitigation.Frontier.scratch_problem f in
      let answer =
        match request with
        | Cpsrisk.Pipeline.Frontier_optimal budget ->
            Cpsrisk.Pipeline.Frontier_solution
              (Mitigation.Optimizer.optimal ?budget p)
        | Cpsrisk.Pipeline.Frontier_pareto ->
            Cpsrisk.Pipeline.Frontier_front (Mitigation.Optimizer.pareto p)
        | Cpsrisk.Pipeline.Frontier_sweep budgets ->
            Cpsrisk.Pipeline.Frontier_curve
              (Mitigation.Optimizer.budget_sweep p ~budgets)
      in
      ( answer,
        {
          Mitigation.Frontier.r_evals = 0;
          r_hits = 0;
          r_disk_hits = 0;
          r_fresh = 0;
          r_pruned = 0;
          r_sum_s = 0.0;
          r_critical_s = 0.0;
          r_wall_s = 0.0;
        } )
  in
  if json then print_endline (Cpsrisk.Pipeline.frontier_to_json answer report)
  else
    print_string
      (Cpsrisk.Pipeline.render_frontier ~stats:(stats && frontier) answer
         report);
  0

let mitigate_cmd =
  let frontier_flag =
    Arg.(
      value & flag
      & info [ "frontier" ]
          ~doc:
            "Evaluate candidate action sets as fingerprinted deltas over \
             warm engine state — cache-deduplicated, fanned out over \
             worker domains, branch-and-bound pruned. Without it the \
             retained scratch search runs (same answers, cold).")
  in
  let case_arg =
    Arg.(
      value
      & opt (enum [ ("hierarchy", `Hierarchy); ("water-tank", `Water_tank) ])
          `Hierarchy
      & info [ "case" ] ~docv:"CASE"
          ~doc:
            "Action catalog: $(b,hierarchy) (12 shield placements over the \
             layered plant) or $(b,water-tank) (the paper's M1/M2 catalog \
             under the F4 workstation-compromise scenario).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget"; "b" ] ~docv:"COST"
          ~doc:"Budget for the single optimal search.")
  in
  let budgets_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "budgets" ] ~docv:"B1,B2,..."
          ~doc:
            "Sweep these budgets; sweeps share one cache, so subsets \
             within several budgets are solved once.")
  in
  let pareto_flag =
    Arg.(
      value & flag
      & info [ "pareto" ] ~doc:"Compute the full cost/residual front.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the frontier report: evaluations, cache hit sources, \
             subtrees pruned, critical-path vs summed solve time.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit answer and report as JSON.")
  in
  Cmd.v
    (Cmd.info "mitigate"
       ~doc:"Mitigation search over the engine-backed frontier"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Searches the mitigation-action subsets of the chosen case \
              study for optimal plans, Pareto fronts and cost/benefit \
              curves. With $(b,--frontier), every candidate subset is one \
              fingerprinted delta over the prepared base encoding: \
              structurally identical what-ifs are answered from the cache, \
              independent evaluations fan out over worker domains, and \
              the optimal search prunes subtrees whose full-inclusion \
              bound already loses. Answers are bit-for-bit those of the \
              retained scratch search.";
         ])
    Term.(
      const mitigate $ frontier_flag $ case_arg $ budget_arg $ budgets_arg
      $ pareto_flag $ jobs_arg $ horizon_arg $ stats_flag $ json_flag)

(* ------------------------------------------------------------------ *)
(* serve / request                                                      *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "cpsrisk.sock"
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve socket cache_dir cache_mb jobs quiet =
  let log =
    if quiet then None
    else
      Some
        (fun msg ->
          Printf.eprintf "cpsrisk serve: %s\n%!" msg)
  in
  match
    Serve.Server.run { Serve.Server.socket; cache_dir; cache_mb; jobs; log }
  with
  | () -> 0
  | exception Unix.Unix_error (err, fn, _) ->
      Printf.eprintf "cpsrisk serve: %s: %s\n" fn (Unix.error_message err);
      1

let serve_cmd =
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist solved answers in an on-disk content-addressed store \
             rooted here (created if needed); re-sweeps against a restarted \
             daemon are then served from disk with no fresh grounding or \
             solving. Omitted: the cache is in-memory only.")
  in
  let cache_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Bound the on-disk store; least-recently-used entries are \
             evicted past the bound. Omitted: unbounded.")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No event log on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent assessment service"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Starts a daemon on a Unix-domain socket speaking a \
              line-delimited JSON protocol (one request object per line, \
              one response object back). Loaded models keep their base \
              encoding grounded and fingerprinted in memory, so what-if \
              sweeps extend warm state; concurrent sweep requests are \
              coalesced into single engine batches; with $(b,--cache-dir), \
              every solved delta is also persisted content-addressed on \
              disk and survives restarts. Use $(b,cpsrisk request) as the \
              client, or any tool that can write JSON lines to a socket. \
              Stop it with $(b,cpsrisk request shutdown).";
         ])
    Term.(
      const serve $ socket_arg $ cache_dir_arg $ cache_mb_arg $ jobs_arg
      $ quiet_flag)

(* --- request: client side ------------------------------------------ *)

let request_fail msg =
  Printf.eprintf "cpsrisk request: %s\n" msg;
  1

(* Reproduce `cpsrisk sweep`'s text output from the wire response, so
   `cpsrisk request sweep` is diffable bit-for-bit against the one-shot
   command on the same model and mutations. *)
let print_sweep_text response =
  let results =
    Option.value ~default:[] (Serve.Json.mem_list "results" response)
  in
  List.iter
    (fun r ->
      let label =
        Option.value ~default:"?" (Serve.Json.mem_string "label" r)
      in
      match Serve.Json.member "verdicts" r with
      | Some (Serve.Json.Obj verdicts) ->
          Printf.printf "%-28s %s\n" label
            (String.concat "  "
               (List.map
                  (fun (req, v) ->
                    Printf.sprintf "%s=%s" req
                      (match v with
                      | Serve.Json.Bool true -> "Violated"
                      | _ -> "-"))
                  verdicts))
      | _ -> (
          match Serve.Json.mem_list "affected" r with
          | Some affected ->
              let affected =
                List.filter_map
                  (function Serve.Json.String s -> Some s | _ -> None)
                  affected
              in
              Printf.printf "%-28s -> %s\n" label
                (if affected = [] then "(contained)"
                 else String.concat ", " affected)
          | None -> Printf.printf "%-28s\n" label))
    results

let request socket op name model_file backend horizon mutations jobs limit
    optimal budget budgets pareto json =
  let build_request () =
    match op with
    | "load-model" -> (
        match model_file with
        | Some file ->
            Ok
              (Serve.Protocol.Load_model
                 {
                   name;
                   backend = Serve.Protocol.Topology;
                   horizon;
                   model_src = Some (read_file file);
                 })
        | None ->
            Ok
              (Serve.Protocol.Load_model
                 { name; backend; horizon; model_src = None }))
    | "mitigate" ->
        let op =
          if pareto then Serve.Protocol.Pareto
          else
            match budgets with
            | Some _ -> Serve.Protocol.Budget_curve
            | None -> Serve.Protocol.Optimal
        in
        Ok
          (Serve.Protocol.Mitigate
             {
               model = name;
               op;
               budget;
               budgets = Option.value ~default:[] budgets;
               jobs;
             })
    | "sweep" -> (
        match mutations with
        | None -> Error "sweep needs a MUTATIONS file argument"
        | Some file ->
            Ok
              (Serve.Protocol.Sweep
                 { model = name; mutations = read_file file; jobs }))
    | "solve" -> (
        match mutations with
        | None -> Error "solve needs a PROGRAM file argument"
        | Some file ->
            Ok
              (Serve.Protocol.Solve
                 { program = read_file file; limit; optimal }))
    | "status" -> Ok Serve.Protocol.Status
    | "stats" -> Ok Serve.Protocol.Stats
    | "list-models" -> Ok Serve.Protocol.List_models
    | "evict-model" -> Ok (Serve.Protocol.Evict_model { name })
    | "shutdown" -> Ok Serve.Protocol.Shutdown
    | op ->
        Error
          (Printf.sprintf
             "unknown op %S (load-model | sweep | mitigate | solve | status \
              | stats | list-models | evict-model | shutdown)"
             op)
  in
  match build_request () with
  | Error msg -> request_fail msg
  | Ok req -> (
      match
        Serve.Client.request ~socket (Serve.Protocol.request_to_json req)
      with
      | Error msg -> request_fail msg
      | Ok response ->
          if (not json) && op = "sweep" then print_sweep_text response
          else print_endline (Serve.Json.to_string response);
          0)

let request_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "One of $(b,load-model), $(b,sweep), $(b,mitigate), $(b,solve), \
             $(b,status), $(b,stats), $(b,list-models), $(b,evict-model), \
             $(b,shutdown).")
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("water-tank", Serve.Protocol.Water_tank);
               ("hierarchy", Serve.Protocol.Hierarchy);
             ])
          Serve.Protocol.Water_tank
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "For $(b,load-model) without $(b,--model): the built-in \
             encoding to load — $(b,water-tank) or $(b,hierarchy) (the \
             12-action layered plant).")
  in
  let req_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget"; "b" ] ~docv:"COST"
          ~doc:"For $(b,mitigate): budget of the optimal search.")
  in
  let req_budgets_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "budgets" ] ~docv:"B1,B2,..."
          ~doc:"For $(b,mitigate): request a budget curve.")
  in
  let req_pareto_flag =
    Arg.(
      value & flag
      & info [ "pareto" ]
          ~doc:"For $(b,mitigate): request the full cost/residual front.")
  in
  let file_arg =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Mutations file for $(b,sweep), ASP program for $(b,solve).")
  in
  let name_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "name"; "n" ] ~docv:"NAME"
          ~doc:"Model name to load / sweep against / evict.")
  in
  let model_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:
            "For $(b,load-model): load this textual system model under the \
             topology backend (the file is inlined into the request). \
             Omitted: the built-in water-tank temporal encoding.")
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"For $(b,solve): stop after N models.")
  in
  let optimal_flag =
    Arg.(
      value & flag
      & info [ "optimal" ] ~doc:"For $(b,solve): only cost-minimal models.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the raw JSON response (default for every op except \
             $(b,sweep), which prints `cpsrisk sweep`-compatible text).")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running assessment service"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Connects to the daemon started by $(b,cpsrisk serve), sends \
              one JSON request line, prints the response. $(b,sweep) \
              output matches the one-shot $(b,cpsrisk sweep) text format, \
              so warm answers from the daemon can be diffed against a cold \
              batch run; every other op prints the JSON response, which \
              for sweeps includes per-job cache provenance \
              (fresh/memory/disk), hit counters and timings.";
         ])
    Term.(
      const request $ socket_arg $ op_arg $ name_arg $ model_arg
      $ backend_arg $ horizon_arg $ file_arg $ jobs_arg $ limit_arg
      $ optimal_flag $ req_budget_arg $ req_budgets_arg $ req_pareto_flag
      $ json_flag)

(* ------------------------------------------------------------------ *)
(* quant                                                                *)
(* ------------------------------------------------------------------ *)

let quant p_physical p_attack =
  let rows = Cpsrisk.Water_tank.full_sweep () in
  let p = function "F4" -> p_attack | _ -> p_physical in
  List.iter
    (fun rid ->
      let tree = Fta.From_epa.of_analysis ~requirement:rid rows in
      Printf.printf "P(%s violated) = %.4f\n" rid
        (Fta.Quant.top_event_probability tree p))
    [ "R1"; "R2" ];
  print_endline "\nBirnbaum importance (R1):";
  List.iter
    (fun (e, v) -> Printf.printf "  %-4s %.4f\n" e v)
    (Fta.Quant.birnbaum_importance
       (Fta.From_epa.of_analysis ~requirement:"R1" rows)
       p);
  0

let p_physical_arg =
  Arg.(
    value & opt float 0.02
    & info [ "p-physical" ] ~docv:"P"
        ~doc:"Per-mission probability of each physical fault mode.")

let p_attack_arg =
  Arg.(
    value & opt float 0.05
    & info [ "p-attack" ] ~docv:"P"
        ~doc:"Per-mission probability of the workstation compromise (F4).")

let quant_cmd =
  Cmd.v
    (Cmd.info "quant"
       ~doc:"Quantitative FTA over the case study (probabilities, importance)")
    Term.(const quant $ p_physical_arg $ p_attack_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "preliminary risk and mitigation assessment for cyber-physical systems" in
  Cmd.group
    (Cmd.info "cpsrisk" ~version:"1.0.0" ~doc)
    [
      casestudy_cmd; pipeline_cmd; matrices_cmd; model_cmd; lint_cmd;
      analyze_cmd; threats_cmd; solve_cmd; score_cmd; attackgraph_cmd;
      dot_cmd; quant_cmd; sweep_cmd; refine_cmd; mitigate_cmd; serve_cmd;
      request_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
