(** Cost-benefit optimization of mitigation selections (§IV.D): exact
    search over mitigation subsets with budget constraints, Pareto
    analysis, and the multi-phase consolidation strategy for SMEs with
    staged budgets.

    The objective is supplied as [residual]: any integer loss measure of
    the system under the given active mitigations (e.g. expected loss,
    number of hazardous scenarios, worst-case severity). Smaller is
    better. *)

type problem = {
  actions : Action.t list;
  residual : active:string list -> int;
}

type solution = {
  selected : string list;  (** mitigation ids, sorted *)
  cost : int;
  residual : int;
}

val evaluate : problem -> string list -> solution

val optimal : ?budget:int -> problem -> solution
(** Minimal residual within budget; ties broken by lower cost, then
    lexicographic selection. Exhaustive with cost pruning — exact for the
    catalog sizes of the paper's domain (≤ ~20 actions). *)

val pareto : problem -> solution list
(** Cost-vs-residual Pareto front over all subsets, sorted by cost: no
    front member is dominated (lower-or-equal cost {e and} residual, one
    strict) by any subset. *)

val budget_sweep : problem -> budgets:int list -> (int * solution) list
(** {!optimal} per budget — the §IV.D trade-off curve. *)

val optimal_par : ?jobs:int -> ?budget:int -> problem -> solution
(** {!optimal} with the candidate evaluations fanned out over an
    {!Engine.Pool} of [jobs] domains (default
    [Domain.recommended_domain_count ()]). The reduction replays the
    sequential fold order and tie-breaking, so the result is always
    identical to {!optimal}. Worth it when [residual] is expensive — e.g. a
    full scenario sweep per candidate. *)

val budget_sweep_par :
  ?jobs:int -> problem -> budgets:int list -> (int * solution) list
(** {!budget_sweep} with each {e distinct} candidate selection across all
    budgets evaluated exactly once, in parallel; per-budget reductions then
    share the evaluations. Identical results to {!budget_sweep}. *)

val multi_phase : problem -> phase_budgets:int list -> solution list
(** Staged consolidation: each phase adds actions within its own budget on
    top of the previous selection, choosing the exact best increment. The
    returned list gives the cumulative solution after each phase. *)

val benefit : problem -> solution -> int
(** Loss reduction w.r.t. doing nothing: residual(∅) − residual(sel). *)

val pp_solution : Format.formatter -> solution -> unit
