(** Cost-benefit optimization of mitigation selections (§IV.D): exact
    search over mitigation subsets with budget constraints, Pareto
    analysis, and the multi-phase consolidation strategy for SMEs with
    staged budgets.

    The objective is supplied as [residual]: any integer loss measure of
    the system under the given active mitigations (e.g. expected loss,
    number of hazardous scenarios, worst-case severity). Smaller is
    better. *)

type problem = {
  actions : Action.t list;
  residual : active:string list -> int;
}

type solution = {
  selected : string list;  (** mitigation ids, sorted *)
  cost : int;
  residual : int;
}

val evaluate : problem -> string list -> solution

val better : solution -> solution -> bool
(** The strict total order of the searches: smaller residual, then
    cheaper, then lexicographically smaller selection. Exposed so
    engine-backed searches ({!Frontier}) replay the exact
    tie-breaking. *)

val fold_subsets_within_budget :
  Action.t list ->
  int option ->
  init:'a ->
  f:('a -> string list -> int -> 'a) ->
  'a
(** Fold over every action subset whose total cost fits the budget, as
    [f acc selected cost] in inclusion-order DFS with cost pruning
    (costs are non-negative by {!Action.make}). Evaluation happens in
    place during enumeration — live memory is the O(actions) DFS spine,
    never a materialized subset list. The sequential searches below are
    all folds over this; it is exposed for callers (the engine-backed
    {!Frontier}) that need the same enumeration order. *)

val optimal : ?budget:int -> problem -> solution
(** Minimal residual within budget; ties broken by lower cost, then
    lexicographic selection. Exhaustive with cost pruning, streaming
    through {!fold_subsets_within_budget} in O(actions) memory — exact
    for the catalog sizes of the paper's domain (≤ ~20 actions). *)

val pareto : problem -> solution list
(** Cost-vs-residual Pareto front over all subsets, sorted by cost: no
    front member is dominated (lower-or-equal cost {e and} residual, one
    strict) by any subset. *)

val budget_sweep : problem -> budgets:int list -> (int * solution) list
(** {!optimal} per budget — the §IV.D trade-off curve. *)

val optimal_par : ?jobs:int -> ?budget:int -> problem -> solution
(** {!optimal} with the candidate evaluations fanned out over an
    {!Engine.Pool} of [jobs] domains (default
    [Domain.recommended_domain_count ()]). The reduction replays the
    sequential fold order and tie-breaking, so the result is always
    identical to {!optimal}. Worth it when [residual] is expensive — e.g. a
    full scenario sweep per candidate. *)

val budget_sweep_par :
  ?jobs:int -> problem -> budgets:int list -> (int * solution) list
(** {!budget_sweep} with each {e distinct} candidate selection across all
    budgets evaluated exactly once, in parallel; per-budget reductions then
    share the evaluations. Identical results to {!budget_sweep}. *)

val multi_phase : problem -> phase_budgets:int list -> solution list
(** Staged consolidation: each phase adds actions within its own budget on
    top of the previous selection, choosing the exact best increment. The
    returned list gives the cumulative solution after each phase. *)

val benefit : problem -> solution -> int
(** Loss reduction w.r.t. doing nothing: residual(∅) − residual(sel). *)

val pp_solution : Format.formatter -> solution -> unit
