type problem = {
  actions : Action.t list;
  residual : active:string list -> int;
}

type solution = {
  selected : string list;
  cost : int;
  residual : int;
}

let evaluate p ids =
  let selected = List.sort_uniq String.compare ids in
  {
    selected;
    cost = Action.total_cost p.actions selected;
    residual = p.residual ~active:selected;
  }

(* Fold [f] over every subset within budget, inclusion-order DFS with
   cost pruning along the way (costs are non-negative). The fold
   evaluates and prunes in place: live memory is the O(actions) DFS
   spine, where the previous enumerator materialized every subset into a
   list before scoring — 2^20 cons cells at the 20-action catalog scale
   this search is documented for. *)
let fold_subsets_within_budget actions budget ~init ~f =
  let rec go remaining cost selected acc =
    match remaining with
    | [] -> f acc (List.rev selected) cost
    | (a : Action.t) :: rest ->
        let acc = go rest cost selected acc in
        let cost' = cost + a.Action.cost in
        if match budget with Some b -> cost' <= b | None -> true then
          go rest cost' (a.Action.id :: selected) acc
        else acc
  in
  go actions 0 [] init

(* materialized spelling, still used by the parallel fan-out paths (a
   Pool needs indexable work) — never by the sequential searches *)
let subsets_within_budget actions budget =
  List.rev
    (fold_subsets_within_budget actions budget ~init:[]
       ~f:(fun acc ids _cost -> ids :: acc))

let better a b =
  (* smaller residual, then cheaper, then lexicographically smaller *)
  let c = Stdlib.compare a.residual b.residual in
  if c <> 0 then c < 0
  else
    let c = Stdlib.compare a.cost b.cost in
    if c <> 0 then c < 0 else Stdlib.compare a.selected b.selected < 0

let optimal ?budget p =
  (* [better] is a strict total order (residual, cost, lex selection), so
     the running best is independent of enumeration order *)
  let best =
    fold_subsets_within_budget p.actions budget ~init:None
      ~f:(fun best ids _cost ->
        let s = evaluate p ids in
        match best with Some b when not (better s b) -> best | _ -> Some s)
  in
  match best with
  | None -> evaluate p [] (* budget < 0: only the empty selection *)
  | Some s -> s

let dominates a b =
  a.cost <= b.cost && a.residual <= b.residual
  && (a.cost < b.cost || a.residual < b.residual)

let pareto p =
  (* running front, maintained in place while the subsets stream by: at
     most one representative per (cost, residual) point — the
     lexicographically smallest selection — and no dominated member.
     Order-independent, so it equals the old collect-all-then-filter
     result without ever holding all 2^n solutions. *)
  let insert front s =
    if List.exists (fun s' -> dominates s' s) front then front
    else
      let front = List.filter (fun s' -> not (dominates s s')) front in
      let equal_pt s' = s'.cost = s.cost && s'.residual = s.residual in
      match List.find_opt equal_pt front with
      | Some s' when Stdlib.compare s'.selected s.selected <= 0 -> front
      | Some _ -> s :: List.filter (fun s' -> not (equal_pt s')) front
      | None -> s :: front
  in
  let front =
    fold_subsets_within_budget p.actions None ~init:[]
      ~f:(fun front ids _cost -> insert front (evaluate p ids))
  in
  List.sort
    (fun a b ->
      let c = Stdlib.compare (a.cost, a.residual) (b.cost, b.residual) in
      if c <> 0 then c else Stdlib.compare a.selected b.selected)
    front

let budget_sweep p ~budgets =
  List.map (fun b -> (b, optimal ~budget:b p)) budgets

let best_of sols = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best ids ->
             let s = sols ids in
             if better s best then s else best)
           (sols first) rest)

let optimal_par ?jobs ?budget p =
  let candidates = Array.of_list (subsets_within_budget p.actions budget) in
  let sols =
    Engine.Pool.map ?jobs (fun i -> evaluate p candidates.(i))
      (Array.length candidates)
  in
  (* same fold order and tie-breaking as [optimal], so results coincide *)
  let table = Hashtbl.create (Array.length sols) in
  Array.iteri (fun i s -> Hashtbl.replace table candidates.(i) s) sols;
  match best_of (Hashtbl.find table) (Array.to_list candidates) with
  | Some s -> s
  | None -> evaluate p []

let budget_sweep_par ?jobs p ~budgets =
  let per_budget =
    List.map (fun b -> (b, subsets_within_budget p.actions (Some b))) budgets
  in
  (* candidate sets overlap heavily across budgets: evaluate each distinct
     selection exactly once, in parallel, then reduce per budget *)
  let module M = Map.Make (struct
    type t = string list

    let compare = Stdlib.compare
  end) in
  let key ids = List.sort_uniq String.compare ids in
  let distinct =
    List.fold_left
      (fun m ids -> M.add (key ids) () m)
      M.empty
      (List.concat_map snd per_budget)
    |> M.bindings |> List.map fst |> Array.of_list
  in
  let sols =
    Engine.Pool.map ?jobs (fun i -> evaluate p distinct.(i))
      (Array.length distinct)
  in
  let table = Hashtbl.create (Array.length distinct) in
  Array.iteri (fun i s -> Hashtbl.replace table distinct.(i) s) sols;
  List.map
    (fun (b, cands) ->
      match best_of (fun ids -> Hashtbl.find table (key ids)) cands with
      | Some s -> (b, s)
      | None -> (b, evaluate p []))
    per_budget

let multi_phase p ~phase_budgets =
  let rec go selected acc = function
    | [] -> List.rev acc
    | budget :: rest ->
        let remaining_actions =
          List.filter
            (fun (a : Action.t) -> not (List.mem a.Action.id selected))
            p.actions
        in
        let sub_problem =
          {
            actions = remaining_actions;
            residual =
              (fun ~active -> p.residual ~active:(active @ selected));
          }
        in
        let increment = optimal ~budget sub_problem in
        let selected =
          List.sort_uniq String.compare (increment.selected @ selected)
        in
        go selected (evaluate p selected :: acc) rest
  in
  go [] [] phase_budgets

let benefit (p : problem) s =
  let baseline = p.residual ~active:[] in
  baseline - s.residual

let pp_solution ppf s =
  Format.fprintf ppf "{%s} cost=%d residual=%d"
    (String.concat "," s.selected)
    s.cost s.residual
