type value = Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t

type t = {
  f_actions : Action.t list;
  f_prepared : Engine.Job.prepared;
  f_delta : active:string list -> Engine.Delta.t;
  f_measure : Asp.Model.t list -> int;
  f_cache : value Engine.Cache.t;
  f_monotone : bool;
}

let make ?cache ?(monotone = true) ~actions ~delta ~measure prepared =
  {
    f_actions = actions;
    f_prepared = prepared;
    f_delta = delta;
    f_measure = measure;
    f_cache =
      (match cache with Some c -> c | None -> Engine.Cache.create ());
    f_monotone = monotone;
  }

let actions t = t.f_actions
let cache t = t.f_cache

type report = {
  r_evals : int;
  r_hits : int;
  r_disk_hits : int;
  r_fresh : int;
  r_pruned : int;
  r_sum_s : float;
  r_critical_s : float;
  r_wall_s : float;
}

let evaluate t ids =
  let selected = List.sort_uniq String.compare ids in
  let d = t.f_delta ~active:selected in
  let fp = Engine.Job.fingerprint t.f_prepared d in
  let (models, _, _), src =
    Engine.Cache.find_or_compute_src t.f_cache fp (fun () ->
        Engine.Job.solve t.f_prepared d)
  in
  ( {
      Optimizer.selected;
      cost = Action.total_cost t.f_actions selected;
      residual = t.f_measure models;
    },
    src )

let problem t =
  {
    Optimizer.actions = t.f_actions;
    residual = (fun ~active -> (fst (evaluate t active)).Optimizer.residual);
  }

let scratch_problem t =
  let spec = Engine.Job.prepared_spec t.f_prepared in
  {
    Optimizer.actions = t.f_actions;
    residual =
      (fun ~active ->
        let p =
          Asp.Program.append spec.Engine.Job.base
            (spec.Engine.Job.compile (t.f_delta ~active))
        in
        let g = Asp.Grounder.ground ?max_atoms:spec.Engine.Job.max_atoms p in
        let models =
          match spec.Engine.Job.mode with
          | Engine.Job.Enumerate limit ->
              Asp.Solver.solve ?limit ?max_guess:spec.Engine.Job.max_guess
                ?config:spec.Engine.Job.solver_config g
          | Engine.Job.Optimal ->
              Asp.Solver.solve_optimal ?max_guess:spec.Engine.Job.max_guess
                ?config:spec.Engine.Job.solver_config g
        in
        t.f_measure models);
  }

(* counter snapshot -> report, shared by all the searches *)
let with_report t body =
  let t0 = Unix.gettimeofday () in
  let h0 = Engine.Cache.hits t.f_cache in
  let d0 = Engine.Cache.disk_hits t.f_cache in
  let m0 = Engine.Cache.misses t.f_cache in
  let evals = ref 0 and pruned = ref 0 in
  let sum = ref 0.0 and critical = ref 0.0 in
  let timed_eval ids =
    incr evals;
    let e0 = Unix.gettimeofday () in
    let s, _ = evaluate t ids in
    let w = Unix.gettimeofday () -. e0 in
    (s, w)
  in
  let result = body ~timed_eval ~evals ~pruned ~sum ~critical in
  ( result,
    {
      r_evals = !evals;
      r_hits = Engine.Cache.hits t.f_cache - h0;
      r_disk_hits = Engine.Cache.disk_hits t.f_cache - d0;
      r_fresh = Engine.Cache.misses t.f_cache - m0;
      r_pruned = !pruned;
      r_sum_s = !sum;
      r_critical_s = !critical;
      r_wall_s = Unix.gettimeofday () -. t0;
    } )

(* Branch-and-bound over the same inclusion-order DFS as
   {!Optimizer.fold_subsets_within_budget}. The bound set of a node is
   its own full-inclusion leaf (selected ∪ remaining) — under a monotone
   residual its value lower-bounds every leaf of the subtree, and the
   cache makes within-budget bound evaluations free at their own leaves.
   Pruning fires only when every leaf loses to the incumbent under
   {!Optimizer.better}'s strict total order, so the result is exactly the
   exhaustive one. *)
let optimal ?budget t =
  with_report t (fun ~timed_eval ~evals:_ ~pruned ~sum ~critical ->
      let eval ids =
        let s, w = timed_eval ids in
        sum := !sum +. w;
        if w > !critical then critical := w;
        s
      in
      let best = ref None in
      let rec go remaining cost selected =
        let cut =
          match !best with
          | Some (b : Optimizer.solution) when t.f_monotone ->
              let bound_ids =
                List.rev_append selected
                  (List.map (fun (a : Action.t) -> a.Action.id) remaining)
              in
              let r = (eval bound_ids).Optimizer.residual in
              r > b.Optimizer.residual
              || (r = b.Optimizer.residual && cost > b.Optimizer.cost)
          | _ -> false
        in
        if cut then incr pruned
        else
          match remaining with
          | [] -> (
              let s = eval (List.rev selected) in
              match !best with
              | Some b when not (Optimizer.better s b) -> ()
              | _ -> best := Some s)
          | (a : Action.t) :: rest ->
              go rest cost selected;
              let cost' = cost + a.Action.cost in
              if match budget with Some b -> cost' <= b | None -> true then
                go rest cost' (a.Action.id :: selected)
      in
      go t.f_actions 0 [];
      match !best with Some s -> s | None -> fst (evaluate t []))

(* Evaluate every within-budget subset over the pool, through the cache;
   returns the lookup table the retained Optimizer searches reduce over. *)
let sweep ?jobs ?oversubscribe t budget ~sum ~critical =
  let subsets =
    Array.of_list
      (List.rev
         (Optimizer.fold_subsets_within_budget t.f_actions budget ~init:[]
            ~f:(fun acc ids _ -> ids :: acc)))
  in
  let results =
    Engine.Pool.map ?jobs ?oversubscribe
      (fun i ->
        let e0 = Unix.gettimeofday () in
        let s, _ = evaluate t subsets.(i) in
        (s, Unix.gettimeofday () -. e0))
      (Array.length subsets)
  in
  let table = Hashtbl.create (Array.length subsets) in
  Array.iter
    (fun ((s : Optimizer.solution), w) ->
      sum := !sum +. w;
      if w > !critical then critical := w;
      Hashtbl.replace table s.Optimizer.selected s.Optimizer.residual)
    results;
  (Array.length subsets, table)

let lookup_problem t table =
  {
    Optimizer.actions = t.f_actions;
    residual =
      (fun ~active -> Hashtbl.find table (List.sort_uniq String.compare active));
  }

let pareto ?jobs ?oversubscribe t =
  with_report t (fun ~timed_eval:_ ~evals ~pruned:_ ~sum ~critical ->
      let n, table = sweep ?jobs ?oversubscribe t None ~sum ~critical in
      evals := !evals + n;
      Optimizer.pareto (lookup_problem t table))

let budget_sweep ?jobs ?oversubscribe t ~budgets =
  with_report t (fun ~timed_eval:_ ~evals ~pruned:_ ~sum ~critical ->
      List.map
        (fun b ->
          let n, table = sweep ?jobs ?oversubscribe t (Some b) ~sum ~critical in
          evals := !evals + n;
          (b, Optimizer.optimal ~budget:b (lookup_problem t table)))
        budgets)
