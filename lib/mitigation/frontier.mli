(** The mitigation frontier on the engine: candidate action sets
    evaluated as fingerprinted deltas through {!Engine.Cache}, fanned out
    over {!Engine.Pool} — §IV.D's cost/benefit searches at serving speed.

    A frontier wraps a warm {!Engine.Job.prepared} base (the same state
    the assessment service holds per loaded model): evaluating an action
    set compiles it to an {!Engine.Delta}, grounds the increment against
    the warm state ({!Asp.Grounder.extend} — never a scratch re-ground),
    and memoizes the result by structural fingerprint. Identical residual
    sub-problems dedupe — across the budgets of a sweep, across repeated
    requests, and (with a persistent cache) across processes.

    Every search reduces with the {e retained} {!Optimizer} searches over
    a lookup-table problem, so results are bit-for-bit those of the
    scratch oracle ({!scratch_problem} + the exact {!Optimizer}
    functions): same tie-breaking, same representatives, same front.
    {!optimal} adds branch-and-bound residual pruning on top of the cost
    pruning; pruning only fires on sound grounds (see [monotone]), and
    only where the pruned subtree is strictly worse under
    {!Optimizer.better}'s total order, so the result never changes. *)

type value = Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t
(** What the cache memoizes per fingerprint — the {!Engine.Sweep} cache
    triple, shareable with a serve-layer {!Engine.Cache}. *)

type t

val make :
  ?cache:value Engine.Cache.t ->
  ?monotone:bool ->
  actions:Action.t list ->
  delta:(active:string list -> Engine.Delta.t) ->
  measure:(Asp.Model.t list -> int) ->
  Engine.Job.prepared ->
  t
(** [delta ~active] compiles a sorted active-id set to the job delta;
    [measure] maps the solve's stable models to the integer residual.
    [monotone] (default [true]) asserts that activating {e more} actions
    never increases the residual — the paper's mitigations only remove
    hazard mass. It licenses {!optimal}'s branch-and-bound bound: the
    residual of [S ∪ remaining] lower-bounds every superset of [S] in the
    subtree. Pass [false] for a non-monotone measure; {!optimal} then
    degrades to the exhaustive cost-pruned search. [cache] defaults to a
    fresh private cache; pass a shared one to reuse answers across
    searches and requests. *)

val actions : t -> Action.t list
val cache : t -> value Engine.Cache.t

type report = {
  r_evals : int;  (** evaluations requested (incl. cache answers) *)
  r_hits : int;  (** answered from cache memory *)
  r_disk_hits : int;  (** answered from the persistent tier *)
  r_fresh : int;  (** fresh ground+solve *)
  r_pruned : int;  (** branch-and-bound subtrees cut ({!optimal} only) *)
  r_sum_s : float;  (** total evaluation wall across workers *)
  r_critical_s : float;  (** longest single evaluation *)
  r_wall_s : float;
}

val evaluate : t -> string list -> Optimizer.solution * Engine.Cache.source
(** One action set through the warm state and cache. *)

val optimal : ?budget:int -> t -> Optimizer.solution * report
(** Best selection within budget — {!Optimizer.better}'s order, exactly
    {!Optimizer.optimal} of {!scratch_problem}. Sequential DFS over
    {!Optimizer.fold_subsets_within_budget}'s enumeration with
    branch-and-bound pruning: a subtree [S ∪ subsets-of-R] is cut iff
    [residual (S ∪ R) > best.residual], or equal with [cost S >
    best.cost] — every leaf in it then loses to the incumbent under the
    total order (costs are non-negative), so pruning is invisible in the
    result. Bound evaluations are cache-shared full-inclusion leaves. *)

val pareto : ?jobs:int -> ?oversubscribe:bool -> t -> Optimizer.solution list * report
(** The full budget/benefit Pareto frontier in one parallel sweep: every
    subset evaluated over the pool through the cache, then reduced with
    the retained {!Optimizer.pareto} over the result table — identical
    front, representatives and order. [jobs]/[oversubscribe] as in
    {!Engine.Pool.map}. *)

val budget_sweep :
  ?jobs:int -> ?oversubscribe:bool ->
  t -> budgets:int list -> (int * Optimizer.solution) list * report
(** {!optimal} per budget, with all budgets sharing one cache: subsets
    within budget [b] are a subset of those within [b' >= b], so a sweep
    over ascending budgets is mostly cache hits — the report's hit
    counters make the dedup rate visible. Results are exactly
    {!Optimizer.budget_sweep} of {!scratch_problem}. *)

val problem : t -> Optimizer.problem
(** The frontier as an {!Optimizer.problem} whose [residual] goes through
    the warm state and cache — for the retained sequential searches. *)

val scratch_problem : t -> Optimizer.problem
(** The retained oracle: [residual] re-grounds base + increment cold via
    {!Asp.Grounder.ground} and solves with no cache — the pre-engine
    behaviour, kept for bit-for-bit differential tests. *)
