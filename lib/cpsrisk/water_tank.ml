(* ------------------------------------------------------------------ *)
(* ArchiMate models (Fig. 4)                                            *)
(* ------------------------------------------------------------------ *)

let el ?(props = []) id name kind =
  Archimate.Element.make ~id ~name ~kind ~properties:props ()

let rel id source target kind =
  Archimate.Relationship.make ~id ~source ~target ~kind ()

let model =
  let open Archimate in
  let typed ty = [ ("component_type", ty) ] in
  Model.empty ~name:"Water Tank System"
  |> Model.add_element
       (el "tank" "Water Tank" Element.Equipment ~props:(typed "tank"))
  |> Model.add_element
       (el "wls" "Water Level Sensor" Element.Device ~props:(typed "sensor"))
  |> Model.add_element
       (el "ctrl" "Water Tank Controller" Element.Application_component
          ~props:(typed "controller"))
  |> Model.add_element
       (el "in_valve" "Input Valve" Element.Equipment ~props:(typed "valve"))
  |> Model.add_element
       (el "out_valve" "Output Valve" Element.Equipment ~props:(typed "valve"))
  |> Model.add_element
       (el "in_valve_ctrl" "Input Valve Controller" Element.Application_component
          ~props:(typed "controller"))
  |> Model.add_element
       (el "out_valve_ctrl" "Output Valve Controller" Element.Application_component
          ~props:(typed "controller"))
  |> Model.add_element (el "hmi" "HMI" Element.Device ~props:(typed "hmi"))
  |> Model.add_element
       (el "ews" "Engineering Workstation" Element.Node
          ~props:(typed "workstation"))
  |> Model.add_element (el "operator" "Operator" Element.Business_actor)
  (* signal flow: sensor -> controller -> valve controllers -> valves -> tank *)
  |> Model.add_relationship (rel "f1" "wls" "ctrl" Relationship.Flow)
  |> Model.add_relationship (rel "f2" "ctrl" "in_valve_ctrl" Relationship.Flow)
  |> Model.add_relationship (rel "f3" "ctrl" "out_valve_ctrl" Relationship.Flow)
  |> Model.add_relationship (rel "f4" "in_valve_ctrl" "in_valve" Relationship.Flow)
  |> Model.add_relationship (rel "f5" "out_valve_ctrl" "out_valve" Relationship.Flow)
  |> Model.add_relationship (rel "f6" "in_valve" "tank" Relationship.Flow)
  |> Model.add_relationship (rel "f7" "out_valve" "tank" Relationship.Flow)
  |> Model.add_relationship (rel "f8" "tank" "wls" Relationship.Association)
  |> Model.add_relationship (rel "f9" "ctrl" "hmi" Relationship.Flow)
  |> Model.add_relationship (rel "f10" "hmi" "operator" Relationship.Serving)
  (* the IT extension: engineering workstation can reconfigure the valves *)
  |> Model.add_relationship (rel "f11" "ews" "in_valve_ctrl" Relationship.Flow)
  |> Model.add_relationship (rel "f12" "ews" "out_valve_ctrl" Relationship.Flow)
  |> Model.add_relationship (rel "f13" "ews" "hmi" Relationship.Flow)

let refined_model =
  let refinement =
    {
      Cegar.Refine.target = "ews";
      parts =
        [
          el "email" "E-mail Client" Archimate.Element.Application_component
            ~props:[ ("component_type", "email_client") ];
          el "browser" "Browser" Archimate.Element.Application_component
            ~props:[ ("component_type", "browser") ];
          el "infected" "Infected Computer" Archimate.Element.Node
            ~props:[ ("component_type", "workstation") ];
        ];
      internal_flows = [ ("email", "browser"); ("browser", "infected") ];
    }
  in
  let m = Cegar.Refine.apply model refinement in
  (* attach the mitigations to the refined aspects (Fig. 4 bottom) *)
  let open Archimate in
  m
  |> Model.add_element
       (el "m1" "User Training" Element.Business_process
          ~props:[ ("mitigation", "M1"); ("cost", "2") ])
  |> Model.add_element
       (el "m2" "Endpoint Security" Element.System_software
          ~props:[ ("mitigation", "M2"); ("cost", "5") ])
  |> Model.add_relationship (rel "mr1" "m1" "email" Relationship.Association)
  |> Model.add_relationship (rel "mr2" "m2" "browser" Relationship.Association)

let topology =
  Epa.Propagation.make_network
    ~components:
      [
        "wls"; "ctrl"; "in_valve_ctrl"; "out_valve_ctrl"; "in_valve";
        "out_valve"; "tank"; "hmi"; "ews";
      ]
    ~edges:
      [
        ("wls", "ctrl"); ("ctrl", "in_valve_ctrl"); ("ctrl", "out_valve_ctrl");
        ("in_valve_ctrl", "in_valve"); ("out_valve_ctrl", "out_valve");
        ("in_valve", "tank"); ("out_valve", "tank"); ("ctrl", "hmi");
        ("ews", "in_valve_ctrl"); ("ews", "out_valve_ctrl"); ("ews", "hmi");
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Faults, mitigations, requirements (§VII)                             *)
(* ------------------------------------------------------------------ *)

let faults =
  [
    Epa.Fault.make ~id:"F1" ~component:"in_valve"
      ~mode:(Epa.Fault.Stuck_at "open")
      ~description:"Input valve stuck-at-open" ();
    Epa.Fault.make ~id:"F2" ~component:"out_valve"
      ~mode:(Epa.Fault.Stuck_at "closed")
      ~description:"Output valve stuck-at-closed" ();
    Epa.Fault.make ~id:"F3" ~component:"hmi" ~mode:Epa.Fault.Omission
      ~description:"HMI delivers no signal" ();
    Epa.Fault.make ~id:"F4" ~component:"ews" ~mode:Epa.Fault.Compromise
      ~description:"Infected engineering workstation reconfigures actuators"
      ~induces:[ "F1"; "F2"; "F3" ] ();
  ]

(* M1/M2 are the paper's; M3–M5 extend the catalog so the cost-benefit
   optimization of §IV.D has a non-trivial trade-off space. *)
let mitigations =
  [
    Mitigation.Action.make ~id:"M1" ~name:"User Training" ~cost:2
      ~blocks:[ "F4" ];
    Mitigation.Action.make ~id:"M2" ~name:"Endpoint Security" ~cost:5
      ~blocks:[ "F4" ];
    Mitigation.Action.make ~id:"M3" ~name:"Out-of-Band Alarm Channel" ~cost:4
      ~blocks:[ "F3" ];
    Mitigation.Action.make ~id:"M4" ~name:"Redundant Output Valve" ~cost:7
      ~blocks:[ "F2" ];
    Mitigation.Action.make ~id:"M5" ~name:"Input Valve Interlock" ~cost:6
      ~blocks:[ "F1" ];
  ]

let blocks = Mitigation.Action.blocks_relation mitigations

let requirements =
  [
    Epa.Requirement.make ~id:"R1"
      ~description:"the water tank should not overflow"
      ~formula:"G !level=overflow";
    Epa.Requirement.make ~id:"R2"
      ~description:"an alert is sent to the operator in case of overflow"
      ~formula:"G (level=overflow -> F alert)";
  ]

(* ------------------------------------------------------------------ *)
(* Dynamics backend                                                     *)
(* ------------------------------------------------------------------ *)

let levels = [| "low"; "normal"; "high"; "overflow" |]

let level_index l =
  let rec go i = if levels.(i) = l then i else go (i + 1) in
  go 0

let build_dynamics ~faults:active =
  let f1 = List.mem "F1" active
  and f2 = List.mem "F2" active
  and f3 = List.mem "F3" active
  and f4 = List.mem "F4" active in
  let init =
    Qual.Qstate.of_list
      [
        ("level", "low"); ("in_valve", "open"); ("out_valve", "closed");
        ("cmd_in", "open"); ("cmd_out", "closed"); ("alert", "false");
        ("ews", if f4 then "compromised" else "ok");
      ]
  in
  let step s =
    let level = Qual.Qstate.get "level" s in
    let li = level_index level in
    let flow b = if b then 1 else 0 in
    let d =
      flow (Qual.Qstate.holds "in_valve" "open" s)
      - flow (Qual.Qstate.holds "out_valve" "open" s)
    in
    (* overflow is absorbing; otherwise qualitative integration, clamped *)
    let li' = if li = 3 then 3 else max 0 (min 3 (li + d)) in
    let level' = levels.(li') in
    (* valve positions realize the previous command, unless stuck *)
    let in_valve' = if f1 then "open" else Qual.Qstate.get "cmd_in" s in
    let out_valve' = if f2 then "closed" else Qual.Qstate.get "cmd_out" s in
    (* controller issues commands from the freshly sensed level; they take
       effect one step later (sensing/actuation delay) *)
    let cmd_in' = if li' >= 2 then "closed" else "open" in
    let cmd_out' = if li' >= 1 then "open" else "closed" in
    (* HMI alert latches, unless the HMI delivers no signal (F3) *)
    let alert' =
      if level' = "overflow" && not f3 then "true" else Qual.Qstate.get "alert" s
    in
    Qual.Qstate.of_list
      [
        ("level", level'); ("in_valve", in_valve'); ("out_valve", out_valve');
        ("cmd_in", cmd_in'); ("cmd_out", cmd_out'); ("alert", alert');
        ("ews", Qual.Qstate.get "ews" s);
      ]
  in
  Epa.Dynamics.to_ts (Epa.Dynamics.make ~init ~step)

let system =
  {
    Epa.Analysis.catalog = faults;
    blocks;
    build = build_dynamics;
    requirements;
  }

let build_dynamics_uncertain ~faults:active =
  let f1 = List.mem "F1" active
  and f2 = List.mem "F2" active
  and f3 = List.mem "F3" active
  and f4 = List.mem "F4" active in
  let init =
    Qual.Qstate.of_list
      [
        ("level", "low"); ("in_valve", "open"); ("out_valve", "closed");
        ("cmd_in", "open"); ("cmd_out", "closed"); ("alert", "false");
        ("ews", if f4 then "compromised" else "ok");
      ]
  in
  let step s =
    let level = Qual.Qstate.get "level" s in
    let li = level_index level in
    let flow b = if b then 1 else 0 in
    let d =
      flow (Qual.Qstate.holds "in_valve" "open" s)
      - flow (Qual.Qstate.holds "out_valve" "open" s)
    in
    (* balanced flows: qualitatively ambiguous — the level may drift *)
    let deltas = if d = 0 then [ -1; 0; 1 ] else [ d ] in
    let successor_levels =
      if li = 3 then [ 3 ]
      else List.sort_uniq compare (List.map (fun d -> max 0 (min 3 (li + d))) deltas)
    in
    List.map
      (fun li' ->
        let level' = levels.(li') in
        let in_valve' = if f1 then "open" else Qual.Qstate.get "cmd_in" s in
        let out_valve' = if f2 then "closed" else Qual.Qstate.get "cmd_out" s in
        let cmd_in' = if li' >= 2 then "closed" else "open" in
        let cmd_out' = if li' >= 1 then "open" else "closed" in
        let alert' =
          if level' = "overflow" && not f3 then "true"
          else Qual.Qstate.get "alert" s
        in
        Qual.Qstate.of_list
          [
            ("level", level'); ("in_valve", in_valve');
            ("out_valve", out_valve'); ("cmd_in", cmd_in');
            ("cmd_out", cmd_out'); ("alert", alert');
            ("ews", Qual.Qstate.get "ews" s);
          ])
      successor_levels
  in
  Epa.Dynamics.to_ts (Epa.Dynamics.make_nondet ~init:[ init ] ~step)

let uncertain_system = { system with Epa.Analysis.build = build_dynamics_uncertain }

(* ------------------------------------------------------------------ *)
(* Table II scenarios                                                   *)
(* ------------------------------------------------------------------ *)

let both = [ "M1"; "M2" ]

let paper_scenarios =
  [
    ("S1", Epa.Scenario.make ~mitigations:both []);
    ("S2", Epa.Scenario.make [ "F4" ]);
    ("S3", Epa.Scenario.make ~mitigations:both [ "F1" ]);
    ("S4", Epa.Scenario.make ~mitigations:both [ "F2" ]);
    ("S5", Epa.Scenario.make ~mitigations:both [ "F2"; "F3" ]);
    ("S6", Epa.Scenario.make ~mitigations:both [ "F1"; "F3" ]);
    ("S7", Epa.Scenario.make ~mitigations:both [ "F1"; "F2"; "F3" ]);
  ]

let table_ii_rows () =
  List.map
    (fun (label, scenario) -> (label, Epa.Analysis.run_scenario system scenario))
    paper_scenarios

let full_sweep ?mitigations () = Epa.Analysis.run ?mitigations system

(* ------------------------------------------------------------------ *)
(* ASP backend                                                          *)
(* ------------------------------------------------------------------ *)

let static_rules =
  {|
% --- fault activation (Listing 1 semantics) -------------------------
blocked(F) :- mitigation(F, M), active_mitigation(C, M), fault_on(F, C).
potential_fault(C, F) :- component(C), fault_on(F, C), not blocked(F).
active_fault(C, F) :- potential_fault(C, F), activated(F).
active_fault(C2, F2) :- active_fault(C, F), induces(F, F2), fault_on(F2, C2),
                        not blocked(F2).
active(F) :- active_fault(C, F).

% --- quantity space of the tank level --------------------------------
level_val(low, 0). level_val(normal, 1). level_val(high, 2).
level_val(overflow, 3).

% --- initial state ----------------------------------------------------
holds(level, low, 0).
holds(in_valve, open, 0).
holds(out_valve, closed, 0).
holds(cmd_in, open, 0).
holds(cmd_out, closed, 0).

% --- conservation-law flow balance ------------------------------------
flow_in(T, 1) :- step(T), holds(in_valve, open, T).
flow_in(T, 0) :- step(T), holds(in_valve, closed, T).
flow_out(T, 1) :- step(T), holds(out_valve, open, T).
flow_out(T, 0) :- step(T), holds(out_valve, closed, T).

% --- level update: overflow absorbs (a Listing-2 style stuck rule) ----
holds(level, overflow, S) :- step(T), S = T + 1, holds(level, overflow, T).
holds(level, L2, S) :- step(T), S = T + 1, holds(level, L, T),
                       level_val(L, V), V < 3,
                       flow_in(T, I), flow_out(T, O),
                       N = max(0, min(V + I - O, 3)), level_val(L2, N).

% --- valves realize last command unless a stuck-at fault is active ----
holds(in_valve, open, S) :- step(T), S = T + 1, active(f1).
holds(in_valve, P, S) :- step(T), S = T + 1, holds(cmd_in, P, T), not active(f1).
holds(out_valve, closed, S) :- step(T), S = T + 1, active(f2).
holds(out_valve, P, S) :- step(T), S = T + 1, holds(cmd_out, P, T), not active(f2).

% --- controller: one-step sensing/actuation delay ----------------------
holds(cmd_in, closed, T) :- time(T), T > 0, holds(level, L, T),
                            level_val(L, V), V >= 2.
holds(cmd_in, open, T) :- time(T), T > 0, holds(level, L, T),
                          level_val(L, V), V < 2.
holds(cmd_out, open, T) :- time(T), T > 0, holds(level, L, T),
                           level_val(L, V), V >= 1.
holds(cmd_out, closed, T) :- time(T), T > 0, holds(level, L, T),
                             level_val(L, V), V < 1.

% --- HMI alert: latched, suppressed by the no-signal fault -------------
alert(T) :- time(T), holds(level, overflow, T), not active(f3).
alert(S) :- step(T), S = T + 1, alert(T).
|}

(* The requirement checks are not hand-written: each LTLf requirement
   formula is compiled into ASP rules by the Telingo layer, over the same
   trace vocabulary the dynamics rules produce ([holds/3] plus the
   [alert/1] latch). *)
let requirement_rules ~horizon =
  let encode atom time_term =
    if atom = "alert" then Asp.Lit.Pos (Asp.Atom.make "alert" [ time_term ])
    else Telingo.Compile.default_encoding atom time_term
  in
  List.fold_left
    (fun acc (r : Epa.Requirement.t) ->
      let prefix = String.lowercase_ascii r.Epa.Requirement.id ^ "_" in
      let rules, root =
        Telingo.Compile.formula ~prefix ~encode ~horizon r.Epa.Requirement.formula
      in
      let rules =
        Asp.Program.add
          (Telingo.Compile.violated_rule ~requirement:r.Epa.Requirement.id ~root)
          rules
      in
      Asp.Program.append acc rules)
    Asp.Program.empty requirements

(* Scenario-independent catalog facts, part of the shared sweep base. *)
let catalog_facts =
  "component(in_valve). component(out_valve). component(hmi). component(ews).\n\
   fault(f1). fault(f2). fault(f3). fault(f4).\n\
   fault_on(f1, in_valve). fault_on(f2, out_valve). fault_on(f3, hmi). \
   fault_on(f4, ews).\n\
   induces(f4, f1). induces(f4, f2). induces(f4, f3).\n\
   mitigation(f4, m1). mitigation(f4, m2).\n\
   mitigation(f3, m3). mitigation(f2, m4). mitigation(f1, m5).\n"

let asp_base ?(horizon = 12) () =
  let src =
    Printf.sprintf "time(0..%d).\nstep(0..%d).\n%s\n%s" horizon (horizon - 1)
      catalog_facts static_rules
  in
  Asp.Program.append (Asp.Parser.parse_program src) (requirement_rules ~horizon)

let asp_activation_facts (scenario : Epa.Scenario.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "activated(%s).\n" (String.lowercase_ascii f)))
    scenario.Epa.Scenario.faults;
  let mitigation_site = function
    | "m1" | "m2" -> "ews"
    | "m3" -> "hmi"
    | "m4" -> "out_valve"
    | "m5" -> "in_valve"
    | other -> other
  in
  List.iter
    (fun m ->
      let m = String.lowercase_ascii m in
      Buffer.add_string buf
        (Printf.sprintf "active_mitigation(%s, %s).\n" (mitigation_site m) m))
    scenario.Epa.Scenario.mitigations;
  Asp.Parser.parse_program (Buffer.contents buf)

let asp_program ?horizon ~scenario () =
  Asp.Program.append (asp_base ?horizon ()) (asp_activation_facts scenario)

let asp_verdicts ?horizon ~scenario () =
  let program = asp_program ?horizon ~scenario () in
  match Asp.Solver.solve (Asp.Grounder.ground program) with
  | [ m ] ->
      List.map
        (fun (r : Epa.Requirement.t) ->
          let atom =
            Asp.Atom.make "violated"
              [ Asp.Term.const (String.lowercase_ascii r.Epa.Requirement.id) ]
          in
          (r.Epa.Requirement.id, Asp.Model.holds m atom))
        requirements
  | models ->
      invalid_arg
        (Printf.sprintf
           "Water_tank.asp_verdicts: expected a unique stable model, got %d"
           (List.length models))

(* ------------------------------------------------------------------ *)
(* Most-critical-consequence search (§II.C cost metrics)                *)
(* ------------------------------------------------------------------ *)

let asp_critical_scenario ?(horizon = 12) ?(mitigations = []) () =
  (* start from the single-scenario program with no activations, then let
     the solver choose them under the severity cost metrics *)
  let scenario = Epa.Scenario.make ~mitigations [] in
  let base = asp_program ~horizon ~scenario () in
  let search =
    Asp.Parser.parse_program
      "{ activated(F) : fault(F) }.\n\
       % combinations of many simultaneous faults are implausible (§VII)\n\
       :- #count { F : activated(F) } > 3.\n\
       penalty(r1, 3). penalty(r2, 1).\n\
       :~ activated(F). [1@1, F]\n\
       :~ violated(R), penalty(R, W). [-W@2, R]"
  in
  match
    Asp.Solver.solve_optimal (Asp.Grounder.ground (Asp.Program.append base search))
  with
  | [] -> invalid_arg "Water_tank.asp_critical_scenario: unsatisfiable"
  | m :: _ ->
      let consts pred =
        Asp.Model.by_predicate m pred
        |> List.filter_map (fun (a : Asp.Atom.t) ->
               match a.Asp.Atom.args with
               | [ { Asp.Term.node = Asp.Term.Const c; _ } ] -> Some (String.uppercase_ascii c)
               | _ -> None)
        |> List.sort String.compare
      in
      (consts "activated", consts "violated")

(* ------------------------------------------------------------------ *)
(* Joint mitigation-optimization program (§IV.C–D)                      *)
(* ------------------------------------------------------------------ *)

(* The same dynamics as [static_rules], parametrized by a scenario S so
   that all fault combinations live in one program; fault activation is
   driven by the chosen/1 mitigation choice through Listing-1 blocking. *)
let joint_rules =
  {|
% --- mitigation selection (the solution space of §IV.C) --------------
{ chosen(M) : mitigation_action(M) }.
blocked(F) :- chosen(M), mblocks(M, F).

% --- per-scenario fault activation (Listing 1) ------------------------
active(S, F) :- scenario(S), scenario_activates(S, F), not blocked(F).
active(S, F2) :- active(S, F), induces(F, F2), not blocked(F2).

level_val(low, 0). level_val(normal, 1). level_val(high, 2).
level_val(overflow, 3).

holds(S, level, low, 0) :- scenario(S).
holds(S, in_valve, open, 0) :- scenario(S).
holds(S, out_valve, closed, 0) :- scenario(S).
holds(S, cmd_in, open, 0) :- scenario(S).
holds(S, cmd_out, closed, 0) :- scenario(S).

flow_in(S, T, 1) :- step(T), holds(S, in_valve, open, T).
flow_in(S, T, 0) :- step(T), holds(S, in_valve, closed, T).
flow_out(S, T, 1) :- step(T), holds(S, out_valve, open, T).
flow_out(S, T, 0) :- step(T), holds(S, out_valve, closed, T).

holds(S, level, overflow, U) :- step(T), U = T + 1, holds(S, level, overflow, T).
holds(S, level, L2, U) :- step(T), U = T + 1, holds(S, level, L, T),
                          level_val(L, V), V < 3,
                          flow_in(S, T, I), flow_out(S, T, O),
                          N = max(0, min(V + I - O, 3)), level_val(L2, N).

holds(S, in_valve, open, U) :- step(T), U = T + 1, active(S, f1).
holds(S, in_valve, P, U) :- step(T), U = T + 1, holds(S, cmd_in, P, T),
                            not active(S, f1).
holds(S, out_valve, closed, U) :- step(T), U = T + 1, active(S, f2).
holds(S, out_valve, P, U) :- step(T), U = T + 1, holds(S, cmd_out, P, T),
                             not active(S, f2).

holds(S, cmd_in, closed, T) :- time(T), T > 0, holds(S, level, L, T),
                               level_val(L, V), V >= 2.
holds(S, cmd_in, open, T) :- time(T), T > 0, holds(S, level, L, T),
                             level_val(L, V), V < 2.
holds(S, cmd_out, open, T) :- time(T), T > 0, holds(S, level, L, T),
                              level_val(L, V), V >= 1.
holds(S, cmd_out, closed, T) :- time(T), T > 0, holds(S, level, L, T),
                                level_val(L, V), V < 1.

alert(S, T) :- time(T), holds(S, level, overflow, T), not active(S, f3).
alert(S, U) :- step(T), U = T + 1, alert(S, T).

% --- cost model (§IV.D) ------------------------------------------------
penalty(r1, 3). penalty(r2, 1).
:~ violated(S, R), penalty(R, W). [W@2, S, R]
:~ chosen(M), mcost(M, C). [C@1, M]
|}

let scenario_id faults_subset =
  if faults_subset = [] then "s_none"
  else "s_" ^ String.concat "_" (List.map String.lowercase_ascii faults_subset)

let joint_facts () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "induces(f4, f1). induces(f4, f2). induces(f4, f3).\n";
  List.iter
    (fun (a : Mitigation.Action.t) ->
      let id = String.lowercase_ascii a.Mitigation.Action.id in
      Buffer.add_string buf (Printf.sprintf "mitigation_action(%s).\n" id);
      Buffer.add_string buf
        (Printf.sprintf "mcost(%s, %d).\n" id a.Mitigation.Action.cost);
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "mblocks(%s, %s).\n" id (String.lowercase_ascii f)))
        a.Mitigation.Action.blocks)
    mitigations;
  List.iter
    (fun scenario ->
      let sid = scenario_id scenario.Epa.Scenario.faults in
      Buffer.add_string buf (Printf.sprintf "scenario(%s).\n" sid);
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "scenario_activates(%s, %s).\n" sid
               (String.lowercase_ascii f)))
        scenario.Epa.Scenario.faults)
    (Epa.Scenario.all_combinations faults);
  Buffer.contents buf

let joint_requirement_rules ~horizon =
  let svar = Asp.Term.var "S" in
  let context =
    {
      Telingo.Compile.params = [ svar ];
      guards = [ Asp.Lit.Pos (Asp.Atom.make "scenario" [ svar ]) ];
    }
  in
  let encode atom time_term =
    if atom = "alert" then
      Asp.Lit.Pos (Asp.Atom.make "alert" [ svar; time_term ])
    else
      match Telingo.Compile.default_encoding atom time_term with
      | Asp.Lit.Pos a -> Asp.Lit.Pos { a with Asp.Atom.args = svar :: a.Asp.Atom.args }
      | other -> other
  in
  List.fold_left
    (fun acc (r : Epa.Requirement.t) ->
      let rid = String.lowercase_ascii r.Epa.Requirement.id in
      let prefix = "j" ^ rid ^ "_" in
      let rules, root =
        Telingo.Compile.formula ~prefix ~encode ~context ~horizon
          r.Epa.Requirement.formula
      in
      let violated =
        Asp.Rule.rule
          (Asp.Atom.make "violated" [ svar; Asp.Term.const rid ])
          [ Asp.Lit.Pos (Asp.Atom.make "scenario" [ svar ]); Asp.Lit.Neg root ]
      in
      Asp.Program.append acc (Asp.Program.add violated rules))
    Asp.Program.empty requirements

let asp_mitigation_program ?(horizon = 10) ?budget () =
  let budget_rule =
    match budget with
    | None -> ""
    | Some b ->
        Printf.sprintf ":- #sum { C, M : chosen(M), mcost(M, C) } > %d.\n" b
  in
  let src =
    Printf.sprintf "time(0..%d).\nstep(0..%d).\n%s\n%s\n%s" horizon
      (horizon - 1) (joint_facts ()) budget_rule joint_rules
  in
  Asp.Program.append (Asp.Parser.parse_program src)
    (joint_requirement_rules ~horizon)

let asp_optimal_mitigations ?horizon ?budget () =
  let ground = Asp.Grounder.ground (asp_mitigation_program ?horizon ?budget ()) in
  match Asp.Solver.solve_optimal ground with
  | [] -> invalid_arg "Water_tank.asp_optimal_mitigations: unsatisfiable"
  | m :: _ ->
      let selected =
        Asp.Model.by_predicate m "chosen"
        |> List.filter_map (fun (a : Asp.Atom.t) ->
               match a.Asp.Atom.args with
               | [ { Asp.Term.node = Asp.Term.Const mid; _ } ] -> Some (String.uppercase_ascii mid)
               | _ -> None)
        |> List.sort String.compare
      in
      let residual =
        match List.assoc_opt 2 (Asp.Model.cost m) with
        | Some w -> w
        | None -> 0
      in
      (selected, residual)

(* ------------------------------------------------------------------ *)
(* Optimization objective (§IV.D)                                       *)
(* ------------------------------------------------------------------ *)

let residual_loss ~active =
  let rows = full_sweep ~mitigations:active () in
  List.fold_left
    (fun acc row ->
      let violations = Epa.Analysis.violations row in
      acc
      + (if List.mem "R1" violations then 3 else 0)
      + if List.mem "R2" violations then 1 else 0)
    0 rows

let optimization_problem =
  { Mitigation.Optimizer.actions = mitigations; residual = residual_loss }
