(** A hierarchical attack-surface case study for the incremental CEGAR
    driver and the engine-backed mitigation frontier — the scaled-up
    companion to the water tank: a layered ICS network whose structure is
    revealed level by level, in the spirit of the paper's model
    refinement step (§V): the coarse model over-approximates what the
    attacker can do, and each refinement adds discovered structure
    (firewall rules) that eliminates spurious attack hypotheses.

    {b Refinement side.} The abstraction is attacker routing: entry
    hypotheses [e1..eC] connect through per-entry gateways into a zone
    chain [z1 → … → zL → core → plant] with dead-end decoys and skip
    edges. A candidate claims "the attacker enters here and reaches the
    plant"; the encoding opens a routing choice

    {v { hop(S,T) : flow(S,T), not blocked(S,T) } 1 :- reach(S). v}

    and demands [:- not hazard.] — a candidate survives iff some route
    exists (SAT). Refinement level [k] adds [blocked/2] facts: the
    firewall on gateway [k] (eliminating entry hypothesis [k]) and the
    decoy on zone [k]. Dead-end routes conflict with the hazard
    constraint, so solves learn shareable nogoods — the workload the
    {!Cegar.Inc} Assume-mode exchange hub is built for.

    {b Frontier side.} A deterministic error-propagation plant (no
    choice, unique stable model): attacks injected at fixed sources
    propagate through a layered flow network unless shielded; each of
    the ≥12 costed actions shields specific nodes. The residual is the
    weight of erred assets — monotone in the active set (more shields,
    fewer errors), which licenses {!Mitigation.Frontier.optimal}'s
    branch-and-bound. *)

(** {1 Refinement schedule} *)

val default_levels : int
(** 6 — the bench's hierarchy depth. *)

val default_entries : int
(** 9 entry hypotheses: the first {!default_levels} are spurious (each
    refinement level eliminates one), the rest are confirmed. *)

val refine_spec :
  ?levels:int ->
  ?entries:int ->
  ?mode:[ `Assume | `Increment ] ->
  unit ->
  Cegar.Inc.spec
(** The CEGAR schedule: base abstraction plus [levels] structural
    increments over [entries] candidates (entry hypothesis [i] is the
    delta with fault ["Ei"]). [`Assume] (default) pins the hypothesis by
    solver assumptions over the choice-opened [entry/1] atoms — all
    candidates of a round share one ground program, enabling nogood
    carry. [`Increment] compiles each hypothesis to an [entry(ei).]
    fact grounded incrementally per candidate. Survivorship is identical
    in both modes. Requires [1 <= levels < entries]. *)

val spurious_entries : levels:int -> string list
(** The fault ids eliminated by the schedule, in elimination order. *)

(** {1 Mitigation frontier} *)

val frontier_actions : Mitigation.Action.t list
(** 12 costed shield actions [MS1..MS12], one per inner plant node, with
    deliberately overlapping coverage and varied costs so the Pareto
    front is non-trivial. *)

val frontier_base : Asp.Program.t
(** Plant topology facts, [protects/2] catalog and the propagation
    rules; scenario-independent, prepared once. *)

val frontier_compile : Engine.Delta.t -> Asp.Program.t
(** Delta mitigations → [active/1] facts. *)

val frontier_delta : active:string list -> Engine.Delta.t

val frontier_measure : Asp.Model.t list -> int
(** Severity-weighted erred assets of the unique stable model; raises
    [Invalid_argument] if the model is not unique. *)

val frontier_spec : unit -> Engine.Job.spec
(** {!frontier_base} + {!frontier_compile}, no deltas — prepare it once
    and hand it to {!Mitigation.Frontier.make}. *)

val frontier_of :
  ?cache:Mitigation.Frontier.value Engine.Cache.t ->
  Engine.Job.prepared ->
  Mitigation.Frontier.t
(** The frontier over already-warm prepared state (a prepared
    {!frontier_spec}) — the serve layer shares a loaded model's state and
    cache this way. *)

val frontier :
  ?cache:Mitigation.Frontier.value Engine.Cache.t ->
  unit ->
  Mitigation.Frontier.t
(** A ready frontier over a freshly prepared {!frontier_spec}. *)
