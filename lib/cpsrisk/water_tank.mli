(** The paper's case study (§VII): a TEP-inspired water-tank system with
    input/output valve actuators, level sensor, controller, HMI and an
    Engineering Workstation.

    Two independent analysis backends are provided and must agree:
    - a discrete-time qualitative dynamics simulator checked with LTLf
      ({!build_dynamics}, {!system});
    - a generated temporal ASP program in the style of the paper's
      Listings 1–2 ({!asp_program}, {!asp_verdicts}), solved by the
      embedded stable-model engine.

    Fault modes: F1 input valve stuck-at-open, F2 output valve
    stuck-at-closed, F3 HMI no-signal, F4 infected engineering workstation
    (induces F1–F3). Mitigations: M1 user training, M2 endpoint security
    (both block F4). Requirements: R1 no overflow, R2 overflow is
    alerted. *)

val model : Archimate.Model.t
(** High-level Fig. 4 model. *)

val refined_model : Archimate.Model.t
(** With the Engineering Workstation decomposed into E-mail Client →
    Browser → Infected Computer and M1/M2 attached (Fig. 4 bottom). *)

val topology : Epa.Propagation.network
(** Flow topology for topology-based propagation (§VI focus 1). *)

val faults : Epa.Fault.t list
val mitigations : Mitigation.Action.t list
val requirements : Epa.Requirement.t list
val blocks : string -> string list

val build_dynamics : faults:string list -> Ltl.Ts.t
(** Qualitative dynamics under the given {e effective} fault ids. State
    variables: [level], [in_valve], [out_valve], [cmd_in], [cmd_out],
    [alert], [ews]. One-step actuation delay between controller command and
    valve position. *)

val system : Epa.Analysis.system

val build_dynamics_uncertain : faults:string list -> Ltl.Ts.t
(** Over-approximating variant for §V.B ("the phenomenon of error
    propagation itself may be non-deterministic"): when in- and outflow
    balance, the qualitative derivative of the level is ambiguous —
    unmodeled higher-order effects may still move it — so the state
    branches over all consistent successors. Every behaviour of
    {!build_dynamics} is included: requirements that hold here certainly
    hold; violations may be spurious and call for refinement. *)

val uncertain_system : Epa.Analysis.system
(** {!system} with {!build_dynamics_uncertain} as the builder. *)

val paper_scenarios : (string * Epa.Scenario.t) list
(** S1…S7 of Table II with their printed fault/mitigation activations. *)

val table_ii_rows : unit -> (string * Epa.Analysis.row) list
(** The Table II reproduction: each paper scenario evaluated on the
    dynamics backend. *)

val full_sweep : ?mitigations:string list -> unit -> Epa.Analysis.row list
(** All 2⁴ fault combinations under the given mitigation set. *)

val asp_base : ?horizon:int -> unit -> Asp.Program.t
(** The scenario-independent part of the temporal encoding (default horizon
    12 steps): time/step facts, the fault/mitigation catalog, Listing-2
    style dynamics rules and the Telingo-compiled requirement rules. A
    sweep ({!Sweeps.water_tank_spec}) builds and grounds this once and
    appends per-scenario activation facts per job. *)

val asp_activation_facts : Epa.Scenario.t -> Asp.Program.t
(** The per-scenario increment: [activated/1] and [active_mitigation/2]
    facts (Listing-1 activation inputs). *)

val asp_program : ?horizon:int -> scenario:Epa.Scenario.t -> unit -> Asp.Program.t
(** Temporal ASP encoding of the scenario — {!asp_base} plus
    {!asp_activation_facts}: Listing-1 fault activation, Listing-2 style
    frame/fault rules, the qualitative tank dynamics and the
    requirement-violation rules. *)

val asp_verdicts : ?horizon:int -> scenario:Epa.Scenario.t -> unit -> (string * bool) list
(** [(requirement id, violated?)] per requirement, from the unique stable
    model of {!asp_program}. *)

val asp_critical_scenario :
  ?horizon:int -> ?mitigations:string list -> unit -> string list * string list
(** The §II.C cost-metric search run inside the reasoner: a choice rule
    over fault activation with two weak-constraint levels — maximize the
    severity-weighted violations (priority 2), then minimize the number of
    simultaneously activated faults (priority 1). Returns the activated
    fault ids and the violated requirement ids of the optimal stable model.
    With M1/M2 active this reproduces the paper's §VII finding that S5
    ({F2, F3}) is the most severe combination. *)

val asp_mitigation_program : ?horizon:int -> ?budget:int -> unit -> Asp.Program.t
(** The §IV.C/§IV.D reasoning task as {e one} logic program: all 2⁴ fault
    scenarios unrolled jointly, a choice rule over the mitigation catalog,
    Listing-1 blocking, the Telingo-compiled requirements per scenario, and
    two weak-constraint levels — severity-weighted violations at priority 2
    and mitigation cost at priority 1. The optimal stable models select the
    same mitigations as {!optimization_problem}'s exact search (default
    horizon 10). *)

val asp_optimal_mitigations : ?horizon:int -> ?budget:int -> unit -> string list * int
(** Selected mitigation ids (upper-case, sorted) and the residual loss at
    priority 2, from the weak-constraint-optimal stable model. A [budget]
    becomes a [#sum] integrity constraint over the chosen mitigations'
    costs. *)

val residual_loss : active:string list -> int
(** Optimization objective for the mitigation step: total severity-weighted
    violations across the fault sweep under the given active mitigations
    (weight 3 for R1 — physical damage — and 1 for R2). *)

val optimization_problem : Mitigation.Optimizer.problem
