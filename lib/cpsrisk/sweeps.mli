(** Sweep builders: the glue between the batch engine ({!Engine.Sweep}) and
    the framework's ASP backends. A builder fixes the shared base program
    and the delta→increment compiler; the engine does the rest (base reuse,
    content-addressed caching, domain-parallel fan-out, deterministic
    ordering). *)

val scenario_delta : ?label:string -> Epa.Scenario.t -> Engine.Delta.t
val delta_scenario : Engine.Delta.t -> Epa.Scenario.t

val all_fault_deltas :
  ?mitigations:string list -> Epa.Fault.t list -> Engine.Delta.t list
(** One delta per fault combination (the §IV.A scenario space), each under
    the given mitigation set — the default sweep workload. *)

val random_deltas :
  ?fault_pool:string list ->
  ?mitigation_pool:string list ->
  seed:int -> int -> Engine.Delta.t list
(** [n] deltas drawn with a seeded PRNG: a uniform fault subset from
    [fault_pool] (default F1–F4) paired with a uniform mitigation subset
    from [mitigation_pool] (default M1–M3). Draws repeat — deliberately, to
    model mitigation-search/CEGAR workloads where identical what-ifs recur
    and exercise the solve cache. *)

(** {2 Water-tank temporal backend} *)

val water_tank_spec :
  ?horizon:int -> ?mode:Engine.Job.mode -> Engine.Delta.t list ->
  Engine.Job.spec
(** Jobs over {!Water_tank.asp_base} (built once), each delta compiled to
    its activation facts via {!Water_tank.asp_activation_facts}; [extra]
    delta statements are parsed and appended. *)

val verdicts : Engine.Job.result -> (string * bool) list
(** [(requirement id, violated?)] from a water-tank job's unique stable
    model; raises [Invalid_argument] if the model is not unique. *)

(** {2 Generic topology backend} *)

val topology_spec :
  Archimate.Model.t -> Engine.Delta.t list -> Engine.Job.spec
(** Static error propagation over any system model (§VI focus 1): the base
    is the model's ASP facts ({!Archimate.To_asp.facts}) plus propagation
    rules along [flow/2] edges; a delta's faults are {e component ids}
    whose elements are error sources ([injected/1] facts), its mitigations
    become [active_mitigation/1] facts that shield the named components.
    Each job has one stable model listing the [affected/1] components. *)

val model_element_deltas : Archimate.Model.t -> Engine.Delta.t list
(** One single-injection delta per element that carries a
    [component_type] or [fault_modes] property — the default what-if set
    for {!topology_spec}. *)

val affected : Engine.Job.result -> string list
(** Affected component ids from a topology job's model, sorted. *)
