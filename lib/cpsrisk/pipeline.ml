type mutation = {
  component : string;
  source : [ `Fault of string | `Technique of string ];
}

type ranked_hazard = {
  row : Epa.Analysis.row;
  risk : Qual.Level.t;
}

type artifacts = {
  validation : Lint.Diagnostic.t list;
  mutations : mutation list;
  scenario_count : int;
  candidate_hazards : string list;
  confirmed_hazards : ranked_hazard list;
  spurious_eliminated : string list;
  plan : Mitigation.Optimizer.solution;
  log : string list;
}

type config = {
  model : Archimate.Model.t;
  topology : Epa.Propagation.network;
  system : Epa.Analysis.system;
  actions : Mitigation.Action.t list;
  residual : active:string list -> int;
  budget : int option;
  semantic_lint : (string * Asp.Program.t) list;
}

let water_tank_config ?budget ?(semantic_lint = false) () =
  {
    model = Water_tank.refined_model;
    topology = Water_tank.topology;
    system = Water_tank.system;
    actions = Water_tank.mitigations;
    residual = Water_tank.residual_loss;
    budget;
    semantic_lint =
      (if semantic_lint then
         (* gate on the full-activation encoding: every fault on, no
            mitigation, so every rule family is live and any semantic
            finding is a real defect of the generator (a per-scenario
            encoding legitimately contains dead rules for the faults the
            scenario leaves deactivated) *)
         let scenario =
           Epa.Scenario.make
             (List.map (fun (f : Epa.Fault.t) -> f.Epa.Fault.id) Water_tank.faults)
         in
         [ ("water-tank/full-activation", Water_tank.asp_program ~scenario ()) ]
       else []);
  }

(* Step 6 ranking policy: loss magnitude VH when the physical requirement
   (first requirement) is violated, M when only monitoring degrades; loss
   event frequency decreases with the number of simultaneous root faults
   (single root causes are the likely ones). *)
let rank_risk (row : Epa.Analysis.row) =
  let violations = Epa.Analysis.violations row in
  let physical =
    match row.Epa.Analysis.verdicts with
    | (first, _) :: _ -> List.mem first violations
    | [] -> false
  in
  let lm = if physical then Qual.Level.Very_high else Qual.Level.Medium in
  let lef =
    match List.length row.Epa.Analysis.scenario.Epa.Scenario.faults with
    | 0 | 1 -> Qual.Level.Medium
    | 2 -> Qual.Level.Low
    | _ -> Qual.Level.Very_low
  in
  Risk.Ora.risk ~lm ~lef

let run config =
  let log = ref [] in
  let logf fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  (* 1. system model *)
  let validation = Lint.run_model config.model in
  if Lint.Diagnostic.has_errors validation then
    invalid_arg
      (Printf.sprintf "Pipeline.run: the system model has validation errors: %s"
         (String.concat "; "
            (List.map Lint.Diagnostic.to_string
               (List.filter
                  (fun (d : Lint.Diagnostic.t) ->
                    d.Lint.Diagnostic.severity = Lint.Diagnostic.Error)
                  validation))));
  logf "step 1 (system model): %d elements, %d relationships, %s"
    (Archimate.Model.element_count config.model)
    (Archimate.Model.relationship_count config.model)
    (Lint.Diagnostic.summary validation);
  (* opt-in semantic gate: the generated ASP encodings must carry no L2xx
     warning or error before any grounding/solving happens downstream *)
  List.iter
    (fun (name, prog) ->
      let diags = Analysis.Semlint.run prog in
      let blocking =
        List.filter
          (fun (d : Lint.Diagnostic.t) ->
            d.Lint.Diagnostic.severity <> Lint.Diagnostic.Info)
          diags
      in
      if blocking <> [] then
        invalid_arg
          (Printf.sprintf
             "Pipeline.run: semantic lint rejected encoding %s: %s" name
             (String.concat "; "
                (List.map Lint.Diagnostic.to_string blocking)));
      logf "step 1 (semantic lint): %s clean (%d findings, none blocking)"
        name (List.length diags))
    config.semantic_lint;
  (* 2. candidate system mutations *)
  let fault_mutations =
    List.map
      (fun (f : Epa.Fault.t) ->
        { component = f.Epa.Fault.component; source = `Fault f.Epa.Fault.id })
      config.system.Epa.Analysis.catalog
  in
  let technique_mutations =
    List.concat_map
      (fun (e : Archimate.Element.t) ->
        match Archimate.Element.property "component_type" e with
        | None -> []
        | Some ty ->
            List.map
              (fun (t : Threatdb.Db.threat) ->
                {
                  component = e.Archimate.Element.id;
                  source = `Technique t.Threatdb.Db.technique.Threatdb.Attck.id;
                })
              (Threatdb.Db.threats_for_type ty))
      (Archimate.Model.elements config.model)
  in
  let mutations = fault_mutations @ technique_mutations in
  logf "step 2 (candidate mutations): %d fault modes, %d applicable techniques"
    (List.length fault_mutations)
    (List.length technique_mutations);
  (* 3. reasoning: the joint scenario space *)
  let scenarios =
    Epa.Scenario.all_combinations config.system.Epa.Analysis.catalog
  in
  let scenario_count = List.length scenarios in
  logf "step 3 (reasoning): %d fault-combination scenarios" scenario_count;
  (* 4. hazard identification: exhaustive EPA *)
  let rows = Epa.Analysis.run config.system in
  let hazardous = Epa.Analysis.hazardous rows in
  logf "step 4 (hazard identification): %d/%d scenarios violate requirements"
    (List.length hazardous) scenario_count;
  (* 5. CEGAR refinement: topology-level candidates -> confirmed hazards *)
  let label (row : Epa.Analysis.row) = Epa.Scenario.label row.Epa.Analysis.scenario in
  let topological_candidate (row : Epa.Analysis.row) =
    (* abstract over-approximation: any scenario whose effective faults
       produce an error somewhere in the static topology is suspect *)
    let active =
      List.filter
        (fun (f : Epa.Fault.t) ->
          List.mem f.Epa.Fault.id row.Epa.Analysis.effective)
        config.system.Epa.Analysis.catalog
    in
    active <> []
    && Epa.Propagation.affected
         (Epa.Propagation.analyze config.topology ~active)
       <> []
  in
  let outcome =
    Cegar.Loop.run ~equal:(fun a b -> label a = label b)
      ~initial:(fun () -> List.filter topological_candidate rows)
      ~refine:(fun level candidates ->
        match level with
        | 0 ->
            Some
              (List.filter
                 (fun row -> Epa.Analysis.violations row <> [])
                 candidates)
        | _ -> None)
      ()
  in
  let candidate_hazards =
    match outcome.Cegar.Loop.rounds with
    | first :: _ -> List.map label first.Cegar.Loop.candidates
    | [] -> []
  in
  let spurious_eliminated =
    List.concat_map
      (fun r -> List.map label r.Cegar.Loop.eliminated)
      outcome.Cegar.Loop.rounds
  in
  logf
    "step 5 (refinement): %d topology-level candidates, %d spurious \
     eliminated, %d confirmed"
    (List.length candidate_hazards)
    (List.length spurious_eliminated)
    (List.length outcome.Cegar.Loop.confirmed);
  (* 6. quantitative (qualitative-scale) risk analysis *)
  let confirmed_hazards =
    Epa.Analysis.most_severe outcome.Cegar.Loop.confirmed
    |> List.map (fun row -> { row; risk = rank_risk row })
  in
  (match confirmed_hazards with
  | top :: _ ->
      logf "step 6 (risk analysis): top hazard %s at risk %s" (label top.row)
        (Qual.Level.to_string top.risk)
  | [] -> logf "step 6 (risk analysis): no hazards to rank");
  (* 7. mitigation strategy *)
  let problem =
    { Mitigation.Optimizer.actions = config.actions; residual = config.residual }
  in
  let plan = Mitigation.Optimizer.optimal ?budget:config.budget problem in
  logf "step 7 (mitigation): selected {%s} at cost %d, residual loss %d"
    (String.concat "," plan.Mitigation.Optimizer.selected)
    plan.Mitigation.Optimizer.cost plan.Mitigation.Optimizer.residual;
  {
    validation;
    mutations;
    scenario_count;
    candidate_hazards;
    confirmed_hazards;
    spurious_eliminated;
    plan;
    log = List.rev !log;
  }

let render_log artifacts = String.concat "\n" artifacts.log ^ "\n"

(* ------------------------------------------------------------------ *)
(* Engine-backed refinement (step 5 at scale)                          *)
(* ------------------------------------------------------------------ *)

let refine_hierarchy ?jobs ?levels ?entries ?mode ?share ?cache
    ?(scratch = false) () =
  let spec = Hierarchy.refine_spec ?levels ?entries ?mode () in
  if scratch then Cegar.Inc.run_scratch spec
  else Cegar.Inc.run ?jobs ?share ?cache spec

let render_refine ?(stats = false) (o : Cegar.Inc.outcome) =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (r : Cegar.Inc.round) ->
      p "round %d (%s): %d survive%s\n" r.Cegar.Inc.r_level
        r.Cegar.Inc.r_label
        (List.length r.Cegar.Inc.r_survivors)
        (match r.Cegar.Inc.r_eliminated with
        | [] -> ""
        | e ->
            Printf.sprintf ", eliminated %s"
              (String.concat "," (List.map Engine.Delta.label e))))
    o.Cegar.Inc.rounds;
  p "confirmed: %s\n"
    (match o.Cegar.Inc.confirmed with
    | [] -> "(none)"
    | c -> String.concat "," (List.map Engine.Delta.label c));
  if stats then begin
    let s = o.Cegar.Inc.stats in
    p
      "rounds %d  solves %d  hits %d  disk %d  fresh %d  carried %d  \
       published %d  flushes %d\n"
      s.Cegar.Inc.s_rounds s.Cegar.Inc.s_solves s.Cegar.Inc.s_hits
      s.Cegar.Inc.s_disk_hits s.Cegar.Inc.s_fresh s.Cegar.Inc.s_carried
      s.Cegar.Inc.s_published s.Cegar.Inc.s_flushes;
    p "ground: %s\n"
      (Asp.Grounder.Stats.to_string s.Cegar.Inc.s_ground);
    p "wall: %.3fs\n" s.Cegar.Inc.s_wall_s
  end;
  Buffer.contents buf

let refine_to_json (o : Cegar.Inc.outcome) =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let labels ds = List.map Engine.Delta.label ds in
  let str_list l =
    String.concat ", " (List.map (Printf.sprintf "%S") l)
  in
  p "{\n  \"rounds\": [\n";
  let n = List.length o.Cegar.Inc.rounds in
  List.iteri
    (fun i (r : Cegar.Inc.round) ->
      p
        "    {\"level\": %d, \"label\": %S, \"survivors\": [%s], \
         \"eliminated\": [%s]}%s\n"
        r.Cegar.Inc.r_level r.Cegar.Inc.r_label
        (str_list (labels r.Cegar.Inc.r_survivors))
        (str_list (labels r.Cegar.Inc.r_eliminated))
        (if i = n - 1 then "" else ","))
    o.Cegar.Inc.rounds;
  p "  ],\n";
  p "  \"confirmed\": [%s],\n" (str_list (labels o.Cegar.Inc.confirmed));
  let s = o.Cegar.Inc.stats in
  p
    "  \"stats\": {\"rounds\": %d, \"solves\": %d, \"hits\": %d, \
     \"disk_hits\": %d, \"fresh\": %d, \"carried\": %d, \"published\": %d, \
     \"flushes\": %d,\n"
    s.Cegar.Inc.s_rounds s.Cegar.Inc.s_solves s.Cegar.Inc.s_hits
    s.Cegar.Inc.s_disk_hits s.Cegar.Inc.s_fresh s.Cegar.Inc.s_carried
    s.Cegar.Inc.s_published s.Cegar.Inc.s_flushes;
  p
    "    \"ground\": {\"fresh_rules\": %d, \"reused_rules\": %d, \
     \"wall_s\": %.6f},\n"
    s.Cegar.Inc.s_ground.Asp.Grounder.Stats.fresh_rules
    s.Cegar.Inc.s_ground.Asp.Grounder.Stats.reused_rules
    s.Cegar.Inc.s_ground.Asp.Grounder.Stats.wall_s;
  p "    \"wall_s\": %.6f}\n}" s.Cegar.Inc.s_wall_s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Engine-backed mitigation frontier (step 7 at scale)                 *)
(* ------------------------------------------------------------------ *)

type frontier_request =
  | Frontier_optimal of int option
  | Frontier_pareto
  | Frontier_sweep of int list

type frontier_answer =
  | Frontier_solution of Mitigation.Optimizer.solution
  | Frontier_front of Mitigation.Optimizer.solution list
  | Frontier_curve of (int * Mitigation.Optimizer.solution) list

(* The water-tank catalog over the paper's attack scenario (F4, the
   workstation compromise inducing F1–F3): each action set is one warm
   delta; the residual weighs the violated requirements as
   {!Water_tank.residual_loss} does (R1 physical damage 3, R2 lost
   alerting 1). Monotone: mitigations only ever block activations. *)
let water_tank_measure = function
  | [ m ] ->
      List.fold_left
        (fun acc ((req : Epa.Requirement.t), weight) ->
          let atom =
            Asp.Atom.make "violated"
              [
                Asp.Term.const
                  (String.lowercase_ascii req.Epa.Requirement.id);
              ]
          in
          if Asp.Model.holds m atom then acc + weight else acc)
        0
        (List.map2
           (fun r w -> (r, w))
           Water_tank.requirements [ 3; 1 ])
  | models ->
      invalid_arg
        (Printf.sprintf
           "Pipeline.water_tank_measure: expected a unique stable model, \
            got %d"
           (List.length models))

let water_tank_frontier_of ?cache prepared =
  Mitigation.Frontier.make ?cache ~actions:Water_tank.mitigations
    ~delta:(fun ~active ->
      Engine.Delta.make ~mitigations:active [ "F4" ])
    ~measure:water_tank_measure prepared

let water_tank_frontier ?cache ?horizon () =
  water_tank_frontier_of ?cache
    (Engine.Job.prepare (Sweeps.water_tank_spec ?horizon []))

let mitigate_frontier ?jobs f = function
  | Frontier_optimal budget ->
      let s, report = Mitigation.Frontier.optimal ?budget f in
      (Frontier_solution s, report)
  | Frontier_pareto ->
      let front, report = Mitigation.Frontier.pareto ?jobs f in
      (Frontier_front front, report)
  | Frontier_sweep budgets ->
      let curve, report = Mitigation.Frontier.budget_sweep ?jobs f ~budgets in
      (Frontier_curve curve, report)

let render_solution (s : Mitigation.Optimizer.solution) =
  Format.asprintf "%a" Mitigation.Optimizer.pp_solution s

let render_frontier ?(stats = false) answer (report : Mitigation.Frontier.report)
    =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match answer with
  | Frontier_solution s -> p "optimal: %s\n" (render_solution s)
  | Frontier_front front ->
      p "pareto front (%d points):\n" (List.length front);
      List.iter (fun s -> p "  %s\n" (render_solution s)) front
  | Frontier_curve curve ->
      p "budget sweep:\n";
      List.iter
        (fun (b, s) -> p "  budget %3d -> %s\n" b (render_solution s))
        curve);
  if stats then
    p
      "evals %d  hits %d  disk %d  fresh %d  pruned %d  sum %.3fs  \
       critical %.3fs  wall %.3fs\n"
      report.Mitigation.Frontier.r_evals report.Mitigation.Frontier.r_hits
      report.Mitigation.Frontier.r_disk_hits
      report.Mitigation.Frontier.r_fresh report.Mitigation.Frontier.r_pruned
      report.Mitigation.Frontier.r_sum_s
      report.Mitigation.Frontier.r_critical_s
      report.Mitigation.Frontier.r_wall_s;
  Buffer.contents buf

let solution_json (s : Mitigation.Optimizer.solution) =
  Printf.sprintf "{\"selected\": [%s], \"cost\": %d, \"residual\": %d}"
    (String.concat ", "
       (List.map (Printf.sprintf "%S") s.Mitigation.Optimizer.selected))
    s.Mitigation.Optimizer.cost s.Mitigation.Optimizer.residual

let frontier_to_json answer (report : Mitigation.Frontier.report) =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  (match answer with
  | Frontier_solution s -> p "  \"optimal\": %s,\n" (solution_json s)
  | Frontier_front front ->
      p "  \"pareto\": [%s],\n"
        (String.concat ", " (List.map solution_json front))
  | Frontier_curve curve ->
      p "  \"sweep\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun (b, s) ->
                Printf.sprintf "{\"budget\": %d, \"solution\": %s}" b
                  (solution_json s))
              curve)));
  p
    "  \"report\": {\"evals\": %d, \"hits\": %d, \"disk_hits\": %d, \
     \"fresh\": %d, \"pruned\": %d, \"sum_s\": %.6f, \"critical_s\": %.6f, \
     \"wall_s\": %.6f}\n}"
    report.Mitigation.Frontier.r_evals report.Mitigation.Frontier.r_hits
    report.Mitigation.Frontier.r_disk_hits report.Mitigation.Frontier.r_fresh
    report.Mitigation.Frontier.r_pruned report.Mitigation.Frontier.r_sum_s
    report.Mitigation.Frontier.r_critical_s
    report.Mitigation.Frontier.r_wall_s;
  Buffer.contents buf

let topology_sweep ?jobs ?deltas config =
  let deltas =
    match deltas with
    | Some ds -> ds
    | None -> Sweeps.model_element_deltas config.model
  in
  let report = Engine.Sweep.run ?jobs (Sweeps.topology_spec config.model deltas) in
  let impacts =
    Array.to_list report.Engine.Sweep.results
    |> List.map (fun (r : Engine.Job.result) ->
           (Engine.Delta.label r.Engine.Job.delta, Sweeps.affected r))
  in
  (report, impacts)
