(** The seven-step experimental framework of Fig. 1, end to end:

    1. system model — merge + validate;
    2. candidate system mutations — faults from the catalog plus techniques
       from the threat databases per typed component;
    3. reasoning — build the joint scenario space;
    4. hazard identification — exhaustive EPA over every scenario;
    5. model refinement — CEGAR round from topology-level candidates to
       behaviour-confirmed hazards (spurious candidates eliminated);
    6. quantitative risk analysis — O-RA qualitative risk per hazard;
    7. mitigation strategy — budget-constrained cost-benefit optimization. *)

type mutation = {
  component : string;
  source : [ `Fault of string | `Technique of string ];
}

type ranked_hazard = {
  row : Epa.Analysis.row;
  risk : Qual.Level.t;
}

type artifacts = {
  validation : Lint.Diagnostic.t list;
  mutations : mutation list;
  scenario_count : int;
  candidate_hazards : string list;   (** scenario labels before refinement *)
  confirmed_hazards : ranked_hazard list;  (** after refinement, ranked *)
  spurious_eliminated : string list; (** labels removed by refinement *)
  plan : Mitigation.Optimizer.solution;
  log : string list;                 (** one narrative line per step *)
}

type config = {
  model : Archimate.Model.t;
  topology : Epa.Propagation.network;
  system : Epa.Analysis.system;
  actions : Mitigation.Action.t list;
  residual : active:string list -> int;
  budget : int option;
  semantic_lint : (string * Asp.Program.t) list;
      (** named ASP encodings to gate the run on: any non-[Info] L2xx
          semantic finding in one of them aborts the pipeline. Empty
          (the default) opts out. *)
}

val water_tank_config : ?budget:int -> ?semantic_lint:bool -> unit -> config
(** [semantic_lint:true] (default [false]) gates the run on the generated
    temporal ASP programs of every paper scenario. *)

val run : config -> artifacts
(** Fails fast — raises [Invalid_argument] listing the offending
    diagnostics — when the model fails structural validation, or when an
    encoding listed in [config.semantic_lint] carries a semantic lint
    warning or error. *)

val render_log : artifacts -> string

(** {2 Engine-backed refinement (step 5 at scale)}

    The hierarchical case study of {!Hierarchy} driven through the
    incremental CEGAR engine ({!Cegar.Inc}): one warm grounder chain
    across refinement levels, learned nogoods carried between candidate
    solves in Assume mode, results deduplicated through the engine
    cache. *)

val refine_hierarchy :
  ?jobs:int ->
  ?levels:int ->
  ?entries:int ->
  ?mode:[ `Assume | `Increment ] ->
  ?share:bool ->
  ?cache:Cegar.Inc.value Engine.Cache.t ->
  ?scratch:bool ->
  unit ->
  Cegar.Inc.outcome
(** [scratch:true] runs the retained cold-grounding oracle instead — the
    outcome is bit-for-bit identical, only the stats differ. *)

val render_refine : ?stats:bool -> Cegar.Inc.outcome -> string
val refine_to_json : Cegar.Inc.outcome -> string

(** {2 Engine-backed mitigation frontier (step 7 at scale)} *)

type frontier_request =
  | Frontier_optimal of int option  (** budget *)
  | Frontier_pareto
  | Frontier_sweep of int list  (** budgets *)

type frontier_answer =
  | Frontier_solution of Mitigation.Optimizer.solution
  | Frontier_front of Mitigation.Optimizer.solution list
  | Frontier_curve of (int * Mitigation.Optimizer.solution) list

val water_tank_frontier_of :
  ?cache:Mitigation.Frontier.value Engine.Cache.t ->
  Engine.Job.prepared ->
  Mitigation.Frontier.t
(** Over already-warm prepared state — a prepared
    {!Sweeps.water_tank_spec} — so the serve layer's loaded water-tank
    model answers frontier requests from its own base grounding and
    cache. *)

val water_tank_frontier :
  ?cache:Mitigation.Frontier.value Engine.Cache.t ->
  ?horizon:int ->
  unit ->
  Mitigation.Frontier.t
(** The water-tank mitigation catalog over the paper's §VII attack
    scenario (F4 — the infected engineering workstation inducing F1–F3):
    candidate action sets are warm deltas over the prepared temporal
    encoding, the residual weighs violated requirements as
    {!Water_tank.residual_loss} does (R1 at 3, R2 at 1). *)

val mitigate_frontier :
  ?jobs:int ->
  Mitigation.Frontier.t ->
  frontier_request ->
  frontier_answer * Mitigation.Frontier.report

val render_frontier :
  ?stats:bool -> frontier_answer -> Mitigation.Frontier.report -> string

val frontier_to_json :
  frontier_answer -> Mitigation.Frontier.report -> string

val topology_sweep :
  ?jobs:int ->
  ?deltas:Engine.Delta.t list ->
  config ->
  Engine.Sweep.report * (string * string list) list
(** Batch what-if analysis over the configured system model: every delta
    (default: one single-injection delta per component element, see
    {!Sweeps.model_element_deltas}) solved through the cache-reusing sweep
    engine. Returns the engine report plus, per delta in input order, the
    affected component ids from static error propagation. *)
