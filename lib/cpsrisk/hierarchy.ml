let default_levels = 6
let default_entries = 9

(* ------------------------------------------------------------------ *)
(* Refinement side: attacker routing through a layered zone chain      *)
(* ------------------------------------------------------------------ *)

let entry_fault i = Printf.sprintf "E%d" i
let entry_const i = Printf.sprintf "e%d" i

let spurious_entries ~levels = List.init levels (fun k -> entry_fault (k + 1))

(* Topology facts shared by both candidate encodings: per-entry gateways
   into the zone chain, dead-end decoys off every zone, and skip edges
   off the odd zones so surviving hypotheses admit several routes. *)
let refine_topology ~levels ~entries =
  let b = Buffer.create 1024 in
  let edge s t = Buffer.add_string b (Printf.sprintf "flow(%s, %s).\n" s t) in
  for i = 1 to entries do
    Buffer.add_string b (Printf.sprintf "entry_node(%s).\n" (entry_const i));
    edge (entry_const i) (Printf.sprintf "gw%d" i);
    edge (Printf.sprintf "gw%d" i) "z1"
  done;
  for k = 1 to levels - 1 do
    edge (Printf.sprintf "z%d" k) (Printf.sprintf "z%d" (k + 1))
  done;
  edge (Printf.sprintf "z%d" levels) "core";
  edge "core" "plant";
  for k = 1 to levels do
    edge (Printf.sprintf "z%d" k) (Printf.sprintf "d%d" k)
  done;
  let k = ref 1 in
  while !k + 2 <= levels do
    edge (Printf.sprintf "z%d" !k) (Printf.sprintf "z%d" (!k + 2));
    k := !k + 2
  done;
  Buffer.add_string b "critical(plant).\n";
  Buffer.contents b

let routing_rules =
  {|
reach(E) :- entry(E).
{ hop(S, T) : flow(S, T), not blocked(S, T) } 1 :- reach(S).
reach(T) :- hop(S, T).
hazard :- reach(N), critical(N).
:- not hazard.
|}

(* Level k reveals zone k's discovered structure: the firewall on
   gateway k (killing entry hypothesis k) and the closed decoy. *)
let level_structure k =
  Asp.Parser.parse_program
    (Printf.sprintf "blocked(gw%d, z1).\nblocked(z%d, d%d).\n" k k k)

let candidate_entry (d : Engine.Delta.t) =
  match d.Engine.Delta.faults with
  | [ f ] -> String.lowercase_ascii f
  | _ ->
      invalid_arg "Hierarchy.refine_spec: candidates carry one entry fault"

let refine_spec ?(levels = default_levels) ?(entries = default_entries)
    ?(mode = `Assume) () =
  if levels < 1 || levels >= entries then
    invalid_arg "Hierarchy.refine_spec: need 1 <= levels < entries";
  let topology = refine_topology ~levels ~entries in
  let base_src =
    match mode with
    | `Assume ->
        (* every hypothesis opened by choice, pinned per candidate by
           assumptions: all candidates share one ground program *)
        topology ^ "{ entry(E) : entry_node(E) }.\n" ^ routing_rules
    | `Increment -> topology ^ routing_rules
  in
  let entry_atom c =
    Asp.Atom.make "entry" [ Asp.Term.const (candidate_entry c) ]
  in
  let mode =
    match mode with
    | `Assume ->
        Cegar.Inc.Assume
          (fun c ->
            let mine = candidate_entry c in
            List.init entries (fun i ->
                let e = entry_const (i + 1) in
                (Asp.Atom.make "entry" [ Asp.Term.const e ], String.equal e mine)))
    | `Increment ->
        Cegar.Inc.Increment
          (fun c ->
            Asp.Parser.parse_program
              (Printf.sprintf "entry(%s)."
                 (Asp.Term.to_string
                    (List.hd (entry_atom c).Asp.Atom.args))))
  in
  {
    Cegar.Inc.base = Asp.Parser.parse_program base_src;
    levels =
      List.init levels (fun k ->
          {
            Cegar.Inc.l_label = Printf.sprintf "zone-%d" (k + 1);
            l_structure = level_structure (k + 1);
          });
    candidates =
      List.init entries (fun i ->
          Engine.Delta.make ~label:(entry_fault (i + 1))
            [ entry_fault (i + 1) ]);
    mode;
    keep = (fun models -> models <> []);
    (* survival is satisfiability — one route suffices as witness *)
    limit = Some 1;
    max_atoms = 16384;
  }

(* ------------------------------------------------------------------ *)
(* Frontier side: deterministic propagation through a layered plant    *)
(* ------------------------------------------------------------------ *)

let plant_layers = 4
let plant_width = 3

let node k j = Printf.sprintf "a%d_%d" k j
let sink j = Printf.sprintf "t%d" j
let action_id i = Printf.sprintf "MS%d" i
let action_const i = Printf.sprintf "ms%d" i

(* weight of each asset in the residual measure; inner nodes count 1,
   the sinks and the plant carry the severity mass *)
let weights =
  List.concat
    [
      List.concat
        (List.init plant_layers (fun k ->
             List.init plant_width (fun j -> (node (k + 1) (j + 1), 1))));
      [ (sink 1, 4); (sink 2, 3); (sink 3, 2); ("plant", 8) ];
    ]

let frontier_actions =
  List.init (plant_layers * plant_width) (fun idx ->
      let i = idx + 1 in
      let k = (idx / plant_width) + 1 and j = (idx mod plant_width) + 1 in
      let shields =
        if k = plant_layers then [ node k j; sink j ] else [ node k j ]
      in
      Mitigation.Action.make ~id:(action_id i)
        ~name:(Printf.sprintf "Shield %s" (String.concat "+" shields))
        ~cost:(2 + (i * 3 mod 5))
        ~blocks:shields)

let frontier_base =
  let b = Buffer.create 1024 in
  let edge s t = Buffer.add_string b (Printf.sprintf "flow(%s, %s).\n" s t) in
  for j = 1 to plant_width do
    Buffer.add_string b (Printf.sprintf "injected(s%d).\n" j);
    edge (Printf.sprintf "s%d" j) (node 1 j)
  done;
  edge "s1" (node 1 2);
  for k = 1 to plant_layers - 1 do
    for j = 1 to plant_width do
      edge (node k j) (node (k + 1) j);
      edge (node k j) (node (k + 1) ((j mod plant_width) + 1))
    done
  done;
  for j = 1 to plant_width do
    edge (node plant_layers j) (sink j);
    edge (sink j) "plant"
  done;
  List.iteri
    (fun idx (a : Mitigation.Action.t) ->
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf "protects(%s, %s).\n" (action_const (idx + 1)) c))
        a.Mitigation.Action.blocks)
    frontier_actions;
  Buffer.add_string b
    {|
shielded(C) :- active(M), protects(M, C).
error(C) :- injected(C), not shielded(C).
error(T) :- error(S), flow(S, T), not shielded(T).
|};
  Asp.Parser.parse_program (Buffer.contents b)

let frontier_compile (d : Engine.Delta.t) =
  let b = Buffer.create 64 in
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "active(%s).\n" (String.lowercase_ascii m)))
    d.Engine.Delta.mitigations;
  Asp.Parser.parse_program (Buffer.contents b)

let frontier_delta ~active = Engine.Delta.make ~mitigations:active []

let frontier_measure = function
  | [ m ] ->
      List.fold_left
        (fun acc (c, w) ->
          if Asp.Model.holds m (Asp.Atom.make "error" [ Asp.Term.const c ])
          then acc + w
          else acc)
        0 weights
  | models ->
      invalid_arg
        (Printf.sprintf
           "Hierarchy.frontier_measure: expected a unique stable model, got %d"
           (List.length models))

let frontier_spec () =
  Engine.Job.spec ~compile:frontier_compile ~deltas:[] frontier_base

let frontier_of ?cache prepared =
  Mitigation.Frontier.make ?cache ~actions:frontier_actions
    ~delta:frontier_delta ~measure:frontier_measure prepared

let frontier ?cache () = frontier_of ?cache (Engine.Job.prepare (frontier_spec ()))
