let scenario_delta ?label (s : Epa.Scenario.t) =
  Engine.Delta.make ?label ~mitigations:s.Epa.Scenario.mitigations
    s.Epa.Scenario.faults

let delta_scenario (d : Engine.Delta.t) =
  Epa.Scenario.make ~mitigations:d.Engine.Delta.mitigations
    d.Engine.Delta.faults

let all_fault_deltas ?(mitigations = []) catalog =
  List.map
    (fun s -> scenario_delta s)
    (Epa.Scenario.all_combinations ~mitigations catalog)

let random_subset rng pool =
  List.filter (fun _ -> Random.State.bool rng) pool

let random_deltas ?(fault_pool = [ "F1"; "F2"; "F3"; "F4" ])
    ?(mitigation_pool = [ "M1"; "M2"; "M3" ]) ~seed n =
  let rng = Random.State.make [| 0x53EE9; seed |] in
  List.init n (fun _ ->
      Engine.Delta.make
        ~mitigations:(random_subset rng mitigation_pool)
        (random_subset rng fault_pool))

(* ------------------------------------------------------------------ *)
(* Water-tank temporal backend                                         *)
(* ------------------------------------------------------------------ *)

let extra_program (d : Engine.Delta.t) =
  List.fold_left
    (fun acc src -> Asp.Program.append acc (Asp.Parser.parse_program src))
    Asp.Program.empty d.Engine.Delta.extra

let water_tank_compile d =
  Asp.Program.append
    (Water_tank.asp_activation_facts (delta_scenario d))
    (extra_program d)

let water_tank_spec ?horizon ?mode deltas =
  Engine.Job.spec ?mode ~compile:water_tank_compile ~deltas
    (Water_tank.asp_base ?horizon ())

let verdicts (r : Engine.Job.result) =
  match r.Engine.Job.models with
  | [ m ] ->
      List.map
        (fun (req : Epa.Requirement.t) ->
          let atom =
            Asp.Atom.make "violated"
              [ Asp.Term.const (String.lowercase_ascii req.Epa.Requirement.id) ]
          in
          (req.Epa.Requirement.id, Asp.Model.holds m atom))
        Water_tank.requirements
  | models ->
      invalid_arg
        (Printf.sprintf
           "Sweeps.verdicts: job %s expected a unique stable model, got %d"
           (Engine.Delta.label r.Engine.Job.delta)
           (List.length models))

(* ------------------------------------------------------------------ *)
(* Generic topology backend                                            *)
(* ------------------------------------------------------------------ *)

(* Static error propagation (§VI focus 1) over the model's ASP facts:
   injected components err unless shielded; errors follow flow edges;
   mitigation elements shield the components they are associated with. *)
let topology_rules =
  {|
shields(M, C) :- property(M, mitigation, V), rel(association, M, C).
shielded(C) :- active_mitigation(M), shields(M, C).
error(C) :- injected(C), not shielded(C).
error(T) :- error(S), flow(S, T), not shielded(T).
affected(C) :- error(C).
|}

let topology_compile (d : Engine.Delta.t) =
  let buf = Buffer.create 128 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "injected(%s).\n" (Archimate.To_asp.sanitize c)))
    d.Engine.Delta.faults;
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "active_mitigation(%s).\n" (Archimate.To_asp.sanitize m)))
    d.Engine.Delta.mitigations;
  Asp.Program.append
    (Asp.Parser.parse_program (Buffer.contents buf))
    (extra_program d)

let topology_spec model deltas =
  Engine.Job.spec ~compile:topology_compile ~deltas
    (Asp.Program.append
       (Archimate.To_asp.facts model)
       (Asp.Parser.parse_program topology_rules))

let model_element_deltas model =
  List.filter_map
    (fun (e : Archimate.Element.t) ->
      if
        Archimate.Element.property "component_type" e <> None
        || Archimate.Element.property "fault_modes" e <> None
      then
        Some
          (Engine.Delta.make ~label:e.Archimate.Element.id
             [ e.Archimate.Element.id ])
      else None)
    (Archimate.Model.elements model)

let affected (r : Engine.Job.result) =
  match r.Engine.Job.models with
  | [ m ] ->
      Asp.Model.by_predicate m "affected"
      |> List.filter_map (fun (a : Asp.Atom.t) ->
             match a.Asp.Atom.args with
             | [ { Asp.Term.node = Asp.Term.Const c; _ } ] -> Some c
             | _ -> None)
      |> List.sort_uniq String.compare
  | models ->
      invalid_arg
        (Printf.sprintf
           "Sweeps.affected: job %s expected a unique stable model, got %d"
           (Engine.Delta.label r.Engine.Job.delta)
           (List.length models))
