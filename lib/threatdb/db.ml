type threat = {
  technique : Attck.technique;
  cves : Cve.t list;
  severity : Qual.Level.t;
}

let cves_for_technique_and_type tech ty =
  List.filter
    (fun (c : Cve.t) ->
      List.mem tech.Attck.id c.Cve.techniques
      && List.mem ty c.Cve.applicable_types)
    Cve.all

let capec_for_technique (tech : Attck.technique) =
  List.filter_map Capec.find tech.Attck.capec

let threat_severity tech cves =
  match cves with
  | _ :: _ ->
      List.fold_left
        (fun acc c -> Qual.Level.max acc (Cve.severity_level c))
        Qual.Level.Very_low cves
  | [] -> (
      match capec_for_technique tech with
      | [] -> Qual.Level.Medium
      | patterns ->
          List.fold_left
            (fun acc (p : Capec.t) -> Qual.Level.max acc p.Capec.severity)
            Qual.Level.Very_low patterns)

let technique_severity tech =
  let cves =
    List.filter
      (fun (c : Cve.t) -> List.mem tech.Attck.id c.Cve.techniques)
      Cve.all
  in
  threat_severity tech cves

let threats_for_type ty =
  List.map
    (fun tech ->
      let cves = cves_for_technique_and_type tech ty in
      { technique = tech; cves; severity = threat_severity tech cves })
    (Attck.techniques_for_type ty)

let cwes_for_cve (c : Cve.t) = List.filter_map Cwe.find c.Cve.cwes

let referential_integrity () =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (t : Attck.technique) ->
      List.iter
        (fun mid ->
          if Attck.find_mitigation mid = None then
            bad "technique %s references unknown mitigation %s" t.Attck.id mid)
        t.Attck.mitigations;
      List.iter
        (fun cid ->
          if Capec.find cid = None then
            bad "technique %s references unknown CAPEC-%d" t.Attck.id cid)
        t.Attck.capec)
    Attck.techniques;
  List.iter
    (fun (c : Cve.t) ->
      List.iter
        (fun w ->
          if Cwe.find w = None then
            bad "%s references unknown CWE-%d" c.Cve.id w)
        c.Cve.cwes;
      List.iter
        (fun tid ->
          if Attck.find_technique tid = None then
            bad "%s references unknown technique %s" c.Cve.id tid)
        c.Cve.techniques)
    Cve.all;
  List.iter
    (fun (p : Capec.t) ->
      List.iter
        (fun w ->
          if Cwe.find w = None then
            bad "%s references unknown CWE-%d" (Capec.key p) w)
        p.Capec.related_cwes)
    Capec.all;
  List.iter
    (fun (w : Cwe.t) ->
      match w.Cwe.parent with
      | Some p when Cwe.find p = None ->
          bad "%s references unknown parent CWE-%d" (Cwe.key w) p
      | Some _ | None -> ())
    Cwe.all;
  List.rev !problems

let sanitize s =
  let s = String.lowercase_ascii s in
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' then c
      else '_')
    s

let const s = Asp.Term.const (sanitize s)
let fact pred args = Asp.Rule.fact (Asp.Atom.make pred args)
let level_int l = Qual.Level.to_index l + 1

let asp_facts ~components =
  let technique_facts (t : Attck.technique) =
    fact "technique" [ const t.Attck.id ]
    :: List.map
         (fun tac ->
           fact "tactic" [ const t.Attck.id; const (Attck.tactic_to_string tac) ])
         t.Attck.tactics
  in
  let mitigation_facts (m : Attck.mitigation) =
    [
      fact "mitigation" [ const m.Attck.mid ];
      fact "mitigation_cost"
        [ const m.Attck.mid; Asp.Term.int (level_int m.Attck.cost_hint) ];
    ]
  in
  let mitigates_facts (t : Attck.technique) =
    List.map
      (fun mid -> fact "mitigates" [ const mid; const t.Attck.id ])
      t.Attck.mitigations
  in
  let component_facts (cid, ty) =
    List.concat_map
      (fun threat ->
        [
          fact "vulnerable" [ const cid; const threat.technique.Attck.id ];
          fact "vuln_severity"
            [
              const cid;
              const threat.technique.Attck.id;
              Asp.Term.int (level_int threat.severity);
            ];
        ])
      (threats_for_type ty)
  in
  Asp.Program.of_rules
    (List.concat_map technique_facts Attck.techniques
    @ List.concat_map mitigation_facts Attck.mitigations
    @ List.concat_map mitigates_facts Attck.techniques
    @ List.concat_map component_facts components)
