(** Semi-naive, index-driven, incrementally extensible grounder.

    Instantiation proceeds in two phases. Phase 1 closes the atom universe
    over the positive projection of the program with a {e semi-naive}
    fixpoint run in snapshot (BFS) rounds: atoms are stamped with the round
    that derived them, rules are indexed by body-predicate signature, and a
    round re-fires only the (rule, body-position) pairs whose signature
    gained an atom in the previous round — the delta literal is enumerated
    first (its one-generation window is the most selective) and each join
    result is derived exactly once. Because the store is frozen while a
    round's work items fire (derivations are buffered and committed in
    deterministic order between rounds), the items can be fanned out
    across domains ({!par}) with bit-for-bit identical results. Phase 2
    instantiates every rule against that universe through per-signature
    candidate tables discriminated per argument position (smallest-bucket
    selection over every ground argument, lazily materialized composite
    multi-argument group tables, and pending-builtin range narrowing for
    integer-keyed positions), in canonical ascending {!Atom.compare}
    order. Built-in comparisons are evaluated during instantiation (an
    [X = expr] equality with a ground right-hand side acts as an
    assignment, as in clingo).

    The pre-rewrite naive grounder survives as {!Naive_ground}, the
    differential oracle: on any accepted program both produce structurally
    equal [Ground.t] values ([test/test_grounder_diff.ml]).

    Safety: every variable of a rule must be bound by a positive body
    literal, an assignment, or — for choice elements — the element's own
    condition. *)

exception Unsafe of string
(** A rule violates the safety condition. *)

exception Overflow of string
(** The universe exceeded [max_atoms] (non-terminating arithmetic recursion
    such as [p(X+1) :- p(X)] without a bound). *)

(** Grounding effort counters, in the mould of {!Solver.Stats}: shared by
    {!ground}, {!prepare} and {!extend}, surfaced by [cpsrisk solve/sweep
    --stats] and the benches. *)
module Stats : sig
  type t = {
    mutable passes : int;  (** semi-naive fixpoint rounds *)
    mutable firings : int;  (** successful phase-1 rule firings *)
    mutable probes : int;  (** candidate-index lookups, both phases *)
    mutable fresh_rules : int;  (** ground rules instantiated anew *)
    mutable reused_rules : int;
        (** base instances shared by {!extend} without re-derivation *)
    mutable wall_s : float;
  }

  val create : unit -> t

  val add : into:t -> t -> unit
  (** Accumulate [s] into [into] (benches aggregate per-run counters). *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type par = { pmap : 'a. (int -> 'a) -> int -> 'a array; min_items : int }
(** Parallel-map hook for phase-1 fixpoint rounds. [pmap f n] must return
    [[| f 0; …; f (n-1) |]]; slots may run on any domain ([Engine.Pool.map]
    is the production implementation — [lib/asp] cannot depend on
    [lib/engine], hence the injection). Rounds with fewer than [min_items]
    work items run inline: domain spawn latency dwarfs small joins. The
    result is bit-for-bit identical to the sequential path — work items
    only read the round's frozen store, and their derivations are
    committed sequentially in item order either way. *)

val ground :
  ?max_atoms:int ->
  ?order:(Rule.t -> int array option) ->
  ?par:par ->
  ?stats:Stats.t ->
  Program.t ->
  Ground.t
(** One-shot grounding. [max_atoms] defaults to 200_000; effort is added to
    [stats] when given. Bit-for-bit equal to {!Naive_ground.ground} on any
    program both accept.

    [order], when given, may return for a rule a permutation of its
    positive body literals (enumeration position -> original index) and the
    phase-2 join for that rule is enumerated in that order — the hook
    through which [Analysis.Infer.join_order] plugs selectivity-ascending
    orderings. Output is unaffected: each rule's matches are replayed in
    canonical (original-order nested-loop) order before emission, so the
    result stays bit-for-bit equal to the unordered and naive groundings.
    The ordering function must be exception-safe for the program (see
    [Analysis.Infer.join_order], which proves this before reordering). *)

type prepared
(** Reusable grounding state for a base program: its closed universe with
    candidate indexes, head-derivation templates, and per-rule ground
    instances with the signature metadata {!extend} classifies against.
    Read-only after {!prepare} — one [prepared] may be extended from many
    domains concurrently. *)

val prepare :
  ?max_atoms:int ->
  ?order:(Rule.t -> int array option) ->
  ?par:par ->
  ?stats:Stats.t ->
  Program.t ->
  prepared
(** Ground the base once, keeping the state an increment can extend.
    [order] is as in {!ground} and is retained: {!extend} re-applies it to
    base rules it re-instantiates and to delta rules. Raises like {!ground}
    if the base itself is unsafe or overflows. *)

val base : prepared -> Ground.t
(** The base program's own grounding (what [ground base] returns). *)

val base_universe : prepared -> Model.AtomSet.t

val extend : ?par:par -> ?stats:Stats.t -> prepared -> Program.t -> Ground.t
(** [extend state delta] grounds base + delta doing work proportional to
    what the delta adds. The universe fixpoint restarts from the delta's
    rules only (the base is already closed); base rules are then classified
    by the signatures that gained atoms — untouched rules share their base
    instances wholesale, rules whose positive body joins are touched share
    the old instances and enumerate only joins involving a new atom, and
    rules whose negated-atom / aggregate / choice-condition signatures are
    touched are recomputed so negative-literal simplification and element
    sets stay exact against the full universe.

    Equivalent to [ground (Program.append base delta)] up to duplicate
    ground rules across source rules (each source rule's instances are
    exact; the global cross-rule dedup of {!ground} is not re-applied to
    shared instances): same universe, same stable models, same costs.
    Raises like {!ground} if the delta is unsafe or the combined universe
    overflows [prepare]'s [max_atoms]. *)

val extend_prepare :
  ?par:par -> ?stats:Stats.t -> prepared -> Program.t -> prepared
(** [extend_prepare state delta] is to {!prepare} what {!extend} is to
    {!ground}: it absorbs [delta] as a permanent structural increment and
    returns warm state for [base + delta], doing instance work
    proportional to what the delta touches (the same share / delta-join /
    recompute classification as {!extend}). Chains: a refinement sequence
    pays one [extend_prepare] per level instead of a scratch re-ground,
    and the result can itself be {!extend}ed per what-if delta.

    The returned state's {!base} is equivalent to
    [ground (Program.append base delta)] in the sense documented for
    {!extend} — same universe, same stable models, same costs; rule
    emission order may differ from a scratch {!prepare}. The input
    [state] is not mutated and stays usable. Raises like {!extend}. *)
