(** Safe bottom-up grounder.

    Instantiation proceeds in two phases: a fixpoint over the positive
    projection of the program builds an over-approximating atom universe,
    then every rule is instantiated against that universe. Built-in
    comparisons are evaluated during instantiation (an [X = expr] equality
    with a ground right-hand side acts as an assignment, as in clingo).

    Safety: every variable of a rule must be bound by a positive body
    literal, an assignment, or — for choice elements — the element's own
    condition. *)

exception Unsafe of string
(** A rule violates the safety condition. *)

exception Overflow of string
(** The universe exceeded [max_atoms] (non-terminating arithmetic recursion
    such as [p(X+1) :- p(X)] without a bound). *)

val ground : ?max_atoms:int -> ?universe_seed:Model.AtomSet.t -> Program.t -> Ground.t
(** [max_atoms] defaults to 200_000.

    [universe_seed] seeds the phase-1 atom-universe fixpoint, the reuse hook
    for batch workloads ({!Engine.Sweep}): when many programs share a large
    base (model facts, dynamics, compiled requirements) and differ only in a
    small increment, ground the base once and pass its [Ground.t.universe]
    here — the fixpoint then converges in one or two passes instead of
    re-deriving the whole universe per program. Sound because the universe
    is an over-approximation of the derivable atoms and the fixpoint is
    monotone: seed atoms that the current program cannot derive only leave
    behind ground-rule instances whose bodies can never fire (and negative
    body literals that stay recorded instead of being simplified away),
    neither of which changes the stable models. *)
