type t = { pred : string; args : Term.t list }

let make pred args = { pred = Term.intern_string pred; args }
let prop pred = { pred = Term.intern_string pred; args = [] }
let arity a = List.length a.args
let signature a = (a.pred, arity a)

let equal a b =
  a == b
  || String.equal a.pred b.pred
     && List.length a.args = List.length b.args
     && List.for_all2 Term.equal a.args b.args

let compare a b =
  if a == b then 0
  else
    let c = String.compare a.pred b.pred in
    if c <> 0 then c else List.compare Term.compare a.args b.args

(* folds the terms' precomputed hkeys: O(arity), deterministic *)
let hash a =
  List.fold_left
    (fun h t -> (h * 0x100000001b3) lxor Term.hash t)
    (Hashtbl.hash a.pred) a.args

let is_ground a = List.for_all Term.is_ground a.args

let vars a =
  let add acc v = if List.mem v acc then acc else v :: acc in
  List.rev
    (List.fold_left (fun acc t -> List.fold_left add acc (Term.vars t)) [] a.args)

let substitute s a =
  match a.args with
  | [] -> a
  | args -> { a with args = List.map (Term.substitute s) args }

let eval a =
  match a.args with
  | [] -> a
  | args -> { a with args = List.map Term.eval args }

let rehydrate a =
  { pred = Term.intern_string a.pred; args = List.map Term.rehydrate a.args }

let to_string a =
  match a.args with
  | [] -> a.pred
  | args ->
      Printf.sprintf "%s(%s)" a.pred
        (String.concat "," (List.map Term.to_string args))

let pp ppf a = Format.pp_print_string ppf (to_string a)
