(** Clark-completion compilation of an interned ground program into
    clauses over an extended variable space — the input of the CDNL solver
    ({!Solver}).

    Variables are laid out as atom ids [[0, n_atoms)], then one aggregate
    variable per entry of the shared count table, then one body variable
    per rule body / choice-element instance. A literal is an [int]: [2v]
    asserts variable [v] true, [2v+1] asserts it false. A clause is an
    array of literals of which at least one must hold.

    Aggregate variables, choice bounds and weak constraints carry no
    clauses; the solver evaluates them lazily once their atom scope is
    fully assigned, matching the reference semantics ({!Naive}) where
    aggregates are tested against the total candidate and contribute no
    foundedness. For non-tight programs the module precomputes the
    non-trivial SCCs of the positive atom dependency graph and per-atom
    support bodies, the inputs of the solver's unfounded-set check. *)

type body = {
  bvar : int;  (** variable id of this body *)
  bhead : int;  (** head atom id, [-1] for none *)
  bchoice : bool;  (** choice-element body: licenses but does not force *)
  bpos : int array;  (** atom ids required true *)
  bneg : int array;  (** atom ids required false *)
  bcounts : int array;  (** count indices required to hold *)
}

type t = {
  p : Interned.t;
  n_atoms : int;
  n_counts : int;
  n_vars : int;
  bodies : body array;
  clauses : int array list;  (** completion clauses, in emission order *)
  agg_scope : int array array;  (** count idx -> atom ids mentioned *)
  bound_scope : (int * int array) array;
      (** (choice idx, atom scope) for every bounded choice *)
  weak_scope : int array array;  (** weak idx -> atom ids mentioned *)
  sccs : int array array;  (** non-trivial positive SCCs, sorted atom ids *)
  scc_of : int array;  (** atom -> SCC index, [-1] outside loops *)
  supports : (int * int array) list array;
      (** atom -> [(body idx, same-SCC positive atoms)] for loop atoms *)
  is_fact : Bitset.t;
  tight : bool;  (** no positive recursion: unfounded checks unnecessary *)
  unsat : bool;  (** an empty constraint body: no model at all *)
}

val lit_true : int -> int
val lit_false : int -> int
val var_of_lit : int -> int

val lit_neg : int -> bool
(** True when the literal asserts its variable false. *)

val agg_var : t -> int -> int
(** Variable id of the aggregate at the given count-table index. *)

val compile : Interned.t -> t
