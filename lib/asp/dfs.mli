(** The retained pruned-DFS solving path (pre-CDNL), kept verbatim as a
    second oracle next to {!Naive}.

    The ground program is compiled once into a dense interned form
    ({!Interned}): atoms become contiguous int ids, assignments become
    bitsets. Enumeration is a pruned depth-first search over the choice
    space, stratum by stratum:

    - {b Semi-naive propagation}: a watch index maps each atom to the rules
      and choice elements whose bodies mention it positively within the same
      stratum, so deterministic consequences fire incrementally instead of
      rescanning every rule to fixpoint.
    - {b Branching on fired elements only}: a choice element becomes a
      decision point only once its body and condition hold, which collapses
      guess classes that the exhaustive enumerator ({!Naive}) distinguishes.
    - {b Pruning}: a subtree is abandoned as soon as an integrity constraint
      or a choice upper bound is violated on atoms whose values are already
      final; remaining constraint/bound checks run at the stratum boundary
      where all their atoms are final.
    - {b Branch-and-bound} ({!solve_optimal}): once an incumbent model
      exists, a stratum boundary whose partial weak-constraint cost already
      exceeds the incumbent is pruned — only when all weights are
      non-negative, otherwise the partial cost is not a lower bound.

    Programs that are not stratified modulo choices fall back to exhaustive
    guessing over choice and negated atoms with a per-leaf reduct check,
    interned but still [2^n] and capped at {!default_max_guess} atoms —
    the limitation that motivated the CDNL rewrite ({!Solver}). Results
    are bit-for-bit identical to {!Naive} on any program both accept. *)

exception Unsupported of string
(** The guess space is too large ([> max_guess] atoms), or a non-stratified
    program uses aggregates. *)

val default_max_guess : int
(** 64. The pruned search tolerates far larger choice spaces than the
    exhaustive enumerator's historical cap of 24, but the dimension check
    stays as a guard against accidentally huge groundings. *)

module Stats = Solver_stats

val solve : ?limit:int -> ?max_guess:int -> Ground.t -> Model.t list
(** All stable models (up to [limit], default unlimited), deduplicated,
    sorted by atom set; [#show] projections are {e not} applied — use
    {!Model.project} with [Ground.shows]. [max_guess] defaults to
    {!default_max_guess}. *)

val solve_with_stats :
  ?limit:int -> ?max_guess:int -> Ground.t -> Model.t list * Stats.t
(** Same as {!solve}, also returning search statistics. The stats record
    is fresh per call. *)

val solve_optimal : ?max_guess:int -> Ground.t -> Model.t list
(** Models with the minimal weak-constraint cost (all optima). *)

val solve_optimal_with_stats :
  ?max_guess:int -> Ground.t -> Model.t list * Stats.t

val satisfiable : ?max_guess:int -> Ground.t -> bool

val is_stable_model : Ground.t -> Model.AtomSet.t -> bool
(** Independent Gelfond–Lifschitz verification, delegated to the retained
    {!Naive} reference so the oracle shares no code with the fast path. *)
