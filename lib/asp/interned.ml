type count_elem = { etuple : Term.t list; epos : int array; eneg : int array }

type count = {
  ckind : Lit.agg_kind;
  celems : count_elem array;
  cop : Lit.cmp;
  cbound : int;
}

type rule = { head : int; pos : int array; neg : int array; counts : int array }
type elem = { eatom : int; egpos : int array; egneg : int array }

type choice = {
  lower : int option;
  upper : int option;
  elems : elem array;
  cpos : int array;
  cneg : int array;
  ccounts : int array;
}

type constr = { kpos : int array; kneg : int array; kcounts : int array }

type weak = {
  wpos : int array;
  wneg : int array;
  wcounts : int array;
  weight : int;
  priority : int;
  terms : Term.t list;
}

type t = {
  atoms : Atom.t array;
  index : (Atom.t, int) Hashtbl.t;
  n_atoms : int;
  facts : int array;
  rules : rule array;
  choices : choice array;
  constraints : constr array;
  weaks : weak array;
  counts : count array;
  choice_atoms : Bitset.t;
  derived_head : Bitset.t;
  has_counts : bool;
  has_negative_weight : bool;
}

(* table : Atom.t -> id, shared during compilation only *)
let intern table atoms_rev next a =
  match Hashtbl.find_opt table a with
  | Some i -> i
  | None ->
      let i = !next in
      Hashtbl.replace table a i;
      atoms_rev := a :: !atoms_rev;
      incr next;
      i

let compile (g : Ground.t) =
  let table = Hashtbl.create 1024 in
  let atoms_rev = ref [] in
  let next = ref 0 in
  let id a = intern table atoms_rev next a in
  (* seed from the grounder's universe index: ids ascend in Atom.compare
     order, so iterating set bits yields atoms already sorted *)
  Model.AtomSet.iter (fun a -> ignore (id a)) g.Ground.universe;
  let ids l = Array.of_list (List.map id l) in
  let counts_rev = ref [] in
  let n_counts = ref 0 in
  let compile_counts cs =
    Array.of_list
      (List.map
         (fun (c : Ground.gcount) ->
           let celems =
             Array.of_list
               (List.map
                  (fun (e : Ground.gcount_elem) ->
                    {
                      etuple = e.Ground.etuple;
                      epos = ids e.Ground.epos;
                      eneg = ids e.Ground.eneg;
                    })
                  c.Ground.celems)
           in
           let idx = !n_counts in
           incr n_counts;
           counts_rev :=
             {
               ckind = c.Ground.ckind;
               celems;
               cop = c.Ground.cop;
               cbound = c.Ground.cbound;
             }
             :: !counts_rev;
           idx)
         cs)
  in
  let facts = ref []
  and rules = ref []
  and choices = ref []
  and constraints = ref []
  and weaks = ref [] in
  List.iter
    (fun r ->
      match r with
      | Ground.Gfact a -> facts := id a :: !facts
      | Ground.Grule { head; pos; neg; counts } ->
          rules :=
            { head = id head; pos = ids pos; neg = ids neg;
              counts = compile_counts counts }
            :: !rules
      | Ground.Gchoice { lower; upper; elems; pos; neg; counts } ->
          choices :=
            {
              lower;
              upper;
              elems =
                Array.of_list
                  (List.map
                     (fun (e : Ground.gelem) ->
                       {
                         eatom = id e.Ground.gatom;
                         egpos = ids e.Ground.gpos;
                         egneg = ids e.Ground.gneg;
                       })
                     elems);
              cpos = ids pos;
              cneg = ids neg;
              ccounts = compile_counts counts;
            }
            :: !choices
      | Ground.Gconstraint { pos; neg; counts } ->
          constraints :=
            { kpos = ids pos; kneg = ids neg; kcounts = compile_counts counts }
            :: !constraints
      | Ground.Gweak { pos; neg; counts; weight; priority; terms } ->
          weaks :=
            {
              wpos = ids pos;
              wneg = ids neg;
              wcounts = compile_counts counts;
              weight;
              priority;
              terms;
            }
            :: !weaks)
    g.Ground.rules;
  let atoms = Array.of_list (List.rev !atoms_rev) in
  let n_atoms = Array.length atoms in
  let facts = Array.of_list (List.rev !facts) in
  let rules = Array.of_list (List.rev !rules) in
  let choices = Array.of_list (List.rev !choices) in
  let constraints = Array.of_list (List.rev !constraints) in
  let weaks = Array.of_list (List.rev !weaks) in
  let counts = Array.of_list (List.rev !counts_rev) in
  let choice_atoms = Bitset.create n_atoms in
  Array.iter
    (fun c -> Array.iter (fun e -> Bitset.set choice_atoms e.eatom) c.elems)
    choices;
  let derived_head = Bitset.create n_atoms in
  Array.iter (fun a -> Bitset.set derived_head a) facts;
  Array.iter (fun r -> Bitset.set derived_head r.head) rules;
  {
    atoms;
    index = table;
    n_atoms;
    facts;
    rules;
    choices;
    constraints;
    weaks;
    counts;
    choice_atoms;
    derived_head;
    has_counts = counts <> [||];
    has_negative_weight = Array.exists (fun w -> w.weight < 0) weaks;
  }

let id p a = Hashtbl.find p.index a

let atoms_of_bitset p bits =
  let acc = ref Model.AtomSet.empty in
  Bitset.iter_true (fun i -> acc := Model.AtomSet.add p.atoms.(i) !acc) bits;
  !acc

let all_true m ids = Array.for_all (fun i -> Bitset.get m i) ids
let none_true m ids = not (Array.exists (fun i -> Bitset.get m i) ids)

let eval_count _p m (c : count) =
  let tuples =
    Array.to_list c.celems
    |> List.filter_map (fun e ->
           if all_true m e.epos && none_true m e.eneg then Some e.etuple
           else None)
    |> List.sort_uniq (List.compare Term.compare)
  in
  let n =
    match c.ckind with
    | Lit.Cardinality -> List.length tuples
    | Lit.Summation ->
        List.fold_left
          (fun acc tuple ->
            match tuple with
            | { Term.node = Term.Int w; _ } :: _ -> acc + w
            | _ -> acc (* non-integer weights contribute 0, as in clingo *))
          0 tuples
  in
  match c.cop with
  | Lit.Eq -> n = c.cbound
  | Lit.Ne -> n <> c.cbound
  | Lit.Lt -> n < c.cbound
  | Lit.Le -> n <= c.cbound
  | Lit.Gt -> n > c.cbound
  | Lit.Ge -> n >= c.cbound

let counts_sat p m idxs =
  Array.for_all (fun i -> eval_count p m p.counts.(i)) idxs

let cost_of p m =
  let tuples = Hashtbl.create 16 in
  Array.iter
    (fun w ->
      if all_true m w.wpos && none_true m w.wneg && counts_sat p m w.wcounts
      then Hashtbl.replace tuples (w.priority, w.weight, w.terms) ())
    p.weaks;
  let per_level = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (priority, weight, _) () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt per_level priority) in
      Hashtbl.replace per_level priority (cur + weight))
    tuples;
  Hashtbl.fold (fun pr w acc -> (pr, w) :: acc) per_level []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)
