(** Conflict-driven clause store and propagator: the CDCL kernel under
    the CDNL solver ({!Solver}).

    Keeps the assignment trail with decision levels, two-watched-literal
    unit propagation, 1-UIP conflict analysis with activity bumping
    (VSIDS), non-chronological backjumping, and activity-based deletion
    of learned clauses. Literals use the {!Completion} encoding ([2v]
    true / [2v+1] false); the kernel is agnostic to what the variables
    mean. Fully deterministic: ties in branching and deletion break on
    ids, no randomization. *)

type clause

type t

val create : ?branchable:int -> nvars:int -> stats:Solver_stats.t -> unit -> t
(** [branchable] (default [nvars]) bounds the variables kept in the
    decision heap: {!pick_branch} only ever returns vars below it (the
    solver passes the atom count — bodies and aggregates follow by
    propagation or are decided at the fringe). *)

val set_undo_hook : t -> (int -> unit) -> unit
(** Called once per literal popped off the trail by {!cancel_until}, most
    recent first; the solver uses it to roll back its lazy-propagator
    state (atom bitset, scope counters). *)

val unsat : t -> bool
(** A conflict surfaced at level 0: the clause set has no model. *)

val level : t -> int
val trail_size : t -> int

val trail_get : t -> int -> int
(** Trail literal by position; the solver scans newly assigned suffixes
    between propagation fixpoints. *)

val value_var : t -> int -> int
(** [1] true, [-1] false, [0] unassigned. *)

val value_lit : t -> int -> int
val var_level : t -> int -> int
val n_learnts : t -> int

val decision_lit : t -> int -> int
(** The decision literal that opened the given level (1-based). *)

val add_initial : t -> int array -> unit
(** Level-0 clause, simplified against the current top-level assignment;
    may set {!unsat}. Must only be called before the first decision. *)

val add_clean : t -> int array -> unit
(** Level-0 clause already simplified by {!Preprocess} (at least two
    literals, no duplicates, nothing assigned): attached without the
    per-clause re-checking of {!add_initial}. *)

val decide : t -> int -> unit
(** Open a new decision level and assert the literal (also used for
    guiding-path assumptions). *)

val propagate : t -> clause option
(** Unit propagation to fixpoint; [Some c] is a conflicting clause. *)

val analyze : t -> clause -> int array
(** 1-UIP conflict analysis; the asserting literal comes first. Only
    valid when the conflict involves the current decision level. *)

val analyzed_local : t -> bool
(** Whether the last {!analyze} resolved over a path-local clause
    (blocking nogood, bound prune, or a learnt descendant of one). Such
    resolvents depend on this path's assumptions or incumbent and must
    not be published to the {!Exchange}. *)

val learn : t -> root:int -> int array -> unit
(** Backjump as far as the learnt clause allows (never above [root]),
    attach it, assert its first literal, and decay activities. *)

type dyn_result = Sat | Unit | Conflict of clause | Empty

val add_dynamic : ?local:bool -> t -> learnt:bool -> int array -> dyn_result
(** Add a clause discovered during search (lazy aggregate/bound
    explanations, loop nogoods, blocking nogoods): the current assignment
    decides whether it is silent ([Sat]), propagating ([Unit]) or
    conflicting. [learnt] clauses are subject to deletion; blocking
    nogoods must be permanent. [local] (default false) marks the clause
    path-local — see {!analyzed_local}. *)

val force : t -> int -> clause -> unit
(** Assert a literal with an attached clause as reason. Used by the
    enumeration loop when chronological backtracking leaves a blocking
    clause with exactly one unassigned literal — a unit that event-driven
    propagation cannot see, since no new assignment touches the clause. *)

val cancel_until : t -> int -> unit

val reduce_db : t -> unit
(** Delete the coldest half of the learned clauses; reasons and short
    clauses survive. *)

val pick_branch : t -> int option
(** Deterministic VSIDS pick from the activity heap: highest activity,
    lowest id on ties, saved-phase polarity (initially false) — the same
    choice the former linear scan made, found in O(log n). [None] when
    every branchable variable is assigned. *)
