type t = Bytes.t

let create n = Bytes.make ((n + 7) lsr 3) '\000'

let get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let clear b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get b j) land lnot (1 lsl (i land 7))))

let copy = Bytes.copy
let reset b = Bytes.fill b 0 (Bytes.length b) '\000'
let equal = Bytes.equal
let hash (b : t) = Hashtbl.hash b

let popcount_byte =
  (* 256-entry table beats bit tricks for byte-at-a-time scans *)
  let t = Array.make 256 0 in
  for i = 1 to 255 do
    t.(i) <- t.(i lsr 1) + (i land 1)
  done;
  t

let cardinal b =
  let n = ref 0 in
  for j = 0 to Bytes.length b - 1 do
    n := !n + popcount_byte.(Char.code (Bytes.unsafe_get b j))
  done;
  !n

let iter_true f b =
  for j = 0 to Bytes.length b - 1 do
    let c = Char.code (Bytes.unsafe_get b j) in
    if c <> 0 then
      for k = 0 to 7 do
        if c land (1 lsl k) <> 0 then f ((j lsl 3) lor k)
      done
  done
