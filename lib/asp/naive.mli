(** The original exhaustive stable-model enumerator, retained verbatim as
    the reference implementation.

    [Solver] is the production path (interned atoms, watch-indexed
    propagation, pruned decision search); this module keeps the obviously
    correct 2^n-subset enumeration with structural [AtomSet] models so the
    differential test suite can compare the two on randomized programs, and
    so {!Solver.is_stable_model} has an oracle that shares no code with the
    fast path.

    Do not call this from production code paths — on anything but tiny
    guess spaces it is orders of magnitude slower than {!Solver}. *)

exception Unsupported of string
(** The guess space is too large ([> max_guess] atoms) for exhaustive
    enumeration. *)

val solve : ?limit:int -> ?max_guess:int -> Ground.t -> Model.t list
(** All stable models (up to [limit]), deduplicated, sorted by atom set.
    [max_guess] defaults to 24: every subset of the guess space is
    materialized, so the historical hard cap stays. *)

val solve_optimal : ?max_guess:int -> Ground.t -> Model.t list
(** Models with the minimal weak-constraint cost (all optima). *)

val satisfiable : ?max_guess:int -> Ground.t -> bool

val is_stable_model : Ground.t -> Model.AtomSet.t -> bool
(** Independent Gelfond–Lifschitz verification: [m] is the least model of
    the reduct of the program w.r.t. [m], and satisfies all integrity
    constraints and choice bounds. *)
