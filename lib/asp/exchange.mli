(** Lock-light learned-nogood exchange between guiding-path solver
    domains ({!Solver} under [Engine.Par]).

    One single-writer mailbox per path: preallocated slots plus an atomic
    published-length counter. Publishing is an owner-only append followed
    by a release store of the counter; draining is an acquire load plus a
    copy of the newly published slots, so neither side blocks and no
    locks are taken. Only 1-UIP analysis clauses are globally valid
    (analysis keeps every assumption-level literal, so an imported clause
    holds under any other path's assumptions too); blocking nogoods and
    bound prunes are path-local and are never published. *)

type t

val create : ?capacity:int -> paths:int -> unit -> t
(** [capacity] (default 4096) bounds each path's mailbox; publishes past
    the bound are dropped. *)

val paths : t -> int

val publish : t -> me:int -> int array -> bool
(** Owner-only: append a copy of the clause to [me]'s mailbox. [false]
    when the mailbox is full. *)

type cursor = int array
(** Per-source read positions, private to one importing solver. *)

val cursor : t -> cursor

val drain : t -> me:int -> cursor -> (int array -> unit) -> int
(** Deliver every clause published by other paths since the last drain,
    each as a private copy; returns how many were delivered. *)
