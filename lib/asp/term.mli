(** Hash-consed terms of the ASP language: constants, integers, variables
    and compound terms. Arithmetic function symbols ["+"], ["-"], ["*"],
    ["/"], ["abs"] evaluate over integers during grounding.

    Every term is interned in a per-domain arena through the smart
    constructors {!const}, {!int}, {!str}, {!var} and {!func}; a term
    carries its structural hash ([hkey]) and groundness precomputed, so
    {!hash} and {!is_ground} are O(1) and {!equal} is a physical-equality
    check in the common (same-arena) case with a hash-guarded structural
    fallback. [hkey] is a {e deterministic} function of the term's
    structure — the same term hashes identically in every process and
    every domain, which is what lets content-addressed fingerprints fold
    precomputed hashes instead of re-traversing terms.

    Terms that arrive from outside an arena (e.g. [Marshal] payloads read
    back by [Serve.Store]) are structurally valid but unshared; pass them
    through {!rehydrate} to restore arena sharing. *)

type t = private { hkey : int; ground : bool; normal : bool; node : node }
(** [ground] is true when the term contains no variable; [normal]
    additionally means arithmetic-free (so {!eval} is the identity). *)

and node =
  | Const of string  (** lowercase symbolic constant *)
  | Int of int
  | Str of string  (** quoted string constant *)
  | Var of string  (** uppercase variable *)
  | Func of string * t list  (** compound term / arithmetic expression *)

val const : string -> t
val int : int -> t
val str : string -> t
val var : string -> t
val func : string -> t list -> t

val hash : t -> int
(** The precomputed structural hash: O(1), deterministic across runs. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Structural order, independent of interning (canonical across
    processes). *)

val is_ground : t -> bool
val vars : t -> string list
(** Variables in order of first occurrence, without duplicates. *)

type subst = (string * t) list

val substitute : subst -> t -> t
(** O(1) on ground terms. *)

val eval : t -> t
(** Normalize a ground term by evaluating arithmetic function symbols over
    integer arguments; non-arithmetic structure is preserved. O(1) on
    normal (ground, arithmetic-free) terms. Raises [Invalid_argument] on
    arithmetic over non-integers, division by zero, or a non-ground
    term. *)

val eval_int : t -> int option
(** [Some n] when {!eval} yields [Int n]. *)

val arith_ops : string list
(** Function symbols interpreted arithmetically by {!eval}. *)

val intern_string : string -> string
(** Per-domain string pool shared with predicate symbols: returns the
    canonical copy of [s], so equality between two interned strings hits
    the physical-equality fast path. *)

val rehydrate : t -> t
(** Re-intern a term whose sharing was lost (e.g. after [Marshal]):
    returns the arena's canonical copy, rebuilding through the smart
    constructors. Structural equality is unaffected. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
