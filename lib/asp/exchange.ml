(* Lock-light learned-nogood exchange between guiding-path solver
   domains (Engine.Par).

   One single-writer mailbox per path: a preallocated slot array plus an
   atomic published-length counter. The owner appends a copy of a learnt
   clause and then bumps its counter with a release store; importers read
   every counter with an acquire load and copy out the slots between
   their per-source cursor and the published length. OCaml's memory
   model makes the plain slot writes visible once the atomic counter
   value is observed, so no locks are needed and neither side ever
   blocks. Slots are write-once, so a drained clause is immutable.

   Only clauses produced by 1-UIP analysis may be published: they are
   implied by the program together with the path's assumption literals,
   and analysis keeps every assumption-level literal in the clause, so
   the clause is valid in every other path too. Blocking nogoods and
   optimal-mode bound prunes are path-local and must never enter the
   exchange (the solver enforces this at the call site). *)

type t = {
  capacity : int;
  slots : int array array array;  (* path -> slot -> clause literals *)
  published : int Atomic.t array;  (* path -> number of readable slots *)
}

let create ?(capacity = 4096) ~paths () =
  {
    capacity;
    slots = Array.init (max paths 1) (fun _ -> Array.make capacity [||]);
    published = Array.init (max paths 1) (fun _ -> Atomic.make 0);
  }

let paths t = Array.length t.published

(* owner-only: append a clause to [me]'s mailbox; false when full *)
let publish t ~me lits =
  let n = Atomic.get t.published.(me) in
  if n >= t.capacity then false
  else begin
    t.slots.(me).(n) <- Array.copy lits;
    Atomic.set t.published.(me) (n + 1);
    true
  end

type cursor = int array

let cursor t = Array.make (paths t) 0

(* import every clause published by other paths since the last drain;
   the callback receives a private copy (the solver sorts clause arrays
   in place). Returns the number of clauses delivered. *)
let drain t ~me cur f =
  let imported = ref 0 in
  for src = 0 to paths t - 1 do
    if src <> me then begin
      let avail = Atomic.get t.published.(src) in
      while cur.(src) < avail do
        f (Array.copy t.slots.(src).(cur.(src)));
        cur.(src) <- cur.(src) + 1;
        incr imported
      done
    end
  done;
  !imported
