exception Error of string

type state = { toks : Lexer.located array; mutable pos : int }

let peek st = st.toks.(st.pos).token
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).token
  else Lexer.EOF

let located st = st.toks.(st.pos)

let fail st fmt =
  let { Lexer.line; col; token; _ } = located st in
  Printf.ksprintf
    (fun s ->
      raise
        (Error
           (Printf.sprintf "line %d, col %d: %s (found %s)" line col s
              (Lexer.token_to_string token))))
    fmt

let next st =
  let t = peek st in
  if t <> Lexer.EOF then st.pos <- st.pos + 1;
  t

let expect st tok what =
  if peek st = tok then ignore (next st) else fail st "expected %s" what

(* ---------------- terms ---------------- *)

let rec parse_term_prec st =
  let t = parse_addsub st in
  match peek st with
  | Lexer.OP ".." ->
      ignore (next st);
      let hi = parse_addsub st in
      Term.func ".." [ t; hi ]
  | _ -> t

and parse_addsub st =
  let rec loop acc =
    match peek st with
    | Lexer.OP ("+" | "-") ->
        let op = match next st with Lexer.OP o -> o | _ -> assert false in
        let rhs = parse_mul st in
        loop (Term.func op [ acc; rhs ])
    | _ -> acc
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop acc =
    match peek st with
    | Lexer.OP ("*" | "/") ->
        let op = match next st with Lexer.OP o -> o | _ -> assert false in
        let rhs = parse_unary st in
        loop (Term.func op [ acc; rhs ])
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.OP "-" ->
      ignore (next st);
      let t = parse_unary st in
      (match t.Term.node with
      | Term.Int n -> Term.int (-n)
      | _ -> Term.func "-" [ t ])
  | _ -> parse_primary st

and parse_primary st =
  match next st with
  | Lexer.INT n -> Term.int n
  | Lexer.STRING s -> Term.str s
  | Lexer.VAR v -> Term.var v
  | Lexer.IDENT f ->
      if peek st = Lexer.LPAREN then begin
        ignore (next st);
        let args = parse_term_list st in
        expect st Lexer.RPAREN "')'";
        Term.func f args
      end
      else Term.const f
  | Lexer.LPAREN ->
      let t = parse_term_prec st in
      expect st Lexer.RPAREN "')'";
      t
  | _ ->
      st.pos <- st.pos - 1;
      fail st "expected a term"

and parse_term_list st =
  let t = parse_term_prec st in
  if peek st = Lexer.COMMA then begin
    ignore (next st);
    t :: parse_term_list st
  end
  else [ t ]

(* ---------------- literals ---------------- *)

let atom_of_term st t =
  match t.Term.node with
  | Term.Const c -> Atom.prop c
  | Term.Func (f, args) when not (List.mem f Term.arith_ops) -> Atom.make f args
  | _ -> fail st "expected an atom"

let rec parse_literal st =
  match peek st with
  | Lexer.NOT ->
      ignore (next st);
      let t = parse_term_prec st in
      Lit.Neg (atom_of_term st t)
  | Lexer.HASH (("count" | "sum") as agg) ->
      let kind =
        if agg = "count" then Lit.Cardinality else Lit.Summation
      in
      ignore (next st);
      expect st Lexer.LBRACE "'{'";
      let terms = parse_term_list st in
      let cond =
        if peek st = Lexer.COLON then begin
          ignore (next st);
          parse_body st
        end
        else []
      in
      expect st Lexer.RBRACE "'}'";
      let op =
        match next st with
        | Lexer.OP op when Lit.cmp_of_string op <> None ->
            Option.get (Lit.cmp_of_string op)
        | _ ->
            st.pos <- st.pos - 1;
            fail st "expected a comparison after the aggregate"
      in
      let bound = parse_term_prec st in
      Lit.Count { kind; terms; cond; op; bound }
  | _ -> (
      let t = parse_term_prec st in
      match peek st with
      | Lexer.OP op when Lit.cmp_of_string op <> None ->
          ignore (next st);
          let cmp = Option.get (Lit.cmp_of_string op) in
          let rhs = parse_term_prec st in
          Lit.Cmp (t, cmp, rhs)
      | _ -> Lit.Pos (atom_of_term st t))

and parse_body st =
  let l = parse_literal st in
  if peek st = Lexer.COMMA then begin
    ignore (next st);
    l :: parse_body st
  end
  else [ l ]

(* ---------------- rules ---------------- *)

let parse_choice_elems st =
  let parse_elem () =
    let t = parse_term_prec st in
    let atom = atom_of_term st t in
    let cond =
      if peek st = Lexer.COLON then begin
        ignore (next st);
        parse_body st
      end
      else []
    in
    { Rule.atom; cond }
  in
  let rec loop acc =
    let e = parse_elem () in
    if peek st = Lexer.SEMI then begin
      ignore (next st);
      loop (e :: acc)
    end
    else List.rev (e :: acc)
  in
  loop []

let parse_opt_body st =
  if peek st = Lexer.IF then begin
    ignore (next st);
    parse_body st
  end
  else []

(* expand interval terms in facts: p(1..3) -> p(1). p(2). p(3). *)
let rec expand_term t =
  match t.Term.node with
  | Term.Func ("..", [ lo; hi ]) -> (
      match Term.eval_int lo, Term.eval_int hi with
      | Some a, Some b when a <= b ->
          List.init (b - a + 1) (fun k -> Term.int (a + k))
      | Some _, Some _ -> []
      | _ -> raise (Error "interval bounds must be ground integers"))
  | Term.Func (f, args) ->
      List.map (fun args -> Term.func f args) (expand_args args)
  | _ -> [ t ]

and expand_args = function
  | [] -> [ [] ]
  | a :: rest ->
      let choices = expand_term a in
      let rests = expand_args rest in
      List.concat_map (fun c -> List.map (fun r -> c :: r) rests) choices

let rec has_interval t =
  match t.Term.node with
  | Term.Func ("..", _) -> true
  | Term.Func (_, args) -> List.exists has_interval args
  | Term.Const _ | Term.Int _ | Term.Str _ | Term.Var _ -> false

let expand_fact (a : Atom.t) =
  if List.exists has_interval a.Atom.args then
    List.map (fun args -> { a with Atom.args }) (expand_args a.Atom.args)
  else [ a ]

let parse_statement st : [ `Rules of Rule.t list | `Show of string * int ] =
  match peek st with
  | Lexer.IF ->
      ignore (next st);
      let body = parse_body st in
      expect st Lexer.DOT "'.'";
      `Rules [ Rule.constraint_ body ]
  | Lexer.WEAKIF ->
      ignore (next st);
      let body = parse_body st in
      expect st Lexer.DOT "'.'";
      expect st Lexer.LBRACKET "'['";
      let weight = parse_term_prec st in
      let priority =
        if peek st = Lexer.AT then begin
          ignore (next st);
          match next st with
          | Lexer.INT n -> n
          | _ ->
              st.pos <- st.pos - 1;
              fail st "expected priority integer after '@'"
        end
        else 0
      in
      let terms =
        if peek st = Lexer.COMMA then begin
          ignore (next st);
          parse_term_list st
        end
        else []
      in
      expect st Lexer.RBRACKET "']'";
      `Rules [ Rule.weak ~priority ~terms ~weight body ]
  | Lexer.HASH "show" ->
      ignore (next st);
      let name =
        match next st with
        | Lexer.IDENT s -> s
        | _ ->
            st.pos <- st.pos - 1;
            fail st "expected predicate name after #show"
      in
      expect st (Lexer.OP "/") "'/'";
      let arity =
        match next st with
        | Lexer.INT n -> n
        | _ ->
            st.pos <- st.pos - 1;
            fail st "expected arity integer"
      in
      expect st Lexer.DOT "'.'";
      `Show (name, arity)
  | Lexer.HASH d ->
      fail st "unsupported directive #%s" d
  | Lexer.INT _ when peek2 st = Lexer.LBRACE ->
      let lower = match next st with Lexer.INT n -> Some n | _ -> assert false in
      expect st Lexer.LBRACE "'{'";
      let elems = parse_choice_elems st in
      expect st Lexer.RBRACE "'}'";
      let upper =
        match peek st with
        | Lexer.INT n ->
            ignore (next st);
            Some n
        | _ -> None
      in
      let body = parse_opt_body st in
      expect st Lexer.DOT "'.'";
      `Rules [ Rule.choice ?lower ?upper elems body ]
  | Lexer.LBRACE ->
      ignore (next st);
      let elems = parse_choice_elems st in
      expect st Lexer.RBRACE "'}'";
      let upper =
        match peek st with
        | Lexer.INT n ->
            ignore (next st);
            Some n
        | _ -> None
      in
      let body = parse_opt_body st in
      expect st Lexer.DOT "'.'";
      `Rules [ Rule.choice ?upper elems body ]
  | _ ->
      let t = parse_term_prec st in
      let head = atom_of_term st t in
      let body = parse_opt_body st in
      expect st Lexer.DOT "'.'";
      if body = [] then `Rules (List.map Rule.fact (expand_fact head))
      else `Rules [ Rule.rule head body ]

let with_state src f =
  let toks =
    try Array.of_list (Lexer.tokenize src)
    with Lexer.Error msg -> raise (Error msg)
  in
  f { toks; pos = 0 }

let parse_program src =
  with_state src (fun st ->
      let rec loop acc =
        if peek st = Lexer.EOF then acc
        else
          let { Lexer.line; col; _ } = located st in
          let pos = { Rule.line; col } in
          let acc =
            match parse_statement st with
            | `Rules rs -> Program.add_all (List.map (Rule.with_pos pos) rs) acc
            | `Show s -> Program.add_show s acc
          in
          loop acc
      in
      loop Program.empty)

let parse_rule src =
  let p = parse_program src in
  match Program.rules p with
  | [ r ] -> r
  | [] -> raise (Error "expected one statement, found none")
  | _ -> raise (Error "expected exactly one statement")

let parse_term src =
  with_state src (fun st ->
      let t = parse_term_prec st in
      if peek st <> Lexer.EOF then fail st "trailing input after term";
      t)

let parse_atom src =
  with_state src (fun st ->
      let t = parse_term_prec st in
      let a = atom_of_term st t in
      if peek st <> Lexer.EOF then fail st "trailing input after atom";
      a)
