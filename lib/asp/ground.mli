(** Ground (variable-free) programs produced by {!Grounder}. Built-in
    comparisons are already evaluated away; negative body literals are kept
    only when their atom is derivable at all (atoms outside the universe are
    simplified to true negations and dropped). *)

type gelem = { gatom : Atom.t; gpos : Atom.t list; gneg : Atom.t list }
(** Ground choice element: atom with its instantiated condition. *)

type gcount_elem = { etuple : Term.t list; epos : Atom.t list; eneg : Atom.t list }
(** One instantiated aggregate element: the counted tuple and its ground
    condition. *)

type gcount = {
  ckind : Lit.agg_kind;
  celems : gcount_elem list;
  cop : Lit.cmp;
  cbound : int;
}
(** Ground aggregate: satisfied when the aggregated value over the distinct
    [etuple]s whose condition holds — their number ([Cardinality]) or the
    sum of their first integer components ([Summation]) — compares to
    [cbound] under [cop]. *)

type grule =
  | Gfact of Atom.t
  | Grule of {
      head : Atom.t;
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
    }
  | Gchoice of {
      lower : int option;
      upper : int option;
      elems : gelem list;
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
    }
  | Gconstraint of { pos : Atom.t list; neg : Atom.t list; counts : gcount list }
  | Gweak of {
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
      weight : int;
      priority : int;
      terms : Term.t list;
    }

type t = {
  rules : grule list;
  universe : Model.AtomSet.t;  (** over-approximation of derivable atoms *)
  shows : (string * int) list;
}

val rule_count : t -> int
val atom_count : t -> int

val equal : t -> t -> bool
(** Structural equality, rule-for-rule and in order: the relation the
    grounder differential suite enforces between {!Grounder} and
    {!Naive_ground} output. *)

val equal_rule : grule -> grule -> bool
(** Structural rule equality via {!Term.equal} on the interned terms —
    O(1) per subterm, unlike polymorphic [(=)] which re-walks nodes. *)

val hash_rule : grule -> int
(** Deterministic hash folding the terms' precomputed hkeys; consistent
    with {!equal_rule}. Backs the grounder's instance-dedup tables. *)

val equal_elem : gelem -> gelem -> bool
val hash_elem : gelem -> int
val equal_celem : gcount_elem -> gcount_elem -> bool
val hash_celem : gcount_elem -> int
(** Same contract as {!equal_rule}/{!hash_rule} for choice and aggregate
    elements (the per-rule element dedup tables). *)

val pp_rule : Format.formatter -> grule -> unit
val pp : Format.formatter -> t -> unit
