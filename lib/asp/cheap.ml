(* Propagation-only tier for tight-shaped, conflict-free programs: the
   chain / pinned / dense-choice shapes of the reference encodings, where
   full CDNL machinery (completion clauses, VSIDS, watches) costs more
   than the enumeration itself.

   The fragment: no aggregates, no negation in rule bodies or choice
   guards, no choice bounds. In that fragment a candidate is stable iff
   it is the least fixpoint of the definite rules over the facts plus a
   subset of *licensed* choice atoms — foundedness holds by construction,
   so the classifier is sound on non-tight programs too (a positive loop
   without external support simply never enters the closure).

   Classification runs a forcing fixpoint over two closures:
   [cf] (facts + forced choices — a lower bound on every model) and
   [cm] (additionally seeding every non-banned candidate — an upper
   bound). Every choice-element guard must be decided (inside [cf] or
   outside [cm]); every constraint must be dead, or have exactly one
   undecided literal that is a free choice atom, which the fixpoint
   forces in or out. Anything else — an undecided guard, a multi-literal
   pending constraint, a constraint pending on a derived atom, a banned
   atom still derivable — rejects to the full CDNL tier, which is always
   safe. A constraint with no pending literal left is violated in every
   model: unsat, proven without search.

   Solving is then direct choice expansion: DFS over the free atoms with
   an incremental closure (per-rule missing-premise counters, trail-based
   undo), deduplicating closures that coincide. *)

module Stats = Solver_stats

exception Full_tier
exception Done

let gate (p : Interned.t) =
  (not p.Interned.has_counts)
  && Array.for_all (fun (r : Interned.rule) -> Array.length r.Interned.neg = 0)
       p.Interned.rules
  && Array.for_all
       (fun (c : Interned.choice) ->
         c.Interned.lower = None
         && c.Interned.upper = None
         && Array.length c.Interned.cneg = 0
         && Array.for_all
              (fun (e : Interned.elem) -> Array.length e.Interned.egneg = 0)
              c.Interned.elems)
       p.Interned.choices

type plan = {
  cf : Bitset.t;  (* forced closure: a subset of every model *)
  free : int array;  (* free choice atoms, ascending *)
  occ : (int * int) list array;  (* atom -> (rule, multiplicity) *)
  base_missing : int array;  (* rule -> total positive premises *)
  heads : int array;
}

let classify (p : Interned.t) =
  if not (gate p) then `Full
  else begin
    let n1 = max p.Interned.n_atoms 1 in
    let n_rules = Array.length p.Interned.rules in
    let heads = Array.map (fun (r : Interned.rule) -> r.Interned.head) p.Interned.rules in
    let occ = Array.make n1 [] in
    let base_missing = Array.make (max n_rules 1) 0 in
    Array.iteri
      (fun ri (r : Interned.rule) ->
        base_missing.(ri) <- Array.length r.Interned.pos;
        let mult = Hashtbl.create 4 in
        Array.iter
          (fun a ->
            Hashtbl.replace mult a
              (1 + Option.value ~default:0 (Hashtbl.find_opt mult a)))
          r.Interned.pos;
        Hashtbl.iter (fun a m -> occ.(a) <- (ri, m) :: occ.(a)) mult)
      p.Interned.rules;
    let closure seeds =
      let cur = Bitset.create n1 in
      let missing = Array.sub base_missing 0 n_rules in
      let q = Queue.create () in
      let add a =
        if not (Bitset.get cur a) then begin
          Bitset.set cur a;
          Queue.add a q
        end
      in
      Array.iter add p.Interned.facts;
      List.iter add seeds;
      Array.iteri (fun ri m -> if m = 0 then add heads.(ri)) missing;
      while not (Queue.is_empty q) do
        let a = Queue.pop q in
        List.iter
          (fun (ri, m) ->
            missing.(ri) <- missing.(ri) - m;
            if missing.(ri) = 0 then add heads.(ri))
          occ.(a)
      done;
      cur
    in
    let candidates = Bitset.create n1 in
    Array.iter
      (fun (c : Interned.choice) ->
        Array.iter
          (fun (e : Interned.elem) -> Bitset.set candidates e.Interned.eatom)
          c.Interned.elems)
      p.Interned.choices;
    let chosen = ref [] in
    let chosen_b = Bitset.create n1 in
    let banned_b = Bitset.create n1 in
    try
      let unsat = ref false in
      let final_cf = ref (Bitset.create n1) in
      let final_free = ref (Bitset.create n1) in
      let continue = ref true in
      while !continue && not !unsat do
        continue := false;
        let cf = closure !chosen in
        let cand_seed = ref !chosen in
        Bitset.iter_true
          (fun a -> if not (Bitset.get banned_b a) then cand_seed := a :: !cand_seed)
          candidates;
        let cm = closure !cand_seed in
        (* a banned atom still derivable cannot be kept out by not
           choosing it: give up (the ban came from a constraint, so the
           full tier will handle it) *)
        Bitset.iter_true
          (fun b -> if Bitset.get cm b then raise Full_tier)
          banned_b;
        (* every guard must be decided at the fixpoint *)
        let free_b = Bitset.create n1 in
        Array.iter
          (fun (c : Interned.choice) ->
            Array.iter
              (fun (e : Interned.elem) ->
                let guard_in s =
                  Array.for_all (Bitset.get s) c.Interned.cpos
                  && Array.for_all (Bitset.get s) e.Interned.egpos
                in
                if guard_in cf then begin
                  let a = e.Interned.eatom in
                  if (not (Bitset.get cf a)) && not (Bitset.get banned_b a)
                  then Bitset.set free_b a
                end
                else if guard_in cm then raise Full_tier
                (* else: dead element, never licensed *))
              c.Interned.elems)
          p.Interned.choices;
        (* every constraint must be dead or force a single free atom *)
        Array.iter
          (fun (k : Interned.constr) ->
            if not !unsat then begin
              let dead = ref false in
              let pending = ref [] in
              Array.iter
                (fun a ->
                  if not (Bitset.get cm a) then dead := true
                  else if not (Bitset.get cf a) then
                    pending := (a, false) :: !pending)
                k.Interned.kpos;
              Array.iter
                (fun b ->
                  if Bitset.get cf b then dead := true
                  else if Bitset.get cm b then
                    pending := (b, true) :: !pending)
                k.Interned.kneg;
              if not !dead then
                match !pending with
                | [] -> unsat := true
                | [ (u, need_true) ] ->
                    if not (Bitset.get free_b u) then raise Full_tier;
                    if need_true then begin
                      if not (Bitset.get chosen_b u) then begin
                        Bitset.set chosen_b u;
                        chosen := u :: !chosen;
                        continue := true
                      end
                    end
                    else if not (Bitset.get banned_b u) then begin
                      Bitset.set banned_b u;
                      continue := true
                    end
                | _ :: _ :: _ -> raise Full_tier
            end)
          p.Interned.constraints;
        final_cf := cf;
        final_free := free_b
      done;
      if !unsat then `Unsat
      else begin
        let free = ref [] in
        Bitset.iter_true (fun a -> free := a :: !free) !final_free;
        `Plan
          {
            cf = !final_cf;
            free = Array.of_list (List.rev !free);
            occ;
            base_missing;
            heads;
          }
      end
    with Full_tier -> `Full
  end

let eligible p = match classify p with `Full -> false | `Plan _ | `Unsat -> true

let expand ?limit ~stats (p : Interned.t) plan =
  let n1 = max p.Interned.n_atoms 1 in
  let missing = Array.copy plan.base_missing in
  Bitset.iter_true
    (fun a ->
      List.iter (fun (ri, m) -> missing.(ri) <- missing.(ri) - m) plan.occ.(a))
    plan.cf;
  let cur = Bitset.copy plan.cf in
  let trail = Array.make n1 0 in
  let sp = ref 0 in
  (* add one free atom and run the closure forward, using the trail
     segment itself as the work queue *)
  let add a =
    let qh = !sp in
    if not (Bitset.get cur a) then begin
      Bitset.set cur a;
      trail.(!sp) <- a;
      incr sp;
      stats.Stats.firings <- stats.Stats.firings + 1
    end;
    let i = ref qh in
    while !i < !sp do
      let x = trail.(!i) in
      incr i;
      List.iter
        (fun (ri, m) ->
          missing.(ri) <- missing.(ri) - m;
          if missing.(ri) = 0 then begin
            let h = plan.heads.(ri) in
            if not (Bitset.get cur h) then begin
              Bitset.set cur h;
              trail.(!sp) <- h;
              incr sp;
              stats.Stats.firings <- stats.Stats.firings + 1
            end
          end)
        plan.occ.(x)
    done
  in
  let undo mark =
    while !sp > mark do
      decr sp;
      let x = trail.(!sp) in
      Bitset.clear cur x;
      List.iter (fun (ri, m) -> missing.(ri) <- missing.(ri) + m) plan.occ.(x)
    done
  in
  let models = ref [] in
  let seen : (Bitset.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let n_found = ref 0 in
  let record () =
    stats.Stats.leaves <- stats.Stats.leaves + 1;
    let key = Bitset.copy cur in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      stats.Stats.models <- stats.Stats.models + 1;
      models :=
        Model.make
          ~cost:(Interned.cost_of p key)
          (Interned.atoms_of_bitset p key)
        :: !models;
      incr n_found;
      match limit with Some l when !n_found >= l -> raise Done | _ -> ()
    end
  in
  let f = Array.length plan.free in
  let rec go i =
    if i = f then record ()
    else begin
      stats.Stats.guesses <- stats.Stats.guesses + 1;
      (* exclude first: small models first, like the kernel's false bias *)
      go (i + 1);
      let mark = !sp in
      add plan.free.(i);
      go (i + 1);
      undo mark
    end
  in
  (try go 0 with Done -> ());
  List.sort Model.compare !models

(* [None]: not in the fragment, fall through to full CDNL *)
let solve ?limit ~stats p =
  match classify p with
  | `Full -> None
  | `Unsat ->
      stats.Stats.cheap <- true;
      Some []
  | `Plan plan ->
      stats.Stats.cheap <- true;
      Some (expand ?limit ~stats p plan)
