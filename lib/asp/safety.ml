type violation =
  | Unsafe_var of { context : string; var : string }
  | Nested_aggregate
  | Aggregate_in_choice_cond

let add_var bound v = if List.mem v bound then bound else v :: bound

(* Variables bound by the positive part of [lits], starting from [base]:
   positive atoms bind their variables; an equality with one side a fresh
   variable and the other side already bound acts as an assignment. *)
let bound_closure base lits =
  let bound =
    List.fold_left
      (fun acc l ->
        match l with
        | Lit.Pos a -> List.fold_left add_var acc (Atom.vars a)
        | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> acc)
      base lits
  in
  let subset vs bound = List.for_all (fun v -> List.mem v bound) vs in
  let rec closure bound =
    let bound', progressed =
      List.fold_left
        (fun (bound, progressed) l ->
          match l with
          | Lit.Cmp ({ Term.node = Term.Var v; _ }, Lit.Eq, rhs)
            when (not (List.mem v bound)) && subset (Term.vars rhs) bound ->
              (v :: bound, true)
          | Lit.Cmp (lhs, Lit.Eq, { Term.node = Term.Var v; _ })
            when (not (List.mem v bound)) && subset (Term.vars lhs) bound ->
              (v :: bound, true)
          | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ ->
              (bound, progressed))
        (bound, false) lits
    in
    if progressed then closure bound' else bound'
  in
  closure bound

let unsafe_vars acc context vars bound =
  List.fold_left
    (fun acc v ->
      if List.mem v bound then acc else Unsafe_var { context; var = v } :: acc)
    acc vars

(* body-literal safety; aggregates may bind local variables inside their
   own condition, so they are checked against an extended closure *)
let check_body_lit acc bound l =
  match l with
  | Lit.Count { terms; cond; bound = agg_bound; _ } ->
      let acc =
        List.fold_left
          (fun acc c ->
            match c with
            | Lit.Count _ -> Nested_aggregate :: acc
            | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ -> acc)
          acc cond
      in
      let acc = unsafe_vars acc "aggregate bound" (Term.vars agg_bound) bound in
      let ebound = bound_closure bound cond in
      let acc =
        List.fold_left
          (fun acc t -> unsafe_vars acc "aggregate tuple" (Term.vars t) ebound)
          acc terms
      in
      List.fold_left
        (fun acc c -> unsafe_vars acc "aggregate condition" (Lit.vars c) ebound)
        acc cond
  | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ ->
      unsafe_vars acc "body" (Lit.vars l) bound

let violations r =
  let acc =
    match r with
    | Rule.Weak { body; weight; terms; _ } ->
        let bound = bound_closure [] body in
        let acc = List.fold_left (fun acc l -> check_body_lit acc bound l) [] body in
        let acc = unsafe_vars acc "weight" (Term.vars weight) bound in
        List.fold_left
          (fun acc t -> unsafe_vars acc "terms" (Term.vars t) bound)
          acc terms
    | Rule.Rule { head; body; _ } -> (
        let bound = bound_closure [] body in
        let acc = List.fold_left (fun acc l -> check_body_lit acc bound l) [] body in
        match head with
        | Rule.Falsity -> acc
        | Rule.Head a -> unsafe_vars acc "head" (Atom.vars a) bound
        | Rule.Choice { elems; _ } ->
            List.fold_left
              (fun acc (e : Rule.choice_elem) ->
                let acc =
                  List.fold_left
                    (fun acc l ->
                      match l with
                      | Lit.Count _ -> Aggregate_in_choice_cond :: acc
                      | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ -> acc)
                    acc e.cond
                in
                let ebound = bound_closure bound e.cond in
                let acc =
                  List.fold_left
                    (fun acc l -> unsafe_vars acc "condition" (Lit.vars l) ebound)
                    acc e.cond
                in
                unsafe_vars acc "choice element" (Atom.vars e.atom) ebound)
              acc elems)
  in
  (* [acc] was built by prepending: restore check order, then keep the
     first occurrence of each violation *)
  List.rev
    (List.fold_left
       (fun seen v -> if List.mem v seen then seen else v :: seen)
       [] (List.rev acc))

let is_safe r = violations r = []

let violation_to_string = function
  | Unsafe_var { context; var } -> Printf.sprintf "%s (%s)" var context
  | Nested_aggregate -> "nested aggregate"
  | Aggregate_in_choice_cond -> "aggregate in choice-element condition"

let describe r vs =
  let unsafe, structural =
    List.partition (function Unsafe_var _ -> true | _ -> false) vs
  in
  let parts =
    (match unsafe with
    | [] -> []
    | vs ->
        [
          Printf.sprintf "unsafe variable%s %s"
            (if List.length vs = 1 then "" else "s")
            (String.concat ", " (List.map violation_to_string vs));
        ])
    @ List.map violation_to_string structural
  in
  Printf.sprintf "%s in rule: %s" (String.concat "; " parts) (Rule.to_string r)
