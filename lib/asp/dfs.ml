exception Unsupported of string

module AtomSet = Model.AtomSet

let default_max_guess = 64

(* statistics are shared with the CDNL solver; DFS leaves the
   conflict-driven counters at zero *)
module Stats = Solver_stats

(* ------------------------------------------------------------------ *)
(* Rule-level stratification of the ground program                     *)
(* ------------------------------------------------------------------ *)

(* Union-find over predicate signatures with path compression and
   union-by-size: all head predicates of one rule share a stratum (a
   choice rule may derive several predicates). *)
module Uf = struct
  type t = {
    parent : (string * int, string * int) Hashtbl.t;
    size : (string * int, int) Hashtbl.t;
  }

  let create () : t = { parent = Hashtbl.create 64; size = Hashtbl.create 64 }

  let rec find (uf : t) x =
    match Hashtbl.find_opt uf.parent x with
    | None ->
        Hashtbl.replace uf.parent x x;
        x
    | Some p when p = x -> x
    | Some p ->
        let r = find uf p in
        Hashtbl.replace uf.parent x r;
        r

  let size_of uf r = Option.value ~default:1 (Hashtbl.find_opt uf.size r)

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then begin
      let sa = size_of uf ra and sb = size_of uf rb in
      let small, big = if sa <= sb then (ra, rb) else (rb, ra) in
      Hashtbl.replace uf.parent small big;
      Hashtbl.replace uf.size big (sa + sb)
    end
end

type rule_deps = {
  heads : (string * int) list;
  pos_deps : (string * int) list;
  neg_deps : (string * int) list;
}

(* every atom an aggregate's condition mentions must be decided strictly
   below the rule: treat them all as negative dependencies *)
let count_deps counts =
  List.concat_map
    (fun (c : Ground.gcount) ->
      List.concat_map
        (fun (e : Ground.gcount_elem) ->
          List.map Atom.signature e.Ground.epos
          @ List.map Atom.signature e.Ground.eneg)
        c.Ground.celems)
    counts

let rule_deps = function
  | Ground.Gfact a -> { heads = [ Atom.signature a ]; pos_deps = []; neg_deps = [] }
  | Ground.Grule { head; pos; neg; counts } ->
      {
        heads = [ Atom.signature head ];
        pos_deps = List.map Atom.signature pos;
        neg_deps = List.map Atom.signature neg @ count_deps counts;
      }
  | Ground.Gchoice { elems; pos; neg; counts; _ } ->
      {
        heads = List.map (fun e -> Atom.signature e.Ground.gatom) elems;
        pos_deps =
          List.map Atom.signature pos
          @ List.concat_map
              (fun e -> List.map Atom.signature e.Ground.gpos)
              elems;
        neg_deps =
          List.map Atom.signature neg
          @ List.concat_map
              (fun e -> List.map Atom.signature e.Ground.gneg)
              elems
          @ count_deps counts;
      }
  | Ground.Gconstraint _ | Ground.Gweak _ ->
      { heads = []; pos_deps = []; neg_deps = [] }

type strat = {
  stratum_of : (string * int) -> int;
  max_stratum : int;
  ok : bool; (* false when the program is not stratified modulo choices *)
}

let stratify (g : Ground.t) =
  let uf = Uf.create () in
  let deps = List.map rule_deps g.Ground.rules in
  (* merge head predicates of each rule *)
  List.iter
    (fun d ->
      match d.heads with
      | [] -> ()
      | h :: rest -> List.iter (fun h' -> Uf.union uf h h') rest)
    deps;
  (* collect nodes *)
  let nodes = Hashtbl.create 64 in
  let add_node sg = Hashtbl.replace nodes (Uf.find uf sg) () in
  List.iter
    (fun d ->
      List.iter add_node d.heads;
      List.iter add_node d.pos_deps;
      List.iter add_node d.neg_deps)
    deps;
  AtomSet.iter (fun a -> add_node (Atom.signature a)) g.Ground.universe;
  (* edges rep(head) -> (rep(dep), negated?), deduplicated per node in
     O(1) via a nested table instead of a List.mem scan *)
  let edges = Hashtbl.create 64 in
  let out_edges h =
    match Hashtbl.find_opt edges h with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add edges h t;
        t
  in
  let add_edge h d negp =
    let h = Uf.find uf h and d = Uf.find uf d in
    Hashtbl.replace (out_edges h) (d, negp) ()
  in
  List.iter
    (fun d ->
      List.iter
        (fun h ->
          List.iter (fun p -> add_edge h p false) d.pos_deps;
          List.iter (fun n -> add_edge h n true) d.neg_deps)
        d.heads)
    deps;
  (* longest-path stratum assignment with negative edges strict; detect
     negative cycles by bounding iterations. *)
  let node_list = Hashtbl.fold (fun n () acc -> n :: acc) nodes [] in
  let n_nodes = List.length node_list in
  let stratum = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace stratum n 0) node_list;
  let changed = ref true in
  let rounds = ref 0 in
  let ok = ref true in
  while !changed && !ok do
    changed := false;
    incr rounds;
    if !rounds > n_nodes + 1 then ok := false
    else
      List.iter
        (fun h ->
          match Hashtbl.find_opt edges h with
          | None -> ()
          | Some out ->
              let sh = Hashtbl.find stratum h in
              let best = ref sh in
              Hashtbl.iter
                (fun (d, negp) () ->
                  let sd = Hashtbl.find stratum d in
                  let required = if negp then sd + 1 else sd in
                  if !best < required then best := required)
                out;
              if !best > sh then begin
                Hashtbl.replace stratum h !best;
                changed := true
              end)
        node_list
  done;
  let max_stratum = Hashtbl.fold (fun _ s acc -> max s acc) stratum 0 in
  {
    stratum_of =
      (fun sg ->
        match Hashtbl.find_opt stratum (Uf.find uf sg) with
        | Some s -> s
        | None -> 0);
    max_stratum;
    ok = !ok;
  }

(* ------------------------------------------------------------------ *)
(* Pruned depth-first search over the choice space                      *)
(* ------------------------------------------------------------------ *)

(* The program is stratified modulo choices, so within one stratum the
   fixpoint is monotone: negative and aggregate dependencies point to
   strictly lower (already final) strata. The search therefore interleaves
   semi-naive propagation with decisions: rules fire only when a positive
   body atom is newly derived (watch index), and a choice element whose
   condition fires with an undecided atom becomes a branch point. A
   subtree is abandoned as soon as a constraint or a choice upper bound is
   violated on atoms whose values can no longer change. *)

exception Done
exception Prune

(* growable int stack; doubles as the assignment trail and, via [qhead],
   the semi-naive propagation queue *)
module Ivec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let b = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 b 0 v.len;
      v.a <- b
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1
end

type watcher =
  | WRule of int
  | WChoiceBody of int
  | WChoiceElem of int * int

type engine = {
  p : Interned.t;
  astratum : int array; (* atom id -> stratum *)
  max_stratum : int;
  facts_at : int list array;
  rules_at : int list array;
  choices_at : int list array; (* choices with elements, by element stratum *)
  bounds_at : int list array; (* bound checks, by the stratum they are final *)
  constraints_at : int list array; (* full checks, by the stratum they are final *)
  count_max : int array; (* count idx -> max stratum mentioned *)
  weak_max : int array; (* weak idx -> max stratum mentioned *)
  watch : watcher list array; (* same-stratum positive-body dependents *)
  cwatch : int list array; (* constraints mentioning the atom *)
  bwatch : int list array; (* upper-bounded choices with an element on it *)
  value : Bitset.t;
  trail : Ivec.t;
  mutable qhead : int;
  decided : int array; (* 0 undecided / 1 in / 2 out *)
  stats : Stats.t;
  on_leaf : engine -> unit;
  on_boundary : engine -> int -> unit; (* branch-and-bound hook *)
}

let all_true e ids = Array.for_all (fun i -> Bitset.get e.value i) ids
let none_true e ids = not (Array.exists (fun i -> Bitset.get e.value i) ids)

(* counts whose atoms live strictly below [current] are final *)
let counts_final_sat e ~current idxs =
  Array.for_all
    (fun ci ->
      e.count_max.(ci) < current
      && Interned.eval_count e.p e.value e.p.Interned.counts.(ci))
    idxs

(* [i] is false now and in every extension of the current assignment:
   either its stratum is complete, or nothing can ever derive it, or it is
   a pure choice atom that has been decided out *)
let finally_false e ~current i =
  (not (Bitset.get e.value i))
  && (e.astratum.(i) < current
     || (not (Bitset.get e.p.Interned.derived_head i))
        && ((not (Bitset.get e.p.Interned.choice_atoms i))
           || e.decided.(i) = 2))

let certainly_violated e ~current k =
  let c = e.p.Interned.constraints.(k) in
  all_true e c.Interned.kpos
  && Array.for_all (finally_false e ~current) c.Interned.kneg
  && counts_final_sat e ~current c.Interned.kcounts

(* a choice upper bound is certainly violated when the body is certainly
   satisfied and more elements than the bound are certainly chosen; only
   meaningful while the choice's own stratum is being processed (earlier,
   element negative conditions are not final yet) *)
let choice_stratum e c =
  if Array.length c.Interned.elems = 0 then -1
  else e.astratum.(c.Interned.elems.(0).Interned.eatom)

let eager_bound_check e ~current cidx =
  let c = e.p.Interned.choices.(cidx) in
  match c.Interned.upper with
  | None -> ()
  | Some u ->
      if
        choice_stratum e c = current
        && all_true e c.Interned.cpos
        && none_true e c.Interned.cneg
        && counts_final_sat e ~current c.Interned.ccounts
      then begin
        let chosen = ref 0 in
        Array.iter
          (fun el ->
            if
              Bitset.get e.value el.Interned.eatom
              && all_true e el.Interned.egpos
              && none_true e el.Interned.egneg
            then incr chosen)
          c.Interned.elems;
        if !chosen > u then raise Prune
      end

let add_atom e ~current a =
  if not (Bitset.get e.value a) then begin
    Bitset.set e.value a;
    Ivec.push e.trail a;
    e.stats.Stats.firings <- e.stats.Stats.firings + 1;
    List.iter
      (fun k -> if certainly_violated e ~current k then raise Prune)
      e.cwatch.(a);
    List.iter (fun c -> eager_bound_check e ~current c) e.bwatch.(a)
  end

let undo e mark =
  while e.trail.Ivec.len > mark do
    e.trail.Ivec.len <- e.trail.Ivec.len - 1;
    Bitset.clear e.value e.trail.Ivec.a.(e.trail.Ivec.len)
  done;
  e.qhead <- mark

let body_sat e ~current (c : Interned.choice) =
  all_true e c.Interned.cpos
  && none_true e c.Interned.cneg
  && counts_final_sat e ~current c.Interned.ccounts

let try_rule e ~current ridx =
  let r = e.p.Interned.rules.(ridx) in
  if
    (not (Bitset.get e.value r.Interned.head))
    && all_true e r.Interned.pos
    && none_true e r.Interned.neg
    && counts_final_sat e ~current r.Interned.counts
  then add_atom e ~current r.Interned.head

(* a fired element with an undecided atom is a branch candidate; a decided
   or already-derived atom needs no decision *)
let try_elem e ~current acc cidx eidx =
  let c = e.p.Interned.choices.(cidx) in
  let el = c.Interned.elems.(eidx) in
  if
    body_sat e ~current c
    && all_true e el.Interned.egpos
    && none_true e el.Interned.egneg
  then begin
    let a = el.Interned.eatom in
    if not (Bitset.get e.value a) then
      match e.decided.(a) with
      | 1 -> add_atom e ~current a
      | 2 -> ()
      | _ -> acc := a :: !acc
  end

let try_choice_body e ~current acc cidx =
  let c = e.p.Interned.choices.(cidx) in
  if body_sat e ~current c then
    Array.iteri (fun eidx _ -> try_elem e ~current acc cidx eidx) c.Interned.elems

let propagate e ~current acc =
  while e.qhead < e.trail.Ivec.len do
    let a = e.trail.Ivec.a.(e.qhead) in
    e.qhead <- e.qhead + 1;
    List.iter
      (function
        | WRule r -> try_rule e ~current r
        | WChoiceBody c -> try_choice_body e ~current acc c
        | WChoiceElem (c, el) -> try_elem e ~current acc c el)
      e.watch.(a)
  done

(* full (non-eager) checks once every mentioned atom is final *)
let boundary_checks e s =
  List.iter
    (fun k ->
      let c = e.p.Interned.constraints.(k) in
      if
        all_true e c.Interned.kpos
        && none_true e c.Interned.kneg
        && Interned.counts_sat e.p e.value c.Interned.kcounts
      then raise Prune)
    e.constraints_at.(s);
  List.iter
    (fun cidx ->
      let c = e.p.Interned.choices.(cidx) in
      if
        all_true e c.Interned.cpos
        && none_true e c.Interned.cneg
        && Interned.counts_sat e.p e.value c.Interned.ccounts
      then begin
        let chosen = ref 0 in
        Array.iter
          (fun el ->
            if
              Bitset.get e.value el.Interned.eatom
              && all_true e el.Interned.egpos
              && none_true e el.Interned.egneg
            then incr chosen)
          c.Interned.elems;
        let lower_ok =
          match c.Interned.lower with Some lo -> !chosen >= lo | None -> true
        in
        let upper_ok =
          match c.Interned.upper with Some hi -> !chosen <= hi | None -> true
        in
        if not (lower_ok && upper_ok) then raise Prune
      end)
    e.bounds_at.(s);
  e.on_boundary e s

let seed e s acc =
  List.iter (fun a -> add_atom e ~current:s a) e.facts_at.(s);
  List.iter (fun r -> try_rule e ~current:s r) e.rules_at.(s);
  List.iter (fun c -> try_choice_body e ~current:s acc c) e.choices_at.(s)

let rec run_stratum e s cands =
  let acc = ref [] in
  propagate e ~current:s acc;
  decide e s (List.rev_append !acc cands)

and decide e s cands =
  match cands with
  | a :: rest when e.decided.(a) <> 0 || Bitset.get e.value a ->
      decide e s rest
  | a :: rest ->
      let mark = e.trail.Ivec.len in
      e.stats.Stats.guesses <- e.stats.Stats.guesses + 1;
      e.decided.(a) <- 1;
      (try
         add_atom e ~current:s a;
         run_stratum e s rest
       with Prune -> e.stats.Stats.pruned <- e.stats.Stats.pruned + 1);
      undo e mark;
      e.decided.(a) <- 0;
      e.stats.Stats.guesses <- e.stats.Stats.guesses + 1;
      e.decided.(a) <- 2;
      (try
         (* the atom is now certainly out (unless derivable by plain
            rules): re-examine the constraints mentioning it *)
         List.iter
           (fun k -> if certainly_violated e ~current:s k then raise Prune)
           e.cwatch.(a);
         run_stratum e s rest
       with Prune -> e.stats.Stats.pruned <- e.stats.Stats.pruned + 1);
      undo e mark;
      e.decided.(a) <- 0
  | [] ->
      boundary_checks e s;
      if s = e.max_stratum then begin
        e.stats.Stats.leaves <- e.stats.Stats.leaves + 1;
        e.on_leaf e
      end
      else begin
        let acc = ref [] in
        seed e (s + 1) acc;
        run_stratum e (s + 1) (List.rev !acc)
      end

let make_engine (p : Interned.t) (st : strat) stats ~on_leaf ~on_boundary =
  let n = p.Interned.n_atoms in
  let astratum =
    Array.init n (fun i -> st.stratum_of (Atom.signature p.Interned.atoms.(i)))
  in
  let strata = st.max_stratum + 1 in
  let facts_at = Array.make strata [] in
  let rules_at = Array.make strata [] in
  let choices_at = Array.make strata [] in
  let bounds_at = Array.make strata [] in
  let constraints_at = Array.make strata [] in
  let watch = Array.make (max n 1) [] in
  let cwatch = Array.make (max n 1) [] in
  let bwatch = Array.make (max n 1) [] in
  let max_over ids from = Array.fold_left (fun m i -> max m astratum.(i)) from ids in
  (* -1 when the aggregate mentions no atoms (e.g. all elements were
     simplified away by the grounder): such a count is final everywhere,
     including at stratum 0 *)
  let count_max =
    Array.map
      (fun (c : Interned.count) ->
        Array.fold_left
          (fun m (el : Interned.count_elem) ->
            max_over el.Interned.eneg (max_over el.Interned.epos m))
          (-1) c.Interned.celems)
      p.Interned.counts
  in
  let counts_max idxs = Array.fold_left (fun m ci -> max m count_max.(ci)) 0 idxs in
  let weak_max =
    Array.map
      (fun (w : Interned.weak) ->
        max
          (max_over w.Interned.wneg (max_over w.Interned.wpos 0))
          (counts_max w.Interned.wcounts))
      p.Interned.weaks
  in
  Array.iter (fun a -> facts_at.(astratum.(a)) <- a :: facts_at.(astratum.(a)))
    p.Interned.facts;
  Array.iteri
    (fun ridx (r : Interned.rule) ->
      let s = astratum.(r.Interned.head) in
      rules_at.(s) <- ridx :: rules_at.(s);
      Array.iter
        (fun a -> if astratum.(a) = s then watch.(a) <- WRule ridx :: watch.(a))
        r.Interned.pos)
    p.Interned.rules;
  Array.iteri
    (fun cidx (c : Interned.choice) ->
      if Array.length c.Interned.elems > 0 then begin
        let s = astratum.(c.Interned.elems.(0).Interned.eatom) in
        choices_at.(s) <- cidx :: choices_at.(s);
        bounds_at.(s) <- cidx :: bounds_at.(s);
        Array.iter
          (fun a ->
            if astratum.(a) = s then
              watch.(a) <- WChoiceBody cidx :: watch.(a))
          c.Interned.cpos;
        Array.iteri
          (fun eidx (el : Interned.elem) ->
            Array.iter
              (fun a ->
                if astratum.(a) = s then
                  watch.(a) <- WChoiceElem (cidx, eidx) :: watch.(a))
              el.Interned.egpos;
            if c.Interned.upper <> None then begin
              bwatch.(el.Interned.eatom) <- cidx :: bwatch.(el.Interned.eatom);
              Array.iter
                (fun a -> bwatch.(a) <- cidx :: bwatch.(a))
                el.Interned.egpos
            end)
          c.Interned.elems
      end
      else begin
        (* an element-free choice still carries bounds over its body *)
        let s =
          max
            (max_over c.Interned.cneg (max_over c.Interned.cpos 0))
            (counts_max c.Interned.ccounts)
        in
        bounds_at.(s) <- cidx :: bounds_at.(s)
      end)
    p.Interned.choices;
  Array.iteri
    (fun kidx (c : Interned.constr) ->
      let s =
        max
          (max_over c.Interned.kneg (max_over c.Interned.kpos 0))
          (counts_max c.Interned.kcounts)
      in
      constraints_at.(s) <- kidx :: constraints_at.(s);
      Array.iter (fun a -> cwatch.(a) <- kidx :: cwatch.(a)) c.Interned.kpos;
      Array.iter (fun a -> cwatch.(a) <- kidx :: cwatch.(a)) c.Interned.kneg)
    p.Interned.constraints;
  {
    p;
    astratum;
    max_stratum = st.max_stratum;
    facts_at;
    rules_at;
    choices_at;
    bounds_at;
    constraints_at;
    count_max;
    weak_max;
    watch;
    cwatch;
    bwatch;
    value = Bitset.create n;
    trail = Ivec.create ();
    qhead = 0;
    decided = Array.make (max n 1) 0;
    stats;
    on_leaf;
    on_boundary;
  }

(* partial weak-constraint cost over the weaks that are already final;
   with non-negative weights this is a lower bound on every extension *)
let partial_cost e s =
  let tuples = Hashtbl.create 16 in
  Array.iteri
    (fun widx (w : Interned.weak) ->
      if
        e.weak_max.(widx) <= s
        && all_true e w.Interned.wpos
        && none_true e w.Interned.wneg
        && Interned.counts_sat e.p e.value w.Interned.wcounts
      then
        Hashtbl.replace tuples (w.Interned.priority, w.Interned.weight, w.Interned.terms) ())
    e.p.Interned.weaks;
  let per_level = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (priority, weight, _) () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt per_level priority) in
      Hashtbl.replace per_level priority (cur + weight))
    tuples;
  Hashtbl.fold (fun pr w acc -> (pr, w) :: acc) per_level []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)

(* ------------------------------------------------------------------ *)
(* Non-stratified fallback: guess negated atoms, verify the reduct      *)
(* ------------------------------------------------------------------ *)

(* least model of the reduct via a worklist over an all-rules watch index;
   negatives are decided by [guess], choice atoms admitted by [guess] *)
let eval_reduct_interned (p : Interned.t) ~guess value stats =
  Bitset.reset value;
  let trail = Ivec.create () in
  let qhead = ref 0 in
  let n = p.Interned.n_atoms in
  let watch = Array.make (max n 1) [] in
  Array.iteri
    (fun ridx (r : Interned.rule) ->
      Array.iter
        (fun a -> watch.(a) <- WRule ridx :: watch.(a))
        r.Interned.pos)
    p.Interned.rules;
  Array.iteri
    (fun cidx (c : Interned.choice) ->
      Array.iter
        (fun a -> watch.(a) <- WChoiceBody cidx :: watch.(a))
        c.Interned.cpos;
      Array.iteri
        (fun eidx (el : Interned.elem) ->
          Array.iter
            (fun a -> watch.(a) <- WChoiceElem (cidx, eidx) :: watch.(a))
            el.Interned.egpos)
        c.Interned.elems)
    p.Interned.choices;
  let add a =
    if not (Bitset.get value a) then begin
      Bitset.set value a;
      Ivec.push trail a;
      stats.Stats.firings <- stats.Stats.firings + 1
    end
  in
  let neg_ok ids = not (Array.exists (fun i -> Bitset.get guess i) ids) in
  let all_true ids = Array.for_all (fun i -> Bitset.get value i) ids in
  let try_rule ridx =
    let r = p.Interned.rules.(ridx) in
    if
      (not (Bitset.get value r.Interned.head))
      && all_true r.Interned.pos && neg_ok r.Interned.neg
    then add r.Interned.head
  in
  let try_elem cidx eidx =
    let c = p.Interned.choices.(cidx) in
    let el = c.Interned.elems.(eidx) in
    if
      all_true c.Interned.cpos && neg_ok c.Interned.cneg
      && Bitset.get guess el.Interned.eatom
      && all_true el.Interned.egpos
      && neg_ok el.Interned.egneg
    then add el.Interned.eatom
  in
  let try_choice_body cidx =
    let c = p.Interned.choices.(cidx) in
    if all_true c.Interned.cpos && neg_ok c.Interned.cneg then
      Array.iteri (fun eidx _ -> try_elem cidx eidx) c.Interned.elems
  in
  Array.iter add p.Interned.facts;
  Array.iteri (fun ridx _ -> try_rule ridx) p.Interned.rules;
  Array.iteri (fun cidx _ -> try_choice_body cidx) p.Interned.choices;
  while !qhead < trail.Ivec.len do
    let a = trail.Ivec.a.(!qhead) in
    incr qhead;
    List.iter
      (function
        | WRule r -> try_rule r
        | WChoiceBody c -> try_choice_body c
        | WChoiceElem (c, el) -> try_elem c el)
      watch.(a)
  done

let constraints_ok_interned (p : Interned.t) value =
  Array.for_all
    (fun (c : Interned.constr) ->
      not
        (Array.for_all (fun i -> Bitset.get value i) c.Interned.kpos
        && (not (Array.exists (fun i -> Bitset.get value i) c.Interned.kneg))
        && Interned.counts_sat p value c.Interned.kcounts))
    p.Interned.constraints

let bounds_ok_interned (p : Interned.t) value =
  Array.for_all
    (fun (c : Interned.choice) ->
      let all_true ids = Array.for_all (fun i -> Bitset.get value i) ids in
      let none_true ids = not (Array.exists (fun i -> Bitset.get value i) ids) in
      if
        not
          (all_true c.Interned.cpos && none_true c.Interned.cneg
          && Interned.counts_sat p value c.Interned.ccounts)
      then true
      else begin
        let chosen = ref 0 in
        Array.iter
          (fun (el : Interned.elem) ->
            if
              Bitset.get value el.Interned.eatom
              && all_true el.Interned.egpos
              && none_true el.Interned.egneg
            then incr chosen)
          c.Interned.elems;
        (match c.Interned.lower with Some lo -> !chosen >= lo | None -> true)
        && match c.Interned.upper with Some hi -> !chosen <= hi | None -> true
      end)
    p.Interned.choices

(* ------------------------------------------------------------------ *)
(* Top-level drivers                                                    *)
(* ------------------------------------------------------------------ *)

let solve_core ?limit ?(max_guess = default_max_guess) ~optimal (g : Ground.t) =
  let t0 = Unix.gettimeofday () in
  let stats = Stats.create () in
  let st = stratify g in
  let p = Interned.compile g in
  let models = ref [] in
  let seen : (Bitset.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let n_found = ref 0 in
  let best = ref None in
  let bnb = optimal && not p.Interned.has_negative_weight in
  let add_model bits =
    let key = Bitset.copy bits in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      stats.Stats.models <- stats.Stats.models + 1;
      let cost = Interned.cost_of p bits in
      if optimal then begin
        (* models already beaten by the incumbent can never be optimal *)
        let keep =
          match !best with Some b -> Model.compare_cost cost b <= 0 | None -> true
        in
        (match !best with
        | Some b when Model.compare_cost cost b >= 0 -> ()
        | _ -> best := Some cost);
        if keep then
          models := Model.make ~cost (Interned.atoms_of_bitset p bits) :: !models
      end
      else begin
        models := Model.make ~cost (Interned.atoms_of_bitset p bits) :: !models;
        incr n_found;
        match limit with Some l when !n_found >= l -> raise Done | _ -> ()
      end
    end
  in
  (try
     if st.ok then begin
       let n_choices = Bitset.cardinal p.Interned.choice_atoms in
       if n_choices > max_guess then
         raise
           (Unsupported
              (Printf.sprintf "%d choice atoms exceed the guess bound %d"
                 n_choices max_guess));
       let on_leaf e = add_model e.value in
       let on_boundary e s =
         if bnb then
           match !best with
           | None -> ()
           | Some b ->
               if Model.compare_cost (partial_cost e s) b > 0 then raise Prune
       in
       let e = make_engine p st stats ~on_leaf ~on_boundary in
       try
         let acc = ref [] in
         seed e 0 acc;
         run_stratum e 0 (List.rev !acc)
       with Prune -> stats.Stats.pruned <- stats.Stats.pruned + 1
     end
     else begin
       (* non-stratified fallback: guess negated atoms too and verify the
          Gelfond–Lifschitz consistency condition *)
       if p.Interned.has_counts then
         raise
           (Unsupported
              "aggregates require the program to be stratified modulo choices");
       let n = p.Interned.n_atoms in
       let negs = Bitset.create n in
       Array.iter
         (fun (r : Interned.rule) -> Array.iter (Bitset.set negs) r.Interned.neg)
         p.Interned.rules;
       Array.iter
         (fun (c : Interned.choice) ->
           Array.iter (Bitset.set negs) c.Interned.cneg;
           Array.iter
             (fun (el : Interned.elem) ->
               Array.iter (Bitset.set negs) el.Interned.egneg)
             c.Interned.elems)
         p.Interned.choices;
       let guess_ids = ref [] in
       for i = n - 1 downto 0 do
         if Bitset.get negs i || Bitset.get p.Interned.choice_atoms i then
           guess_ids := i :: !guess_ids
       done;
       let guess_ids = !guess_ids in
       let n_guess = List.length guess_ids in
       if n_guess > max_guess then
         raise
           (Unsupported
              (Printf.sprintf
                 "non-stratified program with %d guess atoms exceeds bound %d"
                 n_guess max_guess));
       let neg_ids = ref [] in
       for i = n - 1 downto 0 do
         if Bitset.get negs i then neg_ids := i :: !neg_ids
       done;
       let neg_ids = !neg_ids in
       let guess = Bitset.create n in
       let value = Bitset.create n in
       let rec go = function
         | [] ->
             stats.Stats.leaves <- stats.Stats.leaves + 1;
             eval_reduct_interned p ~guess value stats;
             let consistent =
               List.for_all
                 (fun a -> Bitset.get value a = Bitset.get guess a)
                 neg_ids
             in
             if
               consistent
               && constraints_ok_interned p value
               && bounds_ok_interned p value
             then add_model value
         | a :: rest ->
             stats.Stats.guesses <- stats.Stats.guesses + 2;
             go rest;
             Bitset.set guess a;
             go rest;
             Bitset.clear guess a
       in
       (try go guess_ids with Done -> ())
     end
   with Done -> ());
  let result = List.sort Model.compare !models in
  let result =
    if optimal then
      match !best with
      | None -> []
      | Some b ->
          List.filter (fun m -> Model.compare_cost (Model.cost m) b = 0) result
    else result
  in
  stats.Stats.wall_s <- Unix.gettimeofday () -. t0;
  (result, stats)

let solve_with_stats ?limit ?max_guess g =
  solve_core ?limit ?max_guess ~optimal:false g

let solve ?limit ?max_guess g = fst (solve_with_stats ?limit ?max_guess g)

let solve_optimal_with_stats ?max_guess g =
  solve_core ?max_guess ~optimal:true g

let solve_optimal ?max_guess g = fst (solve_optimal_with_stats ?max_guess g)

let satisfiable ?max_guess g = solve ?max_guess ~limit:1 g <> []

(* Gelfond–Lifschitz verification stays on the reference implementation:
   the oracle must share no code with the fast path it validates. *)
let is_stable_model = Naive.is_stable_model
