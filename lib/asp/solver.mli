(** Stable-model search by conflict-driven nogood learning (CDNL-ASP).

    The production solving path, superseding the pruned DFS (retained
    verbatim as {!Dfs}). The ground program is compiled to its Clark
    completion over atom, aggregate and body variables ({!Completion});
    search is a CDCL loop ({!Nogood}): two-watched-literal unit
    propagation over a trail with decision levels, 1-UIP conflict
    analysis with clause learning, non-chronological backjumping, VSIDS
    decision heuristic with saved phases, Luby restarts, and
    activity-based deletion of learned nogoods. On top of the clausal
    core sit three lazy ASP propagators:

    - {b aggregates} are evaluated against the candidate once every atom
      in their scope is assigned (the reference semantics: aggregates
      contribute no foundedness), asserting the aggregate variable with
      the scope assignment as reason;
    - {b choice bounds} likewise fire once their scope is assigned and
      contribute the violated assignment as a conflict;
    - {b unfounded-set checks} run on the non-trivial SCCs of the
      positive dependency graph whenever a support body becomes false:
      atoms without external support get loop nogoods (Lin–Zhao for
      arbitrary sets), so non-tight and non-stratified programs are
      solved natively — the old exhaustive [2^n] fallback and its
      64-atom guess cap are gone.

    Models are enumerated with {e blocking nogoods under chronological
    backtracking}: recording a model pops one decision level and resumes
    instead of learning and restarting, so adjacent models are reached
    without rebuilding the assignment prefix (see DESIGN.md §12.3).
    Results are returned sorted, bit-for-bit identical to {!Naive} and
    {!Dfs}. {!solve_optimal} keeps branch-and-bound and learns a decision
    nogood from every bound violation; the bound is a per-priority-level
    lower bound that adds the weights of still-undecided negative tuples,
    so pruning stays sound (and enabled) under mixed-sign weights.

    Before search, the completion nogoods run through {!Preprocess}
    (unit propagation to fixpoint, duplicate and subsumed-clause
    elimination, and — on tight programs — body-variable equivalence and
    pure-literal reduction); programs in the propagation-only fragment
    skip CDNL entirely ({!Cheap}). Both are on by default and switchable
    via {!Config}.

    [?assumptions] fixes atom values under dedicated decision levels
    before search starts — the guiding-path mechanism used by
    [Engine.Par] to split enumeration across domains deterministically.
    [Config.exchange] plugs the solver into a learned-nogood {!Exchange}
    between such domains: only clauses from 1-UIP analyses untainted by
    path-local nogoods are published, so imports are sound under any
    other path's assumptions and the merged result stays bit-for-bit
    identical to a sequential solve. *)

exception Unsupported of string
(** Retained for API compatibility with {!Dfs}; the CDNL path has no
    unsupported ground form and never raises it. *)

val default_max_guess : int
(** 64 — only meaningful to {!Dfs}. The CDNL solver accepts [?max_guess]
    for drop-in compatibility and ignores it: search is polynomial-space
    in the guess dimension, so no cap is needed. *)

module Stats = Solver_stats
(** Search statistics; fresh per [solve_*_with_stats] call, so repeated
    or re-entrant solves report independent counters and wall times. *)

module Config : sig
  type t = {
    preprocess : bool;
        (** run {!Preprocess} over the completion nogoods (default on) *)
    cheap_tier : bool;
        (** dispatch eligible programs to the propagation-only {!Cheap}
            tier (default on); disabled automatically under assumptions
            and under optimization with weak constraints *)
    exchange : (Exchange.t * int) option;
        (** learned-nogood sharing: the hub and this solver's path id
            (default [None]) *)
  }

  val default : t
end

val solve :
  ?limit:int ->
  ?max_guess:int ->
  ?assumptions:(Atom.t * bool) list ->
  ?config:Config.t ->
  Ground.t ->
  Model.t list
(** All stable models (up to [limit], default unlimited), deduplicated,
    sorted by atom set; [#show] projections are {e not} applied — use
    {!Model.project} with [Ground.shows]. Under [assumptions], exactly
    the stable models consistent with the assumed atom values. *)

val solve_with_stats :
  ?limit:int ->
  ?max_guess:int ->
  ?assumptions:(Atom.t * bool) list ->
  ?config:Config.t ->
  Ground.t ->
  Model.t list * Stats.t
(** Same as {!solve}, also returning search statistics. *)

val solve_optimal :
  ?max_guess:int ->
  ?assumptions:(Atom.t * bool) list ->
  ?config:Config.t ->
  Ground.t ->
  Model.t list
(** Models with the minimal weak-constraint cost (all optima). *)

val solve_optimal_with_stats :
  ?max_guess:int ->
  ?assumptions:(Atom.t * bool) list ->
  ?config:Config.t ->
  Ground.t ->
  Model.t list * Stats.t

val satisfiable : ?max_guess:int -> ?config:Config.t -> Ground.t -> bool

val cheap_eligible : Ground.t -> bool
(** Whether the cheap-tier classifier accepts the program (exposed for
    tests of the tier dispatch; see {!Cheap.eligible}). *)

val guiding_atoms : Ground.t -> int -> Atom.t list
(** Up to [n] split atoms for guiding-path parallel enumeration: choice
    atoms in interned id order, then atoms under negation. Conditioning
    on any atom set partitions the model space, so fanning out over all
    [2^k] sign vectors and merging is equivalent to a sequential solve. *)

val is_stable_model : Ground.t -> Model.AtomSet.t -> bool
(** Independent Gelfond–Lifschitz verification, delegated to the retained
    {!Naive} reference so the oracle shares no code with the fast path. *)
