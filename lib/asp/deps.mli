(** Predicate-level dependency analysis: dependency graph, strongly connected
    components and stratification. A program is stratified when no SCC of the
    dependency graph contains a negative edge; stratified programs (given
    values for choice-head predicates) have a unique stable model computable
    by iterated fixpoint. *)

type edge = Positive | Negative

type t
(** Dependency graph over predicate signatures. *)

val of_program : Program.t -> t

val predicates : t -> (string * int) list

val sccs : t -> (string * int) list list
(** Strongly connected components in reverse topological order (callees
    first), computed with Tarjan's algorithm. *)

val stratified : t -> bool
(** No negative edge inside any SCC. *)

val negative_cycle_sccs : t -> (string * int) list list
(** The strongly connected components that do contain an internal negative
    edge — the witnesses of non-stratification, one per offending cycle. *)

val positive_cycle_sccs : t -> (string * int) list list
(** The strongly connected components with an internal positive edge —
    positive recursion, the predicate-level witnesses of non-tightness.
    Atoms in such cycles cannot support themselves: the CDNL solver runs
    unfounded-set checks over them, and the pre-CDNL solving paths fell
    back to exhaustive search. A self-recursive predicate forms a
    one-element component here; acyclic predicates do not. *)

val strata : t -> ((string * int) * int) list option
(** Stratum number per predicate ([None] when not stratified): body
    predicates have strata [<=] the head's; negated body predicates have
    strictly smaller strata. *)

val positive_body_signatures : Rule.t -> (string * int) list
(** Signatures of the rule's positive body literals, in body order,
    duplicates kept (one entry per join position — what {!Grounder}'s
    semi-naive rule index is keyed on). *)

val condition_signatures : Rule.t -> (string * int) list
(** Signatures whose ground extension influences the rule's instantiation
    through something other than the positive body join: negated body atoms,
    every atom of an aggregate condition, and every atom of a choice
    element's condition. A rule none of whose condition signatures gained
    atoms instantiates identically over a grown universe except for new
    positive-body joins — the invariant {!Grounder.extend} exploits to reuse
    base ground rules. *)

val choice_predicates : Program.t -> (string * int) list
(** Signatures occurring in choice-rule heads. *)

val negated_predicates : Program.t -> (string * int) list
(** Signatures occurring under default negation. *)
