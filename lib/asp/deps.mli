(** Predicate-level dependency analysis: dependency graph, strongly connected
    components and stratification. A program is stratified when no SCC of the
    dependency graph contains a negative edge; stratified programs (given
    values for choice-head predicates) have a unique stable model computable
    by iterated fixpoint. *)

type edge = Positive | Negative

type t
(** Dependency graph over predicate signatures. *)

val of_program : Program.t -> t

val predicates : t -> (string * int) list

val sccs : t -> (string * int) list list
(** Strongly connected components in reverse topological order (callees
    first), computed with Tarjan's algorithm. *)

val stratified : t -> bool
(** No negative edge inside any SCC. *)

val negative_cycle_sccs : t -> (string * int) list list
(** The strongly connected components that do contain an internal negative
    edge — the witnesses of non-stratification, one per offending cycle. *)

val strata : t -> ((string * int) * int) list option
(** Stratum number per predicate ([None] when not stratified): body
    predicates have strata [<=] the head's; negated body predicates have
    strictly smaller strata. *)

val choice_predicates : Program.t -> (string * int) list
(** Signatures occurring in choice-rule heads. *)

val negated_predicates : Program.t -> (string * int) list
(** Signatures occurring under default negation. *)
