(* The pre-rewrite two-phase grounder, retained verbatim as the differential
   oracle for [Grounder] (the same role [Naive] plays for [Solver]). The only
   behavioural deltas from the historical code are (a) the [?universe_seed]
   over-approximation hook is gone — superseded by [Grounder.prepare]/[extend]
   — and (b) phase-2 candidate lists are canonicalised to ascending
   [Atom.compare] order so that enumeration order (and therefore the emitted
   [Ground.t]) is a function of the universe *set*, not of derivation order.
   [Grounder] applies the same canonicalisation, which is what makes
   bit-for-bit comparison of the two outputs meaningful. *)

exception Unsafe of string
exception Overflow of string

let check_rule r =
  match Safety.violations r with
  | [] -> ()
  | vs ->
      let located =
        match Rule.pos r with
        | Some p -> Rule.pos_to_string p ^ ": "
        | None -> ""
      in
      raise (Unsafe (located ^ Safety.describe r vs))

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

let rec unify subst pat gterm =
  let pat = Term.substitute subst pat in
  let pat = if Term.is_ground pat then Term.eval pat else pat in
  match pat.Term.node with
  | Term.Var v -> Some ((v, gterm) :: subst)
  | Term.Func (f, args) -> (
      match gterm.Term.node with
      | Term.Func (g, gargs)
        when String.equal f g && List.length args = List.length gargs ->
          unify_all subst args gargs
      | Term.Const _ | Term.Int _ | Term.Str _ | Term.Var _ | Term.Func _ ->
          None)
  | Term.Const _ | Term.Int _ | Term.Str _ ->
      if Term.equal pat gterm then Some subst else None

and unify_all subst pats gterms =
  match pats, gterms with
  | [], [] -> Some subst
  | p :: ps, g :: gs -> (
      match unify subst p g with
      | Some subst -> unify_all subst ps gs
      | None -> None)
  | _ -> None

let unify_atom subst (pat : Atom.t) (ga : Atom.t) =
  if String.equal pat.Atom.pred ga.Atom.pred then
    unify_all subst pat.Atom.args ga.Atom.args
  else None

type builtin_step = Result of bool | Bind of string * Term.t | Stuck

let try_builtin subst (l, op, r) =
  let l' = Term.substitute subst l and r' = Term.substitute subst r in
  if Term.is_ground l' && Term.is_ground r' then Result (Lit.eval_cmp op l' r')
  else
    match op, l'.Term.node, r'.Term.node with
    | Lit.Eq, Term.Var v, _ when Term.is_ground r' -> Bind (v, Term.eval r')
    | Lit.Eq, _, Term.Var v when Term.is_ground l' -> Bind (v, Term.eval l')
    | _ -> Stuck

let rec discharge subst builtins =
  let progressed = ref false in
  let rec pass subst acc = function
    | [] -> Some (subst, List.rev acc)
    | b :: rest -> (
        match try_builtin subst b with
        | Result true ->
            progressed := true;
            pass subst acc rest
        | Result false -> None
        | Bind (v, t) ->
            progressed := true;
            pass ((v, t) :: subst) acc rest
        | Stuck -> pass subst (b :: acc) rest)
  in
  match pass subst [] builtins with
  | None -> None
  | Some (subst, []) -> Some (subst, [])
  | Some (subst, leftover) ->
      if !progressed then discharge subst leftover else Some (subst, leftover)

let matches by_sig subst0 lits ~on_match =
  let positives =
    List.filter_map
      (function
        | Lit.Pos a -> Some a
        | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> None)
      lits
  in
  let builtins =
    List.filter_map
      (function
        | Lit.Cmp (l, op, r) -> Some (l, op, r)
        | Lit.Pos _ | Lit.Neg _ | Lit.Count _ -> None)
      lits
  in
  let candidates sg =
    match Hashtbl.find_opt by_sig sg with Some l -> !l | None -> []
  in
  let rec go subst builtins = function
    | [] -> (
        match discharge subst builtins with
        | Some (subst, []) -> on_match subst
        | Some (_, _ :: _) ->
            raise (Unsafe "builtin comparison with unbound variables")
        | None -> ())
    | pat :: rest -> (
        match discharge subst builtins with
        | None -> ()
        | Some (subst, builtins) ->
            let pat' = Atom.substitute subst pat in
            List.iter
              (fun ga ->
                match unify_atom subst pat' ga with
                | Some subst -> go subst builtins rest
                | None -> ())
              (candidates (Atom.signature pat')))
  in
  go subst0 builtins positives

let negatives lits =
  List.filter_map
    (function Lit.Neg a -> Some a | Lit.Pos _ | Lit.Cmp _ | Lit.Count _ -> None)
    lits

let positive_atoms lits =
  List.filter_map
    (function Lit.Pos a -> Some a | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> None)
    lits

let count_lits lits =
  List.filter_map
    (function
      | Lit.Count c -> Some c | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ -> None)
    lits

(* ------------------------------------------------------------------ *)
(* Grounding                                                           *)
(* ------------------------------------------------------------------ *)

let ground ?(max_atoms = 200_000) p =
  List.iter check_rule (Program.rules p);
  let univ : (Atom.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let by_sig : (string * int, Atom.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  let add_atom a =
    let a = Atom.eval a in
    if not (Atom.is_ground a) then
      raise (Unsafe ("derived non-ground atom " ^ Atom.to_string a));
    if Hashtbl.mem univ a then false
    else begin
      Hashtbl.replace univ a ();
      incr count;
      if !count > max_atoms then
        raise
          (Overflow
             (Printf.sprintf "atom universe exceeded %d atoms" max_atoms));
      let key = Atom.signature a in
      (match Hashtbl.find_opt by_sig key with
      | Some l -> l := a :: !l
      | None -> Hashtbl.add by_sig key (ref [ a ]));
      true
    end
  in
  (* Phase 1: universe fixpoint over the positive projection. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        match r with
        | Rule.Weak _ -> ()
        | Rule.Rule { head; body; _ } ->
            matches by_sig [] body ~on_match:(fun subst ->
                match head with
                | Rule.Falsity -> ()
                | Rule.Head a ->
                    if add_atom (Atom.substitute subst a) then changed := true
                | Rule.Choice { elems; _ } ->
                    List.iter
                      (fun (e : Rule.choice_elem) ->
                        matches by_sig subst e.cond ~on_match:(fun subst' ->
                            if add_atom (Atom.substitute subst' e.atom) then
                              changed := true))
                      elems))
      (Program.rules p)
  done;
  (* Canonicalise candidate order before phase 2 (see module comment). *)
  Hashtbl.iter (fun _ l -> l := List.sort Atom.compare !l) by_sig;
  (* Phase 2: final instantiation. *)
  let in_universe a = Hashtbl.mem univ a in
  let simplify_negs negs =
    List.filter in_universe (List.map (fun a -> Atom.eval a) negs)
  in
  let seen : (Ground.grule, unit) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  let emit gr =
    if not (Hashtbl.mem seen gr) then begin
      Hashtbl.replace seen gr ();
      out := gr :: !out
    end
  in
  let ground_pos subst lits =
    List.map (fun a -> Atom.eval (Atom.substitute subst a)) (positive_atoms lits)
  in
  let ground_neg subst lits =
    simplify_negs (List.map (Atom.substitute subst) (negatives lits))
  in
  let ground_counts subst lits rule_str =
    List.map
      (fun (c : Lit.count) ->
        let cbound =
          match Term.eval_int (Term.substitute subst c.Lit.bound) with
          | Some n -> n
          | None ->
              raise
                (Unsafe ("aggregate bound is not an integer in: " ^ rule_str))
        in
        let celems = ref [] in
        matches by_sig subst c.Lit.cond ~on_match:(fun subst' ->
            let ce =
              {
                Ground.etuple =
                  List.map
                    (fun t -> Term.eval (Term.substitute subst' t))
                    c.Lit.terms;
                epos = ground_pos subst' c.Lit.cond;
                eneg = ground_neg subst' c.Lit.cond;
              }
            in
            if not (List.mem ce !celems) then celems := ce :: !celems);
        {
          Ground.ckind = c.Lit.kind;
          celems = List.rev !celems;
          cop = c.Lit.op;
          cbound;
        })
      (count_lits lits)
  in
  List.iter
    (fun r ->
      let rule_str = Rule.to_string r in
      match r with
      | Rule.Rule { head; body; _ } ->
          matches by_sig [] body ~on_match:(fun subst ->
              let pos = ground_pos subst body in
              let neg = ground_neg subst body in
              let counts = ground_counts subst body rule_str in
              match head with
              | Rule.Head a ->
                  let head = Atom.eval (Atom.substitute subst a) in
                  if pos = [] && neg = [] && counts = [] then
                    emit (Ground.Gfact head)
                  else emit (Ground.Grule { head; pos; neg; counts })
              | Rule.Falsity -> emit (Ground.Gconstraint { pos; neg; counts })
              | Rule.Choice { lower; upper; elems } ->
                  let gelems = ref [] in
                  List.iter
                    (fun (e : Rule.choice_elem) ->
                      matches by_sig subst e.cond ~on_match:(fun subst' ->
                          let ge =
                            {
                              Ground.gatom =
                                Atom.eval (Atom.substitute subst' e.atom);
                              gpos = ground_pos subst' e.cond;
                              gneg = ground_neg subst' e.cond;
                            }
                          in
                          if not (List.mem ge !gelems) then
                            gelems := ge :: !gelems))
                    elems;
                  emit
                    (Ground.Gchoice
                       { lower; upper; elems = List.rev !gelems; pos; neg; counts }))
      | Rule.Weak { body; weight; priority; terms; _ } ->
          matches by_sig [] body ~on_match:(fun subst ->
              let pos = ground_pos subst body in
              let neg = ground_neg subst body in
              let counts = ground_counts subst body rule_str in
              let weight =
                match Term.eval_int (Term.substitute subst weight) with
                | Some w -> w
                | None ->
                    raise
                      (Unsafe
                         ("weak constraint weight is not an integer: "
                        ^ Rule.to_string r))
              in
              let terms =
                List.map (fun t -> Term.eval (Term.substitute subst t)) terms
              in
              emit (Ground.Gweak { pos; neg; counts; weight; priority; terms })))
    (Program.rules p);
  let universe =
    Hashtbl.fold
      (fun a () acc -> Model.AtomSet.add a acc)
      univ Model.AtomSet.empty
  in
  { Ground.rules = List.rev !out; universe; shows = Program.shows p }
