(** Dense bit vectors over contiguous atom ids (see {!Interned}).

    Models and partial assignments are represented as byte buffers instead
    of balanced [AtomSet] trees: membership is a shift-and-mask, copying is
    a [Bytes.copy], and deduplication hashes the raw buffer content. *)

type t

val create : int -> t
(** [create n] is an all-false vector able to hold bits [0 .. n-1]. *)

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val copy : t -> t
val reset : t -> unit
(** Clear every bit in place. *)

val equal : t -> t -> bool
val hash : t -> int
(** Content hash, suitable for keying a [Hashtbl]. *)

val cardinal : t -> int

val iter_true : (int -> unit) -> t -> unit
(** Visit set bits in increasing id order. *)
