type t = { hkey : int; ground : bool; normal : bool; node : node }

and node =
  | Const of string
  | Int of int
  | Str of string
  | Var of string
  | Func of string * t list

type subst = (string * t) list

let arith_ops = [ "+"; "-"; "*"; "/"; "abs"; "min"; "max"; "mod" ]

(* ------------------------------------------------------------------ *)
(* Structural hashing (deterministic across runs and domains)          *)
(* ------------------------------------------------------------------ *)

(* FNV-1a folded into OCaml's native int width. The constants are the
   64-bit FNV parameters with the offset basis truncated to 62 bits so the
   literal fits a 63-bit int; multiplication wraps, which is fine — all
   that matters is that the function is a pure function of the structure. *)
let fnv_basis = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3
let fnv_byte h b = (h lxor (b land 0xff)) * fnv_prime

let fnv_int h n =
  let rec go h i v = if i = 8 then h else go (fnv_byte h v) (i + 1) (v asr 8) in
  go h 0 n

let fnv_string h s =
  let h = fnv_int h (String.length s) in
  let r = ref h in
  String.iter (fun c -> r := fnv_byte !r (Char.code c)) s;
  !r

let node_hash = function
  | Const s -> fnv_string (fnv_byte fnv_basis 1) s
  | Int n -> fnv_int (fnv_byte fnv_basis 2) n
  | Str s -> fnv_string (fnv_byte fnv_basis 3) s
  | Var v -> fnv_string (fnv_byte fnv_basis 4) v
  | Func (f, args) ->
      List.fold_left
        (fun h a -> fnv_int h a.hkey)
        (fnv_int (fnv_string (fnv_byte fnv_basis 5) f) (List.length args))
        args

(* ------------------------------------------------------------------ *)
(* Equality / order                                                    *)
(* ------------------------------------------------------------------ *)

let rec equal a b =
  a == b
  || (a.hkey = b.hkey
     &&
     match a.node, b.node with
     | Const x, Const y | Str x, Str y | Var x, Var y -> String.equal x y
     | Int x, Int y -> x = y
     | Func (f, xs), Func (g, ys) -> String.equal f g && equal_list xs ys
     | (Const _ | Int _ | Str _ | Var _ | Func _), _ -> false)

and equal_list xs ys =
  match xs, ys with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | _ -> false

(* fully structural (interning-independent): the canonical order shared
   with the retained oracles must not depend on arena state *)
let rec compare a b =
  if a == b then 0
  else
    let tag = function
      | Int _ -> 0
      | Const _ -> 1
      | Str _ -> 2
      | Var _ -> 3
      | Func _ -> 4
    in
    match a.node, b.node with
    | Int x, Int y -> Int.compare x y
    | Const x, Const y | Str x, Str y | Var x, Var y -> String.compare x y
    | Func (f, xs), Func (g, ys) ->
        let c = String.compare f g in
        if c <> 0 then c else List.compare compare xs ys
    | an, bn -> Int.compare (tag an) (tag bn)

let hash t = t.hkey
let is_ground t = t.ground

(* ------------------------------------------------------------------ *)
(* Interning arena (one per domain, so no lock is ever taken)          *)
(* ------------------------------------------------------------------ *)

module NodeTbl = Hashtbl.Make (struct
  type nonrec t = node

  let hash = node_hash

  let equal a b =
    match a, b with
    | Const x, Const y | Str x, Str y | Var x, Var y -> String.equal x y
    | Int x, Int y -> x = y
    | Func (f, xs), Func (g, ys) -> String.equal f g && equal_list xs ys
    | (Const _ | Int _ | Str _ | Var _ | Func _), _ -> false
end)

let node_flags = function
  | Const _ | Str _ -> (true, true)
  | Int _ -> (true, true)
  | Var _ -> (false, false)
  | Func (f, args) ->
      let ground = List.for_all (fun a -> a.ground) args in
      let normal =
        ground
        && (not (List.mem f arith_ops))
        && List.for_all (fun a -> a.normal) args
      in
      (ground, normal)

let arena : t NodeTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> NodeTbl.create 4096)

let strings : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 512)

let intern_string s =
  let tbl = Domain.DLS.get strings in
  match Hashtbl.find_opt tbl s with
  | Some s -> s
  | None ->
      Hashtbl.add tbl s s;
      s

let intern node =
  let tbl = Domain.DLS.get arena in
  match NodeTbl.find_opt tbl node with
  | Some t -> t
  | None ->
      let ground, normal = node_flags node in
      let t = { hkey = node_hash node; ground; normal; node } in
      NodeTbl.add tbl node t;
      t

let const s = intern (Const (intern_string s))
let str s = intern (Str s)
let var v = intern (Var (intern_string v))
let func f args = intern (Func (intern_string f, args))

(* small integers are ubiquitous (time steps, levels, weights): a shared
   immutable cache skips even the arena lookup *)
let small_lo = -128
let small_hi = 1024

let small_ints =
  Array.init
    (small_hi - small_lo + 1)
    (fun i ->
      let n = small_lo + i in
      let node = Int n in
      { hkey = node_hash node; ground = true; normal = true; node })

let int n =
  if n >= small_lo && n <= small_hi then small_ints.(n - small_lo)
  else intern (Int n)

let rec rehydrate t =
  match t.node with
  | Const s -> const s
  | Int n -> int n
  | Str s -> str s
  | Var v -> var v
  | Func (f, args) -> func f (List.map rehydrate args)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let vars t =
  let rec go acc t =
    if t.ground then acc
    else
      match t.node with
      | Const _ | Int _ | Str _ -> acc
      | Var v -> if List.mem v acc then acc else v :: acc
      | Func (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec substitute s t =
  if t.ground then t
  else
    match t.node with
    | Const _ | Int _ | Str _ -> t
    | Var v -> ( match List.assoc_opt v s with Some t' -> t' | None -> t)
    | Func (f, args) -> func f (List.map (substitute s) args)

let rec eval t =
  if t.normal then t
  else
    match t.node with
    | Const _ | Int _ | Str _ -> t
    | Var v ->
        invalid_arg
          (Printf.sprintf "Term.eval: non-ground term (variable %s)" v)
    | Func (f, args) when List.mem f arith_ops -> (
        let args = List.map eval args in
        let ints =
          List.map
            (fun a ->
              match a.node with
              | Int n -> n
              | _ ->
                  invalid_arg
                    (Printf.sprintf "Term.eval: arithmetic on non-integer %s"
                       (to_string a)))
            args
        in
        match f, ints with
        | "+", [ a; b ] -> int (a + b)
        | "-", [ a; b ] -> int (a - b)
        | "-", [ a ] -> int (-a)
        | "*", [ a; b ] -> int (a * b)
        | "/", [ a; b ] ->
            if b = 0 then invalid_arg "Term.eval: division by zero"
            else int (a / b)
        | "mod", [ a; b ] ->
            if b = 0 then invalid_arg "Term.eval: modulo by zero"
            else int (a mod b)
        | "abs", [ a ] -> int (abs a)
        | "min", [ a; b ] -> int (Stdlib.min a b)
        | "max", [ a; b ] -> int (Stdlib.max a b)
        | _ ->
            invalid_arg
              (Printf.sprintf "Term.eval: bad arity for arithmetic %s/%d" f
                 (List.length ints)))
    | Func (f, args) -> func f (List.map eval args)

and to_string t =
  match t.node with
  | Const c -> c
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Var v -> v
  | Func (f, [ a; b ]) when List.mem f [ "+"; "-"; "*"; "/" ] ->
      Printf.sprintf "(%s%s%s)" (to_string a) f (to_string b)
  | Func (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat "," (List.map to_string args))

let eval_int t = match (eval t).node with Int n -> Some n | _ -> None
let pp ppf t = Format.pp_print_string ppf (to_string t)
