module AtomSet = Set.Make (Atom)

type cost = (int * int) list
type t = { atoms : AtomSet.t; cost : cost }

let make ?(cost = []) atoms = { atoms; cost }
let atoms m = m.atoms
let to_list m = AtomSet.elements m.atoms
let holds m a = AtomSet.mem a m.atoms
let holds_pred m pred = AtomSet.exists (fun a -> a.Atom.pred = pred) m.atoms

let by_predicate m pred =
  AtomSet.elements (AtomSet.filter (fun a -> a.Atom.pred = pred) m.atoms)

let project sigs m =
  { m with atoms = AtomSet.filter (fun a -> List.mem (Atom.signature a) sigs) m.atoms }

let cost m = m.cost

let compare_cost a b =
  (* collect all priority levels, highest first *)
  let levels =
    List.sort_uniq (fun x y -> Stdlib.compare y x) (List.map fst a @ List.map fst b)
  in
  let weight c lvl = Option.value ~default:0 (List.assoc_opt lvl c) in
  let rec go = function
    | [] -> 0
    | lvl :: rest ->
        let c = Stdlib.compare (weight a lvl) (weight b lvl) in
        if c <> 0 then c else go rest
  in
  go levels

let rehydrate m =
  {
    m with
    atoms =
      AtomSet.fold (fun a acc -> AtomSet.add (Atom.rehydrate a) acc) m.atoms
        AtomSet.empty;
  }

let equal a b = AtomSet.equal a.atoms b.atoms
let compare a b = AtomSet.compare a.atoms b.atoms

let to_string m =
  let atoms = List.map Atom.to_string (to_list m) in
  let base = "{" ^ String.concat ", " atoms ^ "}" in
  match m.cost with
  | [] -> base
  | cost ->
      let cs =
        List.map (fun (p, w) -> Printf.sprintf "%d@%d" w p) cost
        |> String.concat ", "
      in
      Printf.sprintf "%s cost[%s]" base cs

let pp ppf m = Format.pp_print_string ppf (to_string m)
