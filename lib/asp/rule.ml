type choice_elem = { atom : Atom.t; cond : Lit.t list }

type pos = { line : int; col : int }

type head =
  | Head of Atom.t
  | Choice of { lower : int option; upper : int option; elems : choice_elem list }
  | Falsity

type t =
  | Rule of { head : head; body : Lit.t list; pos : pos option }
  | Weak of {
      body : Lit.t list;
      weight : Term.t;
      priority : int;
      terms : Term.t list;
      pos : pos option;
    }

let fact ?pos a = Rule { head = Head a; body = []; pos }
let rule ?pos a body = Rule { head = Head a; body; pos }
let constraint_ ?pos body = Rule { head = Falsity; body; pos }

let choice ?lower ?upper ?pos elems body =
  Rule { head = Choice { lower; upper; elems }; body; pos }

let weak ?(priority = 0) ?(terms = []) ?pos ~weight body =
  Weak { body; weight; priority; terms; pos }

let pos = function Rule { pos; _ } | Weak { pos; _ } -> pos

let with_pos pos = function
  | Rule r -> Rule { r with pos = Some pos }
  | Weak w -> Weak { w with pos = Some pos }

let pos_to_string { line; col } = Printf.sprintf "line %d, col %d" line col

let add_vars acc vs = List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc vs

let vars = function
  | Rule { head; body; _ } ->
      let acc =
        match head with
        | Head a -> add_vars [] (Atom.vars a)
        | Falsity -> []
        | Choice { elems; _ } ->
            List.fold_left
              (fun acc e ->
                let acc = add_vars acc (Atom.vars e.atom) in
                List.fold_left (fun acc l -> add_vars acc (Lit.vars l)) acc e.cond)
              [] elems
      in
      List.rev (List.fold_left (fun acc l -> add_vars acc (Lit.vars l)) acc body)
  | Weak { body; weight; terms; _ } ->
      let acc = List.fold_left (fun acc l -> add_vars acc (Lit.vars l)) [] body in
      let acc = add_vars acc (Term.vars weight) in
      List.rev
        (List.fold_left (fun acc t -> add_vars acc (Term.vars t)) acc terms)

let is_ground r = vars r = []

let substitute s = function
  | Rule { head; body; pos } ->
      let head =
        match head with
        | Head a -> Head (Atom.substitute s a)
        | Falsity -> Falsity
        | Choice { lower; upper; elems } ->
            Choice
              {
                lower;
                upper;
                elems =
                  List.map
                    (fun e ->
                      {
                        atom = Atom.substitute s e.atom;
                        cond = List.map (Lit.substitute s) e.cond;
                      })
                    elems;
              }
      in
      Rule { head; body = List.map (Lit.substitute s) body; pos }
  | Weak { body; weight; priority; terms; pos } ->
      Weak
        {
          body = List.map (Lit.substitute s) body;
          weight = Term.substitute s weight;
          priority;
          terms = List.map (Term.substitute s) terms;
          pos;
        }

let head_atoms = function
  | Rule { head = Head a; _ } -> [ a ]
  | Rule { head = Choice { elems; _ }; _ } -> List.map (fun e -> e.atom) elems
  | Rule { head = Falsity; _ } | Weak _ -> []

let body = function Rule { body; _ } | Weak { body; _ } -> body

let body_to_string body = String.concat ", " (List.map Lit.to_string body)

let to_string = function
  | Rule { head = Head a; body = []; _ } -> Atom.to_string a ^ "."
  | Rule { head = Head a; body; _ } ->
      Printf.sprintf "%s :- %s." (Atom.to_string a) (body_to_string body)
  | Rule { head = Falsity; body; _ } ->
      Printf.sprintf ":- %s." (body_to_string body)
  | Rule { head = Choice { lower; upper; elems }; body; _ } ->
      let elem_to_string (e : choice_elem) =
        match e.cond with
        | [] -> Atom.to_string e.atom
        | cond ->
            Printf.sprintf "%s : %s" (Atom.to_string e.atom) (body_to_string cond)
      in
      let inner = String.concat " ; " (List.map elem_to_string elems) in
      let lo = match lower with Some n -> string_of_int n ^ " " | None -> "" in
      let hi = match upper with Some n -> " " ^ string_of_int n | None -> "" in
      let head = Printf.sprintf "%s{ %s }%s" lo inner hi in
      if body = [] then head ^ "."
      else Printf.sprintf "%s :- %s." head (body_to_string body)
  | Weak { body; weight; priority; terms; _ } ->
      let terms_str =
        match terms with
        | [] -> ""
        | ts -> ", " ^ String.concat "," (List.map Term.to_string ts)
      in
      Printf.sprintf ":~ %s. [%s@%d%s]" (body_to_string body)
        (Term.to_string weight) priority terms_str

let pp ppf r = Format.pp_print_string ppf (to_string r)
