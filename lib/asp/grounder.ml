exception Unsafe of string
exception Overflow of string

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  type t = {
    mutable passes : int;
    mutable firings : int;
    mutable probes : int;
    mutable fresh_rules : int;
    mutable reused_rules : int;
    mutable wall_s : float;
  }

  let create () =
    {
      passes = 0;
      firings = 0;
      probes = 0;
      fresh_rules = 0;
      reused_rules = 0;
      wall_s = 0.0;
    }

  let add ~into s =
    into.passes <- into.passes + s.passes;
    into.firings <- into.firings + s.firings;
    into.probes <- into.probes + s.probes;
    into.fresh_rules <- into.fresh_rules + s.fresh_rules;
    into.reused_rules <- into.reused_rules + s.reused_rules;
    into.wall_s <- into.wall_s +. s.wall_s

  let to_string s =
    Printf.sprintf
      "passes=%d firings=%d probes=%d fresh=%d reused=%d wall=%.3fs" s.passes
      s.firings s.probes s.fresh_rules s.reused_rules s.wall_s

  let pp ppf s = Format.pp_print_string ppf (to_string s)
end

(* ------------------------------------------------------------------ *)
(* Parallel hook                                                       *)
(* ------------------------------------------------------------------ *)

(* [lib/asp] cannot depend on [lib/engine], so the fixpoint's parallel
   rounds are driven through an injected map: [pmap f n] must return
   [[| f 0; …; f (n-1) |]] (slots may be computed on any domain, results
   land by index). [Engine.Pool.map] is the production implementation.
   [min_items] gates spawning: rounds with fewer work items run inline,
   since domain spawn latency dwarfs small joins. *)
type par = { pmap : 'a. (int -> 'a) -> int -> 'a array; min_items : int }

(* ------------------------------------------------------------------ *)
(* Safety                                                              *)
(* ------------------------------------------------------------------ *)

let located r =
  match Rule.pos r with
  | Some p -> Rule.pos_to_string p ^ ": "
  | None -> ""

let check_rule r =
  match Safety.violations r with
  | [] -> ()
  | vs -> raise (Unsafe (located r ^ Safety.describe r vs))

(* ------------------------------------------------------------------ *)
(* Matching (shared with the phase-2 instantiator)                     *)
(* ------------------------------------------------------------------ *)

let rec unify subst pat gterm =
  let pat = Term.substitute subst pat in
  let pat = if Term.is_ground pat then Term.eval pat else pat in
  match pat.Term.node with
  | Term.Var v -> Some ((v, gterm) :: subst)
  | Term.Func (f, args) -> (
      match gterm.Term.node with
      | Term.Func (g, gargs)
        when String.equal f g && List.length args = List.length gargs ->
          unify_all subst args gargs
      | Term.Const _ | Term.Int _ | Term.Str _ | Term.Var _ | Term.Func _ ->
          None)
  | Term.Const _ | Term.Int _ | Term.Str _ ->
      if Term.equal pat gterm then Some subst else None

and unify_all subst pats gterms =
  match pats, gterms with
  | [], [] -> Some subst
  | p :: ps, g :: gs -> (
      match unify subst p g with
      | Some subst -> unify_all subst ps gs
      | None -> None)
  | _ -> None

let unify_atom subst (pat : Atom.t) (ga : Atom.t) =
  if String.equal pat.Atom.pred ga.Atom.pred then
    unify_all subst pat.Atom.args ga.Atom.args
  else None

type builtin_step = Result of bool | Bind of string * Term.t | Stuck

let try_builtin subst (l, op, r) =
  let l' = Term.substitute subst l and r' = Term.substitute subst r in
  if Term.is_ground l' && Term.is_ground r' then Result (Lit.eval_cmp op l' r')
  else
    match op, l'.Term.node, r'.Term.node with
    | Lit.Eq, Term.Var v, _ when Term.is_ground r' -> Bind (v, Term.eval r')
    | Lit.Eq, _, Term.Var v when Term.is_ground l' -> Bind (v, Term.eval l')
    | _ -> Stuck

let rec discharge subst builtins =
  let progressed = ref false in
  let rec pass subst acc = function
    | [] -> Some (subst, List.rev acc)
    | b :: rest -> (
        match try_builtin subst b with
        | Result true ->
            progressed := true;
            pass subst acc rest
        | Result false -> None
        | Bind (v, t) ->
            progressed := true;
            pass ((v, t) :: subst) acc rest
        | Stuck -> pass subst (b :: acc) rest)
  in
  match pass subst [] builtins with
  | None -> None
  | Some (subst, []) -> Some (subst, [])
  | Some (subst, leftover) ->
      if !progressed then discharge subst leftover else Some (subst, leftover)

let positives lits =
  List.filter_map
    (function Lit.Pos a -> Some a | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> None)
    lits

let negatives lits =
  List.filter_map
    (function Lit.Neg a -> Some a | Lit.Pos _ | Lit.Cmp _ | Lit.Count _ -> None)
    lits

let builtins_of lits =
  List.filter_map
    (function
      | Lit.Cmp (l, op, r) -> Some (l, op, r)
      | Lit.Pos _ | Lit.Neg _ | Lit.Count _ -> None)
    lits

let count_lits lits =
  List.filter_map
    (function
      | Lit.Count c -> Some c | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ -> None)
    lits

(* The ground argument positions of a substituted pattern, each with its
   evaluated key. [None] when some ground argument fails to evaluate — the
   caller must then fall back to the signature sweep so the error (if any)
   surfaces from per-candidate unification exactly as in the oracle. *)
let ground_keys (pat' : Atom.t) =
  let ok = ref true in
  let acc = ref [] in
  List.iteri
    (fun i t ->
      if !ok && Term.is_ground t then
        match Term.eval t with
        | k -> acc := (i, k) :: !acc
        | exception Invalid_argument _ -> ok := false)
    pat'.Atom.args;
  if !ok then Some (List.rev !acc) else None

(* Enumerate the substitutions satisfying the positive body + builtins of
   [lits]. [cands] supplies the candidate atoms for the [k]-th positive
   literal (already substituted) — the hook through which the callers plug
   in index probes, generation windows and the incremental new/old/full
   partition; [~pending] gives it the still-undischarged builtins under
   the current substitution, which range-aware indexes use to narrow
   integer-keyed scans. [perm] permutes the enumeration only: the [j]-th
   literal joined is the [perm.(j)]-th positive literal, and [cands] is
   still queried with the original position, so windowed callers stay
   exact. [err] is the located message for the (statically unreachable
   after {!check_rule}) leftover-builtin case. *)
let matches_gen ?perm ~cands ~err subst0 lits ~on_match =
  let pats = Array.of_list (positives lits) in
  let n = Array.length pats in
  let order =
    match perm with
    | Some p when Array.length p = n -> p
    | Some _ | None -> Array.init n (fun i -> i)
  in
  let builtins = builtins_of lits in
  let rec go j subst builtins =
    if j = n then
      match discharge subst builtins with
      | Some (subst, []) -> on_match subst
      | Some (_, _ :: _) -> raise (Unsafe err)
      | None -> ()
    else
      match discharge subst builtins with
      | None -> ()
      | Some (subst, builtins) ->
          let k = order.(j) in
          let pat' = Atom.substitute subst pats.(k) in
          let pending () =
            List.map
              (fun (l, op, r) ->
                (Term.substitute subst l, op, Term.substitute subst r))
              builtins
          in
          List.iter
            (fun ga ->
              match unify_atom subst pat' ga with
              | Some subst -> go (j + 1) subst builtins
              | None -> ())
            (cands k pat' ~pending)
  in
  go 0 subst0 builtins

(* ------------------------------------------------------------------ *)
(* Phase 1: semi-naive universe fixpoint                               *)
(*                                                                     *)
(* Atoms carry the round (generation) in which they were derived.      *)
(* Candidate lists are consed newest-first, so they are sorted by      *)
(* non-increasing generation and a [lo..hi] generation window is a     *)
(* skip-prefix / take-while walk. Discrimination indexes are kept for  *)
(* EVERY argument position — a probe picks the smallest bucket among   *)
(* the pattern's ground positions. A [store] optionally layers over a  *)
(* frozen base store (the {!extend} overlay), whose atoms all count    *)
(* as generation 0.                                                    *)
(* ------------------------------------------------------------------ *)

module AtomTbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

(* Predicate strings are interned ({!Atom.make} routes them through
   [Term.intern_string]), so physical equality catches nearly every
   signature comparison, and the precomputed term hkeys replace deep
   polymorphic hashing. Profiles of the transitive-closure workloads put
   generic [caml_hash]/[compare_val] at ~2/3 of grounding time when
   these tables were polymorphic. *)

module SigTbl = Hashtbl.Make (struct
  type t = string * int (* pred, arity *)

  let equal (p1, a1) (p2, a2) = a1 = a2 && (p1 == p2 || String.equal p1 p2)
  let hash (p, a) = (String.hash p * 0x01000193) lxor a
end)

module PosIdxTbl = Hashtbl.Make (struct
  type t = string * int * int (* pred, arity, position (or mask) *)

  let equal (p1, a1, i1) (p2, a2, i2) =
    a1 = a2 && i1 = i2 && (p1 == p2 || String.equal p1 p2)

  let hash (p, a, i) = (((String.hash p * 0x01000193) lxor a) * 31) + i
end)

module PosTbl = Hashtbl.Make (struct
  type t = string * int * int * Term.t (* pred, arity, position, key *)

  let equal (p1, a1, i1, t1) (p2, a2, i2, t2) =
    a1 = a2 && i1 = i2 && Term.equal t1 t2 && String.equal p1 p2

  let hash (p, a, i, t) =
    ((((String.hash p * 0x01000193) lxor a) * 31) + i) lxor (Term.hash t * 0x9e3779b9)
end)

(* Composite-tier key tuples: ground terms at the masked positions. *)
module KeyTbl = Hashtbl.Make (struct
  type t = Term.t list

  let equal = List.equal Term.equal
  let hash = List.fold_left (fun h t -> (h * 0x100000001b3) lxor Term.hash t) 17
end)

module GrTbl = Hashtbl.Make (struct
  type t = Ground.grule

  let equal = Ground.equal_rule
  let hash = Ground.hash_rule
end)

module GeTbl = Hashtbl.Make (struct
  type t = Ground.gelem

  let equal = Ground.equal_elem
  let hash = Ground.hash_elem
end)

module CeTbl = Hashtbl.Make (struct
  type t = Ground.gcount_elem

  let equal = Ground.equal_celem
  let hash = Ground.hash_celem
end)

type bucket = { mutable b_len : int; mutable b_items : (Atom.t * int) list }

type store = {
  st_univ : int AtomTbl.t; (* atom -> generation *)
  st_by_sig : bucket SigTbl.t;
  st_by_pos : bucket PosTbl.t;
  mutable st_count : int; (* includes the base layer's count *)
  st_max : int;
  st_base : store option;
}

let new_store ~max_atoms base =
  {
    st_univ = AtomTbl.create 1024;
    st_by_sig = SigTbl.create 64;
    st_by_pos = PosTbl.create 256;
    st_count = (match base with Some b -> b.st_count | None -> 0);
    st_max = max_atoms;
    st_base = base;
  }

let store_mem st a =
  AtomTbl.mem st.st_univ a
  || match st.st_base with Some b -> AtomTbl.mem b.st_univ a | None -> false

let push_sig tbl key v =
  match SigTbl.find_opt tbl key with
  | Some b ->
      b.b_len <- b.b_len + 1;
      b.b_items <- v :: b.b_items
  | None -> SigTbl.add tbl key { b_len = 1; b_items = [ v ] }

let push_pos tbl key v =
  match PosTbl.find_opt tbl key with
  | Some b ->
      b.b_len <- b.b_len + 1;
      b.b_items <- v :: b.b_items
  | None -> PosTbl.add tbl key { b_len = 1; b_items = [ v ] }

let index_atom st a gen =
  push_sig st.st_by_sig (Atom.signature a) (a, gen);
  let ar = List.length a.Atom.args in
  List.iteri
    (fun i t -> push_pos st.st_by_pos (a.Atom.pred, ar, i, t) (a, gen))
    a.Atom.args

let add_atom st ~gen a ~on_new =
  let a = Atom.eval a in
  if not (Atom.is_ground a) then
    raise (Unsafe ("derived non-ground atom " ^ Atom.to_string a));
  if not (store_mem st a) then begin
    AtomTbl.replace st.st_univ a gen;
    st.st_count <- st.st_count + 1;
    if st.st_count > st.st_max then
      raise
        (Overflow (Printf.sprintf "atom universe exceeded %d atoms" st.st_max));
    index_atom st a gen;
    on_new a
  end

let empty_bucket = { b_len = 0; b_items = [] }

(* Candidates of this layer only: the smallest per-position bucket among
   the pattern's ground argument positions, the signature bucket when the
   pattern has none, and — mirroring the oracle's error surface — the
   signature bucket when any ground argument fails to evaluate. A missing
   bucket for an evaluated key means no stored atom can unify: empty. *)
let layer_cands st (stats : Stats.t) (pat' : Atom.t) =
  stats.Stats.probes <- stats.Stats.probes + 1;
  let of_sig () =
    match SigTbl.find_opt st.st_by_sig (Atom.signature pat') with
    | Some b -> b
    | None -> empty_bucket
  in
  match ground_keys pat' with
  | None -> (of_sig ()).b_items
  | Some [] -> (of_sig ()).b_items
  | Some keys ->
      let ar = List.length pat'.Atom.args in
      let best =
        List.fold_left
          (fun best (i, k) ->
            match best with
            | Some b when b.b_len = 0 -> best
            | _ -> (
                match PosTbl.find_opt st.st_by_pos (pat'.Atom.pred, ar, i, k) with
                | None -> Some empty_bucket
                | Some b -> (
                    match best with
                    | Some best when best.b_len <= b.b_len -> Some best
                    | _ -> Some b)))
          None keys
      in
      (match best with Some b -> b | None -> of_sig ()).b_items

(* Iterate atoms of st (plus its base layer when [lo = 0]) whose generation
   lies in [lo..hi]. *)
let iter_window st stats ~lo ~hi pat' f =
  let rec skip = function
    | (_, g) :: rest when g > hi -> skip rest
    | l -> take l
  and take = function
    | (a, g) :: rest when g >= lo ->
        f a;
        take rest
    | _ -> ()
  in
  skip (layer_cands st stats pat');
  if lo = 0 then
    match st.st_base with
    | Some b -> List.iter (fun (a, _) -> f a) (layer_cands b stats pat')
    | None -> ()

(* One head-derivation template per plain-rule head / choice element; a
   choice element's template joins body and condition positives flat (safe:
   [check_rule] has already rejected body builtins that only the condition
   could bind). *)
type template = {
  t_pats : Atom.t array;
  t_builtins : (Term.t * Lit.cmp * Term.t) list;
  t_head : Atom.t;
  t_err : string;
}

let unbound_err r =
  located r ^ "builtin comparison with unbound variables in: " ^ Rule.to_string r

(* Returns the templates plus the semi-naive rule index: body-predicate
   signature -> (template, join position) pairs to re-fire when the
   signature gains atoms. *)
let build_templates rules =
  let ts = ref [] in
  let n = ref 0 in
  let index : (int * int) list SigTbl.t = SigTbl.create 32 in
  let add_template pats bs head err =
    let ti = !n in
    incr n;
    ts := { t_pats = Array.of_list pats; t_builtins = bs; t_head = head; t_err = err } :: !ts;
    List.iteri
      (fun pos pat ->
        let sg = Atom.signature pat in
        let cur = Option.value ~default:[] (SigTbl.find_opt index sg) in
        SigTbl.replace index sg ((ti, pos) :: cur))
      pats
  in
  List.iter
    (fun r ->
      match r with
      | Rule.Weak _ -> ()
      | Rule.Rule { head; body; _ } -> (
          let err = unbound_err r in
          let bp = positives body and bb = builtins_of body in
          match head with
          | Rule.Falsity -> ()
          | Rule.Head a -> add_template bp bb a err
          | Rule.Choice { elems; _ } ->
              List.iter
                (fun (e : Rule.choice_elem) ->
                  add_template
                    (bp @ positives e.cond)
                    (bb @ builtins_of e.cond)
                    e.atom err)
                elems))
    rules;
  (Array.of_list (List.rev !ts), index)

(* Fire one (template, delta-position) work item against a store that is
   frozen for the round. The join enumerates the delta literal FIRST (its
   window is one generation deep, so it is by far the most selective),
   then the remaining literals in original order — candidate windows are
   keyed by the ORIGINAL position, so the generation partition is exact
   under any enumeration order. *)
let fire st stats t ~round ~dpos ~on_match =
  let n = Array.length t.t_pats in
  let order =
    if dpos <= 0 then Array.init n (fun i -> i)
    else
      Array.init n (fun j ->
          if j = 0 then dpos else if j <= dpos then j - 1 else j)
  in
  let cands k pat' f =
    let lo, hi =
      if dpos < 0 then (0, max_int) (* naive: everything *)
      else if k = dpos then (round - 1, round - 1) (* the delta literal *)
      else if k < dpos then (0, round - 2) (* strictly older *)
      else (0, max_int) (* anything so far *)
    in
    iter_window st stats ~lo ~hi pat' f
  in
  let rec go j subst builtins =
    if j = n then
      match discharge subst builtins with
      | Some (subst, []) -> on_match subst
      | Some (_, _ :: _) -> raise (Unsafe t.t_err)
      | None -> ()
    else
      match discharge subst builtins with
      | None -> ()
      | Some (subst, builtins) ->
          let k = order.(j) in
          let pat' = Atom.substitute subst t.t_pats.(k) in
          cands k pat' (fun ga ->
              match unify_atom subst pat' ga with
              | Some subst -> go (j + 1) subst builtins
              | None -> ())
  in
  go 0 [] t.t_builtins

(* Semi-naive driver with snapshot (BFS) rounds: the store is frozen while
   a round's work items fire — derived heads are buffered per item and
   committed sequentially in item order afterwards — so an atom's
   generation is exactly its derivation depth and every join result is
   found exactly once, at the round after its newest constituent atom was
   derived (leftmost-newest position). Freezing the store is also what
   makes the rounds parallelizable: items only read it, so [par] may fan
   them out across domains and the deterministic sequential commit keeps
   the result bit-for-bit equal to the inline path. *)
let run_fixpoint ?par st (stats : Stats.t) templates entries_for ~initial =
  let added = ref [] in
  let run_round ~round items =
    stats.Stats.passes <- stats.Stats.passes + 1;
    let n = Array.length items in
    let fire_item i =
      let ti, dpos = items.(i) in
      let t = templates.(ti) in
      let local = Stats.create () in
      let heads = ref [] in
      fire st local t ~round ~dpos ~on_match:(fun subst ->
          local.Stats.firings <- local.Stats.firings + 1;
          heads := Atom.substitute subst t.t_head :: !heads);
      (local, List.rev !heads)
    in
    let results =
      match par with
      | Some p when n >= p.min_items && n > 1 -> p.pmap fire_item n
      | _ -> Array.init n fire_item
    in
    Array.iter
      (fun (local, heads) ->
        stats.Stats.firings <- stats.Stats.firings + local.Stats.firings;
        stats.Stats.probes <- stats.Stats.probes + local.Stats.probes;
        List.iter
          (fun a ->
            add_atom st ~gen:round a ~on_new:(fun a -> added := a :: !added))
          heads)
      results
  in
  run_round ~round:1
    (Array.of_list (List.map (fun ti -> (ti, -1)) initial));
  let round = ref 1 in
  while !added <> [] do
    incr round;
    let prev = List.rev !added in
    added := [];
    let seen_sig = SigTbl.create 16 in
    let items = ref [] in
    List.iter
      (fun a ->
        let sg = Atom.signature a in
        if not (SigTbl.mem seen_sig sg) then begin
          SigTbl.replace seen_sig sg ();
          List.iter (fun it -> items := it :: !items) (entries_for sg)
        end)
      prev;
    run_round ~round:!round (Array.of_list (List.rev !items))
  done

(* ------------------------------------------------------------------ *)
(* Phase 2: instantiation against a frozen, canonically ordered view   *)
(* ------------------------------------------------------------------ *)

(* A [view] answers candidate queries over an immutable universe with
   every bucket sorted ascending by [Atom.compare] — the canonical order
   shared with {!Naive_ground}, which is what makes the two grounders'
   outputs bit-for-bit comparable (any index is a superset filter: the
   subset enumerated in ascending order yields the oracle's match
   sequence).

   Three probe tiers, most selective first:
   - composite: patterns with >= 2 ground argument positions are answered
     from a lazily materialized (signature, position-mask) group table —
     one pass over the signature bucket the first time a mask is seen,
     O(1) after. The cache freezes when its view becomes shared state (a
     [prepared] may be extended from many domains concurrently); frozen
     misses fall through to the single-position tier.
   - positional: the smallest per-argument-position bucket.
   - range: a pattern whose argument is an unbound variable constrained by
     a pending [V < k]-style builtin scans only the integer keys inside
     the bound interval (sorted buckets merged, so order is preserved)
     instead of sweeping the whole signature. *)

type comp_cache = {
  mutable cc_frozen : bool;
  cc_tbl : Atom.t list KeyTbl.t PosIdxTbl.t;
      (* (pred, arity, mask) -> key tuple -> ascending bucket *)
}

type view = {
  v_sig : string * int -> Atom.t list;
  v_pos : string * int * int * Term.t -> (int * Atom.t list) option;
      (* (length, ascending bucket); None: no atom has that key there *)
  v_ints : string * int * int -> (bool * int list) option;
      (* (all keys at this position are ints, sorted distinct int keys) *)
  v_cache : comp_cache;
}

let new_cache () = { cc_frozen = false; cc_tbl = PosIdxTbl.create 16 }

let tbl_view sigs poses ints =
  {
    v_sig =
      (fun k -> Option.value ~default:[] (SigTbl.find_opt sigs k));
    v_pos = (fun k -> PosTbl.find_opt poses k);
    v_ints = (fun k -> PosIdxTbl.find_opt ints k);
    v_cache = new_cache ();
  }

(* Sorted per-signature / per-position tables for the atoms of [st]'s own
   layer, plus the per-position integer-key summaries the range tier
   scans. *)
type tables = {
  tb_sigs : Atom.t list SigTbl.t;
  tb_poses : (int * Atom.t list) PosTbl.t;
  tb_ints : (bool * int list) PosIdxTbl.t;
}

let ints_of_poses poses =
  let ints = PosIdxTbl.create 16 in
  PosTbl.iter
    (fun (p, ar, i, key) _ ->
      let cur =
        Option.value ~default:(true, []) (PosIdxTbl.find_opt ints (p, ar, i))
      in
      let all_int, ks = cur in
      match key.Term.node with
      | Term.Int n -> PosIdxTbl.replace ints (p, ar, i) (all_int, n :: ks)
      | _ -> PosIdxTbl.replace ints (p, ar, i) (false, ks))
    poses;
  PosIdxTbl.iter
    (fun k (all_int, ks) ->
      PosIdxTbl.replace ints k (all_int, List.sort_uniq Int.compare ks))
    ints;
  ints

let sorted_tables st =
  let sigs = SigTbl.create (SigTbl.length st.st_by_sig) in
  let poses = PosTbl.create 256 in
  SigTbl.iter
    (fun key b ->
      let sorted = List.sort Atom.compare (List.map fst b.b_items) in
      SigTbl.replace sigs key sorted;
      (* cons in descending order so every positional bucket stays sorted *)
      List.iter
        (fun (a : Atom.t) ->
          let ar = List.length a.Atom.args in
          List.iteri
            (fun i t ->
              let pk = (a.Atom.pred, ar, i, t) in
              match PosTbl.find_opt poses pk with
              | Some (len, l) -> PosTbl.replace poses pk (len + 1, a :: l)
              | None -> PosTbl.add poses pk (1, [ a ]))
            a.Atom.args)
        (List.rev sorted))
    st.st_by_sig;
  { tb_sigs = sigs; tb_poses = poses; tb_ints = ints_of_poses poses }

let view_of_tables t = tbl_view t.tb_sigs t.tb_poses t.tb_ints

type snap = { sn_view : view; sn_mem : Atom.t -> bool }

let no_pending : (unit -> (Term.t * Lit.cmp * Term.t) list) = fun () -> []

(* Integer bounds on variable [v] implied by the pending builtins. An
   upper bound excludes every non-integer key (non-integers compare above
   all ints), so it is always safe to narrow on; a lower bound alone is
   only safe when every key at the position is an integer. *)
let int_bounds v pending =
  List.fold_left
    (fun (lo, hi) (l, op, r) ->
      let bound_of t =
        if Term.is_ground t then
          match (try Some (Term.eval t) with Invalid_argument _ -> None) with
          | Some { Term.node = Term.Int n; _ } -> Some n
          | _ -> None
        else None
      in
      let tighten_lo n = Some (match lo with Some l -> max l n | None -> n) in
      let tighten_hi n = Some (match hi with Some h -> min h n | None -> n) in
      match l.Term.node, r.Term.node with
      | Term.Var v', _ when String.equal v' v -> (
          match bound_of r, op with
          | Some n, Lit.Lt -> (lo, tighten_hi (n - 1))
          | Some n, Lit.Le -> (lo, tighten_hi n)
          | Some n, Lit.Gt -> (tighten_lo (n + 1), hi)
          | Some n, Lit.Ge -> (tighten_lo n, hi)
          | _ -> (lo, hi))
      | _, Term.Var v' when String.equal v' v -> (
          match bound_of l, op with
          | Some n, Lit.Gt -> (lo, tighten_hi (n - 1))
          | Some n, Lit.Ge -> (lo, tighten_hi n)
          | Some n, Lit.Lt -> (tighten_lo (n + 1), hi)
          | Some n, Lit.Le -> (tighten_lo n, hi)
          | _ -> (lo, hi))
      | _ -> (lo, hi))
    (None, None) pending

let range_cands view (pat' : Atom.t) pending =
  let ar = List.length pat'.Atom.args in
  let rec try_pos i = function
    | [] -> None
    | t :: rest -> (
        match t.Term.node with
        | Term.Var v -> (
            match view.v_ints (pat'.Atom.pred, ar, i) with
            | None -> try_pos (i + 1) rest
            | Some (all_int, keys) -> (
                match int_bounds v pending with
                | None, None -> try_pos (i + 1) rest
                | lo, None when not all_int ->
                    ignore lo;
                    try_pos (i + 1) rest
                | lo, hi ->
                    let lo = Option.value ~default:min_int lo in
                    let hi = Option.value ~default:max_int hi in
                    let buckets =
                      List.filter_map
                        (fun k ->
                          if k >= lo && k <= hi then
                            Option.map snd
                              (view.v_pos
                                 (pat'.Atom.pred, ar, i, Term.int k))
                          else None)
                        keys
                    in
                    Some
                      (List.fold_left
                         (fun acc l -> List.merge Atom.compare acc l)
                         [] buckets)))
        | _ -> try_pos (i + 1) rest)
  in
  try_pos 0 pat'.Atom.args

(* Composite tier: group the signature bucket by the key tuple at the
   pattern's ground positions, once per (signature, mask). *)
let comp_cands view (pat' : Atom.t) keys =
  let cache = view.v_cache in
  let ar = List.length pat'.Atom.args in
  let mask = List.fold_left (fun m (i, _) -> m lor (1 lsl i)) 0 keys in
  let ck = (pat'.Atom.pred, ar, mask) in
  let group =
    match PosIdxTbl.find_opt cache.cc_tbl ck with
    | Some g -> Some g
    | None ->
        if cache.cc_frozen then None
        else begin
          let g = KeyTbl.create 64 in
          List.iter
            (fun (a : Atom.t) ->
              let key =
                List.rev
                  (snd
                     (List.fold_left
                        (fun (i, acc) t ->
                          (i + 1, if mask land (1 lsl i) <> 0 then t :: acc else acc))
                        (0, []) a.Atom.args))
              in
              let cur = Option.value ~default:[] (KeyTbl.find_opt g key) in
              KeyTbl.replace g key (a :: cur))
            (List.rev (view.v_sig (pat'.Atom.pred, ar)));
          PosIdxTbl.add cache.cc_tbl ck g;
          Some g
        end
  in
  match group with
  | None -> None
  | Some g ->
      Some
        (Option.value ~default:[]
           (KeyTbl.find_opt g (List.map snd keys)))

let view_cands ?(pending = no_pending) view (stats : Stats.t) (pat' : Atom.t) =
  stats.Stats.probes <- stats.Stats.probes + 1;
  let of_sig () = view.v_sig (Atom.signature pat') in
  match ground_keys pat' with
  | None -> of_sig ()
  | Some [] -> (
      match range_cands view pat' (pending ()) with
      | Some cs -> cs
      | None -> of_sig ())
  | Some [ (i, k) ] -> (
      match view.v_pos (pat'.Atom.pred, List.length pat'.Atom.args, i, k) with
      | Some (_, l) -> l
      | None -> [])
  | Some keys -> (
      match comp_cands view pat' keys with
      | Some l -> l
      | None ->
          (* frozen cache miss: smallest single-position bucket *)
          let ar = List.length pat'.Atom.args in
          let best =
            List.fold_left
              (fun best (i, k) ->
                match best with
                | Some (blen, _) when blen = 0 -> best
                | _ -> (
                    match view.v_pos (pat'.Atom.pred, ar, i, k) with
                    | None -> Some (0, [])
                    | Some (len, l) -> (
                        match best with
                        | Some (blen, _) when blen <= len -> best
                        | _ -> Some (len, l))))
              None keys
          in
          (match best with Some (_, l) -> l | None -> of_sig ()))

(* Instantiate rule [r] against [snap], mirroring the oracle's phase 2
   modulo the discrimination indexes and hashed (instead of quadratic)
   dedup of aggregate / choice elements. [body_cands], when given,
   overrides candidate selection for the rule's outer body join only —
   {!extend} uses it to enumerate just the joins that involve new atoms.
   [perm] reorders the outer body join's enumeration (selectivity-first
   orderings from {!Analysis}); the matches are then replayed sorted by
   their chosen-atom tuple in original body order — exactly the order the
   in-order nested-loop join produces, since candidate buckets are sorted
   ascending and the substitution is a function of that tuple — so the
   emitted instances are bit-for-bit those of the unordered join. *)
let instantiate snap (stats : Stats.t) ?body_cands ?perm ~emit r =
  let rule_str = Rule.to_string r in
  let err = unbound_err r in
  let default_cands _ pat' ~pending = view_cands ~pending snap.sn_view stats pat' in
  let body_cands = Option.value ~default:default_cands body_cands in
  let body_matches lits ~on_match =
    match perm with
    | None -> matches_gen ~cands:body_cands ~err [] lits ~on_match
    | Some _ ->
        let pats = positives lits in
        let batch = ref [] in
        matches_gen ?perm ~cands:body_cands ~err [] lits
          ~on_match:(fun subst ->
            let key =
              List.map (fun a -> Atom.eval (Atom.substitute subst a)) pats
            in
            batch := (key, subst) :: !batch);
        List.iter
          (fun (_, subst) -> on_match subst)
          (List.sort
             (fun (k1, _) (k2, _) -> List.compare Atom.compare k1 k2)
             !batch)
  in
  let simplify_negs negs =
    List.filter snap.sn_mem (List.map (fun a -> Atom.eval a) negs)
  in
  let ground_pos subst lits =
    List.map (fun a -> Atom.eval (Atom.substitute subst a)) (positives lits)
  in
  let ground_neg subst lits =
    simplify_negs (List.map (Atom.substitute subst) (negatives lits))
  in
  let ground_counts subst lits =
    List.map
      (fun (c : Lit.count) ->
        let cbound =
          match Term.eval_int (Term.substitute subst c.Lit.bound) with
          | Some n -> n
          | None ->
              raise
                (Unsafe ("aggregate bound is not an integer in: " ^ rule_str))
        in
        let celems = ref [] in
        let seen_ce = CeTbl.create 16 in
        matches_gen ~cands:default_cands ~err subst c.Lit.cond
          ~on_match:(fun subst' ->
            let ce =
              {
                Ground.etuple =
                  List.map
                    (fun t -> Term.eval (Term.substitute subst' t))
                    c.Lit.terms;
                epos = ground_pos subst' c.Lit.cond;
                eneg = ground_neg subst' c.Lit.cond;
              }
            in
            if not (CeTbl.mem seen_ce ce) then begin
              CeTbl.replace seen_ce ce ();
              celems := ce :: !celems
            end);
        {
          Ground.ckind = c.Lit.kind;
          celems = List.rev !celems;
          cop = c.Lit.op;
          cbound;
        })
      (count_lits lits)
  in
  match r with
  | Rule.Rule { head; body; _ } ->
      body_matches body ~on_match:(fun subst ->
          let pos = ground_pos subst body in
          let neg = ground_neg subst body in
          let counts = ground_counts subst body in
          match head with
          | Rule.Head a ->
              let head = Atom.eval (Atom.substitute subst a) in
              if pos = [] && neg = [] && counts = [] then
                emit (Ground.Gfact head)
              else emit (Ground.Grule { head; pos; neg; counts })
          | Rule.Falsity -> emit (Ground.Gconstraint { pos; neg; counts })
          | Rule.Choice { lower; upper; elems } ->
              let gelems = ref [] in
              let seen_ge = GeTbl.create 16 in
              List.iter
                (fun (e : Rule.choice_elem) ->
                  matches_gen ~cands:default_cands ~err subst e.cond
                    ~on_match:(fun subst' ->
                      let ge =
                        {
                          Ground.gatom =
                            Atom.eval (Atom.substitute subst' e.atom);
                          gpos = ground_pos subst' e.cond;
                          gneg = ground_neg subst' e.cond;
                        }
                      in
                      if not (GeTbl.mem seen_ge ge) then begin
                        GeTbl.replace seen_ge ge ();
                        gelems := ge :: !gelems
                      end))
                elems;
              emit
                (Ground.Gchoice
                   { lower; upper; elems = List.rev !gelems; pos; neg; counts }))
  | Rule.Weak { body; weight; priority; terms; _ } ->
      body_matches body ~on_match:(fun subst ->
          let pos = ground_pos subst body in
          let neg = ground_neg subst body in
          let counts = ground_counts subst body in
          let weight =
            match Term.eval_int (Term.substitute subst weight) with
            | Some w -> w
            | None ->
                raise
                  (Unsafe
                     ("weak constraint weight is not an integer: " ^ rule_str))
          in
          let terms =
            List.map (fun t -> Term.eval (Term.substitute subst t)) terms
          in
          emit (Ground.Gweak { pos; neg; counts; weight; priority; terms }))

(* ------------------------------------------------------------------ *)
(* One-shot grounding                                                  *)
(* ------------------------------------------------------------------ *)

let all_indices n = List.init n (fun i -> i)

let phase1 ?par ~max_atoms stats p =
  List.iter check_rule (Program.rules p);
  let st = new_store ~max_atoms None in
  let templates, tindex = build_templates (Program.rules p) in
  let entries_for sg =
    Option.value ~default:[] (SigTbl.find_opt tindex sg)
  in
  run_fixpoint ?par st stats templates entries_for
    ~initial:(all_indices (Array.length templates));
  (st, templates, tindex)

let universe_of st base =
  AtomTbl.fold (fun a _ acc -> Model.AtomSet.add a acc) st.st_univ base

let no_order : Rule.t -> int array option = fun _ -> None

let ground ?(max_atoms = 200_000) ?(order = no_order) ?par ?stats p =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  let st, _, _ = phase1 ?par ~max_atoms stats p in
  let tables = sorted_tables st in
  let snap =
    {
      sn_view = view_of_tables tables;
      sn_mem = (fun a -> AtomTbl.mem st.st_univ a);
    }
  in
  let seen = GrTbl.create 256 in
  let out = ref [] in
  let emit gr =
    if not (GrTbl.mem seen gr) then begin
      GrTbl.replace seen gr ();
      stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
      out := gr :: !out
    end
  in
  List.iter (fun r -> instantiate snap stats ?perm:(order r) ~emit r) (Program.rules p);
  let g =
    {
      Ground.rules = List.rev !out;
      universe = universe_of st Model.AtomSet.empty;
      shows = Program.shows p;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  g

(* ------------------------------------------------------------------ *)
(* Incremental grounding                                               *)
(* ------------------------------------------------------------------ *)

type rule_entry = {
  e_rule : Rule.t;
  e_pos_sigs : (string * int) array; (* positive body sigs, join order *)
  e_cond_sigs : (string * int) list; (* Deps.condition_signatures *)
  e_instances : Ground.grule list; (* base instances, emission order *)
}

type prepared = {
  p_program : Program.t;
  p_max_atoms : int;
  p_store : store; (* frozen after prepare; always single-layer *)
  p_tables : tables; (* sorted base candidate tables *)
  p_view : view;
  p_snap : snap;
  p_entries : rule_entry array;
  p_templates : template array;
  p_tindex : (int * int) list SigTbl.t;
  p_universe : Model.AtomSet.t;
  p_rules : Ground.grule list; (* globally deduped, = [ground] output *)
  p_order : Rule.t -> int array option;
}

let prepare ?(max_atoms = 200_000) ?(order = no_order) ?par ?stats p =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  let st, templates, tindex = phase1 ?par ~max_atoms stats p in
  let tables = sorted_tables st in
  let view = view_of_tables tables in
  let snap = { sn_view = view; sn_mem = (fun a -> AtomTbl.mem st.st_univ a) } in
  let entries =
    List.map
      (fun r ->
        let acc = ref [] in
        let emit gr =
          stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
          acc := gr :: !acc
        in
        instantiate snap stats ?perm:(order r) ~emit r;
        {
          e_rule = r;
          e_pos_sigs = Array.of_list (Deps.positive_body_signatures r);
          e_cond_sigs = Deps.condition_signatures r;
          e_instances = List.rev !acc;
        })
      (Program.rules p)
  in
  let seen = GrTbl.create 256 in
  let rules =
    List.concat_map
      (fun e ->
        List.filter
          (fun gr ->
            if GrTbl.mem seen gr then false
            else begin
              GrTbl.replace seen gr ();
              true
            end)
          e.e_instances)
      entries
  in
  (* the view is about to become shared, read-only state: no further
     composite-mask materialization (concurrent extends read the cache) *)
  view.v_cache.cc_frozen <- true;
  let prep =
    {
      p_program = p;
      p_max_atoms = max_atoms;
      p_store = st;
      p_tables = tables;
      p_view = view;
      p_snap = snap;
      p_entries = Array.of_list entries;
      p_templates = templates;
      p_tindex = tindex;
      p_universe = universe_of st Model.AtomSet.empty;
      p_rules = rules;
      p_order = order;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  prep

let base p =
  { Ground.rules = p.p_rules; universe = p.p_universe; shows = Program.shows p.p_program }

let base_universe p = p.p_universe

(* Merge the overlay's sorted tables into (copies of) the base tables. *)
let merge_tables base overlay =
  let sigs = SigTbl.copy base.tb_sigs in
  SigTbl.iter
    (fun k nl ->
      let b = Option.value ~default:[] (SigTbl.find_opt sigs k) in
      SigTbl.replace sigs k (List.merge Atom.compare b nl))
    overlay.tb_sigs;
  let poses = PosTbl.copy base.tb_poses in
  PosTbl.iter
    (fun k (nlen, nl) ->
      match PosTbl.find_opt poses k with
      | Some (blen, bl) ->
          PosTbl.replace poses k (blen + nlen, List.merge Atom.compare bl nl)
      | None -> PosTbl.add poses k (nlen, nl))
    overlay.tb_poses;
  let ints = PosIdxTbl.copy base.tb_ints in
  PosIdxTbl.iter
    (fun k (nall, nks) ->
      match PosIdxTbl.find_opt ints k with
      | Some (ball, bks) ->
          PosIdxTbl.replace ints k
            (ball && nall, List.sort_uniq Int.compare (bks @ nks))
      | None -> PosIdxTbl.add ints k (nall, nks))
    overlay.tb_ints;
  { tb_sigs = sigs; tb_poses = poses; tb_ints = ints }

let overlay_phase1 ?par ~stats prep dp =
  List.iter check_rule (Program.rules dp);
  let st = new_store ~max_atoms:prep.p_max_atoms (Some prep.p_store) in
  let nbase = Array.length prep.p_templates in
  let dtemplates, dtindex = build_templates (Program.rules dp) in
  let templates = Array.append prep.p_templates dtemplates in
  let entries_for sg =
    let b = Option.value ~default:[] (SigTbl.find_opt prep.p_tindex sg) in
    match SigTbl.find_opt dtindex sg with
    | None -> b
    | Some d -> b @ List.map (fun (ti, pos) -> (ti + nbase, pos)) d
  in
  run_fixpoint ?par st stats templates entries_for
    ~initial:
      (List.map (fun i -> i + nbase) (all_indices (Array.length dtemplates)));
  (st, dtemplates, dtindex, templates)

let extend ?par ?stats prep dp =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  (* Overlay phase 1: close the base universe under base + delta rules,
     starting from a naive pass over the delta's templates only (the base
     is already closed). Only reads the prepared state, so concurrent
     extends of one [prepared] are safe. *)
  let st, _, _, _ = overlay_phase1 ?par ~stats prep dp in
  let ntables = sorted_tables st in
  let full_view = view_of_tables (merge_tables prep.p_tables ntables) in
  let new_view = view_of_tables ntables in
  let mem a = AtomTbl.mem st.st_univ a || AtomTbl.mem prep.p_store.st_univ a in
  let snap = { sn_view = full_view; sn_mem = mem } in
  let touched sg = SigTbl.mem ntables.tb_sigs sg in
  let out = ref [] in
  let emit gr =
    stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
    out := gr :: !out
  in
  (* Classify each base rule by which signatures gained atoms:
     - a touched condition signature (negated body atom, aggregate or
       choice-element condition) can change the content of existing
       instances -> recompute the rule from scratch against the full view;
     - touched positive body signatures only -> existing instances are
       unchanged (share them) and the only new instances are joins with at
       least one new atom: enumerate them delta-exactly per position
       (new at it, base-only strictly left, full right);
     - nothing touched -> share wholesale. *)
  Array.iter
    (fun e ->
      let perm = prep.p_order e.e_rule in
      if List.exists touched e.e_cond_sigs then
        instantiate snap stats ?perm ~emit e.e_rule
      else begin
        stats.Stats.reused_rules <-
          stats.Stats.reused_rules + List.length e.e_instances;
        out := List.rev_append e.e_instances !out;
        Array.iteri
          (fun i sg ->
            if touched sg then begin
              let body_cands k pat' ~pending =
                if k = i then view_cands ~pending new_view stats pat'
                else if k < i then view_cands ~pending prep.p_view stats pat'
                else view_cands ~pending full_view stats pat'
              in
              instantiate snap stats ~body_cands ?perm ~emit e.e_rule
            end)
          e.e_pos_sigs
      end)
    prep.p_entries;
  List.iter
    (fun r -> instantiate snap stats ?perm:(prep.p_order r) ~emit r)
    (Program.rules dp);
  let g =
    {
      Ground.rules = List.rev !out;
      universe = universe_of st prep.p_universe;
      shows = Program.shows prep.p_program @ Program.shows dp;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  g

(* ------------------------------------------------------------------ *)
(* Structural re-preparation                                           *)
(* ------------------------------------------------------------------ *)

(* Flatten a two-layer overlay back into a single generation-0 store.
   [store_mem] and [iter_window] look through at most one base layer, so
   a [prepared] must always hold a single-layer store for the next
   overlay to see every atom. Generation 0 is correct for all future
   extends: their windows with [lo = 0] take the whole base layer. *)
let flatten_store ~max_atoms base overlay =
  let flat = new_store ~max_atoms None in
  let copy st =
    AtomTbl.iter
      (fun a _ ->
        if not (AtomTbl.mem flat.st_univ a) then begin
          AtomTbl.replace flat.st_univ a 0;
          flat.st_count <- flat.st_count + 1;
          index_atom flat a 0
        end)
      st.st_univ
  in
  copy base;
  copy overlay;
  flat

let extend_prepare ?par ?stats prep dp =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  (* Overlay phase 1, exactly as in {!extend} — but the merged template
     index is kept: it becomes the new prepared's [p_tindex]. *)
  let st, _, dtindex, templates = overlay_phase1 ?par ~stats prep dp in
  let nbase = Array.length prep.p_templates in
  let tindex = SigTbl.copy prep.p_tindex in
  SigTbl.iter
    (fun sg d ->
      let b = Option.value ~default:[] (SigTbl.find_opt tindex sg) in
      SigTbl.replace tindex sg
        (b @ List.map (fun (ti, pos) -> (ti + nbase, pos)) d))
    dtindex;
  let ntables = sorted_tables st in
  let tables = merge_tables prep.p_tables ntables in
  let view = view_of_tables tables in
  let new_view = view_of_tables ntables in
  let store = flatten_store ~max_atoms:prep.p_max_atoms prep.p_store st in
  let snap = { sn_view = view; sn_mem = (fun a -> AtomTbl.mem store.st_univ a) } in
  let touched sg = SigTbl.mem ntables.tb_sigs sg in
  (* Per-entry instance update under {!extend}'s classification: shared
     instances stay shared (and keep their emission order), delta-exact
     new joins are appended, cond-touched rules are recomputed. *)
  let entries = ref [] in
  let recompute ?body_cands perm r =
    let acc = ref [] in
    let emit gr =
      stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
      acc := gr :: !acc
    in
    instantiate snap stats ?body_cands ?perm ~emit r;
    List.rev !acc
  in
  Array.iter
    (fun e ->
      let perm = prep.p_order e.e_rule in
      let insts =
        if List.exists touched e.e_cond_sigs then recompute perm e.e_rule
        else begin
          stats.Stats.reused_rules <-
            stats.Stats.reused_rules + List.length e.e_instances;
          let extra = ref [] in
          Array.iteri
            (fun i sg ->
              if touched sg then begin
                let body_cands k pat' ~pending =
                  if k = i then view_cands ~pending new_view stats pat'
                  else if k < i then view_cands ~pending prep.p_view stats pat'
                  else view_cands ~pending view stats pat'
                in
                extra := !extra @ recompute ~body_cands perm e.e_rule
              end)
            e.e_pos_sigs;
          e.e_instances @ !extra
        end
      in
      entries := { e with e_instances = insts } :: !entries)
    prep.p_entries;
  List.iter
    (fun r ->
      entries :=
        {
          e_rule = r;
          e_pos_sigs = Array.of_list (Deps.positive_body_signatures r);
          e_cond_sigs = Deps.condition_signatures r;
          e_instances = recompute (prep.p_order r) r;
        }
        :: !entries)
    (Program.rules dp);
  let entries = List.rev !entries in
  let seen : (Ground.grule, unit) Hashtbl.t = Hashtbl.create 256 in
  let rules =
    List.concat_map
      (fun e ->
        List.filter
          (fun gr ->
            if Hashtbl.mem seen gr then false
            else begin
              Hashtbl.replace seen gr ();
              true
            end)
          e.e_instances)
      entries
  in
  view.v_cache.cc_frozen <- true;
  let next =
    {
      p_program = Program.append prep.p_program dp;
      p_max_atoms = prep.p_max_atoms;
      p_store = store;
      p_tables = tables;
      p_view = view;
      p_snap = snap;
      p_entries = Array.of_list entries;
      p_templates = templates;
      p_tindex = tindex;
      p_universe = universe_of store Model.AtomSet.empty;
      p_rules = rules;
      p_order = prep.p_order;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  next
