exception Unsafe of string
exception Overflow of string

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  type t = {
    mutable passes : int;
    mutable firings : int;
    mutable probes : int;
    mutable fresh_rules : int;
    mutable reused_rules : int;
    mutable wall_s : float;
  }

  let create () =
    {
      passes = 0;
      firings = 0;
      probes = 0;
      fresh_rules = 0;
      reused_rules = 0;
      wall_s = 0.0;
    }

  let to_string s =
    Printf.sprintf
      "passes=%d firings=%d probes=%d fresh=%d reused=%d wall=%.3fs" s.passes
      s.firings s.probes s.fresh_rules s.reused_rules s.wall_s

  let pp ppf s = Format.pp_print_string ppf (to_string s)
end

(* ------------------------------------------------------------------ *)
(* Safety                                                              *)
(* ------------------------------------------------------------------ *)

let located r =
  match Rule.pos r with
  | Some p -> Rule.pos_to_string p ^ ": "
  | None -> ""

let check_rule r =
  match Safety.violations r with
  | [] -> ()
  | vs -> raise (Unsafe (located r ^ Safety.describe r vs))

(* ------------------------------------------------------------------ *)
(* Matching (shared with the phase-2 instantiator)                     *)
(* ------------------------------------------------------------------ *)

let rec unify subst pat gterm =
  let pat = Term.substitute subst pat in
  let pat = if Term.is_ground pat then Term.eval pat else pat in
  match pat with
  | Term.Var v -> Some ((v, gterm) :: subst)
  | Term.Func (f, args) -> (
      match gterm with
      | Term.Func (g, gargs)
        when String.equal f g && List.length args = List.length gargs ->
          unify_all subst args gargs
      | Term.Const _ | Term.Int _ | Term.Str _ | Term.Var _ | Term.Func _ ->
          None)
  | Term.Const _ | Term.Int _ | Term.Str _ ->
      if Term.equal pat gterm then Some subst else None

and unify_all subst pats gterms =
  match pats, gterms with
  | [], [] -> Some subst
  | p :: ps, g :: gs -> (
      match unify subst p g with
      | Some subst -> unify_all subst ps gs
      | None -> None)
  | _ -> None

let unify_atom subst (pat : Atom.t) (ga : Atom.t) =
  if String.equal pat.Atom.pred ga.Atom.pred then
    unify_all subst pat.Atom.args ga.Atom.args
  else None

type builtin_step = Result of bool | Bind of string * Term.t | Stuck

let try_builtin subst (l, op, r) =
  let l' = Term.substitute subst l and r' = Term.substitute subst r in
  if Term.is_ground l' && Term.is_ground r' then Result (Lit.eval_cmp op l' r')
  else
    match op, l', r' with
    | Lit.Eq, Term.Var v, rhs when Term.is_ground rhs -> Bind (v, Term.eval rhs)
    | Lit.Eq, lhs, Term.Var v when Term.is_ground lhs -> Bind (v, Term.eval lhs)
    | _ -> Stuck

let rec discharge subst builtins =
  let progressed = ref false in
  let rec pass subst acc = function
    | [] -> Some (subst, List.rev acc)
    | b :: rest -> (
        match try_builtin subst b with
        | Result true ->
            progressed := true;
            pass subst acc rest
        | Result false -> None
        | Bind (v, t) ->
            progressed := true;
            pass ((v, t) :: subst) acc rest
        | Stuck -> pass subst (b :: acc) rest)
  in
  match pass subst [] builtins with
  | None -> None
  | Some (subst, []) -> Some (subst, [])
  | Some (subst, leftover) ->
      if !progressed then discharge subst leftover else Some (subst, leftover)

let positives lits =
  List.filter_map
    (function Lit.Pos a -> Some a | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> None)
    lits

let negatives lits =
  List.filter_map
    (function Lit.Neg a -> Some a | Lit.Pos _ | Lit.Cmp _ | Lit.Count _ -> None)
    lits

let builtins_of lits =
  List.filter_map
    (function
      | Lit.Cmp (l, op, r) -> Some (l, op, r)
      | Lit.Pos _ | Lit.Neg _ | Lit.Count _ -> None)
    lits

let count_lits lits =
  List.filter_map
    (function
      | Lit.Count c -> Some c | Lit.Pos _ | Lit.Neg _ | Lit.Cmp _ -> None)
    lits

(* Enumerate the substitutions satisfying the positive body + builtins of
   [lits]. [cands] supplies the candidate atoms for the [k]-th positive
   literal (already substituted) — the hook through which the callers plug
   in index probes, generation windows and the incremental new/old/full
   partition. [perm] permutes the enumeration only: the [j]-th literal
   joined is the [perm.(j)]-th positive literal, and [cands] is still
   queried with the original position, so windowed callers stay exact.
   [err] is the located message for the (statically unreachable after
   {!check_rule}) leftover-builtin case. *)
let matches_gen ?perm ~cands ~err subst0 lits ~on_match =
  let pats = Array.of_list (positives lits) in
  let n = Array.length pats in
  let order =
    match perm with
    | Some p when Array.length p = n -> p
    | Some _ | None -> Array.init n (fun i -> i)
  in
  let builtins = builtins_of lits in
  let rec go j subst builtins =
    if j = n then
      match discharge subst builtins with
      | Some (subst, []) -> on_match subst
      | Some (_, _ :: _) -> raise (Unsafe err)
      | None -> ()
    else
      match discharge subst builtins with
      | None -> ()
      | Some (subst, builtins) ->
          let k = order.(j) in
          let pat' = Atom.substitute subst pats.(k) in
          List.iter
            (fun ga ->
              match unify_atom subst pat' ga with
              | Some subst -> go (j + 1) subst builtins
              | None -> ())
            (cands k pat')
  in
  go 0 subst0 builtins

(* ------------------------------------------------------------------ *)
(* Phase 1: semi-naive universe fixpoint                               *)
(*                                                                     *)
(* Atoms carry the round (generation) in which they were derived.      *)
(* Candidate lists are consed newest-first, so they are sorted by      *)
(* non-increasing generation and a [lo..hi] generation window is a     *)
(* skip-prefix / take-while walk. A [store] optionally layers over a   *)
(* frozen base store (the {!extend} overlay), whose atoms all count    *)
(* as generation 0.                                                    *)
(* ------------------------------------------------------------------ *)

type store = {
  st_univ : (Atom.t, int) Hashtbl.t; (* atom -> generation *)
  st_by_sig : (string * int, (Atom.t * int) list ref) Hashtbl.t;
  st_by_first : (string * int * Term.t, (Atom.t * int) list ref) Hashtbl.t;
  mutable st_count : int; (* includes the base layer's count *)
  st_max : int;
  st_base : store option;
}

let new_store ~max_atoms base =
  {
    st_univ = Hashtbl.create 1024;
    st_by_sig = Hashtbl.create 64;
    st_by_first = Hashtbl.create 256;
    st_count = (match base with Some b -> b.st_count | None -> 0);
    st_max = max_atoms;
    st_base = base;
  }

let store_mem st a =
  Hashtbl.mem st.st_univ a
  || match st.st_base with Some b -> Hashtbl.mem b.st_univ a | None -> false

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl key (ref [ v ])

let add_atom st ~gen a ~on_new =
  let a = Atom.eval a in
  if not (Atom.is_ground a) then
    raise (Unsafe ("derived non-ground atom " ^ Atom.to_string a));
  if not (store_mem st a) then begin
    Hashtbl.replace st.st_univ a gen;
    st.st_count <- st.st_count + 1;
    if st.st_count > st.st_max then
      raise
        (Overflow (Printf.sprintf "atom universe exceeded %d atoms" st.st_max));
    push st.st_by_sig (Atom.signature a) (a, gen);
    (match a.Atom.args with
    | first :: _ ->
        push st.st_by_first (a.Atom.pred, List.length a.Atom.args, first) (a, gen)
    | [] -> ());
    on_new a
  end

(* Candidates of this layer only, discriminated on the first argument when
   the substituted pattern's first argument is ground. A failing
   [Term.eval] falls back to the signature scan so that the error (if any)
   surfaces from per-candidate unification exactly as in the oracle. *)
let layer_cands st (stats : Stats.t) (pat' : Atom.t) =
  stats.Stats.probes <- stats.Stats.probes + 1;
  let of_sig () =
    match Hashtbl.find_opt st.st_by_sig (Atom.signature pat') with
    | Some l -> !l
    | None -> []
  in
  match pat'.Atom.args with
  | first :: _ when Term.is_ground first -> (
      match (try Some (Term.eval first) with Invalid_argument _ -> None) with
      | Some key -> (
          match
            Hashtbl.find_opt st.st_by_first
              (pat'.Atom.pred, List.length pat'.Atom.args, key)
          with
          | Some l -> !l
          | None -> [])
      | None -> of_sig ())
  | _ -> of_sig ()

(* Iterate atoms of st (plus its base layer when [lo = 0]) whose generation
   lies in [lo..hi]. *)
let iter_window st stats ~lo ~hi pat' f =
  let rec skip = function
    | (_, g) :: rest when g > hi -> skip rest
    | l -> take l
  and take = function
    | (a, g) :: rest when g >= lo ->
        f a;
        take rest
    | _ -> ()
  in
  skip (layer_cands st stats pat');
  if lo = 0 then
    match st.st_base with
    | Some b -> List.iter (fun (a, _) -> f a) (layer_cands b stats pat')
    | None -> ()

(* One head-derivation template per plain-rule head / choice element; a
   choice element's template joins body and condition positives flat (safe:
   [check_rule] has already rejected body builtins that only the condition
   could bind). *)
type template = {
  t_pats : Atom.t array;
  t_builtins : (Term.t * Lit.cmp * Term.t) list;
  t_head : Atom.t;
  t_err : string;
}

let unbound_err r =
  located r ^ "builtin comparison with unbound variables in: " ^ Rule.to_string r

(* Returns the templates plus the semi-naive rule index: body-predicate
   signature -> (template, join position) pairs to re-fire when the
   signature gains atoms. *)
let build_templates rules =
  let ts = ref [] in
  let n = ref 0 in
  let index : (string * int, (int * int) list) Hashtbl.t = Hashtbl.create 32 in
  let add_template pats bs head err =
    let ti = !n in
    incr n;
    ts := { t_pats = Array.of_list pats; t_builtins = bs; t_head = head; t_err = err } :: !ts;
    List.iteri
      (fun pos pat ->
        let sg = Atom.signature pat in
        let cur = Option.value ~default:[] (Hashtbl.find_opt index sg) in
        Hashtbl.replace index sg ((ti, pos) :: cur))
      pats
  in
  List.iter
    (fun r ->
      match r with
      | Rule.Weak _ -> ()
      | Rule.Rule { head; body; _ } -> (
          let err = unbound_err r in
          let bp = positives body and bb = builtins_of body in
          match head with
          | Rule.Falsity -> ()
          | Rule.Head a -> add_template bp bb a err
          | Rule.Choice { elems; _ } ->
              List.iter
                (fun (e : Rule.choice_elem) ->
                  add_template
                    (bp @ positives e.cond)
                    (bb @ builtins_of e.cond)
                    e.atom err)
                elems))
    rules;
  (Array.of_list (List.rev !ts), index)

let fire st stats t ~round ~dpos ~on_match =
  let n = Array.length t.t_pats in
  let cands k pat' f =
    let lo, hi =
      if dpos < 0 then (0, max_int) (* naive: everything *)
      else if k = dpos then (round - 1, round - 1) (* the delta literal *)
      else if k < dpos then (0, round - 2) (* strictly older *)
      else (0, max_int) (* anything so far *)
    in
    iter_window st stats ~lo ~hi pat' f
  in
  let rec go k subst builtins =
    if k = n then
      match discharge subst builtins with
      | Some (subst, []) -> on_match subst
      | Some (_, _ :: _) -> raise (Unsafe t.t_err)
      | None -> ()
    else
      match discharge subst builtins with
      | None -> ()
      | Some (subst, builtins) ->
          let pat' = Atom.substitute subst t.t_pats.(k) in
          cands k pat' (fun ga ->
              match unify_atom subst pat' ga with
              | Some subst -> go (k + 1) subst builtins
              | None -> ())
  in
  go 0 [] t.t_builtins

(* Semi-naive driver. Round 1 fires [initial] naively (live candidate
   lists); every later round re-fires only the (template, position) pairs
   whose position's signature gained an atom in the previous round, with
   the join partitioned delta-exactly: strictly-older atoms left of the
   delta position, the previous round's atoms at it, anything so far right
   of it. Every join result is found exactly at the round after its newest
   constituent atom was derived (leftmost-newest position). *)
let run_fixpoint st (stats : Stats.t) templates entries_for ~initial =
  let added = ref [] in
  let derive ~round t subst =
    stats.Stats.firings <- stats.Stats.firings + 1;
    add_atom st ~gen:round
      (Atom.substitute subst t.t_head)
      ~on_new:(fun a -> added := a :: !added)
  in
  stats.Stats.passes <- stats.Stats.passes + 1;
  List.iter
    (fun ti ->
      let t = templates.(ti) in
      fire st stats t ~round:1 ~dpos:(-1) ~on_match:(derive ~round:1 t))
    initial;
  let round = ref 1 in
  while !added <> [] do
    incr round;
    stats.Stats.passes <- stats.Stats.passes + 1;
    let r = !round in
    let prev = !added in
    added := [];
    let seen_sig = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let sg = Atom.signature a in
        if not (Hashtbl.mem seen_sig sg) then begin
          Hashtbl.replace seen_sig sg ();
          List.iter
            (fun (ti, pos) ->
              let t = templates.(ti) in
              fire st stats t ~round:r ~dpos:pos ~on_match:(derive ~round:r t))
            (entries_for sg)
        end)
      prev
  done

(* ------------------------------------------------------------------ *)
(* Phase 2: instantiation against a frozen, canonically ordered view   *)
(* ------------------------------------------------------------------ *)

(* A [view] answers candidate queries over an immutable universe with
   every bucket sorted ascending by [Atom.compare] — the canonical order
   shared with {!Naive_ground}, which is what makes the two grounders'
   outputs bit-for-bit comparable. *)
type view = {
  v_sig : string * int -> Atom.t list;
  v_first : string * int * Term.t -> Atom.t list;
}

let tbl_view sigs firsts =
  {
    v_sig = (fun k -> Option.value ~default:[] (Hashtbl.find_opt sigs k));
    v_first = (fun k -> Option.value ~default:[] (Hashtbl.find_opt firsts k));
  }

(* Sorted per-signature and per-first-argument tables for the atoms of
   [st]'s own layer. *)
let sorted_tables st =
  let sigs = Hashtbl.create (Hashtbl.length st.st_by_sig) in
  let firsts = Hashtbl.create (Hashtbl.length st.st_by_first) in
  Hashtbl.iter
    (fun key l ->
      let sorted = List.sort Atom.compare (List.map fst !l) in
      Hashtbl.replace sigs key sorted;
      (* cons in descending order so every first-arg bucket stays sorted *)
      List.iter
        (fun (a : Atom.t) ->
          match a.Atom.args with
          | first :: _ ->
              let fk = (a.Atom.pred, List.length a.Atom.args, first) in
              let cur = Option.value ~default:[] (Hashtbl.find_opt firsts fk) in
              Hashtbl.replace firsts fk (a :: cur)
          | [] -> ())
        (List.rev sorted))
    st.st_by_sig;
  (sigs, firsts)

type snap = { sn_view : view; sn_mem : Atom.t -> bool }

let view_cands view (stats : Stats.t) (pat' : Atom.t) =
  stats.Stats.probes <- stats.Stats.probes + 1;
  match pat'.Atom.args with
  | first :: _ when Term.is_ground first -> (
      match (try Some (Term.eval first) with Invalid_argument _ -> None) with
      | Some key -> view.v_first (pat'.Atom.pred, List.length pat'.Atom.args, key)
      | None -> view.v_sig (Atom.signature pat'))
  | _ -> view.v_sig (Atom.signature pat')

(* Instantiate rule [r] against [snap], mirroring the oracle's phase 2
   modulo the first-argument index and hashed (instead of quadratic)
   dedup of aggregate / choice elements. [body_cands], when given,
   overrides candidate selection for the rule's outer body join only —
   {!extend} uses it to enumerate just the joins that involve new atoms.
   [perm] reorders the outer body join's enumeration (selectivity-first
   orderings from {!Analysis}); the matches are then replayed sorted by
   their chosen-atom tuple in original body order — exactly the order the
   in-order nested-loop join produces, since candidate buckets are sorted
   ascending and the substitution is a function of that tuple — so the
   emitted instances are bit-for-bit those of the unordered join. *)
let instantiate snap (stats : Stats.t) ?body_cands ?perm ~emit r =
  let rule_str = Rule.to_string r in
  let err = unbound_err r in
  let default_cands _ pat' = view_cands snap.sn_view stats pat' in
  let body_cands = Option.value ~default:default_cands body_cands in
  let body_matches lits ~on_match =
    match perm with
    | None -> matches_gen ~cands:body_cands ~err [] lits ~on_match
    | Some _ ->
        let pats = positives lits in
        let batch = ref [] in
        matches_gen ?perm ~cands:body_cands ~err [] lits
          ~on_match:(fun subst ->
            let key =
              List.map (fun a -> Atom.eval (Atom.substitute subst a)) pats
            in
            batch := (key, subst) :: !batch);
        List.iter
          (fun (_, subst) -> on_match subst)
          (List.sort
             (fun (k1, _) (k2, _) -> List.compare Atom.compare k1 k2)
             !batch)
  in
  let simplify_negs negs =
    List.filter snap.sn_mem (List.map (fun a -> Atom.eval a) negs)
  in
  let ground_pos subst lits =
    List.map (fun a -> Atom.eval (Atom.substitute subst a)) (positives lits)
  in
  let ground_neg subst lits =
    simplify_negs (List.map (Atom.substitute subst) (negatives lits))
  in
  let ground_counts subst lits =
    List.map
      (fun (c : Lit.count) ->
        let cbound =
          match Term.eval_int (Term.substitute subst c.Lit.bound) with
          | Some n -> n
          | None ->
              raise
                (Unsafe ("aggregate bound is not an integer in: " ^ rule_str))
        in
        let celems = ref [] in
        let seen_ce = Hashtbl.create 16 in
        matches_gen ~cands:default_cands ~err subst c.Lit.cond
          ~on_match:(fun subst' ->
            let ce =
              {
                Ground.etuple =
                  List.map
                    (fun t -> Term.eval (Term.substitute subst' t))
                    c.Lit.terms;
                epos = ground_pos subst' c.Lit.cond;
                eneg = ground_neg subst' c.Lit.cond;
              }
            in
            if not (Hashtbl.mem seen_ce ce) then begin
              Hashtbl.replace seen_ce ce ();
              celems := ce :: !celems
            end);
        {
          Ground.ckind = c.Lit.kind;
          celems = List.rev !celems;
          cop = c.Lit.op;
          cbound;
        })
      (count_lits lits)
  in
  match r with
  | Rule.Rule { head; body; _ } ->
      body_matches body ~on_match:(fun subst ->
          let pos = ground_pos subst body in
          let neg = ground_neg subst body in
          let counts = ground_counts subst body in
          match head with
          | Rule.Head a ->
              let head = Atom.eval (Atom.substitute subst a) in
              if pos = [] && neg = [] && counts = [] then
                emit (Ground.Gfact head)
              else emit (Ground.Grule { head; pos; neg; counts })
          | Rule.Falsity -> emit (Ground.Gconstraint { pos; neg; counts })
          | Rule.Choice { lower; upper; elems } ->
              let gelems = ref [] in
              let seen_ge = Hashtbl.create 16 in
              List.iter
                (fun (e : Rule.choice_elem) ->
                  matches_gen ~cands:default_cands ~err subst e.cond
                    ~on_match:(fun subst' ->
                      let ge =
                        {
                          Ground.gatom =
                            Atom.eval (Atom.substitute subst' e.atom);
                          gpos = ground_pos subst' e.cond;
                          gneg = ground_neg subst' e.cond;
                        }
                      in
                      if not (Hashtbl.mem seen_ge ge) then begin
                        Hashtbl.replace seen_ge ge ();
                        gelems := ge :: !gelems
                      end))
                elems;
              emit
                (Ground.Gchoice
                   { lower; upper; elems = List.rev !gelems; pos; neg; counts }))
  | Rule.Weak { body; weight; priority; terms; _ } ->
      body_matches body ~on_match:(fun subst ->
          let pos = ground_pos subst body in
          let neg = ground_neg subst body in
          let counts = ground_counts subst body in
          let weight =
            match Term.eval_int (Term.substitute subst weight) with
            | Some w -> w
            | None ->
                raise
                  (Unsafe
                     ("weak constraint weight is not an integer: " ^ rule_str))
          in
          let terms =
            List.map (fun t -> Term.eval (Term.substitute subst t)) terms
          in
          emit (Ground.Gweak { pos; neg; counts; weight; priority; terms }))

(* ------------------------------------------------------------------ *)
(* One-shot grounding                                                  *)
(* ------------------------------------------------------------------ *)

let all_indices n = List.init n (fun i -> i)

let phase1 ~max_atoms stats p =
  List.iter check_rule (Program.rules p);
  let st = new_store ~max_atoms None in
  let templates, tindex = build_templates (Program.rules p) in
  let entries_for sg =
    Option.value ~default:[] (Hashtbl.find_opt tindex sg)
  in
  run_fixpoint st stats templates entries_for
    ~initial:(all_indices (Array.length templates));
  (st, templates, tindex)

let universe_of st base =
  Hashtbl.fold (fun a _ acc -> Model.AtomSet.add a acc) st.st_univ base

let no_order : Rule.t -> int array option = fun _ -> None

let ground ?(max_atoms = 200_000) ?(order = no_order) ?stats p =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  let st, _, _ = phase1 ~max_atoms stats p in
  let sigs, firsts = sorted_tables st in
  let snap =
    { sn_view = tbl_view sigs firsts; sn_mem = (fun a -> Hashtbl.mem st.st_univ a) }
  in
  let seen : (Ground.grule, unit) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  let emit gr =
    if not (Hashtbl.mem seen gr) then begin
      Hashtbl.replace seen gr ();
      stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
      out := gr :: !out
    end
  in
  List.iter (fun r -> instantiate snap stats ?perm:(order r) ~emit r) (Program.rules p);
  let g =
    {
      Ground.rules = List.rev !out;
      universe = universe_of st Model.AtomSet.empty;
      shows = Program.shows p;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  g

(* ------------------------------------------------------------------ *)
(* Incremental grounding                                               *)
(* ------------------------------------------------------------------ *)

type rule_entry = {
  e_rule : Rule.t;
  e_pos_sigs : (string * int) array; (* positive body sigs, join order *)
  e_cond_sigs : (string * int) list; (* Deps.condition_signatures *)
  e_instances : Ground.grule list; (* base instances, emission order *)
}

type prepared = {
  p_program : Program.t;
  p_max_atoms : int;
  p_store : store; (* frozen after prepare; always single-layer *)
  p_sigs : (string * int, Atom.t list) Hashtbl.t; (* sorted buckets *)
  p_firsts : (string * int * Term.t, Atom.t list) Hashtbl.t;
  p_view : view; (* sorted base candidate tables *)
  p_snap : snap;
  p_entries : rule_entry array;
  p_templates : template array;
  p_tindex : (string * int, (int * int) list) Hashtbl.t;
  p_universe : Model.AtomSet.t;
  p_rules : Ground.grule list; (* globally deduped, = [ground] output *)
  p_order : Rule.t -> int array option;
}

let prepare ?(max_atoms = 200_000) ?(order = no_order) ?stats p =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  let st, templates, tindex = phase1 ~max_atoms stats p in
  let sigs, firsts = sorted_tables st in
  let view = tbl_view sigs firsts in
  let snap = { sn_view = view; sn_mem = (fun a -> Hashtbl.mem st.st_univ a) } in
  let entries =
    List.map
      (fun r ->
        let acc = ref [] in
        let emit gr =
          stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
          acc := gr :: !acc
        in
        instantiate snap stats ?perm:(order r) ~emit r;
        {
          e_rule = r;
          e_pos_sigs = Array.of_list (Deps.positive_body_signatures r);
          e_cond_sigs = Deps.condition_signatures r;
          e_instances = List.rev !acc;
        })
      (Program.rules p)
  in
  let seen : (Ground.grule, unit) Hashtbl.t = Hashtbl.create 256 in
  let rules =
    List.concat_map
      (fun e ->
        List.filter
          (fun gr ->
            if Hashtbl.mem seen gr then false
            else begin
              Hashtbl.replace seen gr ();
              true
            end)
          e.e_instances)
      entries
  in
  let prep =
    {
      p_program = p;
      p_max_atoms = max_atoms;
      p_store = st;
      p_sigs = sigs;
      p_firsts = firsts;
      p_view = view;
      p_snap = snap;
      p_entries = Array.of_list entries;
      p_templates = templates;
      p_tindex = tindex;
      p_universe = universe_of st Model.AtomSet.empty;
      p_rules = rules;
      p_order = order;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  prep

let base p =
  { Ground.rules = p.p_rules; universe = p.p_universe; shows = Program.shows p.p_program }

let base_universe p = p.p_universe

let extend ?stats prep dp =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  List.iter check_rule (Program.rules dp);
  (* Overlay phase 1: close the base universe under base + delta rules,
     starting from a naive pass over the delta's templates only (the base
     is already closed under its own rules). Only reads the prepared
     state, so concurrent extends of one [prepared] are safe. *)
  let st = new_store ~max_atoms:prep.p_max_atoms (Some prep.p_store) in
  let nbase = Array.length prep.p_templates in
  let dtemplates, dtindex = build_templates (Program.rules dp) in
  let templates = Array.append prep.p_templates dtemplates in
  let entries_for sg =
    let b = Option.value ~default:[] (Hashtbl.find_opt prep.p_tindex sg) in
    match Hashtbl.find_opt dtindex sg with
    | None -> b
    | Some d -> b @ List.map (fun (ti, pos) -> (ti + nbase, pos)) d
  in
  run_fixpoint st stats templates entries_for
    ~initial:(List.map (fun i -> i + nbase) (all_indices (Array.length dtemplates)));
  (* Sorted overlay tables + full view layering them over the base view. *)
  let nsigs, nfirsts = sorted_tables st in
  let merged_sigs = Hashtbl.create (Hashtbl.length nsigs) in
  Hashtbl.iter
    (fun k nl ->
      Hashtbl.replace merged_sigs k (List.merge Atom.compare (prep.p_view.v_sig k) nl))
    nsigs;
  let merged_firsts = Hashtbl.create (Hashtbl.length nfirsts) in
  Hashtbl.iter
    (fun k nl ->
      Hashtbl.replace merged_firsts k
        (List.merge Atom.compare (prep.p_view.v_first k) nl))
    nfirsts;
  let full_view =
    {
      v_sig =
        (fun k ->
          match Hashtbl.find_opt merged_sigs k with
          | Some l -> l
          | None -> prep.p_view.v_sig k);
      v_first =
        (fun k ->
          match Hashtbl.find_opt merged_firsts k with
          | Some l -> l
          | None -> prep.p_view.v_first k);
    }
  in
  let new_view = tbl_view nsigs nfirsts in
  let mem a = Hashtbl.mem st.st_univ a || Hashtbl.mem prep.p_store.st_univ a in
  let snap = { sn_view = full_view; sn_mem = mem } in
  let touched sg = Hashtbl.mem nsigs sg in
  let out = ref [] in
  let emit gr =
    stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
    out := gr :: !out
  in
  (* Classify each base rule by which signatures gained atoms:
     - a touched condition signature (negated body atom, aggregate or
       choice-element condition) can change the content of existing
       instances -> recompute the rule from scratch against the full view;
     - touched positive body signatures only -> existing instances are
       unchanged (share them) and the only new instances are joins with at
       least one new atom: enumerate them delta-exactly per position
       (new at it, base-only strictly left, full right);
     - nothing touched -> share wholesale. *)
  Array.iter
    (fun e ->
      let perm = prep.p_order e.e_rule in
      if List.exists touched e.e_cond_sigs then
        instantiate snap stats ?perm ~emit e.e_rule
      else begin
        stats.Stats.reused_rules <-
          stats.Stats.reused_rules + List.length e.e_instances;
        out := List.rev_append e.e_instances !out;
        Array.iteri
          (fun i sg ->
            if touched sg then begin
              let body_cands k pat' =
                if k = i then view_cands new_view stats pat'
                else if k < i then view_cands prep.p_view stats pat'
                else view_cands full_view stats pat'
              in
              instantiate snap stats ~body_cands ?perm ~emit e.e_rule
            end)
          e.e_pos_sigs
      end)
    prep.p_entries;
  List.iter
    (fun r -> instantiate snap stats ?perm:(prep.p_order r) ~emit r)
    (Program.rules dp);
  let g =
    {
      Ground.rules = List.rev !out;
      universe = universe_of st prep.p_universe;
      shows = Program.shows prep.p_program @ Program.shows dp;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  g

(* ------------------------------------------------------------------ *)
(* Structural re-preparation                                           *)
(* ------------------------------------------------------------------ *)

(* Flatten a two-layer overlay back into a single generation-0 store.
   [store_mem] and [iter_window] look through at most one base layer, so
   a [prepared] must always hold a single-layer store for the next
   overlay to see every atom. Generation 0 is correct for all future
   extends: their windows with [lo = 0] take the whole base layer. *)
let flatten_store ~max_atoms base overlay =
  let flat = new_store ~max_atoms None in
  let copy st =
    Hashtbl.iter
      (fun a _ ->
        if not (Hashtbl.mem flat.st_univ a) then begin
          Hashtbl.replace flat.st_univ a 0;
          flat.st_count <- flat.st_count + 1;
          push flat.st_by_sig (Atom.signature a) (a, 0);
          match a.Atom.args with
          | first :: _ ->
              push flat.st_by_first
                (a.Atom.pred, List.length a.Atom.args, first)
                (a, 0)
          | [] -> ()
        end)
      st.st_univ
  in
  copy base;
  copy overlay;
  flat

let extend_prepare ?stats prep dp =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let t0 = Unix.gettimeofday () in
  List.iter check_rule (Program.rules dp);
  (* Overlay phase 1, exactly as in {!extend} — but the merged template
     index is kept: it becomes the new prepared's [p_tindex]. *)
  let st = new_store ~max_atoms:prep.p_max_atoms (Some prep.p_store) in
  let nbase = Array.length prep.p_templates in
  let dtemplates, dtindex = build_templates (Program.rules dp) in
  let templates = Array.append prep.p_templates dtemplates in
  let tindex = Hashtbl.copy prep.p_tindex in
  Hashtbl.iter
    (fun sg d ->
      let b = Option.value ~default:[] (Hashtbl.find_opt tindex sg) in
      Hashtbl.replace tindex sg
        (b @ List.map (fun (ti, pos) -> (ti + nbase, pos)) d))
    dtindex;
  let entries_for sg = Option.value ~default:[] (Hashtbl.find_opt tindex sg) in
  run_fixpoint st stats templates entries_for
    ~initial:
      (List.map (fun i -> i + nbase) (all_indices (Array.length dtemplates)));
  (* Merge the overlay's sorted tables into copies of the base tables:
     the new prepared answers candidate queries over the full universe. *)
  let nsigs, nfirsts = sorted_tables st in
  let sigs = Hashtbl.copy prep.p_sigs in
  Hashtbl.iter
    (fun k nl ->
      let b = Option.value ~default:[] (Hashtbl.find_opt sigs k) in
      Hashtbl.replace sigs k (List.merge Atom.compare b nl))
    nsigs;
  let firsts = Hashtbl.copy prep.p_firsts in
  Hashtbl.iter
    (fun k nl ->
      let b = Option.value ~default:[] (Hashtbl.find_opt firsts k) in
      Hashtbl.replace firsts k (List.merge Atom.compare b nl))
    nfirsts;
  let view = tbl_view sigs firsts in
  let new_view = tbl_view nsigs nfirsts in
  let store = flatten_store ~max_atoms:prep.p_max_atoms prep.p_store st in
  let snap = { sn_view = view; sn_mem = (fun a -> Hashtbl.mem store.st_univ a) } in
  let touched sg = Hashtbl.mem nsigs sg in
  (* Per-entry instance update under {!extend}'s classification: shared
     instances stay shared (and keep their emission order), delta-exact
     new joins are appended, cond-touched rules are recomputed. *)
  let entries = ref [] in
  let recompute ?body_cands perm r =
    let acc = ref [] in
    let emit gr =
      stats.Stats.fresh_rules <- stats.Stats.fresh_rules + 1;
      acc := gr :: !acc
    in
    instantiate snap stats ?body_cands ?perm ~emit r;
    List.rev !acc
  in
  Array.iter
    (fun e ->
      let perm = prep.p_order e.e_rule in
      let insts =
        if List.exists touched e.e_cond_sigs then recompute perm e.e_rule
        else begin
          stats.Stats.reused_rules <-
            stats.Stats.reused_rules + List.length e.e_instances;
          let extra = ref [] in
          Array.iteri
            (fun i sg ->
              if touched sg then begin
                let body_cands k pat' =
                  if k = i then view_cands new_view stats pat'
                  else if k < i then view_cands prep.p_view stats pat'
                  else view_cands view stats pat'
                in
                extra := !extra @ recompute ~body_cands perm e.e_rule
              end)
            e.e_pos_sigs;
          e.e_instances @ !extra
        end
      in
      entries := { e with e_instances = insts } :: !entries)
    prep.p_entries;
  List.iter
    (fun r ->
      entries :=
        {
          e_rule = r;
          e_pos_sigs = Array.of_list (Deps.positive_body_signatures r);
          e_cond_sigs = Deps.condition_signatures r;
          e_instances = recompute (prep.p_order r) r;
        }
        :: !entries)
    (Program.rules dp);
  let entries = List.rev !entries in
  let seen : (Ground.grule, unit) Hashtbl.t = Hashtbl.create 256 in
  let rules =
    List.concat_map
      (fun e ->
        List.filter
          (fun gr ->
            if Hashtbl.mem seen gr then false
            else begin
              Hashtbl.replace seen gr ();
              true
            end)
          e.e_instances)
      entries
  in
  let next =
    {
      p_program = Program.append prep.p_program dp;
      p_max_atoms = prep.p_max_atoms;
      p_store = store;
      p_sigs = sigs;
      p_firsts = firsts;
      p_view = view;
      p_snap = snap;
      p_entries = Array.of_list entries;
      p_templates = templates;
      p_tindex = tindex;
      p_universe = universe_of store Model.AtomSet.empty;
      p_rules = rules;
      p_order = prep.p_order;
    }
  in
  stats.Stats.wall_s <- stats.Stats.wall_s +. (Unix.gettimeofday () -. t0);
  next
