type edge = Positive | Negative

module Sig = struct
  type t = string * int

  let compare = compare
end

module SigMap = Map.Make (Sig)
module SigSet = Set.Make (Sig)

type t = {
  nodes : SigSet.t;
  edges : (Sig.t * edge) list SigMap.t; (* head -> (body pred, polarity) *)
}

let add_edge head dep pol g =
  let existing = Option.value ~default:[] (SigMap.find_opt head g.edges) in
  let entry = (dep, pol) in
  let edges =
    if List.mem entry existing then g.edges
    else SigMap.add head (entry :: existing) g.edges
  in
  { nodes = SigSet.add head (SigSet.add dep g.nodes); edges }

let add_node n g = { g with nodes = SigSet.add n g.nodes }

let rec deps_of_lits lits =
  List.concat_map
    (fun l ->
      match l with
      | Lit.Pos a -> [ (Atom.signature a, Positive) ]
      | Lit.Neg a -> [ (Atom.signature a, Negative) ]
      | Lit.Cmp _ -> []
      | Lit.Count { cond; _ } ->
          (* the aggregate must see its condition fully decided: treat every
             condition atom as a negative (stratum-raising) dependency *)
          List.map (fun (sg, _) -> (sg, Negative)) (deps_of_lits cond))
    lits

let positive_body_signatures r =
  List.filter_map
    (function
      | Lit.Pos a -> Some (Atom.signature a)
      | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> None)
    (Rule.body r)

let condition_signatures r =
  let rec all_sigs lits =
    List.concat_map
      (fun l ->
        match l with
        | Lit.Pos a | Lit.Neg a -> [ Atom.signature a ]
        | Lit.Cmp _ -> []
        | Lit.Count { cond; _ } -> all_sigs cond)
      lits
  in
  let body_conds =
    List.concat_map
      (fun l ->
        match l with
        | Lit.Pos _ | Lit.Cmp _ -> []
        | Lit.Neg a -> [ Atom.signature a ]
        | Lit.Count { cond; _ } -> all_sigs cond)
      (Rule.body r)
  in
  let elem_conds =
    match r with
    | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
        List.concat_map (fun (e : Rule.choice_elem) -> all_sigs e.cond) elems
    | Rule.Rule _ | Rule.Weak _ -> []
  in
  body_conds @ elem_conds

let of_program p =
  let g = { nodes = SigSet.empty; edges = SigMap.empty } in
  List.fold_left
    (fun g r ->
      let heads = List.map Atom.signature (Rule.head_atoms r) in
      let body_deps = deps_of_lits (Rule.body r) in
      let cond_deps =
        match r with
        | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
            List.concat_map (fun (e : Rule.choice_elem) -> deps_of_lits e.cond) elems
        | Rule.Rule _ | Rule.Weak _ -> []
      in
      let g = List.fold_left (fun g h -> add_node h g) g heads in
      let g =
        List.fold_left
          (fun g (d, _) -> add_node d g)
          g (body_deps @ cond_deps)
      in
      List.fold_left
        (fun g h ->
          List.fold_left (fun g (d, pol) -> add_edge h d pol g) g
            (body_deps @ cond_deps))
        g heads)
    g (Program.rules p)

let predicates g = SigSet.elements g.nodes

let successors g n =
  Option.value ~default:[] (SigMap.find_opt n g.edges)

(* Tarjan's strongly connected components. *)
let sccs g =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if Sig.compare w v = 0 then w :: acc else pop (w :: acc)
      in
      result := pop [] :: !result
    end
  in
  SigSet.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) g.nodes;
  List.rev !result

let scc_id_map components =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun i comp -> List.iter (fun n -> Hashtbl.replace tbl n i) comp) components;
  tbl

let negative_cycle_sccs g =
  let components = sccs g in
  let ids = scc_id_map components in
  List.filteri
    (fun i comp ->
      List.exists
        (fun v ->
          List.exists
            (fun (w, pol) -> pol = Negative && Hashtbl.find ids w = i)
            (successors g v))
        comp)
    components

let positive_cycle_sccs g =
  let components = sccs g in
  let ids = scc_id_map components in
  List.filteri
    (fun i comp ->
      List.exists
        (fun v ->
          List.exists
            (fun (w, pol) -> pol = Positive && Hashtbl.find ids w = i)
            (successors g v))
        comp)
    components

let stratified g =
  let components = sccs g in
  let ids = scc_id_map components in
  SigSet.for_all
    (fun v ->
      List.for_all
        (fun (w, pol) ->
          match pol with
          | Positive -> true
          | Negative -> Hashtbl.find ids v <> Hashtbl.find ids w)
        (successors g v))
    g.nodes

let strata g =
  if not (stratified g) then None
  else begin
    let components = sccs g in
    (* components are in reverse topological order: callees first, so a
       single left-to-right pass assigns valid strata. *)
    let ids = scc_id_map components in
    let comp_stratum = Hashtbl.create 16 in
    List.iteri
      (fun i comp ->
        let s =
          List.fold_left
            (fun acc v ->
              List.fold_left
                (fun acc (w, pol) ->
                  let wid = Hashtbl.find ids w in
                  if wid = i then acc
                  else
                    let ws = Hashtbl.find comp_stratum wid in
                    max acc (match pol with Positive -> ws | Negative -> ws + 1))
                acc (successors g v))
            0 comp
        in
        Hashtbl.replace comp_stratum i s)
      components;
    Some
      (List.map
         (fun v -> (v, Hashtbl.find comp_stratum (Hashtbl.find ids v)))
         (SigSet.elements g.nodes))
  end

let choice_predicates p =
  let add acc s = if List.mem s acc then acc else s :: acc in
  List.rev
    (List.fold_left
       (fun acc r ->
         match r with
         | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
             List.fold_left
               (fun acc (e : Rule.choice_elem) -> add acc (Atom.signature e.atom))
               acc elems
         | Rule.Rule _ | Rule.Weak _ -> acc)
       [] (Program.rules p))

let negated_predicates p =
  let add acc s = if List.mem s acc then acc else s :: acc in
  let rec of_lits acc lits =
    List.fold_left
      (fun acc l ->
        match l with
        | Lit.Neg a -> add acc (Atom.signature a)
        | Lit.Count { cond; _ } -> of_lits acc cond
        | Lit.Pos _ | Lit.Cmp _ -> acc)
      acc lits
  in
  List.rev
    (List.fold_left
       (fun acc r ->
         let acc = of_lits acc (Rule.body r) in
         match r with
         | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
             List.fold_left
               (fun acc (e : Rule.choice_elem) -> of_lits acc e.cond)
               acc elems
         | Rule.Rule _ | Rule.Weak _ -> acc)
       [] (Program.rules p))
