(* Search statistics shared by the CDNL solver (Solver) and the retained
   DFS solver (Dfs). Every [solve_*_with_stats] entry point allocates a
   fresh record per call, so re-entrant and repeated solves never
   accumulate into each other's counters or wall times. *)

type t = {
  mutable guesses : int;
  mutable pruned : int;
  mutable firings : int;
  mutable leaves : int;
  mutable models : int;
  mutable conflicts : int;
  mutable learned : int;
  mutable restarts : int;
  mutable model_blocks : int;
  mutable backjumped : int;
  mutable unfounded_checks : int;
  mutable unfounded_sets : int;
  mutable pre_units : int;
  mutable pre_subsumed : int;
  mutable pre_equivs : int;
  mutable pre_pure : int;
  mutable shared_out : int;
  mutable shared_in : int;
  mutable cheap : bool;
  mutable wall_s : float;
}

let create () =
  {
    guesses = 0;
    pruned = 0;
    firings = 0;
    leaves = 0;
    models = 0;
    conflicts = 0;
    learned = 0;
    restarts = 0;
    model_blocks = 0;
    backjumped = 0;
    unfounded_checks = 0;
    unfounded_sets = 0;
    pre_units = 0;
    pre_subsumed = 0;
    pre_equivs = 0;
    pre_pure = 0;
    shared_out = 0;
    shared_in = 0;
    cheap = false;
    wall_s = 0.;
  }

let accumulate dst src =
  dst.guesses <- dst.guesses + src.guesses;
  dst.pruned <- dst.pruned + src.pruned;
  dst.firings <- dst.firings + src.firings;
  dst.leaves <- dst.leaves + src.leaves;
  dst.models <- dst.models + src.models;
  dst.conflicts <- dst.conflicts + src.conflicts;
  dst.learned <- dst.learned + src.learned;
  dst.restarts <- dst.restarts + src.restarts;
  dst.model_blocks <- dst.model_blocks + src.model_blocks;
  dst.backjumped <- dst.backjumped + src.backjumped;
  dst.unfounded_checks <- dst.unfounded_checks + src.unfounded_checks;
  dst.unfounded_sets <- dst.unfounded_sets + src.unfounded_sets;
  dst.pre_units <- dst.pre_units + src.pre_units;
  dst.pre_subsumed <- dst.pre_subsumed + src.pre_subsumed;
  dst.pre_equivs <- dst.pre_equivs + src.pre_equivs;
  dst.pre_pure <- dst.pre_pure + src.pre_pure;
  dst.shared_out <- dst.shared_out + src.shared_out;
  dst.shared_in <- dst.shared_in + src.shared_in;
  dst.cheap <- dst.cheap || src.cheap;
  dst.wall_s <- dst.wall_s +. src.wall_s

let to_string s =
  Printf.sprintf
    "guesses=%d pruned=%d firings=%d leaves=%d models=%d conflicts=%d \
     learned=%d restarts=%d blocks=%d backjumped=%d unfounded=%d/%d \
     pre=%d/%d/%d/%d shared=%d/%d tier=%s wall=%.6fs"
    s.guesses s.pruned s.firings s.leaves s.models s.conflicts s.learned
    s.restarts s.model_blocks s.backjumped s.unfounded_sets
    s.unfounded_checks s.pre_units s.pre_subsumed s.pre_equivs s.pre_pure
    s.shared_out s.shared_in
    (if s.cheap then "cheap" else "full")
    s.wall_s

let pp ppf s = Format.pp_print_string ppf (to_string s)
