(* Conflict-driven clause store and propagator: the CDCL kernel under the
   CDNL solver. Keeps the assignment trail with decision levels,
   two-watched-literal unit propagation, 1-UIP conflict analysis with
   activity bumping (VSIDS), non-chronological backjumping, and
   activity-based deletion of learned clauses.

   Literals use the {!Completion} encoding: [2v] asserts variable [v]
   true, [2v+1] asserts it false. The kernel is agnostic to what the
   variables mean; the solver layers the ASP semantics (lazy aggregate
   and bound propagators, unfounded-set checks) on top via
   {!add_dynamic} and the trail accessors. *)

type clause = {
  mutable lits : int array;
  mutable act : float;
  learnt : bool;
  local : bool;
      (* path-local clause (blocking nogood, bound prune): valid only
         under this solver's assumptions — resolvents over it must never
         be exported to other guiding-path domains *)
  cid : int;  (* creation stamp: deterministic tie-break for deletion *)
}

(* growable clause vector with in-place compaction *)
type cvec = { mutable data : clause array; mutable sz : int }

let dummy_clause =
  { lits = [||]; act = 0.; learnt = false; local = false; cid = -1 }
let cvec_create () = { data = [||]; sz = 0 }

let cvec_push v c =
  if v.sz = Array.length v.data then begin
    let cap = max 4 (2 * Array.length v.data) in
    let b = Array.make cap dummy_clause in
    Array.blit v.data 0 b 0 v.sz;
    v.data <- b
  end;
  v.data.(v.sz) <- c;
  v.sz <- v.sz + 1

type t = {
  nvars : int;
  branchable : int;  (* vars below this bound live in the decision heap *)
  stats : Solver_stats.t;
  value : int array;  (* var -> 0 undef / 1 true / -1 false *)
  vlevel : int array;
  reason : clause option array;
  trail : int array;
  mutable trail_sz : int;
  trail_lim : int array;
  mutable n_levels : int;
  mutable qhead : int;
  watches : cvec array;  (* indexed by watched literal *)
  learnts : cvec;
  activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  phase : bool array;  (* saved phase: last value the variable took *)
  seen : Bytes.t;
  heap : int array;  (* binary max-heap of branchable vars by activity *)
  hpos : int array;  (* var -> heap slot, -1 when absent *)
  mutable hsz : int;
  mutable next_cid : int;
  mutable undo_hook : int -> unit;
  mutable analyze_local : bool;
      (* last analysis resolved over a path-local clause *)
  mutable unsat : bool;  (* conflict at level 0: no model at all *)
}

let create ?branchable ~nvars ~stats () =
  let n = max nvars 1 in
  let branchable = Option.value ~default:nvars branchable in
  let s =
    {
      nvars;
      branchable;
      stats;
      value = Array.make n 0;
      vlevel = Array.make n 0;
      reason = Array.make n None;
      trail = Array.make n 0;
      trail_sz = 0;
      trail_lim = Array.make (n + 1) 0;
      n_levels = 0;
      qhead = 0;
      watches = Array.init (2 * n) (fun _ -> cvec_create ());
      learnts = cvec_create ();
      activity = Array.make n 0.;
      var_inc = 1.;
      cla_inc = 1.;
      phase = Array.make n false;
      seen = Bytes.make n '\000';
      heap = Array.init branchable (fun i -> i);
      hpos = Array.init n (fun v -> if v < branchable then v else -1);
      hsz = branchable;
      next_cid = 0;
      undo_hook = (fun _ -> ());
      analyze_local = false;
      unsat = false;
    }
  in
  (* all activities are zero, so the ascending id order is a valid heap
     under the (activity desc, id asc) ranking *)
  s

(* heap ranking: highest activity first, lowest id on ties — exactly the
   pick the former linear scan made, so branching stays deterministic *)
let ranks_above s v w =
  s.activity.(v) > s.activity.(w)
  || (s.activity.(v) = s.activity.(w) && v < w)

let sift_up s i =
  let i = ref i in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    ranks_above s s.heap.(!i) s.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let v = s.heap.(!i) and w = s.heap.(p) in
    s.heap.(!i) <- w;
    s.heap.(p) <- v;
    s.hpos.(w) <- !i;
    s.hpos.(v) <- p;
    i := p
  done

let sift_down s i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    let best = ref !i in
    if l < s.hsz && ranks_above s s.heap.(l) s.heap.(!best) then best := l;
    if r < s.hsz && ranks_above s s.heap.(r) s.heap.(!best) then best := r;
    if !best = !i then continue := false
    else begin
      let v = s.heap.(!i) and w = s.heap.(!best) in
      s.heap.(!i) <- w;
      s.heap.(!best) <- v;
      s.hpos.(w) <- !i;
      s.hpos.(v) <- !best;
      i := !best
    end
  done

let heap_insert s v =
  if v < s.branchable && s.hpos.(v) < 0 then begin
    s.heap.(s.hsz) <- v;
    s.hpos.(v) <- s.hsz;
    s.hsz <- s.hsz + 1;
    sift_up s (s.hsz - 1)
  end

let set_undo_hook s f = s.undo_hook <- f
let unsat s = s.unsat
let level s = s.n_levels
let trail_size s = s.trail_sz
let trail_get s i = s.trail.(i)
let value_var s v = s.value.(v)

let value_lit s l =
  let v = s.value.(l lsr 1) in
  if l land 1 = 0 then v else -v

let var_level s v = s.vlevel.(v)
let n_learnts s = s.learnts.sz

(* the decision literal that opened level [l] (1-based) *)
let decision_lit s l = s.trail.(s.trail_lim.(l - 1))

let enqueue s lit reason =
  let v = lit lsr 1 in
  s.value.(v) <- (if lit land 1 = 0 then 1 else -1);
  s.vlevel.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.phase.(v) <- lit land 1 = 0;
  s.trail.(s.trail_sz) <- lit;
  s.trail_sz <- s.trail_sz + 1;
  s.stats.Solver_stats.firings <- s.stats.Solver_stats.firings + 1

let decide s lit =
  s.stats.Solver_stats.guesses <- s.stats.Solver_stats.guesses + 1;
  s.trail_lim.(s.n_levels) <- s.trail_sz;
  s.n_levels <- s.n_levels + 1;
  enqueue s lit None

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let bound = s.trail_lim.(lvl) in
    (* trail_sz shrinks before each hook call so the hook can tell the
       popped literal's position from the current trail size *)
    while s.trail_sz > bound do
      s.trail_sz <- s.trail_sz - 1;
      let lit = s.trail.(s.trail_sz) in
      let v = lit lsr 1 in
      s.value.(v) <- 0;
      s.reason.(v) <- None;
      heap_insert s v;
      s.undo_hook lit
    done;
    s.qhead <- bound;
    s.n_levels <- lvl
  end

let mk_clause ?(local = false) s lits learnt =
  let c = { lits; act = 0.; learnt; local; cid = s.next_cid } in
  s.next_cid <- s.next_cid + 1;
  c

let attach s c =
  cvec_push s.watches.(c.lits.(0)) c;
  cvec_push s.watches.(c.lits.(1)) c

let detach s c =
  let remove l =
    let ws = s.watches.(l) in
    let j = ref 0 in
    for i = 0 to ws.sz - 1 do
      if ws.data.(i) != c then begin
        ws.data.(!j) <- ws.data.(i);
        incr j
      end
    done;
    ws.sz <- !j
  in
  remove c.lits.(0);
  remove c.lits.(1)

(* initial (level-0) clause: simplified against the current top-level
   assignment — satisfied clauses dropped, false literals removed *)
let add_initial s lits =
  if not s.unsat then begin
    let lits = Array.to_list lits in
    let sat = ref false in
    let seen_pos = Hashtbl.create 8 in
    let kept =
      List.filter
        (fun l ->
          if value_lit s l = 1 then sat := true;
          if Hashtbl.mem seen_pos (l lxor 1) then sat := true (* tautology *);
          let fresh = not (Hashtbl.mem seen_pos l) in
          Hashtbl.replace seen_pos l ();
          fresh && value_lit s l = 0)
        lits
    in
    if not !sat then
      match kept with
      | [] -> s.unsat <- true
      | [ l ] -> enqueue s l None
      | _ :: _ :: _ -> attach s (mk_clause s (Array.of_list kept) false)
  end

(* preprocessed clause: already simplified (>= 2 literals, no duplicates,
   nothing assigned), attach without re-checking *)
let add_clean s lits =
  if not s.unsat then attach s (mk_clause s lits false)

(* assert a literal made unit by chronological backtracking: the clause
   was attached by [add_dynamic] but re-gained exactly one unassigned
   literal through trail pops, which event-driven propagation never sees *)
let force s lit c = enqueue s lit (Some c)

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    (* uniform rescale preserves the heap order *)
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.hpos.(v) >= 0 then sift_up s s.hpos.(v)

let bump_clause s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e100 then begin
    for i = 0 to s.learnts.sz - 1 do
      s.learnts.data.(i).act <- s.learnts.data.(i).act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay s =
  s.var_inc <- s.var_inc /. 0.95;
  s.cla_inc <- s.cla_inc /. 0.999

let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < s.trail_sz do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let fl = p lxor 1 in
    (* every clause watching [fl] must find a new watch, propagate, or
       conflict *)
    let ws = s.watches.(fl) in
    let n = ws.sz in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = ws.data.(!i) in
      incr i;
      if !confl <> None then begin
        ws.data.(!j) <- c;
        incr j
      end
      else begin
        let lits = c.lits in
        if lits.(0) = fl then begin
          lits.(0) <- lits.(1);
          lits.(1) <- fl
        end;
        let first = lits.(0) in
        if value_lit s first = 1 then begin
          ws.data.(!j) <- c;
          incr j
        end
        else begin
          let len = Array.length lits in
          let k = ref 2 in
          let found = ref (-1) in
          while !found < 0 && !k < len do
            if value_lit s lits.(!k) <> -1 then found := !k;
            incr k
          done;
          if !found >= 0 then begin
            let nw = lits.(!found) in
            lits.(!found) <- fl;
            lits.(1) <- nw;
            cvec_push s.watches.(nw) c
          end
          else begin
            ws.data.(!j) <- c;
            incr j;
            if value_lit s first = -1 then confl := Some c
            else enqueue s first (Some c)
          end
        end
      end
    done;
    ws.sz <- !j
  done;
  !confl

(* 1-UIP conflict analysis. Returns the learnt clause (asserting literal
   first) — [learn] below performs the backjump and attachment. *)
let analyze s confl =
  s.stats.Solver_stats.conflicts <- s.stats.Solver_stats.conflicts + 1;
  s.analyze_local <- false;
  let tail = ref [] in
  let pathc = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_sz - 1) in
  let c = ref confl in
  let to_clear = ref [] in
  let looping = ref true in
  while !looping do
    let cl = !c in
    if cl.local then s.analyze_local <- true;
    if cl.learnt then bump_clause s cl;
    let lits = cl.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = q lsr 1 in
      if Bytes.get s.seen v = '\000' && s.vlevel.(v) > 0 then begin
        Bytes.set s.seen v '\001';
        to_clear := v :: !to_clear;
        bump_var s v;
        if s.vlevel.(v) >= s.n_levels then incr pathc
        else tail := q :: !tail
      end
    done;
    while Bytes.get s.seen (s.trail.(!idx) lsr 1) = '\000' do
      decr idx
    done;
    p := s.trail.(!idx);
    decr idx;
    let v = !p lsr 1 in
    Bytes.set s.seen v '\000';
    decr pathc;
    if !pathc <= 0 then looping := false
    else
      c :=
        (match s.reason.(v) with
        | Some r -> r
        | None -> invalid_arg "Nogood.analyze: decision inside resolution")
  done;
  List.iter (fun v -> Bytes.set s.seen v '\000') !to_clear;
  Array.of_list ((!p lxor 1) :: !tail)

let analyzed_local s = s.analyze_local

(* backjump as far as the learnt clause allows (never above [root]),
   attach it and assert its first literal *)
let learn s ~root lits =
  s.stats.Solver_stats.learned <- s.stats.Solver_stats.learned + 1;
  let len = Array.length lits in
  let bj =
    if len = 1 then 0
    else begin
      let best = ref 1 in
      for k = 2 to len - 1 do
        if s.vlevel.(lits.(k) lsr 1) > s.vlevel.(lits.(!best) lsr 1) then
          best := k
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      s.vlevel.(lits.(1) lsr 1)
    end
  in
  let target = max bj root in
  let skipped = s.n_levels - 1 - target in
  if skipped > 0 then
    s.stats.Solver_stats.backjumped <-
      s.stats.Solver_stats.backjumped + skipped;
  cancel_until s target;
  if len = 1 then enqueue s lits.(0) None
  else begin
    (* a resolvent over a path-local clause is itself path-local: it must
       carry the taint so later analyses over it stay unshareable *)
    let c = mk_clause ~local:s.analyze_local s lits true in
    attach s c;
    cvec_push s.learnts c;
    bump_clause s c;
    enqueue s lits.(0) (Some c)
  end;
  decay s

type dyn_result = Sat | Unit | Conflict of clause | Empty

(* add a clause discovered during search (lazy aggregate/bound
   explanations, loop nogoods, blocking nogoods, bound prunes): the
   current assignment decides whether it is silent, propagating, or
   conflicting. A unit clause (size 1 after inspection) is asserted with
   itself as reason but left unattached: once the search retracts below
   the asserting level, the lazy check that produced it fires again. *)
let add_dynamic ?(local = false) s ~learnt lits =
  let len = Array.length lits in
  if len = 0 then begin
    s.unsat <- true;
    Empty
  end
  else begin
    (* order: a satisfying literal first if any, else the undefined ones,
       else the highest-level false literals *)
    let keyof l =
      match value_lit s l with
      | 1 -> (2, max_int)
      | 0 -> (1, max_int)
      | _ -> (0, s.vlevel.(l lsr 1))
    in
    Array.sort
      (fun a b -> compare (keyof b) (keyof a))
      lits;
    let c = mk_clause ~local s lits learnt in
    if len >= 2 then begin
      attach s c;
      if learnt then begin
        cvec_push s.learnts c;
        bump_clause s c
      end
    end;
    match value_lit s lits.(0) with
    | 1 -> Sat
    | 0 ->
        if len = 1 || value_lit s lits.(1) = -1 then begin
          enqueue s lits.(0) (Some c);
          Unit
        end
        else Sat
    | _ -> Conflict c
  end

(* delete the coldest half of the learned clauses; reasons and short
   clauses survive. Deterministic: activity then creation stamp. *)
let reduce_db s =
  let ls = s.learnts in
  if ls.sz > 0 then begin
    let arr = Array.sub ls.data 0 ls.sz in
    Array.sort
      (fun a b ->
        match compare a.act b.act with 0 -> compare a.cid b.cid | n -> n)
      arr;
    let locked c =
      Array.length c.lits > 0
      &&
      match s.reason.(c.lits.(0) lsr 1) with
      | Some r -> r == c
      | None -> false
    in
    let limit = ls.sz / 2 in
    let kept = ref [] in
    Array.iteri
      (fun i c ->
        if i < limit && Array.length c.lits > 2 && not (locked c) then
          detach s c
        else kept := c :: !kept)
      arr;
    ls.sz <- 0;
    List.iter (fun c -> cvec_push ls c) (List.rev !kept)
  end

(* deterministic VSIDS pick: the unassigned branchable variable with the
   highest activity, lowest id on ties — popped from the heap instead of
   scanned linearly; assigned entries are discarded lazily and re-enter
   the heap when the trail pops them. Saved-phase polarity (variables
   start out false, biasing enumeration towards small models first). *)
let rec pick_branch s =
  if s.hsz = 0 then None
  else begin
    let v = s.heap.(0) in
    s.hsz <- s.hsz - 1;
    s.hpos.(v) <- -1;
    if s.hsz > 0 then begin
      let w = s.heap.(s.hsz) in
      s.heap.(0) <- w;
      s.hpos.(w) <- 0;
      sift_down s 0
    end;
    if s.value.(v) = 0 then
      Some (if s.phase.(v) then 2 * v else (2 * v) + 1)
    else pick_branch s
  end
