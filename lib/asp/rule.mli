(** Rules: normal rules, choice rules, integrity constraints and weak
    constraints, in the clingo fragment the framework generates. *)

type choice_elem = { atom : Atom.t; cond : Lit.t list }
(** A choice element [atom : cond1, …, condn]. *)

type pos = { line : int; col : int }
(** Source position (1-based) of the statement a rule was parsed from;
    [None] for programmatically constructed rules. *)

type head =
  | Head of Atom.t  (** normal rule / fact head *)
  | Choice of { lower : int option; upper : int option; elems : choice_elem list }
      (** [lo { e1 ; … ; en } hi] *)
  | Falsity  (** integrity constraint [:- body] *)

type t =
  | Rule of { head : head; body : Lit.t list; pos : pos option }
  | Weak of {
      body : Lit.t list;
      weight : Term.t;
      priority : int;
      terms : Term.t list;
      pos : pos option;
    }  (** [:~ body. \[w@p, t1, …\]] *)

val fact : ?pos:pos -> Atom.t -> t
val rule : ?pos:pos -> Atom.t -> Lit.t list -> t
val constraint_ : ?pos:pos -> Lit.t list -> t
val choice : ?lower:int -> ?upper:int -> ?pos:pos -> choice_elem list -> Lit.t list -> t
val weak :
  ?priority:int -> ?terms:Term.t list -> ?pos:pos -> weight:Term.t -> Lit.t list -> t

val pos : t -> pos option
val with_pos : pos -> t -> t
val pos_to_string : pos -> string

val vars : t -> string list
val is_ground : t -> bool
val substitute : Term.subst -> t -> t

val head_atoms : t -> Atom.t list
(** Atoms that this rule can derive (choice elements included). *)

val body : t -> Lit.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
