(* Conflict-driven nogood learning (CDNL-ASP) solver: the production
   solving path. See solver.mli for the architecture overview and
   DESIGN.md §10 for the full derivation. *)

exception Unsupported of string

module AtomSet = Model.AtomSet
module Stats = Solver_stats

(* accepted (and ignored) for API compatibility with the retained DFS
   path: CDNL search is polynomial-space in the guess dimension, so no
   cap is needed *)
let default_max_guess = 64

module Config = struct
  type t = {
    preprocess : bool;  (* completion-nogood preprocessing (§12.1) *)
    cheap_tier : bool;  (* propagation-only tier for eligible programs *)
    exchange : (Exchange.t * int) option;
        (* learned-nogood sharing hub and this solver's path id *)
  }

  let default = { preprocess = true; cheap_tier = true; exchange = None }
end

(* sharing filter: clauses worth exporting are short or have low LBD —
   everything else costs the importers more than it saves *)
let share_max_size = 16
let share_max_lbd = 4

(* Luby restart sequence: 1 1 2 1 1 2 4 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

let restart_base = 100

type driver = {
  p : Interned.t;
  comp : Completion.t;
  k : Nogood.t;
  stats : Stats.t;
  abits : Bitset.t;  (* currently-true atoms, kept in sync with the trail *)
  mutable cursor : int;  (* trail positions < cursor have been scanned *)
  agg_left : int array;  (* per count: unassigned scope atoms *)
  bound_left : int array;  (* per bound_scope entry *)
  weak_left : int array;  (* per weak constraint *)
  atom_aggs : int list array;
  atom_bounds : int list array;
  atom_weaks : int list array;
  scc_dirty : bool array;
  mutable any_dirty : bool;
}

let make_driver (p : Interned.t) (comp : Completion.t) stats =
  let n_atoms = comp.Completion.n_atoms in
  let k =
    Nogood.create ~branchable:n_atoms ~nvars:comp.Completion.n_vars ~stats ()
  in
  let n1 = max n_atoms 1 in
  let d =
    {
      p;
      comp;
      k;
      stats;
      abits = Bitset.create n1;
      cursor = 0;
      agg_left = Array.map Array.length comp.Completion.agg_scope;
      bound_left = Array.map (fun (_, s) -> Array.length s) comp.Completion.bound_scope;
      weak_left = Array.map Array.length comp.Completion.weak_scope;
      atom_aggs = Array.make n1 [];
      atom_bounds = Array.make n1 [];
      atom_weaks = Array.make n1 [];
      scc_dirty = Array.make (max (Array.length comp.Completion.sccs) 1) true;
      any_dirty = Array.length comp.Completion.sccs > 0;
    }
  in
  Array.iteri
    (fun ci scope ->
      Array.iter (fun a -> d.atom_aggs.(a) <- ci :: d.atom_aggs.(a)) scope)
    comp.Completion.agg_scope;
  Array.iteri
    (fun bi (_, scope) ->
      Array.iter (fun a -> d.atom_bounds.(a) <- bi :: d.atom_bounds.(a)) scope)
    comp.Completion.bound_scope;
  Array.iteri
    (fun wi scope ->
      Array.iter (fun a -> d.atom_weaks.(a) <- wi :: d.atom_weaks.(a)) scope)
    comp.Completion.weak_scope;
  Nogood.set_undo_hook k (fun lit ->
      (* the popped literal sat at position [trail_size] (the kernel
         shrinks before calling); only roll back what was scanned *)
      let pos = Nogood.trail_size k in
      if d.cursor > pos then begin
        d.cursor <- pos;
        let v = lit lsr 1 in
        if v < n_atoms then begin
          if lit land 1 = 0 then Bitset.clear d.abits v;
          List.iter
            (fun ci -> d.agg_left.(ci) <- d.agg_left.(ci) + 1)
            d.atom_aggs.(v);
          List.iter
            (fun bi -> d.bound_left.(bi) <- d.bound_left.(bi) + 1)
            d.atom_bounds.(v);
          List.iter
            (fun wi -> d.weak_left.(wi) <- d.weak_left.(wi) + 1)
            d.atom_weaks.(v)
        end
      end);
  d

(* bring the lazy-propagator state up to date with the trail: atom bitset,
   scope countdowns, dirty SCC marks (a support body assigned false) *)
let scan d =
  let n_atoms = d.comp.Completion.n_atoms in
  let body_base = n_atoms + d.comp.Completion.n_counts in
  let ts = Nogood.trail_size d.k in
  while d.cursor < ts do
    let lit = Nogood.trail_get d.k d.cursor in
    d.cursor <- d.cursor + 1;
    let v = lit lsr 1 in
    if v < n_atoms then begin
      if lit land 1 = 0 then Bitset.set d.abits v;
      List.iter
        (fun ci -> d.agg_left.(ci) <- d.agg_left.(ci) - 1)
        d.atom_aggs.(v);
      List.iter
        (fun bi -> d.bound_left.(bi) <- d.bound_left.(bi) - 1)
        d.atom_bounds.(v);
      List.iter
        (fun wi -> d.weak_left.(wi) <- d.weak_left.(wi) - 1)
        d.atom_weaks.(v)
    end
    else if v >= body_base && lit land 1 = 1 then begin
      (* a body became false: its head's loop may have lost support *)
      let b = d.comp.Completion.bodies.(v - body_base) in
      if b.Completion.bhead >= 0 then begin
        let si = d.comp.Completion.scc_of.(b.Completion.bhead) in
        if si >= 0 && not d.scc_dirty.(si) then begin
          d.scc_dirty.(si) <- true;
          d.any_dirty <- true
        end
      end
    end
  done

type check_outcome =
  | Quiet  (* nothing to do: the assignment passed every lazy check *)
  | Progress  (* clauses added / literals asserted: propagate again *)
  | Confl of Nogood.clause
  | Bottom  (* an empty clause surfaced: branch exhausted *)

(* aggregate variables: evaluated against the atom assignment once every
   atom of their scope is decided; the explanation clause is the negation
   of the exact scope assignment, which is sound because the scope is
   fully assigned *)
let check_aggregates d =
  let n_counts = d.comp.Completion.n_counts in
  let n_atoms = d.comp.Completion.n_atoms in
  let outcome = ref Quiet in
  let ci = ref 0 in
  while !outcome == Quiet && !ci < n_counts do
    let i = !ci in
    incr ci;
    if d.agg_left.(i) = 0 then begin
      let v = n_atoms + i in
      let desired =
        Interned.eval_count d.p d.abits d.p.Interned.counts.(i)
      in
      let cur = Nogood.value_var d.k v in
      if cur = 0 || cur = 1 <> desired then begin
        let lits = ref [ (if desired then Completion.lit_true v else Completion.lit_false v) ] in
        Array.iter
          (fun a ->
            lits :=
              (if Bitset.get d.abits a then Completion.lit_false a
               else Completion.lit_true a)
              :: !lits)
          d.comp.Completion.agg_scope.(i);
        match Nogood.add_dynamic d.k ~learnt:true (Array.of_list !lits) with
        | Nogood.Unit -> outcome := Progress
        | Nogood.Conflict c -> outcome := Confl c
        | Nogood.Sat -> ()
        | Nogood.Empty -> outcome := Bottom
      end
    end
  done;
  !outcome

(* choice bounds: checked once the scope (body, elements, conditions) is
   fully assigned; a violation contributes the negation of the exact
   scope assignment as a conflict *)
let check_bounds d =
  let n = Array.length d.comp.Completion.bound_scope in
  let outcome = ref Quiet in
  let bi = ref 0 in
  while !outcome == Quiet && !bi < n do
    let i = !bi in
    incr bi;
    if d.bound_left.(i) = 0 then begin
      let cidx, scope = d.comp.Completion.bound_scope.(i) in
      let c = d.p.Interned.choices.(cidx) in
      let all_true ids = Array.for_all (fun a -> Bitset.get d.abits a) ids in
      let none_true ids =
        not (Array.exists (fun a -> Bitset.get d.abits a) ids)
      in
      if
        all_true c.Interned.cpos
        && none_true c.Interned.cneg
        && Interned.counts_sat d.p d.abits c.Interned.ccounts
      then begin
        let chosen = ref 0 in
        Array.iter
          (fun (el : Interned.elem) ->
            if
              Bitset.get d.abits el.Interned.eatom
              && all_true el.Interned.egpos
              && none_true el.Interned.egneg
            then incr chosen)
          c.Interned.elems;
        let lower_ok =
          match c.Interned.lower with Some lo -> !chosen >= lo | None -> true
        in
        let upper_ok =
          match c.Interned.upper with Some hi -> !chosen <= hi | None -> true
        in
        if not (lower_ok && upper_ok) then begin
          let lits =
            Array.map
              (fun a ->
                if Bitset.get d.abits a then Completion.lit_false a
                else Completion.lit_true a)
              scope
          in
          match Nogood.add_dynamic d.k ~learnt:true lits with
          | Nogood.Conflict c -> outcome := Confl c
          | Nogood.Unit -> outcome := Progress
          | Nogood.Sat -> ()
          | Nogood.Empty -> outcome := Bottom
        end
      end
    end
  done;
  !outcome

(* unfounded-set check over one dirty SCC: the founded atoms are grown
   from external support (a non-false body whose same-SCC positive atoms
   are already founded); what remains and is not already false is an
   unfounded set U, and every atom of U gets the loop nogood
   [not a \/ external-bodies-of-U] (Lin-Zhao for arbitrary sets) *)
let check_scc d si =
  d.stats.Stats.unfounded_checks <- d.stats.Stats.unfounded_checks + 1;
  let comp = d.comp in
  let scc = comp.Completion.sccs.(si) in
  let founded = Hashtbl.create (Array.length scc) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun a ->
        if not (Hashtbl.mem founded a) then
          let supported =
            List.exists
              (fun (bi, in_scc) ->
                Nogood.value_var d.k comp.Completion.bodies.(bi).Completion.bvar
                <> -1
                && Array.for_all (fun x -> Hashtbl.mem founded x) in_scc)
              comp.Completion.supports.(a)
          in
          if supported then begin
            Hashtbl.replace founded a ();
            changed := true
          end)
      scc
  done;
  let u =
    Array.to_list scc
    |> List.filter (fun a ->
           (not (Hashtbl.mem founded a)) && Nogood.value_var d.k a <> -1)
  in
  match u with
  | [] -> Quiet
  | _ ->
      d.stats.Stats.unfounded_sets <- d.stats.Stats.unfounded_sets + 1;
      let in_u = Hashtbl.create 16 in
      List.iter (fun a -> Hashtbl.replace in_u a ()) u;
      let eb = ref [] in
      let eb_seen = Hashtbl.create 16 in
      List.iter
        (fun a ->
          List.iter
            (fun (bi, in_scc) ->
              if
                (not (Hashtbl.mem eb_seen bi))
                && not (Array.exists (fun x -> Hashtbl.mem in_u x) in_scc)
              then begin
                Hashtbl.replace eb_seen bi ();
                eb :=
                  Completion.lit_true
                    comp.Completion.bodies.(bi).Completion.bvar
                  :: !eb
              end)
            comp.Completion.supports.(a))
        u;
      let outcome = ref Progress in
      (try
         List.iter
           (fun a ->
             let lits = Array.of_list (Completion.lit_false a :: !eb) in
             match Nogood.add_dynamic d.k ~learnt:true lits with
             | Nogood.Conflict c ->
                 (* resolve this conflict first; the SCC stays dirty so
                    the remaining atoms are re-checked afterwards *)
                 d.scc_dirty.(si) <- true;
                 d.any_dirty <- true;
                 outcome := Confl c;
                 raise Exit
             | Nogood.Empty ->
                 outcome := Bottom;
                 raise Exit
             | Nogood.Unit | Nogood.Sat -> ())
           u
       with Exit -> ());
      !outcome

let check_unfounded d =
  if d.comp.Completion.tight || not d.any_dirty then Quiet
  else begin
    d.any_dirty <- false;
    let n = Array.length d.comp.Completion.sccs in
    let outcome = ref Quiet in
    let si = ref 0 in
    while (!outcome == Quiet || !outcome == Progress) && !si < n do
      let i = !si in
      incr si;
      if d.scc_dirty.(i) then begin
        d.scc_dirty.(i) <- false;
        match check_scc d i with
        | Quiet -> ()
        | Progress -> outcome := Progress
        | other -> outcome := other
      end
    done;
    !outcome
  end

let run_checks d =
  match check_aggregates d with
  | Quiet -> (
      match check_bounds d with
      | Quiet -> check_unfounded d
      | other -> other)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Branch-and-bound lower bound under mixed-sign weights                *)
(* ------------------------------------------------------------------ *)

(* Per priority level: [sum] = weights of tuples certainly satisfied plus
   weights of still-undecided {e negative} tuples (the worst case), which
   is a sound lower bound even with mixed signs; [exact] when no
   undecided weak can still change the level. Tuples deduplicate by
   (priority, weight, terms) exactly as in [Interned.cost_of]. *)
let lower_bound d =
  let sat = Hashtbl.create 16 in
  let pending = Hashtbl.create 16 in
  let inexact = Hashtbl.create 4 in
  Array.iteri
    (fun wi (w : Interned.weak) ->
      let key = (w.Interned.priority, w.Interned.weight, w.Interned.terms) in
      if d.weak_left.(wi) = 0 then begin
        let all_true ids = Array.for_all (fun a -> Bitset.get d.abits a) ids in
        let none_true ids =
          not (Array.exists (fun a -> Bitset.get d.abits a) ids)
        in
        if
          all_true w.Interned.wpos
          && none_true w.Interned.wneg
          && Interned.counts_sat d.p d.abits w.Interned.wcounts
        then Hashtbl.replace sat key ()
      end
      else Hashtbl.replace pending key ())
    d.p.Interned.weaks;
  (* a pending tuple already satisfied elsewhere cannot change anything *)
  Hashtbl.iter
    (fun ((prio, weight, _) as key) () ->
      if not (Hashtbl.mem sat key) then begin
        Hashtbl.replace inexact prio ();
        ignore weight
      end)
    pending;
  let per_level = Hashtbl.create 4 in
  let bump prio w =
    let cur = Option.value ~default:0 (Hashtbl.find_opt per_level prio) in
    Hashtbl.replace per_level prio (cur + w)
  in
  Hashtbl.iter (fun (prio, w, _) () -> bump prio w) sat;
  Hashtbl.iter
    (fun ((prio, w, _) as key) () ->
      if w < 0 && not (Hashtbl.mem sat key) then bump prio w)
    pending;
  (* cover every priority that occurs at all, so the walk against the
     incumbent never misses a level *)
  Array.iter
    (fun (w : Interned.weak) ->
      if not (Hashtbl.mem per_level w.Interned.priority) then
        Hashtbl.replace per_level w.Interned.priority 0)
    d.p.Interned.weaks;
  Hashtbl.fold
    (fun prio sum acc -> (prio, sum, not (Hashtbl.mem inexact prio)) :: acc)
    per_level []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)

(* true when every completion of the current assignment costs strictly
   more than the incumbent: walk priorities from the most significant;
   a strictly larger lower bound prunes, a strictly smaller one cannot,
   and equality only lets the walk continue when the level is exact *)
let rec bound_exceeds lb (best : Model.cost) =
  match (lb, best) with
  | [], [] -> false
  | (_, s, ex) :: lt, [] ->
      if s > 0 then true else if s < 0 then false else ex && bound_exceeds lt []
  | [], (_, v) :: bt ->
      if 0 > v then true else if 0 < v then false else bound_exceeds [] bt
  | (pl, s, ex) :: lt, (pb, v) :: bt ->
      if pl = pb then
        if s > v then true
        else if s < v then false
        else ex && bound_exceeds lt bt
      else if pl > pb then
        if s > 0 then true else if s < 0 then false else ex && bound_exceeds lt best
      else if 0 > v then true
      else if 0 < v then false
      else bound_exceeds lb bt

(* ------------------------------------------------------------------ *)
(* Top-level driver                                                     *)
(* ------------------------------------------------------------------ *)

exception Finished

(* the full CDNL tier; [p] is already compiled so the cheap-tier
   dispatcher below shares the work *)
let solve_full ?limit ~config ~assumptions ~optimal ~stats (p : Interned.t) =
  let comp = Completion.compile p in
  let models = ref [] in
  let seen : (Bitset.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let n_found = ref 0 in
  let best = ref None in
  let d = make_driver p comp stats in
  let k = d.k in
  let record_model () =
    stats.Stats.leaves <- stats.Stats.leaves + 1;
    let key = Bitset.copy d.abits in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      stats.Stats.models <- stats.Stats.models + 1;
      let cost = Interned.cost_of p key in
      if optimal then begin
        let keep =
          match !best with
          | Some b -> Model.compare_cost cost b <= 0
          | None -> true
        in
        (match !best with
        | Some b when Model.compare_cost cost b >= 0 -> ()
        | _ -> best := Some cost);
        if keep then
          models := Model.make ~cost (Interned.atoms_of_bitset p key) :: !models
      end
      else begin
        models := Model.make ~cost (Interned.atoms_of_bitset p key) :: !models;
        incr n_found;
        match limit with Some l when !n_found >= l -> raise Finished | _ -> ()
      end
    end
  in
  (try
     if comp.Completion.unsat then raise Finished;
     (if config.Config.preprocess then begin
        let body_base = comp.Completion.n_atoms + comp.Completion.n_counts in
        let pre =
          Preprocess.run ~elim_bodies:comp.Completion.tight
            ~nvars:comp.Completion.n_vars ~body_base ~stats
            comp.Completion.clauses
        in
        if pre.Preprocess.unsat then raise Finished;
        List.iter (fun l -> Nogood.add_initial k [| l |]) pre.Preprocess.forced;
        List.iter (fun c -> Nogood.add_clean k c) pre.Preprocess.clauses
      end
      else List.iter (fun c -> Nogood.add_initial k c) comp.Completion.clauses);
     if Nogood.unsat k then raise Finished;
     (* establish the guiding path: each assumption opens its own level,
        so conflicts never backjump into it *)
     let assume (atom, value) =
       (match Nogood.propagate k with
       | Some _ -> raise Finished
       | None -> ());
       scan d;
       match Interned.id p atom with
       | exception Not_found -> if value then raise Finished
       | v -> (
           let lit =
             if value then Completion.lit_true v else Completion.lit_false v
           in
           match Nogood.value_lit k lit with
           | 1 -> ()
           | -1 -> raise Finished
           | _ -> Nogood.decide k lit)
     in
     List.iter assume assumptions;
     let root = Nogood.level k in
     let restarts = ref 0 in
     let conflicts_pending = ref 0 in
     let max_learnts = ref (max 1000 (List.length comp.Completion.clauses)) in
     let share = config.Config.exchange in
     let sharing = Option.is_some share in
     let cursor =
       match share with
       | Some (hub, _) -> Some (Exchange.cursor hub)
       | None -> None
     in
     (* vars this path's guiding assumptions fixed: a learned clause
        that mentions one carries the path's identity — in every sibling
        the clause is satisfied by the opposite assumption, so exporting
        it is pure watch overhead. Only assumption-free clauses travel. *)
     let assumption_vars =
       if not sharing then [||]
       else begin
         let b = Array.make comp.Completion.n_vars false in
         List.iter
           (fun (atom, _) ->
             match Interned.id p atom with
             | exception Not_found -> ()
             | v -> b.(v) <- true)
           assumptions;
         b
       end
     in
     (* distinct decision levels in the clause, on the pre-backjump
        assignment: the usual quality measure for exported clauses *)
     let lbd lits =
       let levels = Hashtbl.create 8 in
       Array.iter
         (fun l -> Hashtbl.replace levels (Nogood.var_level k (l lsr 1)) ())
         lits;
       Hashtbl.length levels
     in
     let handle_conflict confl =
       if Nogood.level k <= root then raise Finished;
       let lits = Nogood.analyze k confl in
       (* publish before [learn] reorders the array and backjumps away
          the levels the LBD is measured on *)
       (match share with
       | Some (hub, me)
         when (not (Nogood.analyzed_local k))
              && Array.length lits <= share_max_size
              && lbd lits <= share_max_lbd
              && Array.for_all
                   (fun l -> not assumption_vars.(l lsr 1))
                   lits ->
           if Exchange.publish hub ~me lits then
             stats.Stats.shared_out <- stats.Stats.shared_out + 1
       | _ -> ());
       Nogood.learn k ~root lits;
       incr conflicts_pending
     in
     (* pull clauses other guiding-path domains published; an imported
        clause already false below the current level is a conflict the
        event-driven propagator cannot surface, so backtrack to its
        deepest literal and run the usual analysis from there *)
     let import_shared () =
       match (share, cursor) with
       | Some (hub, me), Some cur ->
           let acted = ref false in
           let pending = ref None in
           let n =
             Exchange.drain hub ~me cur (fun lits ->
                 if !pending = None then
                   (* permanent, not learnt: imports carry no activity, so
                      the reduction heuristic would evict them first — the
                      size/LBD export filter bounds the volume instead *)
                   match Nogood.add_dynamic k ~learnt:false lits with
                   | Nogood.Sat -> ()
                   | Nogood.Unit -> acted := true
                   | Nogood.Empty -> raise Finished
                   | Nogood.Conflict c -> pending := Some (c, lits))
           in
           if n > 0 then stats.Stats.shared_in <- stats.Stats.shared_in + n;
           (match !pending with
           | None -> ()
           | Some (c, lits) ->
               acted := true;
               let deepest =
                 Array.fold_left
                   (fun m l -> max m (Nogood.var_level k (l lsr 1)))
                   0 lits
               in
               if deepest <= root then raise Finished;
               Nogood.cancel_until k deepest;
               handle_conflict c);
           !acted
       | _ -> false
     in
     let n_vars = comp.Completion.n_vars in
     (* seed from the hub before search: a warm hub (repeated solves of
        one ground program under different assumptions — the incremental
        CEGAR loop) only helps a conflict-light solve if its clauses land
        before the first restart, and an easy solve may never restart.
        Sound for the same reason restart-time imports are: at the root
        they strengthen the formula monotonically. *)
     if sharing then ignore (import_shared ());
     while true do
       match Nogood.propagate k with
       | Some confl -> handle_conflict confl
       | None -> (
           scan d;
           match run_checks d with
           | Progress -> ()
           | Confl c -> handle_conflict c
           | Bottom -> raise Finished
           | Quiet ->
               if Nogood.trail_size k = n_vars then begin
                 record_model ();
                 if Nogood.level k <= root then raise Finished;
                 (* block exactly this assignment: atoms fixed below the
                    root are common to the whole branch and stay out *)
                 let lits = ref [] in
                 for a = 0 to comp.Completion.n_atoms - 1 do
                   if Nogood.var_level k a > root then
                     lits :=
                       (if Bitset.get d.abits a then Completion.lit_false a
                        else Completion.lit_true a)
                       :: !lits
                 done;
                 if !lits = [] then raise Finished;
                 let arr = Array.of_list !lits in
                 (* chronological retreat instead of learn-and-restart:
                    pop levels until the blocking nogood frees a literal,
                    then resume — the next model is usually adjacent, so
                    the assignment prefix is worth keeping (no thrash) *)
                 match Nogood.add_dynamic k ~learnt:false ~local:true arr with
                 | Nogood.Empty -> raise Finished
                 | Nogood.Sat | Nogood.Unit ->
                     (* unreachable: every literal is false at the model *)
                     ()
                 | Nogood.Conflict c ->
                     stats.Stats.model_blocks <-
                       stats.Stats.model_blocks + 1;
                     let rec retreat () =
                       if Nogood.level k <= root then raise Finished;
                       Nogood.cancel_until k (Nogood.level k - 1);
                       let unassigned = ref 0 in
                       let ulit = ref (-1) in
                       Array.iter
                         (fun l ->
                           if Nogood.value_lit k l = 0 then begin
                             incr unassigned;
                             ulit := l
                           end)
                         arr;
                       if !unassigned = 0 then retreat ()
                       else if !unassigned = 1 then
                         (* the clause regained exactly one free literal:
                            a unit no watch event will ever deliver *)
                         Nogood.force k !ulit c
                     in
                     retreat ()
               end
               else begin
                 (* bound pruning: the decisions taken so far form the
                    nogood, so analysis learns from the violation *)
                 let pruned_here = ref false in
                 (if optimal then
                    match !best with
                    | Some b when bound_exceeds (lower_bound d) b ->
                        stats.Stats.pruned <- stats.Stats.pruned + 1;
                        if Nogood.level k <= root then raise Finished;
                        let lits =
                          Array.init
                            (Nogood.level k - root)
                            (fun i ->
                              Nogood.decision_lit k (root + i + 1) lxor 1)
                        in
                        pruned_here := true;
                        (match
                           Nogood.add_dynamic k ~learnt:true ~local:true lits
                         with
                        | Nogood.Conflict c -> handle_conflict c
                        | Nogood.Empty -> raise Finished
                        | Nogood.Unit | Nogood.Sat -> ())
                    | _ -> ());
                 if not !pruned_here then begin
                   let restarted =
                     !conflicts_pending >= restart_base * luby (!restarts + 1)
                   in
                   if restarted then begin
                     incr restarts;
                     stats.Stats.restarts <- stats.Stats.restarts + 1;
                     conflicts_pending := 0;
                     Nogood.cancel_until k root
                   end;
                   if Nogood.n_learnts k > !max_learnts then begin
                     Nogood.reduce_db k;
                     max_learnts := !max_learnts + (!max_learnts / 5)
                   end;
                   (* imports land only at restarts: at the root they
                      strengthen the formula monotonically, while mid-burst
                      they would derail a VSIDS trajectory that is already
                      paying off *)
                   let imported =
                     sharing && restarted && import_shared ()
                   in
                   if not imported then
                     match Nogood.pick_branch k with
                     | Some lit -> Nogood.decide k lit
                     | None ->
                         (* every atom is assigned: bodies and aggregates
                            must follow by propagation or lazy checks; an
                            unassigned one can only be an aggregate over an
                            empty scope or a body var of a degenerate rule —
                            decide them in id order *)
                         let v = ref comp.Completion.n_atoms in
                         while
                           !v < n_vars && Nogood.value_var k !v <> 0
                         do
                           incr v
                         done;
                         if !v < n_vars then
                           Nogood.decide k (Completion.lit_false !v)
                         else raise Finished
                 end
               end)
     done
   with Finished -> ());
  let result = List.sort Model.compare !models in
  if optimal then
    match !best with
    | None -> []
    | Some b ->
        List.filter (fun m -> Model.compare_cost (Model.cost m) b = 0) result
  else result

(* tier dispatch: the cheap propagation-only tier answers whole-program
   enumeration (no assumptions, and no weak constraints when optimizing —
   a zero-cost optimum is just the enumeration); everything else runs the
   full CDNL tier *)
let solve_core ?limit ?max_guess ?(assumptions = []) ?(config = Config.default)
    ~optimal (g : Ground.t) =
  ignore max_guess;
  let t0 = Unix.gettimeofday () in
  let stats = Stats.create () in
  let p = Interned.compile g in
  let cheap =
    if
      config.Config.cheap_tier
      && assumptions = []
      && ((not optimal) || Array.length p.Interned.weaks = 0)
    then Cheap.solve ?limit ~stats p
    else None
  in
  let result =
    match cheap with
    | Some models -> models
    | None -> solve_full ?limit ~config ~assumptions ~optimal ~stats p
  in
  stats.Stats.wall_s <- Unix.gettimeofday () -. t0;
  (result, stats)

let solve_with_stats ?limit ?max_guess ?assumptions ?config g =
  solve_core ?limit ?max_guess ?assumptions ?config ~optimal:false g

let solve ?limit ?max_guess ?assumptions ?config g =
  fst (solve_with_stats ?limit ?max_guess ?assumptions ?config g)

let solve_optimal_with_stats ?max_guess ?assumptions ?config g =
  solve_core ?max_guess ?assumptions ?config ~optimal:true g

let solve_optimal ?max_guess ?assumptions ?config g =
  fst (solve_optimal_with_stats ?max_guess ?assumptions ?config g)

let satisfiable ?max_guess ?config g = solve ?max_guess ?config ~limit:1 g <> []

let cheap_eligible g = Cheap.eligible (Interned.compile g)

(* guiding-path split points for parallel enumeration: choice atoms in
   interned id order, then atoms under negation — conditioning on any
   atom partitions the model space, these just split it most evenly *)
let guiding_atoms (g : Ground.t) n =
  if n <= 0 then []
  else begin
    let p = Interned.compile g in
    let acc = ref [] in
    let count = ref 0 in
    Bitset.iter_true
      (fun a ->
        if !count < n then begin
          acc := p.Interned.atoms.(a) :: !acc;
          incr count
        end)
      p.Interned.choice_atoms;
    if !count < n then begin
      let negs = Bitset.create (max p.Interned.n_atoms 1) in
      Array.iter
        (fun (r : Interned.rule) -> Array.iter (Bitset.set negs) r.Interned.neg)
        p.Interned.rules;
      Array.iter
        (fun (c : Interned.choice) ->
          Array.iter (Bitset.set negs) c.Interned.cneg;
          Array.iter
            (fun (el : Interned.elem) ->
              Array.iter (Bitset.set negs) el.Interned.egneg)
            c.Interned.elems)
        p.Interned.choices;
      Bitset.iter_true
        (fun a ->
          if !count < n && not (Bitset.get p.Interned.choice_atoms a) then begin
            acc := p.Interned.atoms.(a) :: !acc;
            incr count
          end)
        negs
    end;
    List.rev !acc
  end

(* Gelfond–Lifschitz verification stays on the reference implementation:
   the oracle must share no code with the fast path it validates. *)
let is_stable_model = Naive.is_stable_model
