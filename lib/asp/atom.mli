(** Predicate atoms [p(t1, …, tn)]. *)

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t
val prop : string -> t
(** Propositional atom (no arguments). *)

val arity : t -> int
val signature : t -> string * int
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Folds the arguments' precomputed {!Term.hash} keys: O(arity),
    deterministic across runs. *)

val is_ground : t -> bool
val vars : t -> string list
val substitute : Term.subst -> t -> t

val eval : t -> t
(** Evaluate arithmetic in all arguments (ground atoms only). *)

val rehydrate : t -> t
(** Re-intern every argument (see {!Term.rehydrate}). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
