(* Clark-completion compilation of an interned ground program into clauses
   over an extended variable space, the input of the CDNL solver.

   Variables: atom ids [0, n_atoms), then one aggregate variable per entry
   of the shared count table, then one body variable per rule body / choice
   element instance. Literals are ints: [2v] asserts variable [v] true,
   [2v+1] asserts it false; a clause is an int array of literals of which
   at least one must hold.

   Clauses emitted here capture the completion exactly:
   - facts are unit clauses;
   - every body variable is defined in both directions against its
     conjuncts (positive atoms, negated atoms, aggregate variables);
   - a regular rule body implies its head; a choice-element body does
     {e not} (the element only licenses the atom);
   - an atom without a fact implies the disjunction of its bodies
     (support clause — an atom with no body at all is unit-false);
   - an integrity constraint is the disjunction of its conjuncts'
     complements.

   Aggregate variables get no defining clauses: they are evaluated lazily
   by the solver once their scope (every atom an element mentions) is
   assigned, matching the reference semantics where aggregates are tested
   against the total candidate and contribute no foundedness. Choice
   bounds and weak constraints are likewise lazy over their scopes.

   For non-tight programs the module also computes the strongly connected
   components of the positive atom dependency graph (edges head -> positive
   body atom through rule and choice-element bodies; aggregate condition
   atoms excluded; fact atoms excluded as they are always founded) plus,
   for every atom of a non-trivial SCC, its support bodies annotated with
   their same-SCC positive atoms — the inputs of the solver's
   unfounded-set check. *)

type body = {
  bvar : int;  (* variable id of this body *)
  bhead : int;  (* head atom id, -1 for none *)
  bchoice : bool;  (* choice-element body: licenses but does not force *)
  bpos : int array;  (* atom ids required true *)
  bneg : int array;  (* atom ids required false *)
  bcounts : int array;  (* count indices required to hold *)
}

type t = {
  p : Interned.t;
  n_atoms : int;
  n_counts : int;
  n_vars : int;
  bodies : body array;
  clauses : int array list;
  agg_scope : int array array;  (* count idx -> atom ids mentioned *)
  bound_scope : (int * int array) array;  (* bounded choice idx, scope *)
  weak_scope : int array array;  (* weak idx -> atom ids mentioned *)
  sccs : int array array;  (* non-trivial positive SCCs *)
  scc_of : int array;  (* atom -> SCC index, -1 outside loops *)
  supports : (int * int array) list array;
      (* atom -> (body idx, same-SCC positive atoms) *)
  is_fact : Bitset.t;
  tight : bool;
  unsat : bool;  (* an empty constraint body: no model at all *)
}

let lit_true v = 2 * v
let lit_false v = (2 * v) + 1
let var_of_lit l = l lsr 1

(* true when the literal asserts its variable false *)
let lit_neg l = l land 1 = 1

let agg_var c ci = c.n_atoms + ci

let sorted_dedup l = Array.of_list (List.sort_uniq compare l)

let compile (p : Interned.t) =
  let n_atoms = p.Interned.n_atoms in
  let n_counts = Array.length p.Interned.counts in
  let is_fact = Bitset.create (max n_atoms 1) in
  Array.iter (Bitset.set is_fact) p.Interned.facts;
  let agg_scope =
    Array.map
      (fun (c : Interned.count) ->
        let acc = ref [] in
        Array.iter
          (fun (e : Interned.count_elem) ->
            Array.iter (fun a -> acc := a :: !acc) e.Interned.epos;
            Array.iter (fun a -> acc := a :: !acc) e.Interned.eneg)
          c.Interned.celems;
        sorted_dedup !acc)
      p.Interned.counts
  in
  let push_counts_scope idxs acc =
    Array.fold_left
      (fun acc ci -> Array.fold_left (fun acc a -> a :: acc) acc agg_scope.(ci))
      acc idxs
  in
  (* bodies: one per regular rule, one per choice element *)
  let body_base = n_atoms + n_counts in
  let rev_bodies = ref [] in
  let n_bodies = ref 0 in
  let add_body ~bhead ~bchoice bpos bneg bcounts =
    let bvar = body_base + !n_bodies in
    incr n_bodies;
    rev_bodies := { bvar; bhead; bchoice; bpos; bneg; bcounts } :: !rev_bodies
  in
  Array.iter
    (fun (r : Interned.rule) ->
      add_body ~bhead:r.Interned.head ~bchoice:false r.Interned.pos
        r.Interned.neg r.Interned.counts)
    p.Interned.rules;
  Array.iter
    (fun (c : Interned.choice) ->
      Array.iter
        (fun (el : Interned.elem) ->
          let bpos =
            sorted_dedup
              (Array.to_list c.Interned.cpos @ Array.to_list el.Interned.egpos)
          in
          let bneg =
            sorted_dedup
              (Array.to_list c.Interned.cneg @ Array.to_list el.Interned.egneg)
          in
          add_body ~bhead:el.Interned.eatom ~bchoice:true bpos bneg
            c.Interned.ccounts)
        c.Interned.elems)
    p.Interned.choices;
  let bodies = Array.of_list (List.rev !rev_bodies) in
  let n_vars = body_base + Array.length bodies in
  let head_bodies = Array.make (max n_atoms 1) [] in
  Array.iteri
    (fun bi b ->
      if b.bhead >= 0 then head_bodies.(b.bhead) <- bi :: head_bodies.(b.bhead))
    bodies;
  (* clauses *)
  let clauses = ref [] in
  let addc c = clauses := c :: !clauses in
  Array.iter (fun a -> addc [| lit_true a |]) p.Interned.facts;
  Array.iter
    (fun b ->
      let fwd = ref [ lit_true b.bvar ] in
      Array.iter
        (fun a ->
          fwd := lit_false a :: !fwd;
          addc [| lit_false b.bvar; lit_true a |])
        b.bpos;
      Array.iter
        (fun a ->
          fwd := lit_true a :: !fwd;
          addc [| lit_false b.bvar; lit_false a |])
        b.bneg;
      Array.iter
        (fun ci ->
          let v = n_atoms + ci in
          fwd := lit_false v :: !fwd;
          addc [| lit_false b.bvar; lit_true v |])
        b.bcounts;
      addc (Array.of_list !fwd);
      if b.bhead >= 0 && not b.bchoice then
        addc [| lit_false b.bvar; lit_true b.bhead |])
    bodies;
  for a = 0 to n_atoms - 1 do
    if not (Bitset.get is_fact a) then
      addc
        (Array.of_list
           (lit_false a
           :: List.rev_map (fun bi -> lit_true bodies.(bi).bvar) head_bodies.(a)
           ))
  done;
  let unsat = ref false in
  Array.iter
    (fun (k : Interned.constr) ->
      let c = ref [] in
      Array.iter (fun a -> c := lit_false a :: !c) k.Interned.kpos;
      Array.iter (fun a -> c := lit_true a :: !c) k.Interned.kneg;
      Array.iter (fun ci -> c := lit_false (n_atoms + ci) :: !c)
        k.Interned.kcounts;
      match !c with [] -> unsat := true | l -> addc (Array.of_list l))
    p.Interned.constraints;
  (* lazy scopes for choice bounds and weak constraints *)
  let bound_scope = ref [] in
  Array.iteri
    (fun ci (c : Interned.choice) ->
      if c.Interned.lower <> None || c.Interned.upper <> None then begin
        let acc = ref [] in
        Array.iter (fun a -> acc := a :: !acc) c.Interned.cpos;
        Array.iter (fun a -> acc := a :: !acc) c.Interned.cneg;
        acc := push_counts_scope c.Interned.ccounts !acc;
        Array.iter
          (fun (el : Interned.elem) ->
            acc := el.Interned.eatom :: !acc;
            Array.iter (fun a -> acc := a :: !acc) el.Interned.egpos;
            Array.iter (fun a -> acc := a :: !acc) el.Interned.egneg)
          c.Interned.elems;
        bound_scope := (ci, sorted_dedup !acc) :: !bound_scope
      end)
    p.Interned.choices;
  let bound_scope = Array.of_list (List.rev !bound_scope) in
  let weak_scope =
    Array.map
      (fun (w : Interned.weak) ->
        let acc = ref [] in
        Array.iter (fun a -> acc := a :: !acc) w.Interned.wpos;
        Array.iter (fun a -> acc := a :: !acc) w.Interned.wneg;
        sorted_dedup (push_counts_scope w.Interned.wcounts !acc))
      p.Interned.weaks
  in
  (* positive dependency SCCs over non-fact atoms *)
  let adj = Array.make (max n_atoms 1) [] in
  let has_self = Array.make (max n_atoms 1) false in
  Array.iter
    (fun b ->
      if b.bhead >= 0 && not (Bitset.get is_fact b.bhead) then
        Array.iter
          (fun a ->
            if not (Bitset.get is_fact a) then begin
              adj.(b.bhead) <- a :: adj.(b.bhead);
              if a = b.bhead then has_self.(a) <- true
            end)
          b.bpos)
    bodies;
  let adj = Array.map Array.of_list adj in
  (* iterative Tarjan *)
  let index = Array.make (max n_atoms 1) (-1) in
  let low = Array.make (max n_atoms 1) 0 in
  let on_stack = Array.make (max n_atoms 1) false in
  let stack = ref [] in
  let counter = ref 0 in
  let raw_sccs = ref [] in
  let frame_node = Array.make (max n_atoms 1) 0 in
  let frame_child = Array.make (max n_atoms 1) 0 in
  for root = 0 to n_atoms - 1 do
    if index.(root) = -1 then begin
      let top = ref 0 in
      frame_node.(0) <- root;
      frame_child.(0) <- 0;
      index.(root) <- !counter;
      low.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !top >= 0 do
        let v = frame_node.(!top) in
        if frame_child.(!top) < Array.length adj.(v) then begin
          let w = adj.(v).(frame_child.(!top)) in
          frame_child.(!top) <- frame_child.(!top) + 1;
          if index.(w) = -1 then begin
            index.(w) <- !counter;
            low.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            incr top;
            frame_node.(!top) <- w;
            frame_child.(!top) <- 0
          end
          else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w)
        end
        else begin
          if low.(v) = index.(v) then begin
            let scc = ref [] in
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | w :: rest ->
                  stack := rest;
                  on_stack.(w) <- false;
                  scc := w :: !scc;
                  if w = v then continue := false
            done;
            raw_sccs := !scc :: !raw_sccs
          end;
          decr top;
          if !top >= 0 then begin
            let u = frame_node.(!top) in
            if low.(v) < low.(u) then low.(u) <- low.(v)
          end
        end
      done
    end
  done;
  let sccs =
    List.filter_map
      (fun scc ->
        match scc with
        | [ v ] when not has_self.(v) -> None
        | _ -> Some (Array.of_list (List.sort compare scc)))
      !raw_sccs
    |> Array.of_list
  in
  let scc_of = Array.make (max n_atoms 1) (-1) in
  Array.iteri (fun si scc -> Array.iter (fun a -> scc_of.(a) <- si) scc) sccs;
  let supports = Array.make (max n_atoms 1) [] in
  Array.iteri
    (fun bi b ->
      if b.bhead >= 0 && scc_of.(b.bhead) >= 0 then begin
        let s = scc_of.(b.bhead) in
        let in_scc =
          Array.of_list
            (List.filter (fun a -> scc_of.(a) = s) (Array.to_list b.bpos))
        in
        supports.(b.bhead) <- (bi, in_scc) :: supports.(b.bhead)
      end)
    bodies;
  (* keep support lists in body order for determinism *)
  let supports = Array.map List.rev supports in
  {
    p;
    n_atoms;
    n_counts;
    n_vars;
    bodies;
    clauses = List.rev !clauses;
    agg_scope;
    bound_scope;
    weak_scope;
    sccs;
    scc_of;
    supports;
    is_fact;
    tight = Array.length sccs = 0;
    unsat = !unsat;
  }
