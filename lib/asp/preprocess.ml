(* Clause-level preprocessing over completion nogoods, run once before
   CDNL search: unit propagation to fixpoint, duplicate and subsumed
   clause elimination, and — when the caller allows it — binary-clause
   equivalence reduction and pure-literal elimination restricted to body
   variables.

   The restriction matters for soundness. Atom variables are the model
   projection, so merging or pure-forcing them would change the reported
   models; aggregate variables are evaluated lazily against the total
   candidate, so they must stay materialized for the solver's
   explanations. Body variables of a *tight* program carry no semantic
   weight beyond their defining clauses: the unfounded-set machinery
   (which reads body-variable values directly) never runs, eliminated
   variables are simply auto-decided at the fringe, and the model
   projection is untouched. Callers therefore pass [elim_bodies = tight].

   Unit propagation, duplicate removal and subsumption are sound
   unconditionally (for enumeration too): removing a clause D that is a
   superset of a kept clause C can only make propagation stronger, never
   weaker, so lazy checks keyed on variable values still fire. *)

type result = {
  clauses : int array list;  (* surviving clauses, >= 2 literals each *)
  forced : int list;  (* level-0 literals, in derivation order *)
  unsat : bool;
}

type state = {
  value : int array;  (* var -> 0 undef / 1 true / -1 false *)
  mutable forced_rev : int list;
  mutable unsat : bool;
}

let value_lit st l =
  let v = st.value.(l lsr 1) in
  if l land 1 = 0 then v else -v

(* returns true when the literal was freshly assigned *)
let assign st l =
  match value_lit st l with
  | 1 -> false
  | -1 ->
      st.unsat <- true;
      false
  | _ ->
      st.value.(l lsr 1) <- (if l land 1 = 0 then 1 else -1);
      st.forced_rev <- l :: st.forced_rev;
      true

(* sort, drop duplicate literals, fold in the current assignment;
   [`Sat] covers tautologies and satisfied clauses *)
let normalize st lits =
  let lits = List.sort_uniq compare lits in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a lxor b = 1 then true else check rest
    | _ -> false
  in
  if check lits || List.exists (fun l -> value_lit st l = 1) lits then `Sat
  else `Clause (List.filter (fun l -> value_lit st l = 0) lits)

type cl = { lits : int array; mutable n_free : int; mutable dead : bool }

(* counting-based unit propagation to fixpoint over normalized clauses
   (no assigned or duplicate literals on entry); returns the surviving
   clauses as literal lists *)
let propagate st nvars clauses =
  let queue = Queue.create () in
  let push_unit l = if assign st l then Queue.add l queue in
  let occ = Array.make (2 * max nvars 1) [] in
  let records = ref [] in
  List.iter
    (fun lits ->
      match lits with
      | [] -> st.unsat <- true
      | [ l ] -> push_unit l
      | _ ->
          let c =
            { lits = Array.of_list lits; n_free = List.length lits; dead = false }
          in
          records := c :: !records;
          List.iter (fun l -> occ.(l) <- c :: occ.(l)) lits)
    clauses;
  let records = List.rev !records in
  while (not st.unsat) && not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    List.iter (fun c -> c.dead <- true) occ.(l);
    List.iter
      (fun c ->
        if not c.dead then begin
          c.n_free <- c.n_free - 1;
          if c.n_free = 0 then st.unsat <- true
          else if c.n_free = 1 then begin
            (* exactly one literal is not yet processed-false: it may be
               free (unit), true (satisfied), or false by a queued but
               unprocessed assignment (conflict — do NOT mark dead, or
               the pending queue entry would skip it) *)
            let u = ref (-1) in
            let sat = ref false in
            Array.iter
              (fun x ->
                match value_lit st x with
                | 0 -> u := x
                | 1 -> sat := true
                | _ -> ())
              c.lits;
            if !sat then c.dead <- true
            else if !u >= 0 then push_unit !u
            else st.unsat <- true
          end
        end)
      occ.(l lxor 1)
  done;
  if st.unsat then []
  else
    List.filter_map
      (fun c ->
        if c.dead then None
        else
          Some
            (Array.to_list c.lits
            |> List.filter (fun l -> value_lit st l = 0)))
      records

(* ------------------------------------------------------------------ *)
(* Equivalence reduction (body variables only)                          *)
(* ------------------------------------------------------------------ *)

(* union-find with parity: val(v) = val(root) xor parity *)
let uf_find parent par v =
  let rec root v = if parent.(v) = v then v else root parent.(v) in
  let r = root v in
  (* path-compress, accumulating parities top-down *)
  let rec compress v =
    if parent.(v) = v then 0
    else begin
      let p = par.(v) lxor compress parent.(v) in
      parent.(v) <- r;
      par.(v) <- p;
      p
    end
  in
  (r, compress v)

let uf_union st parent par u v q =
  let ru, pu = uf_find parent par u in
  let rv, pv = uf_find parent par v in
  if ru = rv then begin
    if pu lxor pv lxor q <> 0 then st.unsat <- true
  end
  else if ru < rv then begin
    parent.(rv) <- ru;
    par.(rv) <- pu lxor pv lxor q
  end
  else begin
    parent.(ru) <- rv;
    par.(ru) <- pu lxor pv lxor q
  end

(* detect binary-clause equivalences ((l1 | l2) together with
   (~l1 | ~l2) means l1 <-> ~l2), merge the variable classes, and
   substitute every eliminable body variable by its representative.
   Returns the substituted clauses re-normalized, plus the count. *)
let equiv_reduce st ~nvars ~body_base clauses =
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun lits ->
      match lits with
      | [ a; b ] -> Hashtbl.replace pairs (min a b, max a b) ()
      | _ -> ())
    clauses;
  let parent = Array.init (max nvars 1) (fun i -> i) in
  let par = Array.make (max nvars 1) 0 in
  Hashtbl.iter
    (fun (a, b) () ->
      let ca, cb = (a lxor 1, b lxor 1) in
      if
        Hashtbl.mem pairs (min ca cb, max ca cb)
        && (a lsr 1 >= body_base || b lsr 1 >= body_base)
      then
        uf_union st parent par (a lsr 1) (b lsr 1)
          (1 lxor (a land 1) lxor (b land 1)))
    pairs;
  let eliminated = ref 0 in
  let subst = Array.make (max nvars 1) (-1) in
  (* subst.(v) = rewritten literal for [2v], -1 when v stays *)
  for v = body_base to nvars - 1 do
    if st.value.(v) = 0 then begin
      let r, p = uf_find parent par v in
      if r <> v then begin
        subst.(v) <- (2 * r) + p;
        incr eliminated
      end
    end
  done;
  if !eliminated = 0 then (clauses, 0)
  else begin
    let rewrite l =
      let v = l lsr 1 in
      if subst.(v) < 0 then l else subst.(v) lxor (l land 1)
    in
    let rewritten =
      List.filter_map
        (fun lits ->
          match normalize st (List.map rewrite lits) with
          | `Sat -> None
          | `Clause c -> Some c)
        clauses
    in
    (* substitution can create new units and duplicates *)
    (propagate st nvars rewritten, !eliminated)
  end

(* ------------------------------------------------------------------ *)
(* Duplicate removal and backward subsumption                           *)
(* ------------------------------------------------------------------ *)

let dedup_subsume clauses =
  let removed = ref 0 in
  let seen = Hashtbl.create 256 in
  let uniq =
    List.filter
      (fun lits ->
        if Hashtbl.mem seen lits then begin
          incr removed;
          false
        end
        else begin
          Hashtbl.replace seen lits ();
          true
        end)
      clauses
  in
  let arr = Array.of_list (List.map Array.of_list uniq) in
  let n = Array.length arr in
  let dead = Array.make n false in
  let occ = Hashtbl.create 256 in
  Array.iteri
    (fun i c ->
      Array.iter
        (fun l ->
          Hashtbl.replace occ l (i :: Option.value ~default:[] (Hashtbl.find_opt occ l)))
        c)
    arr;
  (* sorted-array subset check *)
  let subset c d =
    let lc = Array.length c and ld = Array.length d in
    let rec go i j =
      if i >= lc then true
      else if j >= ld then false
      else if c.(i) = d.(j) then go (i + 1) (j + 1)
      else if c.(i) > d.(j) then go i (j + 1)
      else false
    in
    go 0 0
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      match compare (Array.length arr.(i)) (Array.length arr.(j)) with
      | 0 -> compare i j
      | c -> c)
    order;
  Array.iter
    (fun i ->
      if not dead.(i) then begin
        let c = arr.(i) in
        (* probe the occurrence list of the rarest literal of [c] *)
        let best = ref [] in
        let best_n = ref max_int in
        Array.iter
          (fun l ->
            let o = Option.value ~default:[] (Hashtbl.find_opt occ l) in
            let n = List.length o in
            if n < !best_n then begin
              best_n := n;
              best := o
            end)
          c;
        List.iter
          (fun j ->
            if
              j <> i
              && (not dead.(j))
              && Array.length arr.(j) > Array.length c
              && subset c arr.(j)
            then begin
              dead.(j) <- true;
              incr removed
            end)
          !best
      end)
    order;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not dead.(i) then out := Array.to_list arr.(i) :: !out
  done;
  (!out, !removed)

(* ------------------------------------------------------------------ *)
(* Pure-literal elimination (body variables only)                       *)
(* ------------------------------------------------------------------ *)

(* a body variable whose remaining occurrences all have one polarity is
   forced to the satisfying polarity and its clauses dropped; iterated,
   since dropping clauses can expose further pure variables. Completion
   structure never produces these on its own — they appear when
   subsumption removes a body's forward clause (e.g. a constraint
   subsuming it), leaving the body variable only in its backward
   definitions. *)
let pure_eliminate st ~nvars ~body_base clauses =
  let eliminated = ref 0 in
  let clauses = ref clauses in
  let changed = ref true in
  while !changed && not st.unsat do
    changed := false;
    let occ = Array.make (2 * max nvars 1) 0 in
    List.iter
      (fun lits -> List.iter (fun l -> occ.(l) <- occ.(l) + 1) lits)
      !clauses;
    let dropped = Hashtbl.create 8 in
    for v = body_base to nvars - 1 do
      if st.value.(v) = 0 then begin
        let pos = occ.(2 * v) and neg = occ.((2 * v) + 1) in
        if pos = 0 && neg > 0 then begin
          ignore (assign st ((2 * v) + 1));
          Hashtbl.replace dropped ((2 * v) + 1) ();
          incr eliminated;
          changed := true
        end
        else if neg = 0 && pos > 0 then begin
          ignore (assign st (2 * v));
          Hashtbl.replace dropped (2 * v) ();
          incr eliminated;
          changed := true
        end
      end
    done;
    if !changed then
      clauses :=
        List.filter
          (fun lits -> not (List.exists (Hashtbl.mem dropped) lits))
          !clauses
  done;
  (!clauses, !eliminated)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let run ?(elim_bodies = false) ~nvars ~body_base ~stats clauses =
  let st =
    { value = Array.make (max nvars 1) 0; forced_rev = []; unsat = false }
  in
  let norm =
    List.filter_map
      (fun c ->
        match normalize st (Array.to_list c) with
        | `Sat -> None
        | `Clause lits -> Some lits)
      clauses
  in
  let cls = propagate st nvars norm in
  let cls, equivs =
    if elim_bodies && not st.unsat then
      equiv_reduce st ~nvars ~body_base cls
    else (cls, 0)
  in
  let cls, subsumed = if st.unsat then ([], 0) else dedup_subsume cls in
  let cls, pure =
    if elim_bodies && not st.unsat then
      pure_eliminate st ~nvars ~body_base cls
    else (cls, 0)
  in
  let forced = List.rev st.forced_rev in
  stats.Solver_stats.pre_units <-
    stats.Solver_stats.pre_units + List.length forced;
  stats.Solver_stats.pre_subsumed <- stats.Solver_stats.pre_subsumed + subsumed;
  stats.Solver_stats.pre_equivs <- stats.Solver_stats.pre_equivs + equivs;
  stats.Solver_stats.pre_pure <- stats.Solver_stats.pre_pure + pure;
  {
    clauses = (if st.unsat then [] else List.map Array.of_list cls);
    forced;
    unsat = st.unsat;
  }
