type gelem = { gatom : Atom.t; gpos : Atom.t list; gneg : Atom.t list }

type gcount_elem = { etuple : Term.t list; epos : Atom.t list; eneg : Atom.t list }

type gcount = {
  ckind : Lit.agg_kind;
  celems : gcount_elem list;
  cop : Lit.cmp;
  cbound : int;
}

type grule =
  | Gfact of Atom.t
  | Grule of {
      head : Atom.t;
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
    }
  | Gchoice of {
      lower : int option;
      upper : int option;
      elems : gelem list;
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
    }
  | Gconstraint of { pos : Atom.t list; neg : Atom.t list; counts : gcount list }
  | Gweak of {
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
      weight : int;
      priority : int;
      terms : Term.t list;
    }

type t = {
  rules : grule list;
  universe : Model.AtomSet.t;
  shows : (string * int) list;
}

let rule_count g = List.length g.rules
let atom_count g = Model.AtomSet.cardinal g.universe

let equal a b =
  Model.AtomSet.equal a.universe b.universe
  && a.shows = b.shows
  && a.rules = b.rules

(* Structural hash/equality over ground rules built on the terms'
   precomputed hkeys and interned spines. The grounder's dedup tables
   probe these once per emitted instance; the polymorphic versions
   re-walk (and re-hash) whole rule structures on every probe. *)

let hash_fold h = List.fold_left (fun acc x -> (acc * 0x100000001b3) lxor h x)

let equal_atoms = List.equal Atom.equal
let hash_atoms seed l = hash_fold Atom.hash seed l
let equal_terms = List.equal Term.equal
let hash_terms seed l = hash_fold Term.hash seed l

let equal_elem a b =
  Atom.equal a.gatom b.gatom
  && equal_atoms a.gpos b.gpos
  && equal_atoms a.gneg b.gneg

let hash_elem e = hash_atoms (hash_atoms (Atom.hash e.gatom) e.gpos) e.gneg

let equal_celem a b =
  equal_terms a.etuple b.etuple
  && equal_atoms a.epos b.epos
  && equal_atoms a.eneg b.eneg

let hash_celem e = hash_atoms (hash_atoms (hash_terms 41 e.etuple) e.epos) e.eneg

let equal_count a b =
  a.ckind = b.ckind && a.cop = b.cop && a.cbound = b.cbound
  && List.equal equal_celem a.celems b.celems

let hash_count c =
  hash_fold hash_celem
    (Hashtbl.hash c.ckind lxor Hashtbl.hash c.cop lxor (c.cbound * 0x9e3779b9))
    c.celems

let equal_counts = List.equal equal_count
let hash_counts seed l = hash_fold hash_count seed l

let equal_rule a b =
  a == b
  ||
  match a, b with
  | Gfact x, Gfact y -> Atom.equal x y
  | Grule a, Grule b ->
      Atom.equal a.head b.head
      && equal_atoms a.pos b.pos
      && equal_atoms a.neg b.neg
      && equal_counts a.counts b.counts
  | Gchoice a, Gchoice b ->
      a.lower = b.lower && a.upper = b.upper
      && List.equal equal_elem a.elems b.elems
      && equal_atoms a.pos b.pos
      && equal_atoms a.neg b.neg
      && equal_counts a.counts b.counts
  | Gconstraint a, Gconstraint b ->
      equal_atoms a.pos b.pos
      && equal_atoms a.neg b.neg
      && equal_counts a.counts b.counts
  | Gweak a, Gweak b ->
      a.weight = b.weight && a.priority = b.priority
      && equal_terms a.terms b.terms
      && equal_atoms a.pos b.pos
      && equal_atoms a.neg b.neg
      && equal_counts a.counts b.counts
  | (Gfact _ | Grule _ | Gchoice _ | Gconstraint _ | Gweak _), _ -> false

let hash_rule = function
  | Gfact a -> Atom.hash a lxor 0x3
  | Grule { head; pos; neg; counts } ->
      hash_counts (hash_atoms (hash_atoms (Atom.hash head lxor 0x5) pos) neg) counts
  | Gchoice { lower; upper; elems; pos; neg; counts } ->
      hash_counts
        (hash_atoms
           (hash_atoms
              (hash_fold hash_elem
                 (Hashtbl.hash lower lxor Hashtbl.hash upper lxor 0x7)
                 elems)
              pos)
           neg)
        counts
  | Gconstraint { pos; neg; counts } ->
      hash_counts (hash_atoms (hash_atoms 0xB pos) neg) counts
  | Gweak { pos; neg; counts; weight; priority; terms } ->
      hash_counts
        (hash_atoms
           (hash_atoms
              (hash_terms ((weight * 0x9e3779b9) lxor priority lxor 0xD) terms)
              pos)
           neg)
        counts

let count_to_string c =
  let elem e =
    let tuple = String.concat "," (List.map Term.to_string e.etuple) in
    let body =
      List.map Atom.to_string e.epos
      @ List.map (fun a -> "not " ^ Atom.to_string a) e.eneg
    in
    match body with
    | [] -> tuple
    | body -> tuple ^ " : " ^ String.concat ", " body
  in
  let name =
    match c.ckind with Lit.Cardinality -> "#count" | Lit.Summation -> "#sum"
  in
  Printf.sprintf "%s { %s } %s %d" name
    (String.concat " ; " (List.map elem c.celems))
    (Lit.cmp_to_string c.cop) c.cbound

let body_to_string pos neg counts =
  String.concat ", "
    (List.map Atom.to_string pos
    @ List.map (fun a -> "not " ^ Atom.to_string a) neg
    @ List.map count_to_string counts)

let rule_to_string = function
  | Gfact a -> Atom.to_string a ^ "."
  | Grule { head; pos = []; neg = []; counts = [] } -> Atom.to_string head ^ "."
  | Grule { head; pos; neg; counts } ->
      Printf.sprintf "%s :- %s." (Atom.to_string head)
        (body_to_string pos neg counts)
  | Gconstraint { pos; neg; counts } ->
      Printf.sprintf ":- %s." (body_to_string pos neg counts)
  | Gchoice { lower; upper; elems; pos; neg; counts } ->
      let elem e =
        match e.gpos, e.gneg with
        | [], [] -> Atom.to_string e.gatom
        | gpos, gneg ->
            Printf.sprintf "%s : %s" (Atom.to_string e.gatom)
              (body_to_string gpos gneg [])
      in
      let inner = String.concat " ; " (List.map elem elems) in
      let lo = match lower with Some n -> string_of_int n ^ " " | None -> "" in
      let hi = match upper with Some n -> " " ^ string_of_int n | None -> "" in
      let head = Printf.sprintf "%s{ %s }%s" lo inner hi in
      if pos = [] && neg = [] && counts = [] then head ^ "."
      else Printf.sprintf "%s :- %s." head (body_to_string pos neg counts)
  | Gweak { pos; neg; counts; weight; priority; terms } ->
      let terms_str =
        match terms with
        | [] -> ""
        | ts -> ", " ^ String.concat "," (List.map Term.to_string ts)
      in
      Printf.sprintf ":~ %s. [%d@%d%s]"
        (body_to_string pos neg counts)
        weight priority terms_str

let pp_rule ppf r = Format.pp_print_string ppf (rule_to_string r)

let pp ppf g =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_rule ppf g.rules
