type gelem = { gatom : Atom.t; gpos : Atom.t list; gneg : Atom.t list }

type gcount_elem = { etuple : Term.t list; epos : Atom.t list; eneg : Atom.t list }

type gcount = {
  ckind : Lit.agg_kind;
  celems : gcount_elem list;
  cop : Lit.cmp;
  cbound : int;
}

type grule =
  | Gfact of Atom.t
  | Grule of {
      head : Atom.t;
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
    }
  | Gchoice of {
      lower : int option;
      upper : int option;
      elems : gelem list;
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
    }
  | Gconstraint of { pos : Atom.t list; neg : Atom.t list; counts : gcount list }
  | Gweak of {
      pos : Atom.t list;
      neg : Atom.t list;
      counts : gcount list;
      weight : int;
      priority : int;
      terms : Term.t list;
    }

type t = {
  rules : grule list;
  universe : Model.AtomSet.t;
  shows : (string * int) list;
}

let rule_count g = List.length g.rules
let atom_count g = Model.AtomSet.cardinal g.universe

let equal a b =
  Model.AtomSet.equal a.universe b.universe
  && a.shows = b.shows
  && a.rules = b.rules

let count_to_string c =
  let elem e =
    let tuple = String.concat "," (List.map Term.to_string e.etuple) in
    let body =
      List.map Atom.to_string e.epos
      @ List.map (fun a -> "not " ^ Atom.to_string a) e.eneg
    in
    match body with
    | [] -> tuple
    | body -> tuple ^ " : " ^ String.concat ", " body
  in
  let name =
    match c.ckind with Lit.Cardinality -> "#count" | Lit.Summation -> "#sum"
  in
  Printf.sprintf "%s { %s } %s %d" name
    (String.concat " ; " (List.map elem c.celems))
    (Lit.cmp_to_string c.cop) c.cbound

let body_to_string pos neg counts =
  String.concat ", "
    (List.map Atom.to_string pos
    @ List.map (fun a -> "not " ^ Atom.to_string a) neg
    @ List.map count_to_string counts)

let rule_to_string = function
  | Gfact a -> Atom.to_string a ^ "."
  | Grule { head; pos = []; neg = []; counts = [] } -> Atom.to_string head ^ "."
  | Grule { head; pos; neg; counts } ->
      Printf.sprintf "%s :- %s." (Atom.to_string head)
        (body_to_string pos neg counts)
  | Gconstraint { pos; neg; counts } ->
      Printf.sprintf ":- %s." (body_to_string pos neg counts)
  | Gchoice { lower; upper; elems; pos; neg; counts } ->
      let elem e =
        match e.gpos, e.gneg with
        | [], [] -> Atom.to_string e.gatom
        | gpos, gneg ->
            Printf.sprintf "%s : %s" (Atom.to_string e.gatom)
              (body_to_string gpos gneg [])
      in
      let inner = String.concat " ; " (List.map elem elems) in
      let lo = match lower with Some n -> string_of_int n ^ " " | None -> "" in
      let hi = match upper with Some n -> " " ^ string_of_int n | None -> "" in
      let head = Printf.sprintf "%s{ %s }%s" lo inner hi in
      if pos = [] && neg = [] && counts = [] then head ^ "."
      else Printf.sprintf "%s :- %s." head (body_to_string pos neg counts)
  | Gweak { pos; neg; counts; weight; priority; terms } ->
      let terms_str =
        match terms with
        | [] -> ""
        | ts -> ", " ^ String.concat "," (List.map Term.to_string ts)
      in
      Printf.sprintf ":~ %s. [%d@%d%s]"
        (body_to_string pos neg counts)
        weight priority terms_str

let pp_rule ppf r = Format.pp_print_string ppf (rule_to_string r)

let pp ppf g =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_rule ppf g.rules
