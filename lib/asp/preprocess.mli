(** Clause-level preprocessing over completion nogoods ({!Completion}),
    run once before CDNL search ({!Solver}).

    Four reductions, in order: unit propagation to fixpoint; binary-clause
    equivalence reduction (body variables merged into a representative);
    duplicate removal and backward subsumption; pure-literal elimination
    of body variables. Unit propagation, duplicates and subsumption are
    sound unconditionally — subsumption only ever strengthens unit
    propagation, so the solver's lazy value-keyed checks still fire.
    Equivalence and pure-literal reduction touch only variables at or
    above [body_base] and only when [elim_bodies] is set, which callers
    tie to the program being tight: body variables of a tight program
    carry no semantics beyond their clauses (no unfounded-set check reads
    them) and are auto-decided at the search fringe, so merging or
    force-assigning them preserves the enumerated atom projections
    bit for bit. Counts land in the [pre_*] fields of the given
    {!Solver_stats.t}. *)

type result = {
  clauses : int array list;
      (** surviving simplified clauses, each with at least two literals,
          in input order *)
  forced : int list;
      (** literals fixed at level 0 (units, pure assignments), in
          derivation order; assert these before attaching [clauses] *)
  unsat : bool;  (** a contradiction surfaced: the clause set has no model *)
}

val run :
  ?elim_bodies:bool ->
  nvars:int ->
  body_base:int ->
  stats:Solver_stats.t ->
  int array list ->
  result
(** [elim_bodies] (default false) enables the body-variable-only
    equivalence and pure-literal reductions; pass the completion's
    tightness flag. Deterministic: identical inputs produce identical
    outputs regardless of hash-table iteration order. *)
