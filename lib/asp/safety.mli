(** Static safety analysis of rules, shared by the grounder and the lint
    layer. A rule is safe when every variable is bound by a positive body
    literal, an [X = expr] assignment over already-bound variables, or — for
    choice elements and aggregates — the element's own condition.

    Unlike {!Grounder}'s historical first-failure exception, this module
    reports {e all} violations of a rule at once. *)

type violation =
  | Unsafe_var of { context : string; var : string }
      (** [context] names where the variable occurs unbound: ["head"],
          ["body"], ["choice element"], ["condition"], ["aggregate bound"],
          ["aggregate tuple"], ["aggregate condition"], ["weight"] or
          ["terms"]. *)
  | Nested_aggregate  (** an aggregate inside an aggregate condition *)
  | Aggregate_in_choice_cond  (** an aggregate inside a choice-element condition *)

val violations : Rule.t -> violation list
(** All safety violations of the rule, deduplicated, in check order
    (body literals first, then the head). Empty for safe rules. *)

val is_safe : Rule.t -> bool

val bound_closure : string list -> Lit.t list -> string list
(** Variables bound by the positive part of the literals, starting from the
    given base set (exposed for reuse by the grounder). *)

val violation_to_string : violation -> string

val describe : Rule.t -> violation list -> string
(** One-line description listing every violation and the rule's text.
    Position-free: callers that want a located message prefix
    {!Rule.pos_to_string} themselves. *)
