(** Reference grounder — the pre-rewrite naive two-phase implementation,
    retained as the differential oracle for {!Grounder} (the role {!Naive}
    plays for {!Solver}).

    Phase-2 candidate enumeration is canonicalised to ascending
    {!Atom.compare} order, and {!Grounder} does the same, so on any program
    both accept the two produce structurally equal [Ground.t] values —
    the property [test/test_grounder_diff.ml] enforces over seeded random
    programs. Slow by construction (naive fixpoint, linear candidate scans):
    use {!Grounder} everywhere outside tests. *)

exception Unsafe of string
(** A rule violates the safety condition, or grounding got stuck on an
    undischargeable builtin / non-integer aggregate bound or weight. *)

exception Overflow of string
(** The universe exceeded [max_atoms]. *)

val ground : ?max_atoms:int -> Program.t -> Ground.t
(** [max_atoms] defaults to 200_000. *)
