exception Unsupported of string

module AtomSet = Model.AtomSet

(* ------------------------------------------------------------------ *)
(* Rule-level stratification of the ground program                     *)
(* ------------------------------------------------------------------ *)

(* Union-find over predicate signatures: all head predicates of one rule
   share a stratum (a choice rule may derive several predicates). *)
module Uf = struct
  type t = (string * int, string * int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (uf : t) x =
    match Hashtbl.find_opt uf x with
    | None ->
        Hashtbl.replace uf x x;
        x
    | Some p when p = x -> x
    | Some p ->
        let r = find uf p in
        Hashtbl.replace uf x r;
        r

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf ra rb
end

type rule_deps = {
  heads : (string * int) list;
  pos_deps : (string * int) list;
  neg_deps : (string * int) list;
}

(* every atom an aggregate's condition mentions must be decided strictly
   below the rule: treat them all as negative dependencies *)
let count_deps counts =
  List.concat_map
    (fun (c : Ground.gcount) ->
      List.concat_map
        (fun (e : Ground.gcount_elem) ->
          List.map Atom.signature e.Ground.epos
          @ List.map Atom.signature e.Ground.eneg)
        c.Ground.celems)
    counts

let rule_deps = function
  | Ground.Gfact a -> { heads = [ Atom.signature a ]; pos_deps = []; neg_deps = [] }
  | Ground.Grule { head; pos; neg; counts } ->
      {
        heads = [ Atom.signature head ];
        pos_deps = List.map Atom.signature pos;
        neg_deps = List.map Atom.signature neg @ count_deps counts;
      }
  | Ground.Gchoice { elems; pos; neg; counts; _ } ->
      {
        heads = List.map (fun e -> Atom.signature e.Ground.gatom) elems;
        pos_deps =
          List.map Atom.signature pos
          @ List.concat_map
              (fun e -> List.map Atom.signature e.Ground.gpos)
              elems;
        neg_deps =
          List.map Atom.signature neg
          @ List.concat_map
              (fun e -> List.map Atom.signature e.Ground.gneg)
              elems
          @ count_deps counts;
      }
  | Ground.Gconstraint _ | Ground.Gweak _ ->
      { heads = []; pos_deps = []; neg_deps = [] }

type strat = {
  stratum_of : (string * int) -> int;
  max_stratum : int;
  ok : bool; (* false when the program is not stratified modulo choices *)
}

let stratify (g : Ground.t) =
  let uf = Uf.create () in
  let deps = List.map rule_deps g.Ground.rules in
  (* merge head predicates of each rule *)
  List.iter
    (fun d ->
      match d.heads with
      | [] -> ()
      | h :: rest -> List.iter (fun h' -> Uf.union uf h h') rest)
    deps;
  (* collect nodes *)
  let nodes = Hashtbl.create 64 in
  let add_node sg = Hashtbl.replace nodes (Uf.find uf sg) () in
  List.iter
    (fun d ->
      List.iter add_node d.heads;
      List.iter add_node d.pos_deps;
      List.iter add_node d.neg_deps)
    deps;
  AtomSet.iter (fun a -> add_node (Atom.signature a)) g.Ground.universe;
  (* edges: rep(head) -> (rep(dep), negated?) *)
  let edges = Hashtbl.create 64 in
  let add_edge h d negp =
    let h = Uf.find uf h and d = Uf.find uf d in
    let l = match Hashtbl.find_opt edges h with Some l -> l | None -> [] in
    if not (List.mem (d, negp) l) then Hashtbl.replace edges h ((d, negp) :: l)
  in
  List.iter
    (fun d ->
      List.iter
        (fun h ->
          List.iter (fun p -> add_edge h p false) d.pos_deps;
          List.iter (fun n -> add_edge h n true) d.neg_deps)
        d.heads)
    deps;
  (* longest-path stratum assignment with negative edges strict; detect
     negative cycles by bounding iterations. *)
  let node_list = Hashtbl.fold (fun n () acc -> n :: acc) nodes [] in
  let n_nodes = List.length node_list in
  let stratum = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace stratum n 0) node_list;
  let changed = ref true in
  let rounds = ref 0 in
  let ok = ref true in
  while !changed && !ok do
    changed := false;
    incr rounds;
    if !rounds > n_nodes + 1 then ok := false
    else
      List.iter
        (fun h ->
          let sh = Hashtbl.find stratum h in
          List.iter
            (fun (d, negp) ->
              let sd = Hashtbl.find stratum d in
              let required = if negp then sd + 1 else sd in
              if sh < required then begin
                Hashtbl.replace stratum h required;
                changed := true
              end)
            (match Hashtbl.find_opt edges h with Some l -> l | None -> []))
        node_list
  done;
  let max_stratum =
    Hashtbl.fold (fun _ s acc -> max s acc) stratum 0
  in
  {
    stratum_of =
      (fun sg ->
        match Hashtbl.find_opt stratum (Uf.find uf sg) with
        | Some s -> s
        | None -> 0);
    max_stratum;
    ok = !ok;
  }

(* ------------------------------------------------------------------ *)
(* Fixpoint evaluation given a guess                                    *)
(* ------------------------------------------------------------------ *)

let sat_pos m pos = List.for_all (fun a -> AtomSet.mem a m) pos
let sat_neg m neg = not (List.exists (fun a -> AtomSet.mem a m) neg)

let eval_count m (c : Ground.gcount) =
  let tuples =
    List.filter_map
      (fun (e : Ground.gcount_elem) ->
        if sat_pos m e.Ground.epos && sat_neg m e.Ground.eneg then
          Some e.Ground.etuple
        else None)
      c.Ground.celems
    |> List.sort_uniq (List.compare Term.compare)
  in
  let n =
    match c.Ground.ckind with
    | Lit.Cardinality -> List.length tuples
    | Lit.Summation ->
        List.fold_left
          (fun acc tuple ->
            match tuple with
            | { Term.node = Term.Int w; _ } :: _ -> acc + w
            | _ -> acc (* non-integer weights contribute 0, as in clingo *))
          0 tuples
  in
  match c.Ground.cop with
  | Lit.Eq -> n = c.Ground.cbound
  | Lit.Ne -> n <> c.Ground.cbound
  | Lit.Lt -> n < c.Ground.cbound
  | Lit.Le -> n <= c.Ground.cbound
  | Lit.Gt -> n > c.Ground.cbound
  | Lit.Ge -> n >= c.Ground.cbound

let sat_counts m counts = List.for_all (eval_count m) counts

(* Evaluate strata in order; [in_guess] decides choice atoms. *)
let eval_stratified (g : Ground.t) (st : strat) ~in_guess =
  let rule_stratum r =
    match (rule_deps r).heads with
    | [] -> -1 (* constraints / weaks: not evaluated here *)
    | h :: _ -> st.stratum_of h
  in
  let m = ref AtomSet.empty in
  for s = 0 to st.max_stratum do
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun r ->
          if rule_stratum r = s then
            match r with
            | Ground.Gfact a ->
                if not (AtomSet.mem a !m) then begin
                  m := AtomSet.add a !m;
                  changed := true
                end
            | Ground.Grule { head; pos; neg; counts } ->
                if
                  (not (AtomSet.mem head !m))
                  && sat_pos !m pos && sat_neg !m neg
                  && sat_counts !m counts
                then begin
                  m := AtomSet.add head !m;
                  changed := true
                end
            | Ground.Gchoice { elems; pos; neg; counts; _ } ->
                if sat_pos !m pos && sat_neg !m neg && sat_counts !m counts then
                  List.iter
                    (fun e ->
                      if
                        (not (AtomSet.mem e.Ground.gatom !m))
                        && in_guess e.Ground.gatom
                        && sat_pos !m e.Ground.gpos
                        && sat_neg !m e.Ground.gneg
                      then begin
                        m := AtomSet.add e.Ground.gatom !m;
                        changed := true
                      end)
                    elems
            | Ground.Gconstraint _ | Ground.Gweak _ -> ())
        g.Ground.rules
    done
  done;
  !m

(* Least model of the reduct: negatives decided by [neg_value]; choice
   atoms admitted by [in_guess]; aggregates evaluated against the fixed
   candidate interpretation [count_model] (stratified aggregates are
   two-valued once the candidate is fixed). *)
let eval_reduct (g : Ground.t) ~neg_value ~in_guess ~count_model =
  let m = ref AtomSet.empty in
  let neg_ok neg = not (List.exists neg_value neg) in
  let counts_ok counts = sat_counts count_model counts in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        match r with
        | Ground.Gfact a ->
            if not (AtomSet.mem a !m) then begin
              m := AtomSet.add a !m;
              changed := true
            end
        | Ground.Grule { head; pos; neg; counts } ->
            if
              (not (AtomSet.mem head !m))
              && sat_pos !m pos && neg_ok neg && counts_ok counts
            then begin
              m := AtomSet.add head !m;
              changed := true
            end
        | Ground.Gchoice { elems; pos; neg; counts; _ } ->
            if sat_pos !m pos && neg_ok neg && counts_ok counts then
              List.iter
                (fun e ->
                  if
                    (not (AtomSet.mem e.Ground.gatom !m))
                    && in_guess e.Ground.gatom
                    && sat_pos !m e.Ground.gpos
                    && neg_ok e.Ground.gneg
                  then begin
                    m := AtomSet.add e.Ground.gatom !m;
                    changed := true
                  end)
                elems
        | Ground.Gconstraint _ | Ground.Gweak _ -> ())
      g.Ground.rules
  done;
  !m

(* ------------------------------------------------------------------ *)
(* Post-hoc checks                                                      *)
(* ------------------------------------------------------------------ *)

let constraints_ok (g : Ground.t) m =
  List.for_all
    (fun r ->
      match r with
      | Ground.Gconstraint { pos; neg; counts } ->
          not (sat_pos m pos && sat_neg m neg && sat_counts m counts)
      | Ground.Gfact _ | Ground.Grule _ | Ground.Gchoice _ | Ground.Gweak _ ->
          true)
    g.Ground.rules

let bounds_ok (g : Ground.t) m =
  List.for_all
    (fun r ->
      match r with
      | Ground.Gchoice { lower; upper; elems; pos; neg; counts } ->
          if not (sat_pos m pos && sat_neg m neg && sat_counts m counts) then
            true
          else begin
            let chosen =
              List.length
                (List.filter
                   (fun e ->
                     AtomSet.mem e.Ground.gatom m
                     && sat_pos m e.Ground.gpos
                     && sat_neg m e.Ground.gneg)
                   elems)
            in
            (match lower with Some lo -> chosen >= lo | None -> true)
            && match upper with Some hi -> chosen <= hi | None -> true
          end
      | Ground.Gfact _ | Ground.Grule _ | Ground.Gconstraint _ | Ground.Gweak _
        ->
          true)
    g.Ground.rules

let cost_of (g : Ground.t) m =
  let tuples = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Ground.Gweak { pos; neg; counts; weight; priority; terms } ->
          if sat_pos m pos && sat_neg m neg && sat_counts m counts then
            Hashtbl.replace tuples (priority, weight, terms) ()
      | Ground.Gfact _ | Ground.Grule _ | Ground.Gchoice _ | Ground.Gconstraint _
        ->
          ())
    g.Ground.rules;
  let per_level = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (priority, weight, _) () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt per_level priority) in
      Hashtbl.replace per_level priority (cur + weight))
    tuples;
  Hashtbl.fold (fun p w acc -> (p, w) :: acc) per_level []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)

(* ------------------------------------------------------------------ *)
(* Guess-space enumeration                                              *)
(* ------------------------------------------------------------------ *)

let choice_atoms (g : Ground.t) =
  List.fold_left
    (fun acc r ->
      match r with
      | Ground.Gchoice { elems; _ } ->
          List.fold_left
            (fun acc e -> AtomSet.add e.Ground.gatom acc)
            acc elems
      | Ground.Gfact _ | Ground.Grule _ | Ground.Gconstraint _ | Ground.Gweak _
        ->
          acc)
    AtomSet.empty g.Ground.rules

let derivation_negated_atoms (g : Ground.t) =
  List.fold_left
    (fun acc r ->
      match r with
      | Ground.Grule { neg; _ } -> List.fold_left (fun s a -> AtomSet.add a s) acc neg
      | Ground.Gchoice { neg; elems; _ } ->
          let acc = List.fold_left (fun s a -> AtomSet.add a s) acc neg in
          List.fold_left
            (fun acc e ->
              List.fold_left (fun s a -> AtomSet.add a s) acc e.Ground.gneg)
            acc elems
      | Ground.Gfact _ | Ground.Gconstraint _ | Ground.Gweak _ -> acc)
    AtomSet.empty g.Ground.rules

let enumerate_subsets atoms ~on_subset =
  let atoms = Array.of_list atoms in
  let n = Array.length atoms in
  let chosen = Hashtbl.create 16 in
  let rec go i =
    if i = n then on_subset (fun a -> Hashtbl.mem chosen a)
    else begin
      go (i + 1);
      Hashtbl.replace chosen atoms.(i) ();
      go (i + 1);
      Hashtbl.remove chosen atoms.(i)
    end
  in
  go 0

exception Done

let solve ?limit ?(max_guess = 24) (g : Ground.t) =
  let st = stratify g in
  let choices = AtomSet.elements (choice_atoms g) in
  let models = ref [] in
  let seen = Hashtbl.create 64 in
  let n_found = ref 0 in
  let add_model m =
    let key = AtomSet.elements m in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      models := Model.make ~cost:(cost_of g m) m :: !models;
      incr n_found;
      match limit with Some l when !n_found >= l -> raise Done | _ -> ()
    end
  in
  (try
     if st.ok then begin
       if List.length choices > max_guess then
         raise
           (Unsupported
              (Printf.sprintf "%d choice atoms exceed the guess bound %d"
                 (List.length choices) max_guess));
       enumerate_subsets choices ~on_subset:(fun in_guess ->
           let m = eval_stratified g st ~in_guess in
           if constraints_ok g m && bounds_ok g m then add_model m)
     end
     else begin
       (* non-stratified fallback: guess negated atoms too and verify the
          Gelfond–Lifschitz consistency condition *)
       let has_counts =
         List.exists
           (fun r ->
             match r with
             | Ground.Grule { counts; _ }
             | Ground.Gchoice { counts; _ }
             | Ground.Gconstraint { counts; _ }
             | Ground.Gweak { counts; _ } ->
                 counts <> []
             | Ground.Gfact _ -> false)
           g.Ground.rules
       in
       if has_counts then
         raise
           (Unsupported
              "aggregates require the program to be stratified modulo choices");
       let negs = derivation_negated_atoms g in
       let guess_space =
         AtomSet.elements (AtomSet.union (choice_atoms g) negs)
       in
       if List.length guess_space > max_guess then
         raise
           (Unsupported
              (Printf.sprintf
                 "non-stratified program with %d guess atoms exceeds bound %d"
                 (List.length guess_space) max_guess));
       enumerate_subsets guess_space ~on_subset:(fun in_guess ->
           (* aggregates rejected above, so count_model is irrelevant *)
           let m =
             eval_reduct g ~neg_value:in_guess ~in_guess
               ~count_model:AtomSet.empty
           in
           let consistent =
             AtomSet.for_all
               (fun a -> AtomSet.mem a m = in_guess a)
               negs
           in
           if consistent && constraints_ok g m && bounds_ok g m then
             add_model m)
     end
   with Done -> ());
  List.sort Model.compare !models

let is_stable_model (g : Ground.t) m =
  (* least model of the GL reduct w.r.t. m *)
  let neg_value a = AtomSet.mem a m in
  let in_guess a = AtomSet.mem a m in
  let least = eval_reduct g ~neg_value ~in_guess ~count_model:m in
  AtomSet.equal least m && constraints_ok g m && bounds_ok g m

let solve_optimal ?max_guess (g : Ground.t) =
  let models = solve ?max_guess g in
  match models with
  | [] -> []
  | _ ->
      let best =
        List.fold_left
          (fun acc m ->
            match acc with
            | None -> Some (Model.cost m)
            | Some c ->
                if Model.compare_cost (Model.cost m) c < 0 then
                  Some (Model.cost m)
                else acc)
          None models
      in
      let best = Option.get best in
      List.filter (fun m -> Model.compare_cost (Model.cost m) best = 0) models

let satisfiable ?max_guess g = solve ?max_guess ~limit:1 g <> []
