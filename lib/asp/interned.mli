(** Atom interning and a dense compiled form of ground programs.

    After grounding, every ground atom is mapped to a contiguous [int] id
    (reusing the grounder's universe index as the table seed, in
    {!Atom.compare} order so bit order equals atom order). Rule bodies
    become int arrays, interpretations become {!Bitset.t} assignments, and
    the structural [Atom.t]/[AtomSet] representation is reconstructed only
    at the {!Model.t} API boundary. *)

type count_elem = { etuple : Term.t list; epos : int array; eneg : int array }

type count = {
  ckind : Lit.agg_kind;
  celems : count_elem array;
  cop : Lit.cmp;
  cbound : int;
}

type rule = { head : int; pos : int array; neg : int array; counts : int array }
(** [counts] are indices into the shared {!field:t.counts} table. *)

type elem = { eatom : int; egpos : int array; egneg : int array }

type choice = {
  lower : int option;
  upper : int option;
  elems : elem array;
  cpos : int array;
  cneg : int array;
  ccounts : int array;
}

type constr = { kpos : int array; kneg : int array; kcounts : int array }

type weak = {
  wpos : int array;
  wneg : int array;
  wcounts : int array;
  weight : int;
  priority : int;
  terms : Term.t list;
}

type t = {
  atoms : Atom.t array;  (** id -> atom *)
  index : (Atom.t, int) Hashtbl.t;  (** atom -> id *)
  n_atoms : int;
  facts : int array;
  rules : rule array;
  choices : choice array;
  constraints : constr array;
  weaks : weak array;
  counts : count array;  (** shared aggregate table *)
  choice_atoms : Bitset.t;  (** atoms occurring as choice-element heads *)
  derived_head : Bitset.t;
      (** atoms with a fact or regular-rule derivation; a choice atom
          outside this set is certainly false once decided out *)
  has_counts : bool;
  has_negative_weight : bool;
      (** when true, partial weak-constraint cost is not a lower bound and
          branch-and-bound pruning must be disabled *)
}

val compile : Ground.t -> t

val id : t -> Atom.t -> int
(** Raises [Not_found] for atoms outside the compiled program. *)

val atoms_of_bitset : t -> Bitset.t -> Model.AtomSet.t
(** Reconstruct the structural atom set at the API boundary. *)

val eval_count : t -> Bitset.t -> count -> bool
(** Same aggregate semantics as the reference solver: the aggregated value
    over distinct tuples whose condition holds, compared to the bound. *)

val counts_sat : t -> Bitset.t -> int array -> bool

val cost_of : t -> Bitset.t -> Model.cost
(** Weak-constraint cost of a total assignment, with per-(priority, weight,
    terms) tuple deduplication, sorted by descending priority. *)
