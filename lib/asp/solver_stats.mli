(** Search statistics shared by the CDNL solver ({!Solver}) and the
    retained DFS solver ({!Dfs}).

    Every [solve_*_with_stats] entry point allocates a fresh record per
    call: consecutive or re-entrant solves report independent counters and
    wall times, never accumulated totals. DFS leaves the conflict-driven
    fields at zero; CDNL leaves [pruned] for bound prunes only. *)

type t = {
  mutable guesses : int;  (** decision literals (DFS: in + out branches) *)
  mutable pruned : int;  (** subtrees abandoned by a violation or bound *)
  mutable firings : int;  (** atom/literal assignments by propagation *)
  mutable leaves : int;  (** complete assignments reached *)
  mutable models : int;  (** distinct stable models found (pre-filter) *)
  mutable conflicts : int;  (** conflicts analysed (CDNL only) *)
  mutable learned : int;  (** nogoods learned by 1-UIP analysis *)
  mutable restarts : int;  (** Luby restarts taken (search conflicts only) *)
  mutable model_blocks : int;
      (** blocking nogoods added after a model, retreated chronologically —
          counted separately so [restarts] stays comparable across dense
          and sparse model spaces *)
  mutable backjumped : int;  (** decision levels skipped by backjumping *)
  mutable unfounded_checks : int;  (** unfounded-set checks run *)
  mutable unfounded_sets : int;  (** non-empty unfounded sets found *)
  mutable pre_units : int;  (** preprocessing: literals fixed at level 0 *)
  mutable pre_subsumed : int;  (** preprocessing: duplicate + subsumed clauses *)
  mutable pre_equivs : int;  (** preprocessing: body vars merged by equivalence *)
  mutable pre_pure : int;  (** preprocessing: pure body vars eliminated *)
  mutable shared_out : int;  (** learnt nogoods published to the exchange *)
  mutable shared_in : int;  (** learnt nogoods imported from other domains *)
  mutable cheap : bool;  (** solved on the propagation-only cheap tier *)
  mutable wall_s : float;  (** wall-clock seconds for the whole solve *)
}

val create : unit -> t

val accumulate : t -> t -> unit
(** [accumulate dst src] adds every counter (and wall time) of [src] into
    [dst] ([cheap] ors); used by the sweep engine and parallel enumeration
    to merge per-job statistics. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
