(** Propagation-only solving tier for tight-shaped, conflict-free
    programs (see {!Solver}'s [Config.cheap_tier]).

    Fragment: no aggregates, no negation in rule bodies or choice guards,
    no choice bounds; every choice-element guard decided by the forcing
    fixpoint, every constraint dead or forcing a single free choice atom.
    In that fragment stable models are exactly the least fixpoints of the
    definite rules over facts plus a subset of licensed choice atoms, so
    detection is sound on non-tight inputs too: an unsupported positive
    loop never enters a closure. Anything outside the fragment falls back
    to the full CDNL tier. *)

val eligible : Interned.t -> bool
(** True when the classifier accepts the program (including the case
    where it proves unsatisfiability outright). Exposed for tests. *)

val solve :
  ?limit:int -> stats:Solver_stats.t -> Interned.t -> Model.t list option
(** [None]: not in the fragment — the caller must run full CDNL.
    [Some models]: the complete (up to [limit]), deduplicated, sorted
    enumeration, bit-for-bit what the full tier returns. Sets
    [stats.cheap] and fills the search counters. *)
