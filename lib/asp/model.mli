(** Answer sets (stable models): sets of ground atoms plus the optimization
    cost derived from weak constraints. *)

module AtomSet : Set.S with type elt = Atom.t

type cost = (int * int) list
(** [(priority, weight-sum)] pairs, sorted by descending priority. *)

type t

val make : ?cost:cost -> AtomSet.t -> t
val atoms : t -> AtomSet.t
val to_list : t -> Atom.t list
(** Sorted atom list. *)

val holds : t -> Atom.t -> bool
val holds_pred : t -> string -> bool
(** True when any atom with the given predicate name holds. *)

val by_predicate : t -> string -> Atom.t list
(** All atoms of the model with the given predicate name, sorted. *)

val project : (string * int) list -> t -> t
(** Restrict to the given predicate signatures (as [#show] does). *)

val cost : t -> cost

val rehydrate : t -> t
(** Re-intern every atom's terms (see {!Term.rehydrate}); the set and cost
    are unchanged. Apply to models resurrected by [Marshal] (which bypasses
    hash-consing) before mixing them with freshly built terms. *)

val compare_cost : cost -> cost -> int
(** Lexicographic comparison, higher priority levels first; missing levels
    count as weight 0. Smaller is better. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Compares atom sets only (cost is derived). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
