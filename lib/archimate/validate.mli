(** Structural validation of system models ("system validation model",
    §II.C): errors make a model unusable for analysis, warnings flag likely
    modeling mistakes the sensitivity-analysis support should draw the
    analyst's eye to.

    Issues are {!Diagnostic.t} values (codes [L101]–[L110]), so model
    validation and program lint share one reporting pipeline. The types are
    re-exported transparently: [Validate.Warning], [i.Validate.severity]
    etc. keep working. *)

type severity = Diagnostic.severity = Info | Warning | Error

type issue = Diagnostic.t = {
  code : string;
  severity : severity;
  pos : Diagnostic.pos option;
  subject : string option;
  message : string;
}

val run : Model.t -> issue list
(** All issues, sorted errors-first. Checked rules:
    - [L101] composition cycles (error)
    - [L102] multiple composition parents (error)
    - [L103] flow relationships touching motivation-layer elements (error)
    - [L104] empty element names (warning)
    - [L105] duplicate element names (warning)
    - [L106] isolated elements — no incident relationship (warning)
    - [L107] self-loop relationships (warning) *)

val lint_raw : Text.raw -> issue list
(** Id-level invariants that the {!Model} constructors enforce by raising,
    reported here on the raw parse as located diagnostics instead — all
    offenders at once, each with its source line:
    - [L108] relationship endpoint references an unknown element id (error)
    - [L109] duplicate relationship id (warning)
    - [L110] duplicate element id (error)

    A raw model with no [L108]–[L110] findings is safe to {!Text.build}
    (the constructors also reject duplicate relationship ids). *)

val is_valid : Model.t -> bool
(** No [Error]-severity issues. *)

val pp_issue : Format.formatter -> issue -> unit
