exception Error of string

type token = Word of string | Quoted of string | Lbrace | Rbrace | Equals | Semi | Arrow | Eol

let tokenize_line line_no line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let err fmt =
    Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line_no s))) fmt
  in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n (* comment *)
    else if c = '{' then begin toks := Lbrace :: !toks; incr i end
    else if c = '}' then begin toks := Rbrace :: !toks; incr i end
    else if c = '=' then begin toks := Equals :: !toks; incr i end
    else if c = ';' then begin toks := Semi :: !toks; incr i end
    else if c = '-' && !i + 1 < n && line.[!i + 1] = '>' then begin
      toks := Arrow :: !toks;
      i := !i + 2
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec scan () =
        if !i >= n then err "unterminated string"
        else if line.[!i] = '"' then incr i
        else if line.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf line.[!i + 1];
          i := !i + 2;
          scan ()
        end
        else begin
          Buffer.add_char buf line.[!i];
          incr i;
          scan ()
        end
      in
      scan ();
      toks := Quoted (Buffer.contents buf) :: !toks
    end
    else begin
      let start = !i in
      let word_char c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_' || c = '.' || c = '-'
      in
      while !i < n && word_char line.[!i] do
        incr i
      done;
      if !i = start then err "unexpected character %C" c;
      toks := Word (String.sub line start (!i - start)) :: !toks
    end
  done;
  List.rev (Eol :: !toks)

let parse_properties line_no toks =
  let err fmt =
    Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line_no s))) fmt
  in
  let rec go acc = function
    | Rbrace :: rest -> (List.rev acc, rest)
    | Word key :: Equals :: value :: rest -> (
        let value =
          match value with
          | Quoted s | Word s -> s
          | _ -> err "expected a property value for %s" key
        in
        match rest with
        | Semi :: rest -> go ((key, value) :: acc) rest
        | Rbrace :: rest -> (List.rev ((key, value) :: acc), rest)
        | _ -> err "expected ';' or '}' after property %s" key)
    | _ -> err "malformed property block"
  in
  go [] toks

type raw = {
  raw_name : string option;
  raw_elements : (int * Element.t) list;
  raw_relations : (int * Relationship.t) list;
}

(* Syntactic pass only: statement shape, kinds, property blocks and
   declaration order are enforced here; the id-level invariants the model
   constructors maintain (duplicate ids, dangling endpoints) are NOT — the
   lint layer checks those on the raw form with line positions attached. *)
let parse_raw src =
  let lines = String.split_on_char '\n' src in
  let name = ref None in
  let elements = ref [] in
  let relations = ref [] in
  List.iteri
    (fun idx line ->
      let line_no = idx + 1 in
      let err fmt =
        Printf.ksprintf
          (fun s -> raise (Error (Printf.sprintf "line %d: %s" line_no s)))
          fmt
      in
      match tokenize_line line_no line with
      | [ Eol ] -> ()
      | Word "model" :: mname :: Eol :: _ -> (
          match mname with
          | Quoted n | Word n -> (
              match !name with
              | None -> name := Some n
              | Some _ -> err "duplicate model declaration")
          | _ -> err "expected model name")
      | Word "element" :: Word id :: Quoted ename :: Word kind :: rest ->
          let kind =
            match Element.kind_of_string kind with
            | Some k -> k
            | None -> err "unknown element kind %S" kind
          in
          let properties, rest =
            match rest with
            | Lbrace :: rest -> parse_properties line_no rest
            | rest -> ([], rest)
          in
          (match rest with [ Eol ] | [] -> () | _ -> err "trailing tokens");
          if !name = None then err "element before model declaration";
          elements :=
            (line_no, Element.make ~id ~name:ename ~kind ~properties ())
            :: !elements
      | Word "relation" :: Word id :: Word kind :: Word source :: Arrow
        :: Word target :: rest ->
          let kind =
            match Relationship.kind_of_string kind with
            | Some k -> k
            | None -> err "unknown relationship kind %S" kind
          in
          let properties, rest =
            match rest with
            | Lbrace :: rest -> parse_properties line_no rest
            | rest -> ([], rest)
          in
          (match rest with [ Eol ] | [] -> () | _ -> err "trailing tokens");
          if !name = None then err "relation before model declaration";
          relations :=
            (line_no, Relationship.make ~id ~source ~target ~kind ~properties ())
            :: !relations
      | _ -> err "unrecognized statement")
    lines;
  {
    raw_name = !name;
    raw_elements = List.rev !elements;
    raw_relations = List.rev !relations;
  }

let build raw =
  match raw.raw_name with
  | None -> raise (Error "missing model declaration")
  | Some name ->
      let add f m (line_no, x) =
        try f x m
        with Invalid_argument msg ->
          raise (Error (Printf.sprintf "line %d: %s" line_no msg))
      in
      let m =
        List.fold_left (add Model.add_element) (Model.empty ~name)
          raw.raw_elements
      in
      List.fold_left (add Model.add_relationship) m raw.raw_relations

let parse src = build (parse_raw src)

let print_properties = function
  | [] -> ""
  | props ->
      let body =
        props
        |> List.map (fun (k, v) -> Printf.sprintf "%s = %S" k v)
        |> String.concat "; "
      in
      Printf.sprintf " { %s }" body

let print m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "model %S\n" (Model.name m));
  List.iter
    (fun (e : Element.t) ->
      Buffer.add_string buf
        (Printf.sprintf "element %s %S %s%s\n" e.Element.id e.Element.name
           (Element.kind_to_string e.Element.kind)
           (print_properties e.Element.properties)))
    (Model.elements m);
  List.iter
    (fun (r : Relationship.t) ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %s %s -> %s%s\n" r.Relationship.id
           (Relationship.kind_to_string r.Relationship.kind)
           r.Relationship.source r.Relationship.target
           (print_properties r.Relationship.properties)))
    (Model.relationships m);
  Buffer.contents buf
