let sanitize s =
  let s = String.lowercase_ascii s in
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' then
        Buffer.add_char buf c
      else Buffer.add_char buf '_')
    s;
  let out = Buffer.contents buf in
  if out = "" then "x"
  else if out.[0] >= '0' && out.[0] <= '9' then "x" ^ out
  else out

let const s = Asp.Term.const (sanitize s)
let str s = Asp.Term.str s
let fact pred args = Asp.Rule.fact (Asp.Atom.make pred args)

let split_fault_modes s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun m -> m <> "")

let facts m =
  let element_facts (e : Element.t) =
    let id = const e.Element.id in
    [
      fact "component" [ id ];
      fact "element_kind" [ id; const (Element.kind_to_string e.Element.kind) ];
      fact "layer" [ id; const (Element.layer_to_string (Element.layer e)) ];
      fact "named" [ id; str e.Element.name ];
    ]
    @ List.concat_map
        (fun (k, v) ->
          let base = fact "property" [ id; const k; str v ] in
          if k = "fault_modes" then
            base
            :: List.map (fun mode -> fact "fault_mode" [ id; const mode ])
                 (split_fault_modes v)
          else [ base ])
        e.Element.properties
  in
  let relationship_facts (r : Relationship.t) =
    let src = const r.Relationship.source
    and tgt = const r.Relationship.target in
    let kind = const (Relationship.kind_to_string r.Relationship.kind) in
    let base = fact "rel" [ kind; src; tgt ] in
    match r.Relationship.kind with
    | Relationship.Flow -> [ base; fact "flow" [ src; tgt ] ]
    | Relationship.Composition | Relationship.Aggregation ->
        [ base; fact "part_of" [ tgt; src ] ]
    | Relationship.Assignment | Relationship.Realization | Relationship.Serving
    | Relationship.Access _ | Relationship.Triggering
    | Relationship.Association | Relationship.Specialization ->
        [ base ]
  in
  Asp.Program.of_rules
    (List.concat_map element_facts (Model.elements m)
    @ List.concat_map relationship_facts (Model.relationships m))
