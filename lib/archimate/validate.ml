(* Re-exported so historical pattern-matches and field accesses through
   [Validate] keep compiling; the definitions live in [Diagnostic]. *)
type severity = Diagnostic.severity = Info | Warning | Error

type issue = Diagnostic.t = {
  code : string;
  severity : severity;
  pos : Diagnostic.pos option;
  subject : string option;
  message : string;
}

let error ~code subject fmt = Diagnostic.error ~code ~subject fmt
let warning ~code subject fmt = Diagnostic.warning ~code ~subject fmt

let composition_cycles m =
  (* DFS over composition edges *)
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let issues = ref [] in
  let rec visit id =
    if Hashtbl.mem done_ id then ()
    else if Hashtbl.mem visiting id then
      issues :=
        error ~code:"L101" id "element is part of a composition cycle"
        :: !issues
    else begin
      Hashtbl.replace visiting id ();
      List.iter
        (fun (e : Element.t) -> visit e.Element.id)
        (Model.successors ~kind:Relationship.Composition id m);
      Hashtbl.remove visiting id;
      Hashtbl.replace done_ id ()
    end
  in
  List.iter (fun (e : Element.t) -> visit e.Element.id) (Model.elements m);
  !issues

let multiple_parents m =
  List.filter_map
    (fun (e : Element.t) ->
      let parents =
        Model.predecessors ~kind:Relationship.Composition e.Element.id m
      in
      if List.length parents > 1 then
        Some
          (error ~code:"L102" e.Element.id "element has %d composition parents"
             (List.length parents))
      else None)
    (Model.elements m)

let empty_names m =
  List.filter_map
    (fun (e : Element.t) ->
      if String.trim e.Element.name = "" then
        Some (warning ~code:"L104" e.Element.id "element has an empty name")
      else None)
    (Model.elements m)

let duplicate_names m =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Element.t) ->
      let k = e.Element.name in
      Hashtbl.replace tbl k (e.Element.id :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    (Model.elements m);
  Hashtbl.fold
    (fun name ids acc ->
      if List.length ids > 1 && String.trim name <> "" then
        warning ~code:"L105"
          (String.concat "," (List.rev ids))
          "duplicate element name %S" name
        :: acc
      else acc)
    tbl []

let isolated m =
  List.filter_map
    (fun (e : Element.t) ->
      if
        Model.outgoing e.Element.id m = []
        && Model.incoming e.Element.id m = []
        && Model.element_count m > 1
      then Some (warning ~code:"L106" e.Element.id "element has no relationships")
      else None)
    (Model.elements m)

let flow_into_motivation m =
  List.filter_map
    (fun (r : Relationship.t) ->
      if r.Relationship.kind <> Relationship.Flow then None
      else
        let touches_motivation id =
          match Model.element id m with
          | Some e -> Element.layer e = Element.Motivation
          | None -> false
        in
        if touches_motivation r.Relationship.source || touches_motivation r.Relationship.target
        then
          Some
            (error ~code:"L103" r.Relationship.id
               "flow relationship touches a motivation element")
        else None)
    (Model.relationships m)

let self_loops m =
  List.filter_map
    (fun (r : Relationship.t) ->
      if r.Relationship.source = r.Relationship.target then
        Some (warning ~code:"L107" r.Relationship.id "self-loop relationship")
      else None)
    (Model.relationships m)

let run m =
  Diagnostic.sort
    (composition_cycles m @ multiple_parents m @ flow_into_motivation m
   @ empty_names m @ duplicate_names m @ isolated m @ self_loops m)

(* ------------------------------------------------------------------ *)
(* Raw-level checks                                                    *)
(* ------------------------------------------------------------------ *)

(* These invariants are enforced by the [Model] constructors ([invalid_arg]
   on the first offender), so they can only be observed — and reported with
   source lines, all at once — on the raw parse. *)
let lint_raw (raw : Text.raw) =
  let pos line = { Diagnostic.line; col = 0 } in
  let dup_elements =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (line, (e : Element.t)) ->
        let id = e.Element.id in
        if Hashtbl.mem seen id then
          Some
            (Diagnostic.error ~code:"L110" ~pos:(pos line) ~subject:id
               "duplicate element id (first declared on line %d)"
               (Hashtbl.find seen id))
        else begin
          Hashtbl.replace seen id line;
          None
        end)
      raw.Text.raw_elements
  in
  let element_ids =
    List.map (fun (_, (e : Element.t)) -> e.Element.id) raw.Text.raw_elements
  in
  let dangling =
    List.concat_map
      (fun (line, (r : Relationship.t)) ->
        List.filter_map
          (fun (role, id) ->
            if List.mem id element_ids then None
            else
              Some
                (Diagnostic.error ~code:"L108" ~pos:(pos line)
                   ~subject:r.Relationship.id
                   "relationship %s references unknown element %S" role id))
          [ ("source", r.Relationship.source); ("target", r.Relationship.target) ])
      raw.Text.raw_relations
  in
  let dup_relations =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (line, (r : Relationship.t)) ->
        let id = r.Relationship.id in
        if Hashtbl.mem seen id then
          Some
            (Diagnostic.warning ~code:"L109" ~pos:(pos line) ~subject:id
               "duplicate relationship id (first declared on line %d)"
               (Hashtbl.find seen id))
        else begin
          Hashtbl.replace seen id line;
          None
        end)
      raw.Text.raw_relations
  in
  Diagnostic.sort (dup_elements @ dangling @ dup_relations)

let is_valid m = not (Diagnostic.has_errors (run m))

let pp_issue = Diagnostic.pp
