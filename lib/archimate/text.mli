(** Textual serialization of system models — a lightweight stand-in for the
    ArchiMate model exchange format.

    {v
    model "Water Tank System"
    element tank "Water Tank" equipment { criticality = "high" }
    element wls "Water Level Sensor" device { }
    relation r1 flow wls -> tank { medium = "signal" }
    v} *)

exception Error of string

type raw = {
  raw_name : string option;
  raw_elements : (int * Element.t) list;   (** 1-based source line, element *)
  raw_relations : (int * Relationship.t) list;
}
(** The file after the syntactic pass only: statement shapes, kinds and
    declaration order are checked, but the id-level invariants the model
    constructors enforce (duplicate ids, dangling relationship endpoints)
    are not yet — so a lint pass can report those as located diagnostics
    instead of dying on the first one. *)

val parse_raw : string -> raw
(** Raises {!Error} on malformed statements. *)

val build : raw -> Model.t
(** Raises {!Error} (with the offending line) on duplicate ids or dangling
    endpoints; elements are added before relationships, so forward
    references within the file are fine. *)

val parse : string -> Model.t
(** [build (parse_raw src)]. *)

val print : Model.t -> string
(** [parse (print m)] reconstructs [m] up to property ordering. *)
