(** Static analysis over ASP programs, Telingo-compiled requirement
    encodings and ArchiMate-style system models, reported as unified
    located {!Diagnostic.t} values ([L0xx] program codes, [L1xx] model
    codes; see {!codes}).

    Everything here runs {e before} grounding: the point is to catch
    encoding mistakes — unsafe rules, non-stratified negation, misspelled
    or mis-aritied predicates, rules that can never fire, recursion that
    would make grounding diverge, requirements talking about atoms the
    dynamics never produce — as a batch of located diagnostics rather than
    as the grounder's first-failure exceptions. *)

module Diagnostic = Diagnostic

val run_program :
  ?requirements:(string * Ltl.Formula.t) list ->
  ?encode:Telingo.Compile.encoding ->
  Asp.Program.t ->
  Diagnostic.t list
(** The full ASP check battery, sorted errors-first:
    - [L001] safety violations ({!Asp.Safety}), every offending rule with
      its source position (error)
    - [L002] cycles through negation — non-stratified program (warning)
    - [L003] body predicates never occurring in any head (warning)
    - [L004] head predicates never used in a body nor [#show]n (info)
    - [L005] one predicate name with several arities (warning)
    - [L006] singleton variables, ["_"]-prefixed names exempt (info)
    - [L007] dead rules: a positive body atom outside the over-approximate
      derivability fixpoint (warning)
    - [L008] recursive rules building new terms through function symbols —
      the grounding-blowup heuristic (warning)
    - [L009] requirement coverage, when [requirements] are given: see
      {!run_requirements} (warning) *)

val run_requirements :
  ?encode:Telingo.Compile.encoding ->
  program:Asp.Program.t ->
  (string * Ltl.Formula.t) list ->
  Diagnostic.t list
(** [L009] only: each requirement's atoms are compiled through [encode]
    (default {!Telingo.Compile.default_encoding}) and checked against the
    program's rule heads — a requirement mentioning [level=flood] when no
    rule can derive [holds(level, flood, _)] is vacuous or misspelled. *)

val run_source :
  ?requirements:(string * Ltl.Formula.t) list ->
  ?encode:Telingo.Compile.encoding ->
  string ->
  Diagnostic.t list
(** Parse concrete ASP syntax and {!run_program}; a syntax error becomes a
    single located [L000] diagnostic instead of an exception. *)

val run_model : Archimate.Model.t -> Diagnostic.t list
(** Model checks [L101]–[L107] ({!Archimate.Validate.run}). *)

val run_model_source : string -> Diagnostic.t list
(** Model lint from source text: the raw id-level checks [L108]–[L110]
    (with source lines) plus, when the model is buildable, the [L101]–[L107]
    structural checks. A syntax error becomes a located [L000]. *)

val codes : (string * Diagnostic.severity * string) list
(** Every diagnostic code with its severity and a one-line description —
    the registry the CLI and the README table are generated from. *)
