(** Located diagnostics: the common currency of every static check in the
    framework (ASP program lint, requirement-coverage lint, ArchiMate model
    validation).

    A diagnostic carries a stable error code ([L001]…), a severity, an
    optional source position (1-based line/col; [col = 0] means "line
    only", as produced by the line-oriented model parser), an optional
    subject (rule text, element or relationship id, requirement id) and a
    human-readable message. Diagnostics render as text or JSON. *)

type severity = Info | Warning | Error
(** Ordered: [Info < Warning < Error]. [Info] findings are stylistic and do
    not make an artifact dirty. *)

type pos = { line : int; col : int }

type t = {
  code : string;
  severity : severity;
  pos : pos option;
  subject : string option;
  message : string;
}

val make :
  code:string -> severity:severity -> ?pos:pos -> ?subject:string -> string -> t

val error :
  code:string -> ?pos:pos -> ?subject:string ->
  ('a, unit, string, t) format4 -> 'a

val warning :
  code:string -> ?pos:pos -> ?subject:string ->
  ('a, unit, string, t) format4 -> 'a

val info :
  code:string -> ?pos:pos -> ?subject:string ->
  ('a, unit, string, t) format4 -> 'a

val severity_to_string : severity -> string
val pos_to_string : pos -> string

val compare : t -> t -> int
(** Errors first, then by source position (unlocated last), then code. *)

val sort : t list -> t list

val count : severity -> t list -> int
val has_errors : t list -> bool

val is_clean : t list -> bool
(** No diagnostics at [Warning] or [Error] severity. *)

val summary : t list -> string
(** ["2 errors, 1 warning"], or ["clean"]. *)

val to_string : t -> string
(** [line 3, col 5: error[L001] subject: message]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
val list_to_json : t list -> string
