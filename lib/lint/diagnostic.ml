type severity = Info | Warning | Error

type pos = { line : int; col : int }

type t = {
  code : string;
  severity : severity;
  pos : pos option;
  subject : string option;
  message : string;
}

let make ~code ~severity ?pos ?subject message =
  { code; severity; pos; subject; message }

let error ~code ?pos ?subject fmt =
  Printf.ksprintf (fun message -> make ~code ~severity:Error ?pos ?subject message) fmt

let warning ~code ?pos ?subject fmt =
  Printf.ksprintf
    (fun message -> make ~code ~severity:Warning ?pos ?subject message)
    fmt

let info ~code ?pos ?subject fmt =
  Printf.ksprintf (fun message -> make ~code ~severity:Info ?pos ?subject message) fmt

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pos_to_string { line; col } =
  if col > 0 then Printf.sprintf "line %d, col %d" line col
  else Printf.sprintf "line %d" line

(* Errors first, then source order, then code: the order a reader fixes
   things in. *)
let compare_pos a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> 1
  | Some _, None -> -1
  | Some a, Some b ->
      let c = Stdlib.compare a.line b.line in
      if c <> 0 then c else Stdlib.compare a.col b.col

let compare a b =
  let c = Stdlib.compare b.severity a.severity in
  if c <> 0 then c
  else
    let c = compare_pos a.pos b.pos in
    if c <> 0 then c else Stdlib.compare (a.code, a.message) (b.code, b.message)

let sort ds = List.stable_sort compare ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* informational findings do not make a program dirty *)
let is_clean ds = List.for_all (fun d -> d.severity = Info) ds

let summary ds =
  let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  String.concat ", "
    (List.filter_map
       (fun (sev, what) ->
         match count sev ds with 0 -> None | n -> Some (part n what))
       [ (Error, "error"); (Warning, "warning"); (Info, "info") ])
  |> function
  | "" -> "clean"
  | s -> s

let to_string d =
  let pos = match d.pos with Some p -> pos_to_string p ^ ": " | None -> "" in
  let subject = match d.subject with Some s -> " " ^ s ^ ":" | None -> "" in
  Printf.sprintf "%s%s[%s]%s %s" pos
    (severity_to_string d.severity)
    d.code subject d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* ------------------------------------------------------------------ *)
(* JSON rendering (no external dependency)                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let fields =
    [
      Some (Printf.sprintf {|"code":"%s"|} (json_escape d.code));
      Some
        (Printf.sprintf {|"severity":"%s"|}
           (severity_to_string d.severity));
      Option.map (fun p -> Printf.sprintf {|"line":%d|} p.line) d.pos;
      Option.bind d.pos (fun p ->
          if p.col > 0 then Some (Printf.sprintf {|"col":%d|} p.col) else None);
      Option.map
        (fun s -> Printf.sprintf {|"subject":"%s"|} (json_escape s))
        d.subject;
      Some (Printf.sprintf {|"message":"%s"|} (json_escape d.message));
    ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"

let list_to_json ds =
  match ds with
  | [] -> "[]"
  | ds -> "[\n  " ^ String.concat ",\n  " (List.map to_json ds) ^ "\n]"
