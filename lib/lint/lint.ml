module D = Diagnostic
module Diagnostic = Diagnostic

let sig_to_string (name, arity) = Printf.sprintf "%s/%d" name arity

let rule_pos r =
  Option.map
    (fun { Asp.Rule.line; col } -> { D.line; col })
    (Asp.Rule.pos r)

(* ------------------------------------------------------------------ *)
(* Predicate reference collection                                      *)
(* ------------------------------------------------------------------ *)

type polarity = Pos | Neg

(* predicate references of a body literal, aggregate conditions included *)
let rec lit_refs l =
  match l with
  | Asp.Lit.Pos a -> [ (Asp.Atom.signature a, Pos) ]
  | Asp.Lit.Neg a -> [ (Asp.Atom.signature a, Neg) ]
  | Asp.Lit.Cmp _ -> []
  | Asp.Lit.Count { cond; _ } -> List.concat_map lit_refs cond

(* every body-position predicate reference of a rule: the main body plus
   choice-element conditions *)
let body_refs r =
  let conds =
    match r with
    | Asp.Rule.Rule { head = Asp.Rule.Choice { elems; _ }; _ } ->
        List.concat_map (fun (e : Asp.Rule.choice_elem) -> e.cond) elems
    | Asp.Rule.Rule _ | Asp.Rule.Weak _ -> []
  in
  List.concat_map lit_refs (Asp.Rule.body r @ conds)

let head_sigs r = List.map Asp.Atom.signature (Asp.Rule.head_atoms r)

(* ------------------------------------------------------------------ *)
(* L001: safety                                                        *)
(* ------------------------------------------------------------------ *)

let check_safety rules =
  List.concat_map
    (fun r ->
      match Asp.Safety.violations r with
      | [] -> []
      | vs ->
          [ D.error ~code:"L001" ?pos:(rule_pos r) "%s" (Asp.Safety.describe r vs) ])
    rules

(* ------------------------------------------------------------------ *)
(* L002: stratification                                                *)
(* ------------------------------------------------------------------ *)

let check_stratification p rules =
  let g = Asp.Deps.of_program p in
  List.map
    (fun scc ->
      let in_scc s = List.mem s scc in
      (* anchor the cycle at the first rule that contributes a negative
         edge inside it *)
      let anchor =
        List.find_opt
          (fun r ->
            List.exists in_scc (head_sigs r)
            && List.exists
                 (fun (s, pol) -> pol = Neg && in_scc s)
                 (body_refs r))
          rules
      in
      D.warning ~code:"L002"
        ?pos:(Option.bind anchor rule_pos)
        "predicate%s %s in a cycle through negation: the program is not stratified"
        (if List.length scc = 1 then "" else "s")
        (String.concat ", " (List.map sig_to_string scc)))
    (Asp.Deps.negative_cycle_sccs g)

(* ------------------------------------------------------------------ *)
(* L010: tightness                                                     *)
(* ------------------------------------------------------------------ *)

(* Positive recursion at the predicate level: the program may not be
   tight, so models of its completion need not be stable and the solver
   falls back on unfounded-set checks for the atoms in the loop. Cycles
   that also pass through negation are already reported as L002 and are
   skipped here. *)
let check_tightness p rules =
  let g = Asp.Deps.of_program p in
  let negative = Asp.Deps.negative_cycle_sccs g in
  Asp.Deps.positive_cycle_sccs g
  |> List.filter (fun scc -> not (List.mem scc negative))
  |> List.map (fun scc ->
         let in_scc s = List.mem s scc in
         (* anchor the cycle at the first rule that contributes a
            positive edge inside it *)
         let anchor =
           List.find_opt
             (fun r ->
               List.exists in_scc (head_sigs r)
               && List.exists
                    (fun (s, pol) -> pol = Pos && in_scc s)
                    (body_refs r))
             rules
         in
         D.info ~code:"L010"
           ?pos:(Option.bind anchor rule_pos)
           "predicate%s %s in a positive cycle: the program is not tight, \
            atoms in the loop need support from outside it"
           (if List.length scc = 1 then "" else "s")
           (String.concat ", " (List.map sig_to_string scc)))

(* ------------------------------------------------------------------ *)
(* L003 / L004 / L005: predicate usage                                 *)
(* ------------------------------------------------------------------ *)

(* first rule (program order) satisfying [f], for diagnostic anchoring *)
let first_pos rules f =
  List.find_opt f rules |> fun r -> Option.bind r rule_pos

let check_undefined rules =
  let defined = List.concat_map head_sigs rules in
  let used = List.concat_map (fun r -> List.map fst (body_refs r)) rules in
  let undefined =
    List.sort_uniq compare (List.filter (fun s -> not (List.mem s defined)) used)
  in
  List.map
    (fun s ->
      D.warning ~code:"L003"
        ?pos:(first_pos rules (fun r -> List.mem_assoc s (body_refs r)))
        ~subject:(sig_to_string s)
        "predicate is used in a rule body but never occurs in any head")
    undefined

let check_unused p rules =
  let used = List.concat_map (fun r -> List.map fst (body_refs r)) rules in
  let shown = Asp.Program.shows p in
  let defined = List.sort_uniq compare (List.concat_map head_sigs rules) in
  List.filter_map
    (fun s ->
      if List.mem s used || List.mem s shown then None
      else
        Some
          (D.info ~code:"L004"
             ?pos:(first_pos rules (fun r -> List.mem s (head_sigs r)))
             ~subject:(sig_to_string s)
             "predicate is never used in a body%s"
             (if shown = [] then "" else " and not #shown")))
    defined

let check_arities rules =
  let all r = head_sigs r @ List.map fst (body_refs r) in
  let sigs = List.sort_uniq compare (List.concat_map all rules) in
  let names = List.sort_uniq compare (List.map fst sigs) in
  List.filter_map
    (fun name ->
      match List.filter (fun (n, _) -> n = name) sigs with
      | [] | [ _ ] -> None
      | many ->
          Some
            (D.warning ~code:"L005"
               ?pos:
                 (first_pos rules (fun r ->
                      List.exists (fun (n, _) -> n = name) (all r)))
               ~subject:name
               "predicate is used with several arities: %s"
               (String.concat ", " (List.map sig_to_string many))))
    names

(* ------------------------------------------------------------------ *)
(* L006: singleton variables                                           *)
(* ------------------------------------------------------------------ *)

(* variable occurrences with multiplicity, everywhere in the rule *)
let rule_var_occurrences r =
  let rec term (t : Asp.Term.t) acc =
    match t.Asp.Term.node with
    | Asp.Term.Var v -> v :: acc
    | Asp.Term.Func (_, args) -> List.fold_left (fun acc t -> term t acc) acc args
    | Asp.Term.Const _ | Asp.Term.Int _ | Asp.Term.Str _ -> acc
  in
  let atom (a : Asp.Atom.t) acc = List.fold_left (fun acc t -> term t acc) acc a.Asp.Atom.args in
  let rec lit l acc =
    match l with
    | Asp.Lit.Pos a | Asp.Lit.Neg a -> atom a acc
    | Asp.Lit.Cmp (l', _, r') -> term r' (term l' acc)
    | Asp.Lit.Count { terms; cond; bound; _ } ->
        let acc = List.fold_left (fun acc t -> term t acc) acc terms in
        let acc = List.fold_left (fun acc c -> lit c acc) acc cond in
        term bound acc
  in
  let lits ls acc = List.fold_left (fun acc l -> lit l acc) acc ls in
  let occs =
    match r with
    | Asp.Rule.Weak { body; weight; terms; _ } ->
        List.fold_left (fun acc t -> term t acc) (term weight (lits body [])) terms
    | Asp.Rule.Rule { head; body; _ } ->
        let acc = lits body [] in
        (match head with
        | Asp.Rule.Falsity -> acc
        | Asp.Rule.Head a -> atom a acc
        | Asp.Rule.Choice { elems; _ } ->
            List.fold_left
              (fun acc (e : Asp.Rule.choice_elem) -> lits e.cond (atom e.atom acc))
              acc elems)
  in
  List.map
    (fun v -> (v, List.length (List.filter (String.equal v) occs)))
    (List.sort_uniq compare occs)

let check_singletons rules =
  List.filter_map
    (fun r ->
      let singletons =
        List.filter_map
          (fun (v, n) ->
            if n = 1 && String.length v > 0 && v.[0] <> '_' then Some v else None)
          (rule_var_occurrences r)
      in
      match singletons with
      | [] -> None
      | vs ->
          Some
            (D.info ~code:"L006" ?pos:(rule_pos r)
               "variable%s %s occur%s only once in rule: %s"
               (if List.length vs = 1 then "" else "s")
               (String.concat ", " vs)
               (if List.length vs = 1 then "s" else "")
               (Asp.Rule.to_string r)))
    rules

(* ------------------------------------------------------------------ *)
(* L007: dead rules                                                    *)
(* ------------------------------------------------------------------ *)

(* positive main-body signatures — what a rule needs to fire *)
let positive_body_sigs r =
  List.filter_map
    (fun l ->
      match l with
      | Asp.Lit.Pos a -> Some (Asp.Atom.signature a)
      | Asp.Lit.Neg _ | Asp.Lit.Cmp _ | Asp.Lit.Count _ -> None)
    (Asp.Rule.body r)

(* Over-approximate fixpoint of derivable predicate signatures: a head is
   derivable once every positive body predicate is (negation, comparisons,
   aggregates and choice conditions are optimistically ignored). Anything
   outside the fixpoint provably has no derivation. *)
let derivable_sigs rules =
  let tbl = Hashtbl.create 64 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        match head_sigs r with
        | [] -> ()
        | heads ->
            if List.for_all (Hashtbl.mem tbl) (positive_body_sigs r) then
              List.iter
                (fun s ->
                  if not (Hashtbl.mem tbl s) then begin
                    Hashtbl.replace tbl s ();
                    changed := true
                  end)
                heads)
      rules
  done;
  tbl

let check_dead_rules rules =
  let derivable = derivable_sigs rules in
  List.filter_map
    (fun r ->
      match
        List.sort_uniq compare
          (List.filter
             (fun s -> not (Hashtbl.mem derivable s))
             (positive_body_sigs r))
      with
      | [] -> None
      | missing ->
          Some
            (D.warning ~code:"L007" ?pos:(rule_pos r)
               "rule can never fire: no derivation for %s in rule: %s"
               (String.concat ", " (List.map sig_to_string missing))
               (Asp.Rule.to_string r)))
    rules

(* ------------------------------------------------------------------ *)
(* L008: grounding blowup through function symbols                     *)
(* ------------------------------------------------------------------ *)

let check_function_recursion p rules =
  let components = Asp.Deps.sccs (Asp.Deps.of_program p) in
  let scc_of = Hashtbl.create 64 in
  List.iteri
    (fun i comp -> List.iter (fun s -> Hashtbl.replace scc_of s i) comp)
    components;
  let same_scc a b =
    match Hashtbl.find_opt scc_of a, Hashtbl.find_opt scc_of b with
    | Some i, Some j -> i = j
    | _ -> false
  in
  let nonground_func (t : Asp.Term.t) =
    match t.Asp.Term.node with
    | Asp.Term.Func _ -> Asp.Term.vars t <> []
    | Asp.Term.Const _ | Asp.Term.Int _ | Asp.Term.Str _ | Asp.Term.Var _ ->
        false
  in
  List.filter_map
    (fun r ->
      let body = List.map fst (body_refs r) in
      let offending =
        List.filter
          (fun (a : Asp.Atom.t) ->
            List.exists nonground_func a.Asp.Atom.args
            && List.exists (same_scc (Asp.Atom.signature a)) body)
          (Asp.Rule.head_atoms r)
      in
      match offending with
      | [] -> None
      | a :: _ ->
          Some
            (D.warning ~code:"L008" ?pos:(rule_pos r)
               ~subject:(sig_to_string (Asp.Atom.signature a))
               "recursive rule builds new terms through a function symbol; \
                grounding may not terminate: %s"
               (Asp.Rule.to_string r)))
    rules

(* ------------------------------------------------------------------ *)
(* L009: requirement coverage                                          *)
(* ------------------------------------------------------------------ *)

(* can a head atom pattern produce an instance of the requirement's encoded
   atom pattern? variables (and arithmetic) unify with anything *)
let rec compatible (t : Asp.Term.t) (u : Asp.Term.t) =
  match t.Asp.Term.node, u.Asp.Term.node with
  | Asp.Term.Var _, _ | _, Asp.Term.Var _ -> true
  | Asp.Term.Func (f, ts), Asp.Term.Func (g, us) ->
      f = g && List.length ts = List.length us && List.for_all2 compatible ts us
  | Asp.Term.Func _, _ | _, Asp.Term.Func _ -> true
  | _ -> Asp.Term.equal t u

let atom_display (a : Asp.Atom.t) =
  let arg (t : Asp.Term.t) =
    match t.Asp.Term.node with
    | Asp.Term.Var _ -> "_"
    | _ -> Asp.Term.to_string t
  in
  match a.Asp.Atom.args with
  | [] -> a.Asp.Atom.pred
  | args ->
      Printf.sprintf "%s(%s)" a.Asp.Atom.pred
        (String.concat ", " (List.map arg args))

let run_requirements ?encode ~program reqs =
  let heads = List.concat_map Asp.Rule.head_atoms (Asp.Program.rules program) in
  let producible (a : Asp.Atom.t) =
    List.exists
      (fun (h : Asp.Atom.t) ->
        Asp.Atom.signature h = Asp.Atom.signature a
        && List.for_all2 compatible h.Asp.Atom.args a.Asp.Atom.args)
      heads
  in
  List.concat_map
    (fun (id, formula) ->
      List.filter_map
        (fun (atom_name, lit) ->
          match (lit : Asp.Lit.t) with
          | Asp.Lit.Cmp _ | Asp.Lit.Count _ -> None
          | Asp.Lit.Pos a | Asp.Lit.Neg a ->
              if producible a then None
              else
                Some
                  (D.warning ~code:"L009" ~subject:id
                     "requirement mentions %S, but no rule can derive %s"
                     atom_name (atom_display a)))
        (Telingo.Compile.encoded_atoms ?encode formula))
    reqs

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_program ?(requirements = []) ?encode p =
  let rules = Asp.Program.rules p in
  D.sort
    (check_safety rules @ check_stratification p rules
   @ check_tightness p rules @ check_undefined rules @ check_unused p rules
   @ check_arities rules @ check_singletons rules @ check_dead_rules rules
   @ check_function_recursion p rules
   @ run_requirements ?encode ~program:p requirements)

(* "line %d, col %d: rest" → located L000; anything else → unlocated *)
let parse_error_diag msg =
  match
    Scanf.sscanf msg "line %d, col %d: %[\000-\255]" (fun line col rest ->
        (Some { D.line; col }, rest))
  with
  | Some pos, rest -> D.error ~code:"L000" ~pos "%s" rest
  | None, _ -> assert false
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      D.error ~code:"L000" "%s" msg

let run_source ?requirements ?encode src =
  match Asp.Parser.parse_program src with
  | p -> run_program ?requirements ?encode p
  | exception Asp.Parser.Error msg -> [ parse_error_diag msg ]

let run_model m = Archimate.Validate.run m

(* "line %d: rest" → located L000 (line-oriented parser, no columns) *)
let model_parse_error_diag msg =
  match
    Scanf.sscanf msg "line %d: %[\000-\255]" (fun line rest ->
        (Some { D.line; col = 0 }, rest))
  with
  | Some pos, rest -> D.error ~code:"L000" ~pos "%s" rest
  | None, _ -> assert false
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      D.error ~code:"L000" "%s" msg

let run_model_source src =
  match Archimate.Text.parse_raw src with
  | exception Archimate.Text.Error msg -> [ model_parse_error_diag msg ]
  | raw -> (
      let raw_issues = Archimate.Validate.lint_raw raw in
      match Archimate.Text.build raw with
      | m -> D.sort (raw_issues @ Archimate.Validate.run m)
      | exception Archimate.Text.Error _ ->
          (* id-level breakage: the raw issues already explain why *)
          raw_issues)

(* ------------------------------------------------------------------ *)
(* Code registry (docs, --list-codes)                                  *)
(* ------------------------------------------------------------------ *)

let codes =
  [
    ("L000", D.Error, "source is not parseable");
    ("L001", D.Error, "unsafe variable or malformed aggregate in a rule");
    ("L002", D.Warning, "cycle through negation; program is not stratified");
    ("L003", D.Warning, "predicate used in a body but never defined");
    ("L004", D.Info, "predicate defined but never used");
    ("L005", D.Warning, "predicate used with several arities");
    ("L006", D.Info, "singleton variable in a rule (_-prefixed names exempt)");
    ("L007", D.Warning, "rule can never fire (underivable positive body atom)");
    ("L008", D.Warning, "recursion builds terms through function symbols");
    ("L009", D.Warning, "requirement mentions an atom no rule can produce");
    ("L010", D.Info, "positive cycle; program is not tight");
    ("L101", D.Error, "composition cycle");
    ("L102", D.Error, "multiple composition parents");
    ("L103", D.Error, "flow relationship touches a motivation element");
    ("L104", D.Warning, "empty element name");
    ("L105", D.Warning, "duplicate element name");
    ("L106", D.Warning, "isolated element (no relationships)");
    ("L107", D.Warning, "self-loop relationship");
    ("L108", D.Error, "relationship endpoint references an unknown element");
    ("L109", D.Warning, "duplicate relationship id");
    ("L110", D.Error, "duplicate element id");
  ]
