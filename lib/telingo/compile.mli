(** Telingo-style temporal ASP ("telingo = ASP + time", §II.C): LTLf
    formulas compiled into logic-program rules over a time-indexed trace.

    Each subformula [i] becomes a predicate [<prefix>sat_i/1] defined
    compositionally over the time points [time(0..H)]; the returned root
    atom holds exactly when the formula is satisfied at time 0 under
    finite-trace semantics. Negation is applied only to deeper subformulas,
    so the generated program is stratified and has a unique stable model
    once the trace facts are fixed.

    The default trace vocabulary is [holds(Var, Value, T)] — the atom
    ["level=overflow"] reads [holds(level, overflow, T)], a bare atom
    ["alert"] reads [holds(alert, true, T)] — and can be overridden per
    atom with [encode], which is how the water-tank backend maps ["alert"]
    onto its [alert(T)] predicate. *)

type encoding = string -> Asp.Term.t -> Asp.Lit.t
(** [encode atom time_term] is the body literal stating that [atom] holds
    at [time_term]. *)

val default_encoding : encoding

type context = {
  params : Asp.Term.t list;  (** extra arguments threaded through every
                                 satisfaction predicate (e.g. a scenario
                                 variable) *)
  guards : Asp.Lit.t list;   (** body literals binding those arguments
                                 (e.g. [scenario(S)]) *)
}

val no_context : context

val formula :
  ?prefix:string ->
  ?encode:encoding ->
  ?context:context ->
  horizon:int ->
  Ltl.Formula.t ->
  Asp.Program.t * Asp.Atom.t
(** [formula ~horizon f] returns the defining rules and the root atom
    (satisfaction of [f] at time 0 over the trace [0..horizon]). The
    caller must supply [time(0..horizon)] facts and the trace vocabulary.
    [prefix] defaults to ["f"], yielding predicates [fsat_0], [fsat_1], …

    With a [context], every satisfaction predicate carries the context
    parameters in front of the time argument and every rule includes the
    guards — one compilation then checks the requirement for {e each}
    binding of the context (e.g. every attack scenario in a joint
    program). The [encode] callback must produce literals mentioning the
    same parameters where appropriate. The returned root atom keeps the
    context parameters as variables. Context parameters must not use the
    reserved variable names [TLT_NOW] and [TLT_NEXT]. *)

val encoded_atoms : ?encode:encoding -> Ltl.Formula.t -> (string * Asp.Lit.t) list
(** Each atom of the formula paired with the body literal it compiles to
    (at the internal "now" time variable). This is the formula's footprint
    on the trace vocabulary — the lint layer checks it against what the
    dynamics rules can actually derive. *)

val violated_rule : requirement:string -> root:Asp.Atom.t -> Asp.Rule.t
(** [violated(requirement) :- not root.] *)

val trace_facts : Ltl.Trace.t -> Asp.Program.t
(** [time(T)] and [holds(Var, Value, T)] facts for a concrete trace (all
    variable values are emitted through the default vocabulary). *)

val check_trace : Ltl.Trace.t -> Ltl.Formula.t -> bool
(** Satisfaction of the formula on the trace, decided entirely inside the
    ASP engine (compile + ground + solve + query the root atom). Agrees
    with {!Ltl.Trace.eval} — the property the test suite enforces. *)
