type encoding = string -> Asp.Term.t -> Asp.Lit.t

let sanitize s =
  let s = String.lowercase_ascii s in
  let out =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' then c
        else '_')
      s
  in
  if out = "" then "x"
  else if out.[0] >= '0' && out.[0] <= '9' then "x" ^ out
  else out

let default_encoding atom time_term =
  let var, value =
    match String.index_opt atom '=' with
    | Some i ->
        ( String.sub atom 0 i,
          String.sub atom (i + 1) (String.length atom - i - 1) )
    | None -> (atom, "true")
  in
  Asp.Lit.Pos
    (Asp.Atom.make "holds"
       [ Asp.Term.const (sanitize var); Asp.Term.const (sanitize value); time_term ])

(* internal time variables; deliberately unusual names so context
   parameters cannot capture them *)
let tvar = Asp.Term.var "TLT_NOW"
let svar = Asp.Term.var "TLT_NEXT"
let time_lit t = Asp.Lit.Pos (Asp.Atom.make "time" [ t ])
let succ_assign =
  Asp.Lit.Cmp (svar, Asp.Lit.Eq, Asp.Term.func "+" [ tvar; Asp.Term.int 1 ])
let at_last horizon = Asp.Lit.Cmp (tvar, Asp.Lit.Eq, Asp.Term.int horizon)

type context = {
  params : Asp.Term.t list;
  guards : Asp.Lit.t list;
}

let no_context = { params = []; guards = [] }

let formula ?(prefix = "f") ?(encode = default_encoding)
    ?(context = no_context) ~horizon f =
  let rules = ref [] in
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    Printf.sprintf "%ssat_%d" prefix id
  in
  let add head body = rules := Asp.Rule.rule head (context.guards @ body) :: !rules in
  (* compile [f]; returns the name of its satisfaction predicate *)
  let rec go f =
    let name = fresh () in
    let sat t = Asp.Atom.make name (context.params @ [ t ]) in
    let head = sat tvar in
    let pos child t = Asp.Lit.Pos (Asp.Atom.make child (context.params @ [ t ])) in
    let neg child t = Asp.Lit.Neg (Asp.Atom.make child (context.params @ [ t ])) in
    (match (f : Ltl.Formula.t) with
    | True -> add head [ time_lit tvar ]
    | False -> ()
    | Atom a -> add head [ time_lit tvar; encode a tvar ]
    | Not g ->
        let gn = go g in
        add head [ time_lit tvar; neg gn tvar ]
    | And (a, b) ->
        let an = go a and bn = go b in
        add head [ time_lit tvar; pos an tvar; pos bn tvar ]
    | Or (a, b) ->
        let an = go a and bn = go b in
        add head [ time_lit tvar; pos an tvar ];
        add head [ time_lit tvar; pos bn tvar ]
    | Implies (a, b) ->
        let an = go (Ltl.Formula.Not a) and bn = go b in
        add head [ time_lit tvar; pos an tvar ];
        add head [ time_lit tvar; pos bn tvar ]
    | Next g ->
        let gn = go g in
        add head [ time_lit tvar; succ_assign; time_lit svar; pos gn svar ]
    | Wnext g ->
        let gn = go g in
        add head [ time_lit tvar; succ_assign; time_lit svar; pos gn svar ];
        add head [ time_lit tvar; at_last horizon ]
    | Eventually g ->
        let gn = go g in
        add head [ time_lit tvar; pos gn tvar ];
        add head [ time_lit tvar; succ_assign; pos name svar ]
    | Always g ->
        let gn = go g in
        add head [ time_lit tvar; pos gn tvar; at_last horizon ];
        add head [ time_lit tvar; pos gn tvar; succ_assign; pos name svar ]
    | Until (a, b) ->
        let an = go a and bn = go b in
        add head [ time_lit tvar; pos bn tvar ];
        add head [ time_lit tvar; pos an tvar; succ_assign; pos name svar ]
    | Release (a, b) ->
        let an = go a and bn = go b in
        add head [ time_lit tvar; pos bn tvar; at_last horizon ];
        add head [ time_lit tvar; pos bn tvar; pos an tvar ];
        add head [ time_lit tvar; pos bn tvar; succ_assign; pos name svar ]);
    name
  in
  let root_name = go f in
  ( Asp.Program.of_rules (List.rev !rules),
    Asp.Atom.make root_name (context.params @ [ Asp.Term.int 0 ]) )

let encoded_atoms ?(encode = default_encoding) f =
  List.map (fun a -> (a, encode a tvar)) (Ltl.Formula.atoms f)

let violated_rule ~requirement ~root =
  Asp.Rule.rule
    (Asp.Atom.make "violated" [ Asp.Term.const (sanitize requirement) ])
    [ Asp.Lit.Neg root ]

let trace_facts trace =
  let facts = ref [] in
  let n = Ltl.Trace.length trace in
  for t = 0 to n - 1 do
    facts := Asp.Rule.fact (Asp.Atom.make "time" [ Asp.Term.int t ]) :: !facts;
    List.iter
      (fun (var, value) ->
        facts :=
          Asp.Rule.fact
            (Asp.Atom.make "holds"
               [
                 Asp.Term.const (sanitize var); Asp.Term.const (sanitize value);
                 Asp.Term.int t;
               ])
          :: !facts)
      (Qual.Qstate.to_list (Ltl.Trace.state trace t))
  done;
  Asp.Program.of_rules (List.rev !facts)

let check_trace trace f =
  let horizon = Ltl.Trace.length trace - 1 in
  let rules, root = formula ~horizon f in
  let program = Asp.Program.append (trace_facts trace) rules in
  match Asp.Solver.solve (Asp.Grounder.ground program) with
  | [ m ] -> Asp.Model.holds m root
  | models ->
      invalid_arg
        (Printf.sprintf "Telingo.check_trace: expected one model, got %d"
           (List.length models))
