type report = {
  models : Asp.Model.t list;
  stats : Asp.Solver.Stats.t;
  jobs : int;
  paths : int;
  wall_s : float;
  path_walls : float array;
}

let ceil_log2 n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  if n <= 1 then 0 else go 1

(* Sign vector for path [i]: bit [k] of [i] decides the assumed value of
   the [k]-th guiding atom. Every model satisfies exactly one sign
   vector, so the 2^bits branches partition the model space and the
   merged enumeration is exhaustive and duplicate-free. *)
let assumptions_of_path atoms i =
  List.mapi (fun k a -> (a, (i lsr k) land 1 = 1)) atoms

let sequential ?limit ?config g =
  let t0 = Unix.gettimeofday () in
  let models, stats = Asp.Solver.solve_with_stats ?limit ?config g in
  {
    models;
    stats;
    jobs = 1;
    paths = 1;
    wall_s = Unix.gettimeofday () -. t0;
    path_walls = [| stats.Asp.Solver.Stats.wall_s |];
  }

(* Over-decompose: [2 + ceil_log2 jobs] guiding bits give four times as
   many paths as workers. Sign-splitting on choice atoms is uneven — the
   all-false branch keeps most of the space — so finer paths are what
   lets the pool balance the load, at a per-path recompile cost that is
   negligible next to any search worth parallelising. *)
let split_atoms g jobs = Asp.Solver.guiding_atoms g (2 + ceil_log2 jobs)

let popcount i =
  let rec go n i = if i = 0 then n else go (n + (i land 1)) (i lsr 1) in
  go 0 i

let run_paths ?oversubscribe ~jobs atoms solve_path =
  let t0 = Unix.gettimeofday () in
  let bits = List.length atoms in
  let paths = 1 lsl bits in
  (* schedule the most-constrained paths (most true-assumption bits)
     first: they are the quick ones, and the clauses they publish to the
     exchange then prune the wide all-false branches that follow *)
  let order = Array.init paths (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare (popcount b) (popcount a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let scheduled =
    Pool.map ?oversubscribe ~jobs
      (fun j ->
        let i = order.(j) in
        solve_path i (assumptions_of_path atoms i))
      paths
  in
  let per_path = Array.make paths scheduled.(0) in
  Array.iteri (fun j r -> per_path.(order.(j)) <- r) scheduled;
  let stats = Asp.Solver.Stats.create () in
  Array.iter (fun (_, s) -> Asp.Solver.Stats.accumulate stats s) per_path;
  let path_walls =
    Array.map (fun ((_, s) : _ * Asp.Solver.Stats.t) -> s.Asp.Solver.Stats.wall_s) per_path
  in
  let wall = Unix.gettimeofday () -. t0 in
  (* the accumulated wall is the summed per-path solver time; report the
     measured elapsed time for the whole fan-out instead *)
  stats.Asp.Solver.Stats.wall_s <- wall;
  let models = List.concat_map fst (Array.to_list per_path) in
  (models, { models = []; stats; jobs; paths; wall_s = wall; path_walls })

(* per-path config: plug the sharing hub in (when enabled) and force the
   full CDNL tier — under guiding-path assumptions the cheap tier is
   skipped anyway, and the explicit override keeps the config honest *)
let path_config ~share ~hub base =
  match (share, hub) with
  | true, Some h ->
      fun i -> { base with Asp.Solver.Config.exchange = Some (h, i) }
  | _ -> fun _ -> base

let enumerate ?oversubscribe ?jobs ?limit ?(share = true)
    ?(config = Asp.Solver.Config.default) g =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  (* a global model cap cannot be split soundly across branches without
     over-enumerating, so limited solves stay sequential *)
  if jobs <= 1 || limit <> None then sequential ?limit ~config g
  else
    match split_atoms g jobs with
    | [] -> sequential ~config g
    | atoms ->
        let paths = 1 lsl List.length atoms in
        let hub =
          if share then Some (Asp.Exchange.create ~paths ()) else None
        in
        let config_of = path_config ~share ~hub config in
        let models, r =
          run_paths ?oversubscribe ~jobs atoms (fun i assumptions ->
              Asp.Solver.solve_with_stats ~assumptions ~config:(config_of i) g)
        in
        (* branches are disjoint: concatenation + sort reproduces the
           sequential enumeration bit for bit *)
        { r with models = List.sort Asp.Model.compare models }

let optimal ?oversubscribe ?jobs ?(share = true)
    ?(config = Asp.Solver.Config.default) g =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  if jobs <= 1 then begin
    let t0 = Unix.gettimeofday () in
    let models, stats = Asp.Solver.solve_optimal_with_stats ~config g in
    {
      models;
      stats;
      jobs = 1;
      paths = 1;
      wall_s = Unix.gettimeofday () -. t0;
      path_walls = [| stats.Asp.Solver.Stats.wall_s |];
    }
  end
  else
    match split_atoms g jobs with
    | [] ->
        let t0 = Unix.gettimeofday () in
        let models, stats = Asp.Solver.solve_optimal_with_stats ~config g in
        {
          models;
          stats;
          jobs;
          paths = 1;
          wall_s = Unix.gettimeofday () -. t0;
          path_walls = [| stats.Asp.Solver.Stats.wall_s |];
        }
    | atoms ->
        let paths = 1 lsl List.length atoms in
        let hub =
          if share then Some (Asp.Exchange.create ~paths ()) else None
        in
        let config_of = path_config ~share ~hub config in
        let fronts, r =
          run_paths ?oversubscribe ~jobs atoms (fun i assumptions ->
              Asp.Solver.solve_optimal_with_stats ~assumptions
                ~config:(config_of i) g)
        in
        (* each branch returns its local optimum front; the global front
           is the minimum-cost slice of their union *)
        let best =
          List.fold_left
            (fun acc m ->
              let c = Asp.Model.cost m in
              match acc with
              | None -> Some c
              | Some b ->
                  if Asp.Model.compare_cost c b < 0 then Some c else acc)
            None fronts
        in
        let models =
          match best with
          | None -> []
          | Some b ->
              fronts
              |> List.filter (fun m ->
                     Asp.Model.compare_cost (Asp.Model.cost m) b = 0)
              |> List.sort Asp.Model.compare
        in
        { r with models }

let render r =
  let buf = Buffer.create 128 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "par: %d model%s over %d guiding path%s on %d domain%s in %.3fs\n"
    (List.length r.models)
    (if List.length r.models = 1 then "" else "s")
    r.paths
    (if r.paths = 1 then "" else "s")
    r.jobs
    (if r.jobs = 1 then "" else "s")
    r.wall_s;
  let sum = Array.fold_left ( +. ) 0.0 r.path_walls in
  let critical = Array.fold_left max 0.0 r.path_walls in
  if r.paths > 1 then
    p "par: path walls sum %.3fs, critical path %.3fs (ideal speedup %.2fx)\n"
      sum critical
      (if critical > 0.0 then sum /. critical else 1.0);
  p "par: %s\n" (Asp.Solver.Stats.to_string r.stats);
  Buffer.contents buf
