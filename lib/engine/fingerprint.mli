(** Content addresses for ASP programs.

    A fingerprint is a structural 128-bit (2 x FNV-1a-64) hash over a
    program's rules, facts and [#show] directives. It ignores source
    positions, so a parsed program and a programmatically built one with the
    same structure collide — which is exactly what the solve cache wants:
    the fingerprint keys memoized [(models, stats)] results in
    {!Cache}, and two jobs whose compiled programs are structurally equal
    share one solve.

    Rule order is significant (programs are hashed as streams), [#show]
    directives are hashed order-insensitively. Streaming makes {!extend}
    cheap: the fingerprint of [Asp.Program.append base inc] is
    [extend (program base) inc], so a sweep hashes its base once and pays
    only for each job's small increment. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_hex : t -> string
(** 32 hex digits. *)

val program : Asp.Program.t -> t

val extend : t -> Asp.Program.t -> t
(** [extend (program base) inc = program (Asp.Program.append base inc)]. *)

val combine : t -> t -> t
(** Order-sensitive mix of two fingerprints (e.g. to key a program paired
    with a solve mode). *)

val rule : Asp.Rule.t -> t
(** Fingerprint of a single rule, mostly for tests. *)

val ints : int list -> t
(** Fingerprint of a plain int tuple — used to mix non-program inputs
    (solve mode, caps) into a job's content address. *)

val pp : Format.formatter -> t -> unit
