(* Structural FNV-1a hashing of programs. Two independent 64-bit streams:
   [rules] folds the rule list in order, [shows] XORs per-directive hashes
   (order-insensitive, so [extend] distributes over Program.append, which
   concatenates both lists). *)

type t = { rules : int64; shows : int64 }

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fold_int h n =
  (* 8 bytes, little-endian, so nearby ints do not collide *)
  let rec go h i v =
    if i = 8 then h else go (byte h (v land 0xff)) (i + 1) (v asr 8)
  in
  go h 0 n

let fold_string h s =
  let h = fold_int h (String.length s) in
  String.fold_left (fun h c -> byte h (Char.code c)) h s

let fold_opt_int h = function
  | None -> byte h 0
  | Some n -> fold_int (byte h 1) n

(* Terms are hash-consed with a structural, process-independent key
   ({!Asp.Term.hash}): folding the precomputed key is O(1) per term and
   hashes the same content as the former deep traversal did (the key is
   itself an FNV fold of the node structure). *)
let fold_term h t = fold_int h (Asp.Term.hash t)

let fold_terms h ts = List.fold_left fold_term (fold_int h (List.length ts)) ts

let fold_atom h (a : Asp.Atom.t) =
  fold_terms (fold_string h a.Asp.Atom.pred) a.Asp.Atom.args

let cmp_tag = function
  | Asp.Lit.Eq -> 1
  | Asp.Lit.Ne -> 2
  | Asp.Lit.Lt -> 3
  | Asp.Lit.Le -> 4
  | Asp.Lit.Gt -> 5
  | Asp.Lit.Ge -> 6

let rec fold_lit h = function
  | Asp.Lit.Pos a -> fold_atom (byte h 1) a
  | Asp.Lit.Neg a -> fold_atom (byte h 2) a
  | Asp.Lit.Cmp (l, op, r) ->
      fold_term (fold_term (byte (byte h 3) (cmp_tag op)) l) r
  | Asp.Lit.Count c ->
      let h = byte h 4 in
      let h =
        byte h (match c.Asp.Lit.kind with Cardinality -> 1 | Summation -> 2)
      in
      let h = fold_terms h c.Asp.Lit.terms in
      let h = fold_lits h c.Asp.Lit.cond in
      fold_term (byte h (cmp_tag c.Asp.Lit.op)) c.Asp.Lit.bound

and fold_lits h ls = List.fold_left fold_lit (fold_int h (List.length ls)) ls

let fold_head h = function
  | Asp.Rule.Head a -> fold_atom (byte h 1) a
  | Asp.Rule.Choice { lower; upper; elems } ->
      let h = fold_opt_int (fold_opt_int (byte h 2) lower) upper in
      List.fold_left
        (fun h (e : Asp.Rule.choice_elem) ->
          fold_lits (fold_atom h e.Asp.Rule.atom) e.Asp.Rule.cond)
        (fold_int h (List.length elems))
        elems
  | Asp.Rule.Falsity -> byte h 3

(* source positions are deliberately not hashed: the fingerprint is
   structural, a parsed statement and its programmatic twin must collide *)
let fold_rule h = function
  | Asp.Rule.Rule { head; body; pos = _ } ->
      fold_lits (fold_head (byte h 1) head) body
  | Asp.Rule.Weak { body; weight; priority; terms; pos = _ } ->
      let h = fold_lits (byte h 2) body in
      fold_terms (fold_int (fold_term h weight) priority) terms

let fold_show h (p, n) = fold_int (fold_string h p) n

let empty = { rules = fnv_offset; shows = 0L }

let extend fp p =
  {
    rules = List.fold_left fold_rule fp.rules (Asp.Program.rules p);
    shows =
      List.fold_left
        (fun acc s -> Int64.logxor acc (fold_show fnv_offset s))
        fp.shows (Asp.Program.shows p);
  }

let program p = extend empty p
let rule r = { empty with rules = fold_rule empty.rules r }

let ints ns = { empty with rules = List.fold_left fold_int empty.rules ns }

let combine a b =
  {
    rules = fold_int (fold_int a.rules (Int64.to_int b.rules)) (Int64.to_int b.shows);
    shows = Int64.logxor a.shows (Int64.mul b.shows fnv_prime);
  }

let equal a b = Int64.equal a.rules b.rules && Int64.equal a.shows b.shows

let compare a b =
  match Int64.compare a.rules b.rules with
  | 0 -> Int64.compare a.shows b.shows
  | c -> c

let hash a = Int64.to_int a.rules lxor Int64.to_int a.shows
let to_hex a = Printf.sprintf "%016Lx%016Lx" a.rules a.shows
let pp ppf a = Format.pp_print_string ppf (to_hex a)
