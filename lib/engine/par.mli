(** Guiding-path parallel model enumeration.

    The CDNL solver's assumption interface ({!Asp.Solver.solve} with
    [?assumptions]) conditions the search on fixed atom values. Fixing
    [k] atoms in all [2^k] sign combinations partitions the stable-model
    space into disjoint branches, so the branches can be solved on
    separate {!Pool} domains and merged by concatenation + sort — the
    result is bit-for-bit the sequential enumeration, regardless of
    worker count or scheduling.

    The split atoms come from {!Asp.Solver.guiding_atoms} (choice atoms
    first — the natural combinatorial frontier of the reference
    encodings), [k = 2 + ceil(log2 jobs)] capped by the number of
    available atoms: four times as many paths as workers, because sign
    splits on choice atoms are uneven (the all-false branch keeps most
    of the space) and the surplus lets the pool balance the load. Paths
    are scheduled most-constrained first (descending count of true
    assumption bits), so the quick branches run early and seed the
    exchange for the wide ones. Merged statistics accumulate every
    branch's counters;
    [stats.wall_s] is the measured elapsed time of the whole fan-out
    while {!report.path_walls} keeps the per-branch solver walls, whose
    max is the critical path (the ideal-parallel lower bound).

    By default the branches exchange learned nogoods through an
    {!Asp.Exchange} hub ([?share], on unless disabled): each solver
    publishes the short/low-LBD clauses of its 1-UIP analyses that are
    untainted by path-local nogoods, so every import is valid under any
    other branch's assumptions and the merged result stays bit-for-bit
    the sequential enumeration — sharing changes the work, never the
    answer. *)

type report = {
  models : Asp.Model.t list;  (** merged, sorted — equal to sequential *)
  stats : Asp.Solver.Stats.t;  (** accumulated over branches; measured wall *)
  jobs : int;  (** worker domains used *)
  paths : int;  (** guiding paths solved ([2^k], or 1 sequential) *)
  wall_s : float;  (** elapsed time of the whole enumeration *)
  path_walls : float array;  (** per-branch solver wall times *)
}

val enumerate :
  ?oversubscribe:bool ->
  ?jobs:int ->
  ?limit:int ->
  ?share:bool ->
  ?config:Asp.Solver.Config.t ->
  Asp.Ground.t ->
  report
(** All stable models. [jobs <= 1] (and the default on single-core
    hosts) runs inline; a [limit] also forces the sequential path, since
    a global model cap cannot be split across branches without
    over-enumerating. [oversubscribe] is passed to {!Pool.map} (tests
    use it to force real multi-domain execution on single-core hosts).
    [share] (default true) enables learned-nogood exchange between the
    branches; [config] is the per-solver base configuration (its
    [exchange] field is overwritten per path). *)

val optimal :
  ?oversubscribe:bool ->
  ?jobs:int ->
  ?share:bool ->
  ?config:Asp.Solver.Config.t ->
  Asp.Ground.t ->
  report
(** Optimal models under weak constraints: every branch runs its own
    branch-and-bound under its guiding assumptions, and the global front
    is the minimum-cost slice of the union of the branch fronts. *)

val render : report -> string
(** Human-readable summary: model/path/domain counts, measured wall,
    summed and critical-path branch walls, merged solver statistics. *)
