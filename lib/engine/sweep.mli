(** The sweep engine: batch what-if analysis over a {!Job.spec}.

    [run] prepares the base once (fingerprint + grounding), fans the jobs
    out over a {!Pool} of domains, and memoizes every solve in a
    content-addressed {!Cache} — repeated deltas (mitigation search, CEGAR
    refinement, budget sweeps) are solved once. Results are keyed by job
    index, so the report is deterministic: a parallel run is bit-identical
    to the sequential one.

    Pass your own [cache] to reuse solves across sweeps; a second identical
    sweep on the same cache reports a 100% hit rate and zero fresh solver
    work. A cache built with a {!Cache.persist} hook additionally serves
    repeats across process restarts — those answers are counted as
    [disk_hits].

    Long-running callers (the assessment service) keep the prepared base
    around and call {!run_prepared} per request, so consecutive delta
    batches extend warm grounder state instead of re-preparing. *)

type report = {
  results : Job.result array;  (** indexed by position in the delta list *)
  jobs : int;  (** worker domains used *)
  wall_s : float;  (** whole-sweep wall clock *)
  base_atoms : int;  (** base universe size reused by every job *)
  hits : int;  (** jobs answered from the in-memory cache, this run *)
  disk_hits : int;
      (** jobs answered from the cache's persistent tier, this run *)
  misses : int;  (** jobs that ran a fresh solve, this run *)
  fresh : Asp.Solver.Stats.t;
      (** solver stats aggregated over this run's {e fresh} solves only —
          cached results contribute nothing, so a fully cached re-sweep
          reports zero guesses *)
  ground : Asp.Grounder.Stats.t;
      (** incremental-grounding stats, aggregated like [fresh]: the
          [reused_rules]/[fresh_rules] split shows how much of each job's
          ground program came straight from the prepared base *)
}

val run :
  ?oversubscribe:bool -> ?jobs:int ->
  ?cache:
    (Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t) Cache.t ->
  Job.spec -> report
(** [jobs] defaults to {!Pool.default_jobs} and, like {!Pool.map}, is
    capped at the hardware's useful parallelism unless [oversubscribe];
    [cache] defaults to a fresh private cache. The report's [jobs] field
    records the requested fan-out width. *)

val run_prepared :
  ?oversubscribe:bool -> ?jobs:int ->
  ?cache:
    (Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t) Cache.t ->
  Job.prepared -> Delta.t list -> report
(** Sweep the given deltas against an already-{!Job.prepare}d base —
    [run spec] is [prepare] + [run_prepared] over [spec.deltas]. The
    prepared state is only read, so one base may serve many concurrent
    and consecutive [run_prepared] calls. *)

val hit_rate : report -> float
(** Memory + disk hits over total jobs, in [0, 1]; 0 on an empty sweep. *)

val render : ?verbose:bool -> report -> string
(** Human-readable summary; [verbose] adds one line per job (label,
    model count, cache provenance — [*] memory, [+] disk — and
    fingerprint). *)

val to_json : report -> string
(** Machine-readable report: sweep-level counters plus one entry per job
    (label, fingerprint, model count, cached flag, source). *)
