(** The sweep engine: batch what-if analysis over a {!Job.spec}.

    [run] prepares the base once (fingerprint + grounding), fans the jobs
    out over a {!Pool} of domains, and memoizes every solve in a
    content-addressed {!Cache} — repeated deltas (mitigation search, CEGAR
    refinement, budget sweeps) are solved once. Results are keyed by job
    index, so the report is deterministic: a parallel run is bit-identical
    to the sequential one.

    Pass your own [cache] to reuse solves across sweeps; a second identical
    sweep on the same cache reports a 100% hit rate and zero fresh solver
    work. *)

type report = {
  results : Job.result array;  (** indexed by position in [spec.deltas] *)
  jobs : int;  (** worker domains used *)
  wall_s : float;  (** whole-sweep wall clock *)
  base_atoms : int;  (** base universe size reused by every job *)
  hits : int;  (** jobs answered from the cache, this run *)
  misses : int;  (** jobs that ran a fresh solve, this run *)
  fresh : Asp.Solver.Stats.t;
      (** solver stats aggregated over this run's {e fresh} solves only —
          cached results contribute nothing, so a fully cached re-sweep
          reports zero guesses *)
  ground : Asp.Grounder.Stats.t;
      (** incremental-grounding stats, aggregated like [fresh]: the
          [reused_rules]/[fresh_rules] split shows how much of each job's
          ground program came straight from the prepared base *)
}

val run :
  ?oversubscribe:bool -> ?jobs:int ->
  ?cache:
    (Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t) Cache.t ->
  Job.spec -> report
(** [jobs] defaults to {!Pool.default_jobs} and, like {!Pool.map}, is
    capped at the hardware's useful parallelism unless [oversubscribe];
    [cache] defaults to a fresh private cache. The report's [jobs] field
    records the requested fan-out width. *)

val hit_rate : report -> float
(** Hits over total jobs, in [0, 1]; 0 on an empty sweep. *)

val render : ?verbose:bool -> report -> string
(** Human-readable summary; [verbose] adds one line per job (label,
    model count, cache flag, fingerprint). *)

val to_json : report -> string
(** Machine-readable report: sweep-level counters plus one entry per job
    (label, fingerprint, model count, cached flag). *)
