(** Content-addressed solve cache, shared across the worker domains of a
    sweep (and, when the caller keeps it, across sweeps — a second identical
    sweep is pure lookups).

    Keys are program {!Fingerprint}s; values are whatever the caller
    memoizes (the engine stores solved model lists plus solver stats).
    {!find_or_compute} deduplicates in-flight work: while one domain
    computes a key, other domains asking for the same key block on a
    condition variable instead of solving the same program twice, so the
    hit/miss accounting is exact even under parallelism. *)

type 'a t

val create : unit -> 'a t

val find_or_compute : 'a t -> Fingerprint.t -> (unit -> 'a) -> 'a * bool
(** [(value, was_cached)]. [was_cached] is [true] both for a completed
    entry and for a wait on another domain's in-flight computation. If the
    computing domain's thunk raises, the key is released, waiters retry
    (one of them becomes the new computer), and the exception propagates to
    the original caller. *)

val mem : 'a t -> Fingerprint.t -> bool
(** True for completed entries only. *)

val length : 'a t -> int
(** Completed entries. *)

val hits : 'a t -> int
val misses : 'a t -> int
(** Lifetime counters over {!find_or_compute}; per-sweep accounting is done
    from the [was_cached] flags instead. *)

val clear : 'a t -> unit
(** Drop all completed entries and reset the counters. Must not be called
    while a sweep is running on this cache. *)
