(** Content-addressed solve cache, shared across the worker domains of a
    sweep (and, when the caller keeps it, across sweeps — a second identical
    sweep is pure lookups).

    Keys are program {!Fingerprint}s; values are whatever the caller
    memoizes (the engine stores solved model lists plus solver stats).
    {!find_or_compute} deduplicates in-flight work: while one domain
    computes a key, other domains asking for the same key block on a
    condition variable instead of solving the same program twice, so the
    hit/miss accounting is exact even under parallelism.

    A cache may carry a {!persist} hook — a second, slower storage tier
    (the assessment service plugs {!Serve.Store} in here). Entries found
    there are promoted into the in-memory table and reported as {!Disk}
    hits; freshly computed values are pushed back through the hook. *)

type source = Memory | Disk | Fresh
    (** Where an answer came from: the in-memory table (or a wait on
        another domain's in-flight solve), the persistent tier, or a fresh
        computation. *)

val source_to_string : source -> string
(** ["memory"], ["disk"], ["fresh"] — the wire spelling used by reports
    and the service protocol. *)

type 'a persist = {
  load : Fingerprint.t -> 'a option;
      (** consulted once per in-memory miss, outside the cache lock;
          [None] falls through to the computation *)
  store : Fingerprint.t -> 'a -> unit;
      (** called after each fresh computation, outside the cache lock;
          failures must be handled by the hook itself *)
}
(** The persistence hook must be safe to call from several domains at
    once; the cache's in-flight dedup guarantees at most one [load] and
    one [store] per key at any moment, but different keys proceed
    concurrently. *)

type 'a t

val create : ?persist:'a persist -> unit -> 'a t

val find_or_compute_src : 'a t -> Fingerprint.t -> (unit -> 'a) -> 'a * source
(** Like {!find_or_compute}, with full provenance. If the computing
    domain's thunk (or the persist hook's [load]) raises, the key is
    released, waiters retry (one of them becomes the new computer), and
    the exception propagates to the original caller. *)

val find_or_compute : 'a t -> Fingerprint.t -> (unit -> 'a) -> 'a * bool
(** [(value, was_cached)]. [was_cached] is [true] both for a completed
    entry (memory or disk) and for a wait on another domain's in-flight
    computation. *)

val mem : 'a t -> Fingerprint.t -> bool
(** True for completed in-memory entries only (never consults persist). *)

val length : 'a t -> int
(** Completed in-memory entries. *)

val hits : 'a t -> int
val disk_hits : 'a t -> int
val misses : 'a t -> int
(** Lifetime counters over {!find_or_compute_src}: [hits] counts memory
    hits, [disk_hits] persistent-tier promotions, [misses] fresh
    computations; per-sweep accounting is done from the [source] flags
    instead. *)

val clear : 'a t -> unit
(** Drop all completed in-memory entries and reset the counters (the
    persistent tier is untouched). Must not be called while a sweep is
    running on this cache. *)
