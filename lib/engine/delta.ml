type t = {
  label : string;
  faults : string list;
  mitigations : string list;
  extra : string list;
}

let make ?(label = "") ?(mitigations = []) ?(extra = []) faults =
  {
    label;
    faults = List.sort_uniq String.compare faults;
    mitigations = List.sort_uniq String.compare mitigations;
    extra;
  }

let label d =
  if d.label <> "" then d.label
  else
    let set ids = "{" ^ String.concat "," ids ^ "}" in
    set d.faults ^ if d.mitigations = [] then "" else "+" ^ set d.mitigations

let compare a b =
  match Stdlib.compare (a.faults, a.mitigations, a.extra) (b.faults, b.mitigations, b.extra) with
  | 0 -> String.compare a.label b.label
  | c -> c

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Mutations-file parsing                                              *)
(* ------------------------------------------------------------------ *)

type error = { line : int; col : int; msg : string }

let error_to_string e =
  (* same position spelling as Lint.Diagnostic: col 0 means unknown *)
  if e.col > 0 then Printf.sprintf "line %d, col %d: %s" e.line e.col e.msg
  else Printf.sprintf "line %d: %s" e.line e.msg

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let ids csv =
  String.split_on_char ',' csv
  |> List.map String.trim
  |> List.filter (fun s -> s <> "" && s <> "-")

(* offset of the [n]th occurrence of [c] in [s], 1-based column *)
let col_of_char s c n =
  let rec go i left =
    if i >= String.length s then 0
    else if s.[i] = c then if left = 1 then i + 1 else go (i + 1) (left - 1)
    else go (i + 1) left
  in
  go 0 n

let parse_line ?(line = 1) raw =
  let err ?(col = 0) msg = Error { line; col; msg } in
  let text = String.trim (strip_comment raw) in
  if text = "" then Ok None
  else
    (* columns are reported against the raw line, label and comment
       included, so editors can jump to them *)
    let base = ref 0 in
    (match String.index_opt raw (if text = "" then ' ' else text.[0]) with
    | Some i -> base := i
    | None -> ());
    let label, rest =
      match String.index_opt text ':' with
      | Some i ->
          base := !base + i + 1;
          ( String.trim (String.sub text 0 i),
            String.sub text (i + 1) (String.length text - i - 1) )
      | None -> ("", text)
    in
    let rest, extra_src =
      match String.index_opt rest '!' with
      | Some i ->
          ( String.sub rest 0 i,
            Some
              ( !base + i + 2,
                String.trim
                  (String.sub rest (i + 1) (String.length rest - i - 1)) ) )
      | None -> (rest, None)
    in
    let extra =
      match extra_src with
      | None -> Ok []
      | Some (col, src) -> (
          (* validate the raw-ASP tail here, where we still know the line,
             instead of letting the sweep's compile step fail without a
             position much later *)
          match Asp.Parser.parse_program src with
          | _ -> Ok [ src ]
          | exception Asp.Parser.Error m ->
              err ~col (Printf.sprintf "invalid ASP after '!': %s" m))
    in
    match extra with
    | Error e -> Error e
    | Ok extra -> (
        match String.split_on_char '/' rest with
        | [ faults ] -> Ok (Some (make ~label ~extra (ids faults)))
        | [ faults; mitigations ] ->
            Ok
              (Some
                 (make ~label ~mitigations:(ids mitigations) ~extra (ids faults)))
        | _ ->
            err
              ~col:(col_of_char raw '/' 2)
              "more than one '/' separator (expected FAULTS [/ MITIGATIONS])")

let parse src =
  let lines = String.split_on_char '\n' src in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line ~line:n line with
        | Ok None -> go (n + 1) acc rest
        | Ok (Some d) -> go (n + 1) (d :: acc) rest
        | Error e -> Error e)
  in
  go 1 [] lines

let pp ppf d =
  Format.fprintf ppf "%s: %s / %s" (label d)
    (String.concat "," d.faults)
    (String.concat "," d.mitigations);
  List.iter (fun s -> Format.fprintf ppf " ! %s" s) d.extra
