type t = {
  label : string;
  faults : string list;
  mitigations : string list;
  extra : string list;
}

let make ?(label = "") ?(mitigations = []) ?(extra = []) faults =
  {
    label;
    faults = List.sort_uniq String.compare faults;
    mitigations = List.sort_uniq String.compare mitigations;
    extra;
  }

let label d =
  if d.label <> "" then d.label
  else
    let set ids = "{" ^ String.concat "," ids ^ "}" in
    set d.faults ^ if d.mitigations = [] then "" else "+" ^ set d.mitigations

let compare a b =
  match Stdlib.compare (a.faults, a.mitigations, a.extra) (b.faults, b.mitigations, b.extra) with
  | 0 -> String.compare a.label b.label
  | c -> c

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Mutations-file parsing                                              *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let ids csv =
  String.split_on_char ',' csv
  |> List.map String.trim
  |> List.filter (fun s -> s <> "" && s <> "-")

let parse_line line =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok None
  else
    let label, rest =
      match String.index_opt line ':' with
      | Some i ->
          ( String.trim (String.sub line 0 i),
            String.sub line (i + 1) (String.length line - i - 1) )
      | None -> ("", line)
    in
    let rest, extra =
      match String.index_opt rest '!' with
      | Some i ->
          ( String.sub rest 0 i,
            [ String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) ] )
      | None -> (rest, [])
    in
    match String.split_on_char '/' rest with
    | [ faults ] -> Ok (Some (make ~label ~extra (ids faults)))
    | [ faults; mitigations ] ->
        Ok (Some (make ~label ~mitigations:(ids mitigations) ~extra (ids faults)))
    | _ -> Error "more than one '/' separator"

let parse src =
  let lines = String.split_on_char '\n' src in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go (n + 1) acc rest
        | Ok (Some d) -> go (n + 1) (d :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" n msg))
  in
  go 1 [] lines

let pp ppf d =
  Format.fprintf ppf "%s: %s / %s" (label d)
    (String.concat "," d.faults)
    (String.concat "," d.mitigations);
  List.iter (fun s -> Format.fprintf ppf " ! %s" s) d.extra
