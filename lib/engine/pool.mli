(** Domain-based worker pool (OCaml 5 [Domain.spawn]).

    {!map} fans an indexed task set out over a fixed set of worker domains
    pulling indices from a shared atomic counter — a degenerate but
    effective form of work stealing for embarrassingly parallel sweeps.
    Results land in a slot array keyed by task {e index}, never by
    completion order, so the output is deterministic regardless of worker
    count or scheduling: [map ~jobs f n] equals [Array.init n f] whenever
    [f] is pure.

    Tasks must not share mutable state unless it is synchronized (the
    engine's {!Cache} is; the ASP grounder and solver are pure). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's useful
    parallelism (1 in a single-core container). *)

val map : ?oversubscribe:bool -> ?jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f n] computes [|f 0; …; f (n-1)|] on [min jobs n] domains
    (the calling domain participates as a worker; [jobs] defaults to
    {!default_jobs}, values [<= 1] run inline without spawning). Requesting
    more domains than {!default_jobs} is a pessimization — no extra
    parallelism, but every minor GC pays the multi-domain synchronization
    barrier — so the worker count is additionally capped there unless
    [oversubscribe] is set (tests use it to force real multi-domain
    execution on single-core machines). If tasks raise, every task still
    runs to completion and the exception of the lowest-indexed failing
    task is re-raised — again deterministic. *)

val grounder_par : ?min_items:int -> unit -> Asp.Grounder.par
(** An {!Asp.Grounder.par} backed by {!map}: plug into
    [Grounder.ground/prepare] to fan phase-1 fixpoint rounds out over
    domains (bit-for-bit identical output). [min_items] (default 32) is
    the round size below which items run inline. Never pass into grounding
    performed {e inside} a {!map} task — nested spawns oversubscribe. *)
