module Table = Hashtbl.Make (struct
  type t = Fingerprint.t

  let equal = Fingerprint.equal
  let hash = Fingerprint.hash
end)

type source = Memory | Disk | Fresh

let source_to_string = function
  | Memory -> "memory"
  | Disk -> "disk"
  | Fresh -> "fresh"

type 'a persist = {
  load : Fingerprint.t -> 'a option;
  store : Fingerprint.t -> 'a -> unit;
}

type 'a slot = Pending | Done of 'a

type 'a t = {
  table : 'a slot Table.t;
  persist : 'a persist option;
  lock : Mutex.t;
  settled : Condition.t;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
}

let create ?persist () =
  {
    table = Table.create 256;
    persist;
    lock = Mutex.create ();
    settled = Condition.create ();
    hits = 0;
    disk_hits = 0;
    misses = 0;
  }

let find_or_compute_src t key compute =
  let settle v =
    Mutex.lock t.lock;
    Table.replace t.table key (Done v);
    Condition.broadcast t.settled;
    Mutex.unlock t.lock
  in
  let release e =
    let bt = Printexc.get_raw_backtrace () in
    Mutex.lock t.lock;
    Table.remove t.table key;
    Condition.broadcast t.settled;
    Mutex.unlock t.lock;
    Printexc.raise_with_backtrace e bt
  in
  let rec claim () =
    (* called with [t.lock] held *)
    match Table.find_opt t.table key with
    | Some (Done v) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        (v, Memory)
    | Some Pending ->
        (* another domain is solving this very program: wait, then re-check
           (the computer may have failed and released the key) *)
        Condition.wait t.settled t.lock;
        claim ()
    | None -> (
        Table.replace t.table key Pending;
        Mutex.unlock t.lock;
        (* consult the persistent tier, if any, before computing: a disk
           hit promotes the entry to the in-memory table but is counted
           apart so callers can tell warm-disk from warm-memory serving *)
        match
          match t.persist with None -> None | Some p -> p.load key
        with
        | Some v ->
            settle v;
            Mutex.lock t.lock;
            t.disk_hits <- t.disk_hits + 1;
            Mutex.unlock t.lock;
            (v, Disk)
        | None -> (
            match compute () with
            | v ->
                settle v;
                Mutex.lock t.lock;
                t.misses <- t.misses + 1;
                Mutex.unlock t.lock;
                (match t.persist with
                | None -> ()
                | Some p -> p.store key v);
                (v, Fresh)
            | exception e -> release e)
        | exception e -> release e)
  in
  Mutex.lock t.lock;
  claim ()

let find_or_compute t key compute =
  let v, src = find_or_compute_src t key compute in
  (v, src <> Fresh)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mem t key =
  locked t (fun () ->
      match Table.find_opt t.table key with
      | Some (Done _) -> true
      | Some Pending | None -> false)

let length t =
  locked t (fun () ->
      Table.fold
        (fun _ slot n -> match slot with Done _ -> n + 1 | Pending -> n)
        t.table 0)

let hits t = locked t (fun () -> t.hits)
let disk_hits t = locked t (fun () -> t.disk_hits)
let misses t = locked t (fun () -> t.misses)

let clear t =
  locked t (fun () ->
      Table.reset t.table;
      t.hits <- 0;
      t.disk_hits <- 0;
      t.misses <- 0)
