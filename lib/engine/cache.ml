module Table = Hashtbl.Make (struct
  type t = Fingerprint.t

  let equal = Fingerprint.equal
  let hash = Fingerprint.hash
end)

type 'a slot = Pending | Done of 'a

type 'a t = {
  table : 'a slot Table.t;
  lock : Mutex.t;
  settled : Condition.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    table = Table.create 256;
    lock = Mutex.create ();
    settled = Condition.create ();
    hits = 0;
    misses = 0;
  }

let find_or_compute t key compute =
  let rec claim () =
    (* called with [t.lock] held *)
    match Table.find_opt t.table key with
    | Some (Done v) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        (v, true)
    | Some Pending ->
        (* another domain is solving this very program: wait, then re-check
           (the computer may have failed and released the key) *)
        Condition.wait t.settled t.lock;
        claim ()
    | None -> (
        t.misses <- t.misses + 1;
        Table.replace t.table key Pending;
        Mutex.unlock t.lock;
        match compute () with
        | v ->
            Mutex.lock t.lock;
            Table.replace t.table key (Done v);
            Condition.broadcast t.settled;
            Mutex.unlock t.lock;
            (v, false)
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.lock;
            Table.remove t.table key;
            Condition.broadcast t.settled;
            Mutex.unlock t.lock;
            Printexc.raise_with_backtrace e bt)
  in
  Mutex.lock t.lock;
  claim ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mem t key =
  locked t (fun () ->
      match Table.find_opt t.table key with
      | Some (Done _) -> true
      | Some Pending | None -> false)

let length t =
  locked t (fun () ->
      Table.fold
        (fun _ slot n -> match slot with Done _ -> n + 1 | Pending -> n)
        t.table 0)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

let clear t =
  locked t (fun () ->
      Table.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
