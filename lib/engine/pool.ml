let default_jobs () = Domain.recommended_domain_count ()

let map ?(oversubscribe = false) ?jobs f n =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  (* more domains than cores buys no parallelism and pays the multi-domain
     GC synchronization barrier on every minor collection *)
  let jobs = if oversubscribe then jobs else min jobs (default_jobs ()) in
  if n <= 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* one writer per slot; Domain.join publishes the writes *)
          (slots.(i) <-
            (match f i with
            | v -> Some (Ok v)
            | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index below [n] was claimed *))
      slots
  end

(* Grounder parallel hook: fan semi-naive fixpoint rounds out over this
   pool. [min_items] keeps small rounds inline — spawning domains costs
   more than a handful of joins. Do not pass this into work that already
   runs inside a {!map} worker (e.g. per-delta [Grounder.extend] during a
   sweep): nested spawns oversubscribe the machine. *)
let grounder_par ?(min_items = 32) () =
  { Asp.Grounder.pmap = (fun f n -> map f n); min_items }
