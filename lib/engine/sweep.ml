type report = {
  results : Job.result array;
  jobs : int;
  wall_s : float;
  base_atoms : int;
  hits : int;
  disk_hits : int;
  misses : int;
  fresh : Asp.Solver.Stats.t;
  ground : Asp.Grounder.Stats.t;
}

let run_prepared ?oversubscribe ?jobs ?cache prepared deltas =
  let t0 = Unix.gettimeofday () in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let deltas = Array.of_list deltas in
  let results =
    Pool.map ?oversubscribe ~jobs
      (fun index ->
        let delta = deltas.(index) in
        let fingerprint = Job.fingerprint prepared delta in
        let (models, stats, gstats), source =
          Cache.find_or_compute_src cache fingerprint (fun () ->
              Job.solve prepared delta)
        in
        {
          Job.index;
          delta;
          fingerprint;
          models;
          stats;
          gstats;
          cached = source <> Cache.Fresh;
          source;
        })
      (Array.length deltas)
  in
  let hits = ref 0 in
  let disk_hits = ref 0 in
  let fresh = Asp.Solver.Stats.create () in
  let ground = Asp.Grounder.Stats.create () in
  (* a program solved once but hit by several jobs of this sweep counts its
     stats once: aggregate over distinct fresh fingerprints *)
  let counted = Hashtbl.create 64 in
  Array.iter
    (fun (r : Job.result) ->
      match r.Job.source with
      | Cache.Memory -> incr hits
      | Cache.Disk -> incr disk_hits
      | Cache.Fresh ->
          let key = Fingerprint.to_hex r.Job.fingerprint in
          if not (Hashtbl.mem counted key) then begin
            Hashtbl.replace counted key ();
            Asp.Solver.Stats.accumulate fresh r.Job.stats;
            let g = r.Job.gstats in
            ground.Asp.Grounder.Stats.passes <-
              ground.Asp.Grounder.Stats.passes + g.Asp.Grounder.Stats.passes;
            ground.Asp.Grounder.Stats.firings <-
              ground.Asp.Grounder.Stats.firings + g.Asp.Grounder.Stats.firings;
            ground.Asp.Grounder.Stats.probes <-
              ground.Asp.Grounder.Stats.probes + g.Asp.Grounder.Stats.probes;
            ground.Asp.Grounder.Stats.fresh_rules <-
              ground.Asp.Grounder.Stats.fresh_rules
              + g.Asp.Grounder.Stats.fresh_rules;
            ground.Asp.Grounder.Stats.reused_rules <-
              ground.Asp.Grounder.Stats.reused_rules
              + g.Asp.Grounder.Stats.reused_rules;
            ground.Asp.Grounder.Stats.wall_s <-
              ground.Asp.Grounder.Stats.wall_s +. g.Asp.Grounder.Stats.wall_s
          end)
    results;
  {
    results;
    jobs;
    wall_s = Unix.gettimeofday () -. t0;
    base_atoms = Job.base_atoms prepared;
    hits = !hits;
    disk_hits = !disk_hits;
    misses = Array.length results - !hits - !disk_hits;
    fresh;
    ground;
  }

let run ?oversubscribe ?jobs ?cache spec =
  let t0 = Unix.gettimeofday () in
  let prepared = Job.prepare spec in
  let report =
    run_prepared ?oversubscribe ?jobs ?cache prepared spec.Job.deltas
  in
  (* fold the preparation time into the report: run = prepare + sweep *)
  { report with wall_s = Unix.gettimeofday () -. t0 }

let hit_rate r =
  let n = Array.length r.results in
  if n = 0 then 0.0
  else float_of_int (r.hits + r.disk_hits) /. float_of_int n

let render ?(verbose = false) r =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "sweep: %d jobs on %d domain%s in %.3fs (base universe %d atoms)\n"
    (Array.length r.results) r.jobs
    (if r.jobs = 1 then "" else "s")
    r.wall_s r.base_atoms;
  p "cache: %d memory hits / %d disk hits / %d fresh solves (%.1f%% hit rate)\n"
    r.hits r.disk_hits r.misses
    (100.0 *. hit_rate r);
  p "fresh solver work: %s\n" (Asp.Solver.Stats.to_string r.fresh);
  p "fresh grounder work: %s\n" (Asp.Grounder.Stats.to_string r.ground);
  if verbose then
    Array.iter
      (fun (res : Job.result) ->
        p "  [%3d]%s %-28s %d model%s  %s\n" res.Job.index
          (match res.Job.source with
          | Cache.Memory -> "*"
          | Cache.Disk -> "+"
          | Cache.Fresh -> " ")
          (Delta.label res.Job.delta)
          (List.length res.Job.models)
          (if List.length res.Job.models = 1 then "" else "s")
          (Fingerprint.to_hex res.Job.fingerprint))
      r.results;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"jobs\": %d, \"deltas\": %d, \"wall_s\": %.6f, \"base_atoms\": %d,\n"
    r.jobs (Array.length r.results) r.wall_s r.base_atoms;
  p
    "  \"cache\": {\"hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
     \"hit_rate\": %.4f},\n"
    r.hits r.disk_hits r.misses (hit_rate r);
  p
    "  \"fresh\": {\"guesses\": %d, \"pruned\": %d, \"firings\": %d, \
     \"leaves\": %d, \"models\": %d, \"conflicts\": %d, \"learned\": %d, \
     \"restarts\": %d, \"backjumped\": %d, \"unfounded_checks\": %d, \
     \"unfounded_sets\": %d, \"wall_s\": %.6f},\n"
    r.fresh.Asp.Solver.Stats.guesses r.fresh.Asp.Solver.Stats.pruned
    r.fresh.Asp.Solver.Stats.firings r.fresh.Asp.Solver.Stats.leaves
    r.fresh.Asp.Solver.Stats.models r.fresh.Asp.Solver.Stats.conflicts
    r.fresh.Asp.Solver.Stats.learned r.fresh.Asp.Solver.Stats.restarts
    r.fresh.Asp.Solver.Stats.backjumped
    r.fresh.Asp.Solver.Stats.unfounded_checks
    r.fresh.Asp.Solver.Stats.unfounded_sets r.fresh.Asp.Solver.Stats.wall_s;
  p
    "  \"ground\": {\"passes\": %d, \"firings\": %d, \"probes\": %d, \
     \"fresh_rules\": %d, \"reused_rules\": %d, \"wall_s\": %.6f},\n"
    r.ground.Asp.Grounder.Stats.passes r.ground.Asp.Grounder.Stats.firings
    r.ground.Asp.Grounder.Stats.probes r.ground.Asp.Grounder.Stats.fresh_rules
    r.ground.Asp.Grounder.Stats.reused_rules r.ground.Asp.Grounder.Stats.wall_s;
  p "  \"results\": [\n";
  let n = Array.length r.results in
  Array.iteri
    (fun i (res : Job.result) ->
      p "    {\"label\": %S, \"fingerprint\": %S, \"models\": %d, \
         \"cached\": %b, \"source\": %S}%s\n"
        (Delta.label res.Job.delta)
        (Fingerprint.to_hex res.Job.fingerprint)
        (List.length res.Job.models)
        res.Job.cached
        (Cache.source_to_string res.Job.source)
        (if i = n - 1 then "" else ","))
    r.results;
  p "  ]\n}";
  Buffer.contents buf
