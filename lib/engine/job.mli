(** The job model of a sweep: one shared base program plus one {!Delta} per
    job, compiled to a per-job ASP increment.

    {!prepare} does the work that is paid once per sweep rather than once
    per job: fingerprint the base and {!Asp.Grounder.prepare} it, so that
    every job can (a) derive its own content address with
    {!Fingerprint.extend} over just the increment and (b) ground just its
    increment with {!Asp.Grounder.extend} against the shared prepared
    state, instead of re-grounding the whole base program. *)

type mode =
  | Enumerate of int option
      (** all stable models, up to the optional limit *)
  | Optimal  (** weak-constraint-optimal models only *)

type spec = {
  base : Asp.Program.t;  (** shared base, built and prepared once *)
  compile : Delta.t -> Asp.Program.t;  (** delta -> program increment *)
  deltas : Delta.t list;  (** one job per delta, in order *)
  mode : mode;
  max_guess : int option;  (** per-solve cap, default solver's *)
  max_atoms : int option;  (** grounder universe cap, default grounder's *)
  solver_config : Asp.Solver.Config.t option;
      (** per-solve {!Asp.Solver.Config}; [None] uses the default. Not
          part of the fingerprint — the config changes the work, never
          the models, so cached results stay valid across switches *)
}

val spec :
  ?mode:mode -> ?max_guess:int -> ?max_atoms:int ->
  ?solver_config:Asp.Solver.Config.t ->
  compile:(Delta.t -> Asp.Program.t) -> deltas:Delta.t list ->
  Asp.Program.t -> spec
(** [mode] defaults to [Enumerate None]. *)

type result = {
  index : int;  (** position of the delta in [spec.deltas] *)
  delta : Delta.t;
  fingerprint : Fingerprint.t;  (** of base + increment + mode *)
  models : Asp.Model.t list;
  stats : Asp.Solver.Stats.t;
      (** stats of the solve that produced [models]; for a cached result
          these are the original solve's stats, not new work *)
  gstats : Asp.Grounder.Stats.t;
      (** stats of the incremental grounding behind that solve — same
          caching caveat as [stats] *)
  cached : bool;  (** [source <> Fresh] *)
  source : Cache.source;
      (** where the answer came from: the in-memory cache, the persistent
          store behind it, or a fresh ground+solve *)
}

type prepared
(** A spec with the base fingerprinted and its grounding state prepared. *)

val prepare : spec -> prepared
(** Grounds the base once into a reusable {!Asp.Grounder.prepared}. Raises
    like {!Asp.Grounder.prepare} if the base itself is unsafe or
    overflows. *)

val prepared_spec : prepared -> spec
val base_atoms : prepared -> int
(** Size of the base atom universe (what each job's grounding extends). *)

val fingerprint : prepared -> Delta.t -> Fingerprint.t
(** Content address of the job: base extended with the compiled increment,
    mixed with the solve mode and caps. *)

val solve :
  prepared -> Delta.t ->
  Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t
(** Ground the increment with {!Asp.Grounder.extend} and solve. The
    prepared state is only read: safe to call from any domain. *)
