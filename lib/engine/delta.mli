(** Mutation deltas: the unit of what-if in a sweep.

    A delta names the candidate system mutations of one scenario — fault
    injections, technique/vulnerability activations and an active mitigation
    subset — plus optional raw ASP statements for anything the structured
    fields cannot express. The engine itself never interprets the fields:
    the sweep's [compile] function (see {!Job.spec}) turns a delta into the
    ASP program increment appended to the shared base, so the same delta
    list can drive the temporal water-tank encoding, a topology-propagation
    program, or any other backend. *)

type t = {
  label : string;  (** display label; [""] means derive from the content *)
  faults : string list;  (** injected fault / technique ids, sorted *)
  mitigations : string list;  (** active mitigation ids, sorted *)
  extra : string list;  (** raw ASP statements appended verbatim *)
}

val make :
  ?label:string -> ?mitigations:string list -> ?extra:string list ->
  string list -> t

val label : t -> string
(** The explicit label, or a ["{F2,F3}+{M1}"]-style one derived from the
    fault and mitigation sets. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val parse_line : string -> (t option, string) result
(** One line of a mutations file:
    [[LABEL:] FAULTS [/ MITIGATIONS] [! ASP statements]] — comma-separated
    id lists, [-] or an empty list for none, [#] starts a comment.
    [Ok None] for blank/comment-only lines. *)

val parse : string -> (t list, string) result
(** A whole mutations file; errors carry the 1-based line number. *)

val pp : Format.formatter -> t -> unit
