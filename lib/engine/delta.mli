(** Mutation deltas: the unit of what-if in a sweep.

    A delta names the candidate system mutations of one scenario — fault
    injections, technique/vulnerability activations and an active mitigation
    subset — plus optional raw ASP statements for anything the structured
    fields cannot express. The engine itself never interprets the fields:
    the sweep's [compile] function (see {!Job.spec}) turns a delta into the
    ASP program increment appended to the shared base, so the same delta
    list can drive the temporal water-tank encoding, a topology-propagation
    program, or any other backend. *)

type t = {
  label : string;  (** display label; [""] means derive from the content *)
  faults : string list;  (** injected fault / technique ids, sorted *)
  mitigations : string list;  (** active mitigation ids, sorted *)
  extra : string list;  (** raw ASP statements appended verbatim *)
}

val make :
  ?label:string -> ?mitigations:string list -> ?extra:string list ->
  string list -> t

val label : t -> string
(** The explicit label, or a ["{F2,F3}+{M1}"]-style one derived from the
    fault and mitigation sets. *)

val equal : t -> t -> bool
val compare : t -> t -> int

type error = { line : int; col : int; msg : string }
(** A positioned parse failure, in the spelling of the lint diagnostics:
    1-based [line], 1-based [col] against the raw source line (0 when the
    column is unknown). *)

val error_to_string : error -> string
(** ["line 3, col 12: ..."], or ["line 3: ..."] when the column is
    unknown — matches {!Lint.Diagnostic.pos_to_string}. *)

val parse_line : ?line:int -> string -> (t option, error) result
(** One line of a mutations file:
    [[LABEL:] FAULTS [/ MITIGATIONS] [! ASP statements]] — comma-separated
    id lists, [-] or an empty list for none, [#] starts a comment.
    [Ok None] for blank/comment-only lines. The [! ASP] tail is validated
    immediately: a syntax error there is reported against this line
    ([line] defaults to 1) rather than surfacing later, position-free,
    when the sweep compiles the delta. *)

val parse : string -> (t list, error) result
(** A whole mutations file; errors carry the 1-based line (and, where
    known, column) of the offending input. *)

val pp : Format.formatter -> t -> unit
