type mode = Enumerate of int option | Optimal

type spec = {
  base : Asp.Program.t;
  compile : Delta.t -> Asp.Program.t;
  deltas : Delta.t list;
  mode : mode;
  max_guess : int option;
  max_atoms : int option;
  solver_config : Asp.Solver.Config.t option;
      (* not fingerprinted: the config changes the work, never the models,
         so cached results stay valid across config switches *)
}

let spec ?(mode = Enumerate None) ?max_guess ?max_atoms ?solver_config ~compile
    ~deltas base =
  { base; compile; deltas; mode; max_guess; max_atoms; solver_config }

type result = {
  index : int;
  delta : Delta.t;
  fingerprint : Fingerprint.t;
  models : Asp.Model.t list;
  stats : Asp.Solver.Stats.t;
  gstats : Asp.Grounder.Stats.t;
  cached : bool;
  source : Cache.source;
}

type prepared = {
  p_spec : spec;
  p_base_fp : Fingerprint.t;
  p_mode_fp : Fingerprint.t;
  p_ground : Asp.Grounder.prepared;
}

let mode_fingerprint s =
  Fingerprint.ints
    [
      (match s.mode with
      | Enumerate None -> 0
      | Enumerate (Some l) -> 1 + l
      | Optimal -> -1);
      Option.value ~default:(-1) s.max_guess;
      Option.value ~default:(-1) s.max_atoms;
    ]

let prepare s =
  (* prepare runs on the calling domain, before any sweep fans out: safe
     to parallelize its fixpoint rounds. [solve] is not — it runs inside
     Pool workers during sweeps, where nested spawns would oversubscribe *)
  {
    p_spec = s;
    p_base_fp = Fingerprint.program s.base;
    p_mode_fp = mode_fingerprint s;
    p_ground =
      Asp.Grounder.prepare ?max_atoms:s.max_atoms ~par:(Pool.grounder_par ())
        s.base;
  }

let prepared_spec p = p.p_spec

let base_atoms p =
  Asp.Model.AtomSet.cardinal (Asp.Grounder.base_universe p.p_ground)

let fingerprint p delta =
  Fingerprint.combine
    (Fingerprint.extend p.p_base_fp (p.p_spec.compile delta))
    p.p_mode_fp

let solve p delta =
  let s = p.p_spec in
  let gstats = Asp.Grounder.Stats.create () in
  let ground = Asp.Grounder.extend ~stats:gstats p.p_ground (s.compile delta) in
  let models, stats =
    match s.mode with
    | Enumerate limit ->
        Asp.Solver.solve_with_stats ?limit ?max_guess:s.max_guess
          ?config:s.solver_config ground
    | Optimal ->
        Asp.Solver.solve_optimal_with_stats ?max_guess:s.max_guess
          ?config:s.solver_config ground
  in
  (models, stats, gstats)
