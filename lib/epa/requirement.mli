(** Safety requirements as LTLf formulas over the qualitative state (§VII:
    R1 "the water tank should not overflow", R2 "alert … in case of
    overflow"). *)

type t = {
  id : string;
  description : string;
  formula : Ltl.Formula.t;
}

val make : id:string -> description:string -> formula:string -> t
(** Parses the formula; raises [Invalid_argument] on a syntax error. *)

val of_formula : id:string -> description:string -> Ltl.Formula.t -> t

val atoms : t -> string list
(** The state atoms the requirement's formula mentions — its footprint on
    the trace vocabulary (what the lint coverage check compares against the
    compiled program). *)

type verdict = Satisfied | Violated of Ltl.Trace.t

val check : ?horizon:int -> Ltl.Ts.t -> t -> verdict
val violated : verdict -> bool
val pp : Format.formatter -> t -> unit
val pp_verdict : Format.formatter -> verdict -> unit
