type t = {
  id : string;
  description : string;
  formula : Ltl.Formula.t;
}

let make ~id ~description ~formula =
  match Ltl.Parser.parse formula with
  | f -> { id; description; formula = f }
  | exception Ltl.Parser.Error msg ->
      invalid_arg
        (Printf.sprintf "Requirement.make %s: bad formula %S: %s" id formula msg)

let of_formula ~id ~description formula = { id; description; formula }

let atoms r = Ltl.Formula.atoms r.formula

type verdict = Satisfied | Violated of Ltl.Trace.t

let check ?horizon ts r =
  match Ltl.Ts.check ?horizon ts r.formula with
  | Ltl.Ts.Holds -> Satisfied
  | Ltl.Ts.Counterexample tr -> Violated tr

let violated = function Satisfied -> false | Violated _ -> true

let pp ppf r =
  Format.fprintf ppf "%s: %s [%a]" r.id r.description Ltl.Formula.pp r.formula

let pp_verdict ppf = function
  | Satisfied -> Format.pp_print_string ppf "satisfied"
  | Violated tr -> Format.fprintf ppf "violated by %a" Ltl.Trace.pp tr
