module Term = Asp.Term
module Atom = Asp.Atom
module Lit = Asp.Lit
module Rule = Asp.Rule
module Program = Asp.Program

type dead_cause =
  | Undefined_pred of string * int
  | Underivable_pred of string * int
  | Empty_arg of { pred : string * int; arg : int; term : Term.t }
  | Disjoint_var of string
  | False_cmp of Lit.t
  | False_agg of Lit.t

let dead_cause_to_string = function
  | Undefined_pred (p, n) ->
      Printf.sprintf "predicate %s/%d is never defined" p n
  | Underivable_pred (p, n) ->
      Printf.sprintf "predicate %s/%d has no satisfiable defining rule" p n
  | Empty_arg { pred = p, n; arg; term } ->
      Printf.sprintf "argument %d of %s/%d never takes value %s" (arg + 1) p n
        (Term.to_string term)
  | Disjoint_var v ->
      Printf.sprintf "variable %s joins positions with disjoint domains" v
  | False_cmp l ->
      Printf.sprintf "comparison %s is always false under inferred domains"
        (Lit.to_string l)
  | False_agg l ->
      Printf.sprintf "aggregate %s can never hold" (Lit.to_string l)

type pred_info = {
  psig : string * int;
  doms : Domain.t array;
  card : float;
  fact_count : int;
  exact : bool;
  defined : bool;
  derivable : bool;
  consumed : bool;
}

type rule_info = {
  index : int;
  rule : Rule.t;
  env : (string * Domain.t) list;
  dead : dead_cause option;
  firings : float;
  cost : float;
  cmp_true : Lit.t list;
  false_aggs : Lit.t list;
  dead_elems : (Atom.t * dead_cause) list;
  live_elems : int;
}

type t = {
  prog : Program.t;
  infos : ((string * int) * pred_info) list;
  tbl : (string * int, pred_info) Hashtbl.t;
  rinfos : rule_info list;
  universe : int;
  total : float;
}

let program t = t.prog
let preds t = List.map snd t.infos
let find_pred t s = Hashtbl.find_opt t.tbl s
let rules t = t.rinfos
let const_universe t = t.universe
let total_cost t = t.total

(* ------------------------------------------------------------------ *)
(* Mutable per-predicate state during the fixpoint                     *)
(* ------------------------------------------------------------------ *)

type pstate = {
  mutable sdoms : Domain.t array;
  mutable sderivable : bool;
  mutable sdefined : bool;
  mutable sconsumed : bool;
  mutable sfacts : Atom.t list;  (* distinct ground fact heads, reversed *)
  mutable scount : float;
  mutable shas_rule : bool;  (* derived by at least one non-fact rule *)
}

module AtomSet = Set.Make (Atom)

let is_arith op = List.mem op Term.arith_ops

(* Abstract value of a term under a variable environment. *)
let rec eval_term_env env (t : Term.t) =
  match t.Term.node with
  | Term.Var v -> ( match Hashtbl.find_opt env v with Some d -> d | None -> Domain.top)
  | Term.Func (op, args) when is_arith op ->
      if Term.is_ground t then Domain.of_term t
      else Domain.arith op (List.map (eval_term_env env) args)
  | _ when Term.is_ground t -> Domain.of_term t
  | _ -> Domain.top

let flip_cmp = function
  | Lit.Lt -> Lit.Gt
  | Lit.Gt -> Lit.Lt
  | Lit.Le -> Lit.Ge
  | Lit.Ge -> Lit.Le
  | (Lit.Eq | Lit.Ne) as c -> c

(* ------------------------------------------------------------------ *)
(* Per-rule body environment                                           *)
(* ------------------------------------------------------------------ *)

(* Meet each variable with the producer domains of its positive-literal
   occurrences; detect undefined / underivable predicates and ground
   arguments outside their domain. Comparison narrowing happens in a
   second stage so that always-true/false verdicts are judged against the
   un-narrowed environment. *)
let atom_pass states env body set_dead =
  List.iter
    (fun lit ->
      match lit with
      | Lit.Pos a -> (
          let s = (a.Atom.pred, Atom.arity a) in
          match Hashtbl.find_opt states s with
          | None -> set_dead (Undefined_pred (fst s, snd s))
          | Some st ->
              if not st.sderivable then
                set_dead
                  (if st.sdefined then Underivable_pred (fst s, snd s)
                   else Undefined_pred (fst s, snd s))
              else
                List.iteri
                  (fun i (arg : Term.t) ->
                    let di = st.sdoms.(i) in
                    match arg.Term.node with
                    | Term.Var v ->
                        let cur =
                          match Hashtbl.find_opt env v with
                          | Some d -> d
                          | None -> Domain.top
                        in
                        let m = Domain.meet cur di in
                        Hashtbl.replace env v m;
                        if Domain.is_empty m && not (Domain.is_empty cur)
                           && not (Domain.is_empty di)
                        then set_dead (Disjoint_var v)
                        else if Domain.is_empty di then
                          set_dead (Empty_arg { pred = s; arg = i; term = arg })
                    | _ when Term.is_ground arg ->
                        if Domain.is_empty (Domain.meet (Domain.of_term arg) di)
                        then
                          set_dead (Empty_arg { pred = s; arg = i; term = arg })
                    | _ -> ())
                  a.Atom.args)
      | Lit.Neg _ | Lit.Cmp _ | Lit.Count _ -> ())
    body

(* Comparison-driven narrowing; iterated a few times so short chains
   (X < Y, Y < Z) propagate. *)
let cmp_pass env body set_dead =
  for _ = 1 to 3 do
    List.iter
      (fun lit ->
        match lit with
        | Lit.Cmp (t1, op, t2) ->
            let d1 = eval_term_env env t1 and d2 = eval_term_env env t2 in
            (match Domain.cmp op d1 d2 with
            | Some false -> set_dead (False_cmp lit)
            | _ -> ());
            let narrow v op other =
              let cur =
                match Hashtbl.find_opt env v with
                | Some d -> d
                | None -> Domain.top
              in
              let r = Domain.restrict op cur other in
              Hashtbl.replace env v r;
              if Domain.is_empty r && not (Domain.is_empty cur) then
                set_dead (False_cmp lit)
            in
            (match t1.Term.node with
            | Term.Var v -> narrow v op (eval_term_env env t2)
            | _ -> ());
            (match t2.Term.node with
            | Term.Var v -> narrow v (flip_cmp op) (eval_term_env env t1)
            | _ -> ())
        | _ -> ())
      body
  done

(* Aggregate satisfiability: a #count over a tuple space with a provably
   bounded number of distinct instantiations cannot exceed that bound, and
   can always be 0 (the condition may hold nowhere). *)
let agg_check states env lit =
  match lit with
  | Lit.Count { kind = Lit.Cardinality; terms; cond; op; bound } -> (
      match Term.eval_int bound with
      | None -> None
      | Some b -> (
          let cenv = Hashtbl.copy env in
          let cdead = ref None in
          let set_dead c = if !cdead = None then cdead := Some c in
          atom_pass states cenv cond set_dead;
          cmp_pass cenv cond set_dead;
          let space =
            if !cdead <> None then Some 0.0
            else
              List.fold_left
                (fun acc tm ->
                  match acc with
                  | None -> None
                  | Some p -> (
                      match Domain.card (eval_term_env cenv tm) with
                      | Some c -> Some (p *. float_of_int c)
                      | None -> None))
                (Some 1.0) terms
          in
          (* count ranges over [0, space]; decide op against that range *)
          let unsat =
            match (op, space) with
            | Lit.Lt, _ -> b <= 0
            | Lit.Le, _ -> b < 0
            | Lit.Gt, Some m -> float_of_int b >= m
            | Lit.Ge, Some m -> float_of_int b > m
            | Lit.Eq, Some m -> b < 0 || float_of_int b > m
            | Lit.Eq, None -> b < 0
            | Lit.Ne, Some m -> m = 0.0 && b = 0
            | (Lit.Gt | Lit.Ge | Lit.Ne), None -> false
          in
          if unsat then Some (False_agg lit) else None))
  | _ -> None

type renv = {
  renv_tbl : (string, Domain.t) Hashtbl.t;
  rdead : dead_cause option;
  rcmp_true : Lit.t list;
  rfalse_aggs : Lit.t list;
}

let body_env states body =
  let env = Hashtbl.create 8 in
  let dead = ref None in
  let set_dead c = if !dead = None then dead := Some c in
  atom_pass states env body set_dead;
  (* verdicts against the un-narrowed environment *)
  let cmp_true =
    if !dead <> None then []
    else
      List.filter
        (fun lit ->
          match lit with
          | Lit.Cmp (t1, op, t2) ->
              Domain.cmp op (eval_term_env env t1) (eval_term_env env t2)
              = Some true
          | _ -> false)
        body
  in
  cmp_pass env body set_dead;
  let false_aggs =
    if !dead <> None then []
    else
      List.filter_map
        (fun lit ->
          match agg_check states env lit with
          | Some (False_agg _) ->
              set_dead (False_agg lit);
              Some lit
          | _ -> None)
        body
  in
  { renv_tbl = env; rdead = !dead; rcmp_true = cmp_true; rfalse_aggs = false_aggs }

(* Extend a rule environment with a choice element's condition. *)
let elem_env states renv cond =
  let env = Hashtbl.copy renv.renv_tbl in
  let dead = ref None in
  let set_dead c = if !dead = None then dead := Some c in
  atom_pass states env cond set_dead;
  cmp_pass env cond set_dead;
  (env, !dead)

(* ------------------------------------------------------------------ *)
(* Domain fixpoint                                                     *)
(* ------------------------------------------------------------------ *)

let widen_after = 8

let propagate_head states changed ~widen env atom =
  let s = (atom.Atom.pred, Atom.arity atom) in
  match Hashtbl.find_opt states s with
  | None -> ()
  | Some st ->
      if not st.sderivable then begin
        st.sderivable <- true;
        changed := true
      end;
      List.iteri
        (fun i arg ->
          let v = eval_term_env env arg in
          let old = st.sdoms.(i) in
          let nu = if widen then Domain.widen old v else Domain.join old v in
          if not (Domain.equal old nu) then begin
            st.sdoms.(i) <- nu;
            changed := true
          end)
        atom.Atom.args

let domain_fixpoint states rules max_rounds =
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < max_rounds do
    changed := false;
    incr round;
    let widen = !round > widen_after in
    List.iter
      (fun r ->
        match r with
        | Rule.Weak _ -> ()
        | Rule.Rule { head; body; _ } -> (
            let renv = body_env states body in
            if renv.rdead = None then
              match head with
              | Rule.Falsity -> ()
              | Rule.Head a ->
                  propagate_head states changed ~widen renv.renv_tbl a
              | Rule.Choice { elems; _ } ->
                  List.iter
                    (fun (e : Rule.choice_elem) ->
                      let env, edead = elem_env states renv e.Rule.cond in
                      if edead = None then
                        propagate_head states changed ~widen env e.Rule.atom)
                    elems))
      rules
  done

(* ------------------------------------------------------------------ *)
(* Cardinality fixpoint                                                *)
(* ------------------------------------------------------------------ *)

let count_cap = 1e18

let dom_card_f universe d =
  match Domain.card d with
  | Some n -> float_of_int (max n 1)
  | None -> float_of_int (max universe 1)

let env_card universe env v =
  match Hashtbl.find_opt env v with
  | Some d -> dom_card_f universe d
  | None -> float_of_int (max universe 1)

(* Estimated number of satisfying ground substitutions of a literal set:
   product of relation cardinalities, divided by the domain size of every
   shared variable once per extra occurrence (equi-join), times a 0.5
   selectivity per ordering comparison, capped by the substitution-space
   product of the variable domains. *)
let est_join states universe env lits =
  let positives =
    List.filter_map (function Lit.Pos a -> Some a | _ -> None) lits
  in
  if positives = [] then 1.0
  else
    let counts =
      List.map
        (fun a ->
          match Hashtbl.find_opt states (a.Atom.pred, Atom.arity a) with
          | Some st -> st.scount
          | None -> 0.0)
        positives
    in
    if List.exists (fun c -> c <= 0.0) counts then 0.0
    else begin
      let rows = ref (List.fold_left ( *. ) 1.0 counts) in
      (* shared-variable equi-join correction *)
      let occ = Hashtbl.create 8 in
      List.iter
        (fun a ->
          List.iter
            (fun v ->
              Hashtbl.replace occ v
                (1 + Option.value ~default:0 (Hashtbl.find_opt occ v)))
            (Atom.vars a))
        positives;
      Hashtbl.iter
        (fun v o ->
          if o > 1 then
            rows :=
              !rows /. (env_card universe env v ** float_of_int (o - 1)))
        occ;
      (* comparison selectivity: an ordering between two variable terms
         keeps ~half the pairs; an equality pins one side down to the
         other (functional dependency), keeping ~1/|dom| of them.
         Ground-side comparisons are already folded into the variable
         domains, so only variable-vs-variable forms count here. *)
      List.iter
        (fun lit ->
          match lit with
          | Lit.Cmp (t1, op, t2)
            when Term.vars t1 <> [] && Term.vars t2 <> [] -> (
              match op with
              | Lit.Lt | Lit.Le | Lit.Gt | Lit.Ge -> rows := !rows *. 0.5
              | Lit.Eq ->
                  let side (t : Term.t) =
                    match t.Term.node with
                    | Term.Var v -> Some (env_card universe env v)
                    | _ -> None
                  in
                  (match (side t1, side t2) with
                  | Some a, Some b -> rows := !rows /. Float.max a b
                  | Some c, None | None, Some c -> rows := !rows /. c
                  | None, None -> ())
              | Lit.Ne -> ())
          | _ -> ())
        lits;
      (* substitution-space cap *)
      let cap =
        Hashtbl.fold
          (fun v _ acc -> Float.min count_cap (acc *. env_card universe env v))
          occ 1.0
      in
      Float.min (Float.min !rows cap) count_cap
    end

let pred_space universe st =
  Array.fold_left
    (fun acc d -> Float.min count_cap (acc *. dom_card_f universe d))
    1.0 st.sdoms

let count_fixpoint states universe rules max_rounds =
  (* precompute the live body environments once; counts iterate over them *)
  let prepared =
    List.filter_map
      (fun r ->
        match r with
        | Rule.Weak _ -> None
        | Rule.Rule { head; body; _ } -> (
            let renv = body_env states body in
            if renv.rdead <> None then None
            else
              match head with
              | Rule.Falsity -> None
              | Rule.Head a when body = [] && Atom.is_ground a ->
                  None (* ground fact: already in the exact base count *)
              | Rule.Head a -> Some (renv, body, [ (a, body) ])
              | Rule.Choice { elems; _ } ->
                  let live =
                    List.filter_map
                      (fun (e : Rule.choice_elem) ->
                        let _, edead = elem_env states renv e.Rule.cond in
                        if edead = None then
                          Some (e.Rule.atom, body @ e.Rule.cond)
                        else None)
                      elems
                  in
                  Some (renv, body, live)))
      rules
  in
  let rounds = max 32 max_rounds in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ && !round < rounds do
    incr round;
    continue_ := false;
    (* accumulate fresh contributions per head predicate *)
    let contrib = Hashtbl.create 16 in
    List.iter
      (fun (renv, _body, heads) ->
        List.iter
          (fun (a, joint) ->
            let s = (a.Atom.pred, Atom.arity a) in
            let est = est_join states universe renv.renv_tbl joint in
            Hashtbl.replace contrib s
              (est +. Option.value ~default:0.0 (Hashtbl.find_opt contrib s)))
          heads)
      prepared;
    Hashtbl.iter
      (fun s st ->
        let base = float_of_int (List.length st.sfacts) in
        let extra = Option.value ~default:0.0 (Hashtbl.find_opt contrib s) in
        let nu = Float.min (pred_space universe st) (base +. extra) in
        let nu = Float.min nu count_cap in
        if nu > st.scount *. 1.005 +. 0.0001 then begin
          st.scount <- nu;
          continue_ := true
        end)
      states
  done

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec term_consts acc (t : Term.t) =
  match t.Term.node with
  | Term.Const _ | Term.Int _ | Term.Str _ -> Domain.TermSet.add t acc
  | Term.Var _ -> acc
  | Term.Func (_, args) -> List.fold_left term_consts acc args

let collect_universe rules =
  let acc = ref Domain.TermSet.empty in
  let atom (a : Atom.t) =
    acc := List.fold_left term_consts !acc a.Atom.args
  in
  let rec lit = function
    | Lit.Pos a | Lit.Neg a -> atom a
    | Lit.Cmp (t1, _, t2) ->
        acc := term_consts (term_consts !acc t1) t2
    | Lit.Count { terms; cond; bound; _ } ->
        acc := List.fold_left term_consts !acc (bound :: terms);
        List.iter lit cond
  in
  List.iter
    (fun r ->
      match r with
      | Rule.Rule { head; body; _ } ->
          (match head with
          | Rule.Head a -> atom a
          | Rule.Falsity -> ()
          | Rule.Choice { elems; _ } ->
              List.iter
                (fun (e : Rule.choice_elem) ->
                  atom e.Rule.atom;
                  List.iter lit e.Rule.cond)
                elems);
          List.iter lit body
      | Rule.Weak { body; weight; terms; _ } ->
          acc := List.fold_left term_consts !acc (weight :: terms);
          List.iter lit body)
    rules;
  max 1 (Domain.TermSet.cardinal !acc)

let mark_consumed states prog =
  let mark (s : string * int) =
    match Hashtbl.find_opt states s with
    | Some st -> st.sconsumed <- true
    | None -> ()
  in
  let rec lit = function
    | Lit.Pos a | Lit.Neg a -> mark (Atom.signature a)
    | Lit.Cmp _ -> ()
    | Lit.Count { cond; _ } -> List.iter lit cond
  in
  List.iter
    (fun r ->
      match r with
      | Rule.Rule { body; head; _ } ->
          List.iter lit body;
          (match head with
          | Rule.Choice { elems; _ } ->
              List.iter (fun (e : Rule.choice_elem) -> List.iter lit e.Rule.cond) elems
          | _ -> ())
      | Rule.Weak { body; _ } -> List.iter lit body)
    (Program.rules prog);
  match Program.shows prog with
  | [] -> Hashtbl.iter (fun _ st -> st.sconsumed <- true) states
  | shows -> List.iter mark shows

let analyze ?(max_rounds = 64) prog =
  let rules = Program.rules prog in
  let universe = collect_universe rules in
  let states : (string * int, pstate) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (p, n) ->
      Hashtbl.replace states (p, n)
        {
          sdoms = Array.make n Domain.bot;
          sderivable = false;
          sdefined = false;
          sconsumed = false;
          sfacts = [];
          scount = 0.0;
          shas_rule = false;
        })
    (Program.predicates prog);
  (* syntactic prepass: defined flags, exact fact sets *)
  let fact_sets : (string * int, AtomSet.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Rule.Weak _ -> ()
      | Rule.Rule { head; body; _ } ->
          let is_choice =
            match head with Rule.Choice _ -> true | _ -> false
          in
          let heads = Rule.head_atoms r in
          List.iter
            (fun a ->
              match Hashtbl.find_opt states (Atom.signature a) with
              | None -> ()
              | Some st ->
                  st.sdefined <- true;
                  if is_choice || body <> [] || not (Atom.is_ground a) then
                    st.shas_rule <- true)
            heads;
          if body = [] then
            match head with
            | Rule.Head a when Atom.is_ground a -> (
                match Atom.eval a with
                | a ->
                    let s = Atom.signature a in
                    let set =
                      Option.value ~default:AtomSet.empty
                        (Hashtbl.find_opt fact_sets s)
                    in
                    Hashtbl.replace fact_sets s (AtomSet.add a set)
                | exception Invalid_argument _ -> ())
            | _ -> ())
    rules;
  Hashtbl.iter
    (fun s set ->
      match Hashtbl.find_opt states s with
      | Some st -> st.sfacts <- AtomSet.elements set
      | None -> ())
    fact_sets;
  (* choice rules / non-ground heads also count as "has rule" for exactness;
     a pred is exact iff everything deriving it was a ground fact *)
  mark_consumed states prog;
  domain_fixpoint states rules max_rounds;
  count_fixpoint states universe rules max_rounds;
  (* final per-rule pass with the stabilised state *)
  let rinfos =
    List.mapi
      (fun index r ->
        let body = Rule.body r in
        let renv = body_env states body in
        let env_list =
          Hashtbl.fold (fun v d acc -> (v, d) :: acc) renv.renv_tbl []
          |> List.sort compare
        in
        let base = { index; rule = r; env = env_list; dead = renv.rdead;
                     firings = 0.0; cost = 0.0; cmp_true = renv.rcmp_true;
                     false_aggs = renv.rfalse_aggs; dead_elems = [];
                     live_elems = 0 } in
        if renv.rdead <> None then base
        else
          let firings = est_join states universe renv.renv_tbl body in
          match r with
          | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
              let dead_elems, live =
                List.fold_left
                  (fun (de, live) (e : Rule.choice_elem) ->
                    let _, edead = elem_env states renv e.Rule.cond in
                    match edead with
                    | Some c -> ((e.Rule.atom, c) :: de, live)
                    | None -> (de, e :: live))
                  ([], []) elems
              in
              let elem_cost =
                List.fold_left
                  (fun acc (e : Rule.choice_elem) ->
                    acc
                    +. est_join states universe renv.renv_tbl
                         (body @ e.Rule.cond))
                  0.0 live
              in
              {
                base with
                firings;
                cost = Float.min count_cap (firings +. elem_cost);
                dead_elems = List.rev dead_elems;
                live_elems = List.length live;
              }
          | _ -> { base with firings; cost = firings })
      rules
  in
  let infos =
    Hashtbl.fold
      (fun s st acc ->
        let info =
          {
            psig = s;
            doms = Array.copy st.sdoms;
            card = st.scount;
            fact_count = List.length st.sfacts;
            exact = not st.shas_rule;
            defined = st.sdefined;
            derivable = st.sderivable;
            consumed = st.sconsumed;
          }
        in
        (s, info) :: acc)
      states []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let tbl = Hashtbl.create 32 in
  List.iter (fun (s, i) -> Hashtbl.replace tbl s i) infos;
  let total =
    List.fold_left (fun acc ri -> acc +. ri.cost) 0.0 rinfos
  in
  { prog; infos; tbl; rinfos; universe; total }

(* ------------------------------------------------------------------ *)
(* Public term evaluation                                              *)
(* ------------------------------------------------------------------ *)

let eval_term _t env term =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (v, d) -> Hashtbl.replace tbl v d) env;
  eval_term_env tbl term

(* ------------------------------------------------------------------ *)
(* Selectivity-based join ordering                                     *)
(* ------------------------------------------------------------------ *)

(* The grounder enumerates candidates for each positive literal in body
   order, probing its discrimination indexes on every argument position
   that is already ground — a composite key over all bound positions when
   more than one is, a single-position bucket otherwise. The cost model
   mirrors that: scanning a literal costs its relation size divided by
   the product of the bound columns' distinct-value counts (capped at the
   relation size — an index cannot return less than the matching rows);
   surviving rows multiply by the estimated matches. Identity order wins
   ties — we only deviate on a >10% predicted improvement, so well-written
   programs keep their order (and their grounding output trivially
   unchanged). *)

let max_order_lits = 6

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

module StrSet = Set.Make (String)

let join_order t rule =
  let body = Rule.body rule in
  let positives =
    List.filter_map (function Lit.Pos a -> Some a | _ -> None) body
  in
  let k = List.length positives in
  if k < 2 || k > max_order_lits then None
  else begin
    let env = Hashtbl.create 8 in
    let ri = List.find_opt (fun ri -> ri.rule == rule) t.rinfos in
    (match ri with
    | Some ri -> List.iter (fun (v, d) -> Hashtbl.replace env v d) ri.env
    | None ->
        (* rule not from the analysed program: rebuild a local env from
           predicate domains *)
        List.iter
          (fun (a : Atom.t) ->
            match find_pred t (Atom.signature a) with
            | None -> ()
            | Some info ->
                List.iteri
                  (fun i (arg : Term.t) ->
                    match arg.Term.node with
                    | Term.Var v ->
                        let cur =
                          Option.value ~default:Domain.top
                            (Hashtbl.find_opt env v)
                        in
                        Hashtbl.replace env v (Domain.meet cur info.doms.(i))
                    | _ -> ())
                  a.Atom.args)
          positives);
    (* Reordering must not move a [Term.eval] failure (symbolic operand in
       arithmetic, division by zero): under a different prefix the failing
       substitution may never be enumerated, diverging from the in-order
       grounding by exception instead of by output. Only reorder when every
       arithmetic subterm of the positive patterns and comparisons provably
       evaluates: variables drawn from all-integer producer positions
       (joined over every occurrence — the narrowed [env] is not enough,
       since narrowing happens after the candidate is tried), integer
       leaves, and no division/modulo at all. *)
    let prod = Hashtbl.create 8 in
    List.iter
      (fun (a : Atom.t) ->
        let dom i =
          match find_pred t (Atom.signature a) with
          | Some info when Array.length info.doms > i -> info.doms.(i)
          | _ -> Domain.top
        in
        List.iteri
          (fun i (arg : Term.t) ->
            match arg.Term.node with
            | Term.Var v ->
                let cur =
                  Option.value ~default:Domain.bot (Hashtbl.find_opt prod v)
                in
                Hashtbl.replace prod v (Domain.join cur (dom i))
            | _ -> ())
          a.Atom.args)
      positives;
    let var_ints v =
      match Hashtbl.find_opt prod v with
      | Some d -> Domain.all_ints d
      | None -> false
    in
    let rec term_safe ~in_arith (t : Term.t) =
      match t.Term.node with
      | Term.Int _ -> true
      | Term.Const _ | Term.Str _ -> not in_arith
      | Term.Var v -> (not in_arith) || var_ints v
      | Term.Func (("/" | "mod"), _) -> false
      | Term.Func (f, args) ->
          let arith = List.mem f Term.arith_ops in
          ((not in_arith) || arith)
          && List.for_all (term_safe ~in_arith:(in_arith || arith)) args
    in
    let eval_safe =
      List.for_all
        (fun (a : Atom.t) -> List.for_all (term_safe ~in_arith:false) a.Atom.args)
        positives
      && List.for_all
           (function
             | Lit.Cmp (l, _, r) ->
                 term_safe ~in_arith:false l && term_safe ~in_arith:false r
             | _ -> true)
           body
    in
    let count (a : Atom.t) =
      match find_pred t (Atom.signature a) with
      | Some info -> Float.max 1.0 info.card
      | None -> 1.0
    in
    (* combined selectivity of the index probe: product of the
       distinct-value counts of every argument position that will be
       ground at enumeration time (the composite key the grounder builds).
       1.0 when nothing is bound — a full scan. *)
    let probe_selectivity (a : Atom.t) in_bound =
      match find_pred t (Atom.signature a) with
      | None -> 1.0
      | Some info ->
          List.fold_left
            (fun (i, sel) (arg : Term.t) ->
              let arg_bound =
                Term.is_ground arg
                || List.for_all (fun v -> StrSet.mem v in_bound) (Term.vars arg)
              in
              if arg_bound && Array.length info.doms > i then
                (i + 1, sel *. Float.max 1.0 (dom_card_f t.universe info.doms.(i)))
              else (i + 1, sel))
            (0, 1.0) a.Atom.args
          |> snd
    in
    (* distinct values a variable can take in its column(s) of [a] — the
       V(R, y) of the textbook join-size estimate *)
    let column_card (a : Atom.t) v =
      match find_pred t (Atom.signature a) with
      | Some info ->
          List.fold_left
            (fun (i, acc) (arg : Term.t) ->
              match arg.Term.node with
              | Term.Var v' when v' = v && Array.length info.doms > i ->
                  (i + 1, Float.min acc (dom_card_f t.universe info.doms.(i)))
              | _ -> (i + 1, acc))
            (0, infinity) a.Atom.args
          |> fun (_, acc) -> if acc = infinity then 1.0 else Float.max 1.0 acc
      | None -> 1.0
    in
    let indexed = Array.of_list positives in
    let cost_of perm =
      let bound = ref StrSet.empty in
      (* per bound variable, the distinct-value count of the join column
         so far (shrinks as more atoms constrain it) *)
      let vcard = Hashtbl.create 8 in
      let rows = ref 1.0 in
      let total = ref 0.0 in
      List.iter
        (fun idx ->
          let a = indexed.(idx) in
          let cnt = count a in
          let vars = Atom.vars a in
          let scan =
            Float.max 1.0 (cnt /. probe_selectivity a !bound)
          in
          total := !total +. (!rows *. scan);
          let matches =
            List.fold_left
              (fun m v ->
                let col = column_card a v in
                if StrSet.mem v !bound then begin
                  let prev =
                    Option.value ~default:1.0 (Hashtbl.find_opt vcard v)
                  in
                  (* |R ⋈ S| ≈ |R|·|S| / max(V(R,v), V(S,v)) *)
                  let m = m /. Float.max prev col in
                  Hashtbl.replace vcard v (Float.max 1.0 (Float.min prev col));
                  m
                end
                else begin
                  Hashtbl.replace vcard v col;
                  m
                end)
              cnt vars
          in
          rows := Float.max 1e-3 (!rows *. matches);
          List.iter (fun v -> bound := StrSet.add v !bound) vars)
        perm;
      (!total, !rows)
    in
    let identity = List.init k (fun i -> i) in
    let id_cost, id_rows = cost_of identity in
    let best, best_cost =
      List.fold_left
        (fun (bp, bc) p ->
          let c, _ = cost_of p in
          if c < bc then (p, c) else (bp, bc))
        (identity, id_cost)
        (permutations identity)
    in
    (* permuted enumeration is not free: the grounder re-sorts each rule's
       matches into canonical order, re-evaluating every positive atom per
       match to build the sort key. That overhead is proportional to the
       match count (order-independent) times the body size, so a
       permutation is only adopted when its predicted probe savings also
       clear that bill — small rules keep program order even when a
       cheaper join order exists on paper. *)
    let sort_overhead = 2.0 *. id_rows *. float_of_int k in
    if
      eval_safe && best <> identity
      && id_cost >= 16.0 (* below this everything is estimation noise *)
      && best_cost +. sort_overhead < 0.9 *. id_cost
    then Some (Array.of_list best)
    else None
  end
