(** Human-readable rendering of an {!Infer} analysis: the inferred
    signature table, per-rule cost estimates and a program summary —
    what [cpsrisk analyze] and [cpsrisk lint --semantic] print. *)

val signature_table : Infer.t -> string
(** One line per predicate: signature, cardinality estimate ([=n] exact,
    [~n] estimated), status flags and per-argument abstract domains. *)

val rule_costs : Infer.t -> string
(** One line per rule: index, estimated firings and instantiation cost,
    dead verdict, source text. *)

val summary : Infer.t -> string
(** Counts, total estimated grounding cost, stratification (strata count
    or the negative-cycle predicates) and tightness (positive-cycle
    predicates when not tight). *)

val render : Infer.t -> string
(** [summary] + [signature_table] + [rule_costs], section-headed. *)
