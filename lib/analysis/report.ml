module Deps = Asp.Deps
module Rule = Asp.Rule

let fnum x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3g" x

let sig_str (p, n) = Printf.sprintf "%s/%d" p n

let signature_table t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %10s  %-10s %s\n" "predicate" "card" "status"
       "argument domains");
  List.iter
    (fun (p : Infer.pred_info) ->
      let card =
        (if p.Infer.exact then "=" else "~") ^ fnum p.Infer.card
      in
      let status =
        if not p.Infer.derivable then "dead"
        else if not p.Infer.consumed then "unused"
        else if not p.Infer.defined then "input"
        else "ok"
      in
      let doms =
        String.concat " "
          (List.mapi
             (fun i d -> Printf.sprintf "%d:%s" (i + 1) (Domain.to_string d))
             (Array.to_list p.Infer.doms))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-24s %10s  %-10s %s\n" (sig_str p.Infer.psig) card
           status doms))
    (Infer.preds t);
  Buffer.contents buf

let rule_costs t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%4s %10s %10s  %s\n" "#" "firings" "cost" "rule");
  List.iter
    (fun (ri : Infer.rule_info) ->
      let note =
        match ri.Infer.dead with
        | Some c -> "  [dead: " ^ Infer.dead_cause_to_string c ^ "]"
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%4d %10s %10s  %s%s\n" ri.Infer.index
           (fnum ri.Infer.firings) (fnum ri.Infer.cost)
           (Rule.to_string ri.Infer.rule) note))
    (Infer.rules t);
  Buffer.contents buf

let summary t =
  let buf = Buffer.create 256 in
  let preds = Infer.preds t in
  let rules = Infer.rules t in
  let dead = List.filter (fun ri -> ri.Infer.dead <> None) rules in
  let underivable =
    List.filter (fun (p : Infer.pred_info) -> not p.Infer.derivable) preds
  in
  let deps = Deps.of_program (Infer.program t) in
  Buffer.add_string buf
    (Printf.sprintf "predicates: %d (%d underivable), rules: %d (%d dead)\n"
       (List.length preds) (List.length underivable) (List.length rules)
       (List.length dead));
  Buffer.add_string buf
    (Printf.sprintf "constant universe: %d, total estimated grounding cost: %s\n"
       (Infer.const_universe t)
       (fnum (Infer.total_cost t)));
  (match Deps.strata deps with
  | Some strata ->
      let n =
        List.fold_left (fun acc (_, s) -> max acc (s + 1)) 0 strata
      in
      Buffer.add_string buf (Printf.sprintf "stratified: yes (%d strata)\n" n)
  | None ->
      let cyc =
        List.concat (Deps.negative_cycle_sccs deps) |> List.map sig_str
      in
      Buffer.add_string buf
        (Printf.sprintf "stratified: no (negation cycle through %s)\n"
           (String.concat ", " cyc)));
  (match Deps.positive_cycle_sccs deps with
  | [] -> Buffer.add_string buf "tight: yes\n"
  | sccs ->
      let cyc = List.concat sccs |> List.map sig_str in
      Buffer.add_string buf
        (Printf.sprintf "tight: no (positive cycle through %s)\n"
           (String.concat ", " cyc)));
  Buffer.contents buf

let render t =
  String.concat "\n"
    [
      summary t;
      "inferred signatures:\n" ^ signature_table t;
      "rule estimates:\n" ^ rule_costs t;
    ]
