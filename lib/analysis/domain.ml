module Term = Asp.Term
module TermSet = Set.Make (Asp.Term)

type bound = NegInf | Fin of int | PosInf

type t =
  | Bot
  | Consts of TermSet.t
  | Interval of bound * bound
  | Top

(* finite-set cap: beyond this a set collapses to its integer hull (all
   ints) or Top — keeps the lattice chains short without losing the
   precision that matters (catalog constants, small integer spaces) *)
let max_consts = 512

(* pointwise-arithmetic cap: |a| * |b| beyond this falls back to interval
   arithmetic over the hulls *)
let max_pointwise = 1024

let bot = Bot
let top = Top

(* ------------------------------------------------------------------ *)
(* Bound helpers                                                       *)
(* ------------------------------------------------------------------ *)

let bound_le a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | _, NegInf | PosInf, _ -> false
  | Fin x, Fin y -> x <= y

let bound_min a b = if bound_le a b then a else b
let bound_max a b = if bound_le a b then b else a

let bound_succ = function Fin n -> Fin (n + 1) | b -> b
let bound_pred = function Fin n -> Fin (n - 1) | b -> b

let bound_add a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (x + y)

let bound_neg = function NegInf -> PosInf | PosInf -> NegInf | Fin n -> Fin (-n)

let bound_to_string = function
  | NegInf -> "-inf"
  | PosInf -> "+inf"
  | Fin n -> string_of_int n

(* ------------------------------------------------------------------ *)
(* Construction and views                                              *)
(* ------------------------------------------------------------------ *)

let interval lo hi = if bound_le lo hi then Interval (lo, hi) else Bot

let of_term t =
  (* Term.eval raises on arithmetic over non-integers or division by
     zero; such a term grounds nothing, so Bot is the precise answer *)
  if not (Term.is_ground t) then Top
  else
    match Term.eval t with
    | t' -> Consts (TermSet.singleton t')
    | exception Invalid_argument _ -> Bot

let is_int (t : Term.t) =
  match t.Term.node with Term.Int _ -> true | _ -> false

let set_int_hull s =
  TermSet.fold
    (fun (t : Term.t) acc ->
      match (t.Term.node, acc) with
      | Term.Int n, None -> Some (n, n)
      | Term.Int n, Some (lo, hi) -> Some (min lo n, max hi n)
      | _ -> acc)
    s None

let all_ints = function
  | Bot | Interval _ -> true
  | Consts s -> TermSet.for_all is_int s
  | Top -> false

let has_non_int = function
  | Consts s -> TermSet.exists (fun t -> not (is_int t)) s
  | Bot | Interval _ | Top -> false

let int_bounds = function
  | Interval (lo, hi) -> Some (lo, hi)
  | Consts s when TermSet.for_all is_int s -> (
      match set_int_hull s with
      | Some (lo, hi) -> Some (Fin lo, Fin hi)
      | None -> None)
  | Bot | Consts _ | Top -> None

let is_empty = function
  | Bot -> true
  | Consts s -> TermSet.is_empty s
  | Interval _ | Top -> false

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Consts x, Consts y -> TermSet.equal x y
  | Interval (a1, a2), Interval (b1, b2) -> a1 = b1 && a2 = b2
  | _ -> false

let mem t d =
  match d with
  | Bot -> false
  | Top -> true
  | Consts s -> TermSet.mem t s
  | Interval (lo, hi) -> (
      match t.Term.node with
      | Term.Int n -> bound_le lo (Fin n) && bound_le (Fin n) hi
      | _ -> false)

let card = function
  | Bot -> Some 0
  | Consts s -> Some (TermSet.cardinal s)
  | Interval (Fin lo, Fin hi) -> Some (hi - lo + 1)
  | Interval _ | Top -> None

let singleton = function
  | Consts s when TermSet.cardinal s = 1 -> Some (TermSet.choose s)
  | Interval (Fin lo, Fin hi) when lo = hi -> Some (Term.int lo)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lattice operations                                                  *)
(* ------------------------------------------------------------------ *)

(* collapse an oversized finite set *)
let normalize_set s =
  if TermSet.cardinal s <= max_consts then Consts s
  else if TermSet.for_all is_int s then
    match set_int_hull s with
    | Some (lo, hi) -> Interval (Fin lo, Fin hi)
    | None -> Bot
  else Top

let set_to_interval s =
  if TermSet.for_all is_int s then
    match set_int_hull s with
    | Some (lo, hi) -> Some (Fin lo, Fin hi)
    | None -> None
  else None

let join a b =
  match (a, b) with
  | Bot, d | d, Bot -> d
  | Top, _ | _, Top -> Top
  | Consts x, Consts y -> normalize_set (TermSet.union x y)
  | (Consts s, Interval (lo, hi) | Interval (lo, hi), Consts s) -> (
      match set_to_interval s with
      | Some (slo, shi) -> Interval (bound_min lo slo, bound_max hi shi)
      | None -> Top)
  | Interval (a1, a2), Interval (b1, b2) ->
      Interval (bound_min a1 b1, bound_max a2 b2)

let widen old next =
  match (old, join old next) with
  | Interval (olo, ohi), Interval (jlo, jhi) ->
      let lo = if bound_le olo jlo then jlo else NegInf in
      let hi = if bound_le jhi ohi then jhi else PosInf in
      Interval (lo, hi)
  | _, joined -> joined

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, d | d, Top -> d
  | Consts x, Consts y ->
      let i = TermSet.inter x y in
      if TermSet.is_empty i then Bot else Consts i
  | (Consts s, Interval (lo, hi) | Interval (lo, hi), Consts s) ->
      let f =
        TermSet.filter
          (fun (t : Term.t) ->
            match t.Term.node with
            | Term.Int n -> bound_le lo (Fin n) && bound_le (Fin n) hi
            | _ -> false)
          s
      in
      if TermSet.is_empty f then Bot else Consts f
  | Interval (a1, a2), Interval (b1, b2) ->
      interval (bound_max a1 b1) (bound_min a2 b2)

(* ------------------------------------------------------------------ *)
(* Abstract arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let any_int = Interval (NegInf, PosInf)

(* hull of |x| over [lo, hi] *)
let abs_hull lo hi =
  match (lo, hi) with
  | Fin l, Fin h ->
      if l >= 0 then (Fin l, Fin h)
      else if h <= 0 then (Fin (-h), Fin (-l))
      else (Fin 0, Fin (max (-l) h))
  | _ ->
      if bound_le (Fin 0) lo then (lo, hi)
      else if bound_le hi (Fin 0) then (bound_neg hi, bound_neg lo)
      else (Fin 0, PosInf)

let mul_hull (a1, a2) (b1, b2) =
  let candidates =
    List.concat_map
      (fun x ->
        List.map
          (fun y ->
            match (x, y) with
            | Fin a, Fin b -> Fin (a * b)
            | (NegInf | PosInf), Fin 0 | Fin 0, (NegInf | PosInf) -> Fin 0
            | NegInf, NegInf | PosInf, PosInf -> PosInf
            | NegInf, PosInf | PosInf, NegInf -> NegInf
            | (NegInf as i), Fin n | Fin n, (NegInf as i) ->
                if n > 0 then i else PosInf
            | (PosInf as i), Fin n | Fin n, (PosInf as i) ->
                if n > 0 then i else NegInf)
          [ b1; b2 ])
      [ a1; a2 ]
  in
  ( List.fold_left bound_min PosInf candidates,
    List.fold_left bound_max NegInf candidates )

let interval_arith op (a1, a2) (b1, b2) =
  match op with
  | "+" -> interval (bound_add a1 b1) (bound_add a2 b2)
  | "-" -> interval (bound_add a1 (bound_neg b2)) (bound_add a2 (bound_neg b1))
  | "*" ->
      let lo, hi = mul_hull (a1, a2) (b1, b2) in
      interval lo hi
  | "min" -> interval (bound_min a1 b1) (bound_min a2 b2)
  | "max" -> interval (bound_max a1 b1) (bound_max a2 b2)
  | "/" | "mod" -> (
      (* |a / b| <= |a| and |a mod b| < |b| <= ... bound both by the
         dividend's magnitude hull (sound for OCaml's truncated division
         and dividend-signed remainder; division by zero never produces
         an instance) *)
      let _, ahi = abs_hull a1 a2 in
      match ahi with
      | Fin m -> interval (Fin (-m)) (Fin m)
      | _ -> any_int)
  | _ -> Top

let rec arith op args =
  match (op, args) with
  | _, [] -> Top
  | "abs", [ a ] -> (
      match int_bounds a with
      | Some (lo, hi) ->
          let lo', hi' = abs_hull lo hi in
          interval lo' hi'
      | None -> if is_empty a then Bot else if all_ints a then any_int else Top)
  | "-", [ a ] -> arith "-" [ Consts (TermSet.singleton (Term.int 0)); a ]
  | op, [ a; b ] -> (
      if is_empty a || is_empty b then Bot
      else
        let pointwise =
          match (a, b) with
          | Consts x, Consts y
            when TermSet.cardinal x * TermSet.cardinal y <= max_pointwise
                 && TermSet.for_all is_int x
                 && TermSet.for_all is_int y -> (
              let acc = ref TermSet.empty in
              let ok = ref true in
              TermSet.iter
                (fun tx ->
                  TermSet.iter
                    (fun ty ->
                      match Term.eval (Term.func op [ tx; ty ]) with
                      | t -> acc := TermSet.add t !acc
                      | exception Invalid_argument _ ->
                          (* division by zero: that pair grounds nothing *)
                          if op <> "/" && op <> "mod" then ok := false)
                    y)
                x;
              if !ok then Some (normalize_set !acc) else None)
          | _ -> None
        in
        match pointwise with
        | Some d -> d
        | None -> (
            match (int_bounds a, int_bounds b) with
            | Some ia, Some ib -> interval_arith op ia ib
            | _ ->
                (* a non-integer operand can never evaluate; Top keeps the
                   over-approximation (the clash is L206's business) *)
                Top))
  | _ -> Top

(* ------------------------------------------------------------------ *)
(* Abstract comparison                                                 *)
(* ------------------------------------------------------------------ *)

let cmp op a b =
  if is_empty a || is_empty b then None
  else
    let int_decided () =
      match (int_bounds a, int_bounds b) with
      | Some (alo, ahi), Some (blo, bhi) -> (
          let lt_all = bound_le (bound_succ ahi) blo && ahi <> PosInf in
          let le_all = bound_le ahi blo in
          let gt_all = bound_le (bound_succ bhi) alo && bhi <> PosInf in
          let ge_all = bound_le bhi alo in
          match op with
          | Asp.Lit.Lt ->
              if lt_all then Some true else if ge_all then Some false else None
          | Asp.Lit.Le ->
              if le_all then Some true else if gt_all then Some false else None
          | Asp.Lit.Gt ->
              if gt_all then Some true else if le_all then Some false else None
          | Asp.Lit.Ge ->
              if ge_all then Some true else if lt_all then Some false else None
          | Asp.Lit.Eq | Asp.Lit.Ne -> None)
      | _ -> None
    in
    match op with
    | Asp.Lit.Eq | Asp.Lit.Ne -> (
        let value =
          match (singleton a, singleton b) with
          | Some x, Some y -> Some (Term.equal x y)
          | _ -> if is_empty (meet a b) then Some false else None
        in
        match (op, value) with
        | Asp.Lit.Eq, v -> v
        | Asp.Lit.Ne, Some v -> Some (not v)
        | _ -> None)
    | _ -> int_decided ()

let restrict op d bound_dom =
  if is_empty bound_dom then Bot
  else
    match op with
    | Asp.Lit.Eq -> meet d bound_dom
    | Asp.Lit.Ne -> (
        match (singleton bound_dom, d) with
        | Some t, Consts s ->
            let s' = TermSet.remove t s in
            if TermSet.is_empty s' then Bot else Consts s'
        | _ -> d)
    | Asp.Lit.Lt | Asp.Lit.Le | Asp.Lit.Gt | Asp.Lit.Ge -> (
        match int_bounds bound_dom with
        | None -> d
        | Some (blo, bhi) ->
            let window =
              match op with
              | Asp.Lit.Lt -> interval NegInf (bound_pred bhi)
              | Asp.Lit.Le -> interval NegInf bhi
              | Asp.Lit.Gt -> interval (bound_succ blo) PosInf
              | Asp.Lit.Ge -> interval blo PosInf
              | _ -> Top
            in
            (* only integers can satisfy an order comparison against an
               integer domain when [d] itself is integral; a mixed [d]
               keeps its non-integer members (term order still applies) *)
            if all_ints d then meet d window else d)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_string = function
  | Bot -> "empty"
  | Top -> "any"
  | Interval (lo, hi) ->
      Printf.sprintf "[%s..%s]" (bound_to_string lo) (bound_to_string hi)
  | Consts s ->
      let elems = TermSet.elements s in
      let n = List.length elems in
      if n <= 6 then
        Printf.sprintf "{%s}" (String.concat "," (List.map Term.to_string elems))
      else
        Printf.sprintf "{%s,… %d values}"
          (String.concat ","
             (List.map Term.to_string (List.filteri (fun i _ -> i < 4) elems)))
          n

let pp ppf d = Format.pp_print_string ppf (to_string d)
