(** Bottom-up fixpoint abstract interpretation over {!Asp.Program}.

    One [analyze] pass computes, for every predicate signature, a
    per-argument {!Domain.t} (sound over-approximation of the ground terms
    that can appear at that position) together with a cardinality estimate
    of its derivable ground instances, and, for every rule, a satisfiable /
    dead verdict plus an estimated grounding cost. The domains drive the
    L2xx semantic lint family ({!Semlint}); the cardinalities drive the
    grounding-cost report and the selectivity-based join ordering consumed
    by {!Asp.Grounder}.

    Soundness contract: domains and derivability only over-approximate, so
    [dead <> None] and every {!dead_cause} are proofs; cardinalities and
    costs are estimates (no guarantee beyond best effort — tests pin them
    to within an order of magnitude on the benchmark workloads). *)

(** Why a rule body (or choice element) can provably never be satisfied. *)
type dead_cause =
  | Undefined_pred of string * int
      (** positive literal over a predicate that appears in no head *)
  | Underivable_pred of string * int
      (** predicate has defining rules, but none with a satisfiable body *)
  | Empty_arg of { pred : string * int; arg : int; term : Asp.Term.t }
      (** a ground argument outside the producer's inferred domain *)
  | Disjoint_var of string
      (** a variable whose occurrences have provably disjoint domains *)
  | False_cmp of Asp.Lit.t  (** comparison false under the inferred domains *)
  | False_agg of Asp.Lit.t  (** aggregate bound provably unsatisfiable *)

val dead_cause_to_string : dead_cause -> string

type pred_info = {
  psig : string * int;
  doms : Domain.t array;  (** per-argument abstract domain *)
  card : float;  (** estimated number of derivable ground instances *)
  fact_count : int;  (** exact number of distinct ground fact instances *)
  exact : bool;  (** [card] is exact (facts only, no deriving rules) *)
  defined : bool;  (** occurs in some rule head *)
  derivable : bool;  (** some fact or satisfiable rule can derive it *)
  consumed : bool;
      (** occurs in a body, aggregate condition, constraint, weak
          constraint, or [#show] (an empty show list consumes all) *)
}

type rule_info = {
  index : int;  (** position in [Asp.Program.rules] *)
  rule : Asp.Rule.t;
  env : (string * Domain.t) list;
      (** inferred domain of each body variable, comparisons applied *)
  dead : dead_cause option;
  firings : float;  (** estimated satisfying ground substitutions *)
  cost : float;  (** estimated instantiation work (choice elements included) *)
  cmp_true : Asp.Lit.t list;
      (** body comparisons provably true before comparison narrowing *)
  false_aggs : Asp.Lit.t list;
  dead_elems : (Asp.Atom.t * dead_cause) list;
      (** choice elements whose condition can never hold *)
  live_elems : int;  (** remaining choice elements ([0] for normal rules) *)
}

type t

val analyze : ?max_rounds:int -> Asp.Program.t -> t
(** Run the domain fixpoint (widening kicks in after a few rounds) followed
    by the cardinality fixpoint. [max_rounds] bounds both loops. *)

val program : t -> Asp.Program.t
val preds : t -> pred_info list
(** Sorted by signature. *)

val find_pred : t -> string * int -> pred_info option
val rules : t -> rule_info list
(** In program order. *)

val const_universe : t -> int
(** Distinct ground constants in the program — the default cardinality of
    an unbounded ([Top] / infinite-interval) argument domain. *)

val total_cost : t -> float
(** Sum of per-rule cost estimates. *)

val eval_term : t -> (string * Domain.t) list -> Asp.Term.t -> Domain.t
(** Abstract value of a term under a variable environment (e.g. a
    {!rule_info.env}). *)

val join_order : t -> Asp.Rule.t -> int array option
(** Selectivity-based ordering of a rule's positive body literals:
    [Some perm] maps enumeration position to original positive-literal
    index. [None] when the original order is already within 10% of the
    best found, the body is too small/large to search, or reordering could
    move a [Term.eval] failure (arithmetic over a possibly non-integer
    variable, any division/modulo) — callers keep program order in those
    cases, which is what makes the result safe to feed to
    [Asp.Grounder.ground ~order]. The cost model accounts for the
    grounder's first-argument discrimination index. *)
