(** Abstract value domains for predicate arguments: a finite set of ground
    terms, an integer interval, or ⊤ — the lattice the {!Infer} fixpoint
    computes over. Every operation is a sound over-approximation: the
    concrete set of terms an argument position can take is always a subset
    of its abstract domain, so emptiness ([Bot]) proves underivability. *)

module TermSet : Set.S with type elt = Asp.Term.t

type bound = NegInf | Fin of int | PosInf

type t =
  | Bot  (** no value — the position is never populated *)
  | Consts of TermSet.t  (** finite non-empty set of ground terms *)
  | Interval of bound * bound
      (** integers in [lo, hi]; at least one bound infinite or the set
          wider than the finite-set cap *)
  | Top  (** any term *)

val bot : t
val top : t

val of_term : Asp.Term.t -> t
(** Singleton domain of a ground term; [Top] for non-ground terms and
    [Bot] for ground terms whose arithmetic cannot evaluate. *)

val interval : bound -> bound -> t
(** Normalizes an empty interval to [Bot]. *)

val equal : t -> t -> bool
val is_empty : t -> bool

val mem : Asp.Term.t -> t -> bool
(** Membership of a ground term. *)

val join : t -> t -> t
(** Least upper bound; finite sets exceeding the cap collapse to their
    integer hull (all-int) or [Top]. *)

val widen : t -> t -> t
(** [widen old next]: like [join], but an interval bound still growing
    jumps straight to its infinity — the termination guarantee of the
    {!Infer} fixpoint. *)

val meet : t -> t -> t
(** Greatest lower bound (exact on every representable pair). *)

val card : t -> int option
(** Number of concrete terms; [None] when unbounded ([Top], infinite
    interval). *)

val singleton : t -> Asp.Term.t option
(** The term, when the domain provably holds exactly one value. *)

val all_ints : t -> bool
(** Every member is an integer ([Bot] included). *)

val has_non_int : t -> bool
(** The domain provably contains a non-integer term — the witness the
    L206 producer/consumer type-clash check needs. [Top] answers [false]
    (unknown is not proof). *)

val int_bounds : t -> (bound * bound) option
(** Interval view when every member is an integer; [None] otherwise
    (including [Bot]). *)

(** Abstract interval/set arithmetic for the function symbols
    {!Asp.Term.eval} interprets. Non-integer operands yield [Top] (the
    grounder raises on them; the analysis stays conservative). *)
val arith : string -> t list -> t

(** Abstract comparison: [Some true]/[Some false] when the comparison is
    decided for {e every} pair of member values, [None] otherwise. *)
val cmp : Asp.Lit.cmp -> t -> t -> bool option

val restrict : Asp.Lit.cmp -> t -> t -> t
(** [restrict op d bound_dom] refines [d] to the members that can satisfy
    [x op y] for at least one [y] in [bound_dom] — the comparison-driven
    narrowing applied to rule-variable domains. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
