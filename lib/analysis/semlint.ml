module D = Diagnostic
module Term = Asp.Term
module Atom = Asp.Atom
module Lit = Asp.Lit
module Rule = Asp.Rule
module Program = Asp.Program

type config = { blowup_threshold : float }

let default_config = { blowup_threshold = 512.0 }

let sig_to_string (name, arity) = Printf.sprintf "%s/%d" name arity

let rule_pos r =
  Option.map (fun { Rule.line; col } -> { D.line; col }) (Rule.pos r)

let rule_subject r = Rule.to_string r

(* ------------------------------------------------------------------ *)
(* L200/L201/L207/L208: dead rules, by cause                           *)
(* ------------------------------------------------------------------ *)

let check_dead (ri : Infer.rule_info) =
  match ri.Infer.dead with
  | None -> []
  | Some cause ->
      let emit code =
        [
          D.warning ~code ?pos:(rule_pos ri.Infer.rule)
            ~subject:(rule_subject ri.Infer.rule)
            "rule can never fire: %s"
            (Infer.dead_cause_to_string cause);
        ]
      in
      (match cause with
      | Infer.Empty_arg _ -> emit "L200"
      | Infer.False_cmp _ -> emit "L201"
      | Infer.Disjoint_var _ -> emit "L207"
      | Infer.False_agg _ -> emit "L208"
      (* predicate-level underivability is the syntactic layer's turf
         (L003 undefined, L007 underivable) — don't double-report *)
      | Infer.Undefined_pred _ | Infer.Underivable_pred _ -> [])

(* L202: comparisons that always hold — redundant, worth simplifying *)
let check_true_cmps (ri : Infer.rule_info) =
  List.map
    (fun lit ->
      D.info ~code:"L202" ?pos:(rule_pos ri.Infer.rule)
        ~subject:(rule_subject ri.Infer.rule)
        "comparison %s is always true under inferred domains" (Lit.to_string lit))
    ri.Infer.cmp_true

(* L209: a choice whose every element condition is unsatisfiable *)
let check_choice (ri : Infer.rule_info) =
  if ri.Infer.dead <> None || ri.Infer.dead_elems = [] then []
  else if ri.Infer.live_elems > 0 then []
  else
    [
      D.warning ~code:"L209" ?pos:(rule_pos ri.Infer.rule)
        ~subject:(rule_subject ri.Infer.rule)
        "choice rule has no satisfiable element (%d dead)"
        (List.length ri.Infer.dead_elems);
    ]

(* L212: predicted grounding blowup *)
let check_blowup cfg (ri : Infer.rule_info) =
  if ri.Infer.dead <> None || ri.Infer.cost < cfg.blowup_threshold then []
  else
    [
      D.warning ~code:"L212" ?pos:(rule_pos ri.Infer.rule)
        ~subject:(rule_subject ri.Infer.rule)
        "estimated ~%.0f ground instances (threshold %.0f); grounding may blow \
         up"
        ri.Infer.cost cfg.blowup_threshold;
    ]

(* ------------------------------------------------------------------ *)
(* L203/L204: duplicate and subsumed rules                             *)
(* ------------------------------------------------------------------ *)

(* canonical alpha-renaming: variables numbered by first occurrence; the
   renamed rule's text is the duplicate key ('!' cannot appear in parsed
   variable names, so fresh names never collide with real ones) *)
let alpha_key r =
  let vars = Rule.vars r in
  let subst =
    List.mapi (fun i v -> (v, Term.var (Printf.sprintf "V!%d" i))) vars
  in
  Rule.to_string (Rule.substitute subst r)

let check_duplicates rules =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun r ->
      match r with
      | Rule.Rule { body = _ :: _; _ } | Rule.Rule { head = Rule.Choice _; _ }
        -> (
          let key = alpha_key r in
          match Hashtbl.find_opt seen key with
          | Some first ->
              [
                D.warning ~code:"L203" ?pos:(rule_pos r)
                  ~subject:(rule_subject r)
                  "rule duplicates an earlier rule%s (up to variable renaming)"
                  (match rule_pos first with
                  | Some p -> Printf.sprintf " at %s" (D.pos_to_string p)
                  | None -> "")
              ]
          | None ->
              Hashtbl.replace seen key r;
              [])
      | _ -> [])
    rules

(* one-way matching: pattern variables bind to subject terms *)
let rec match_term subst (pat : Term.t) (t : Term.t) =
  match (pat.Term.node, t.Term.node) with
  | Term.Var v, _ -> (
      match List.assoc_opt v subst with
      | Some b -> if Term.equal b t then Some subst else None
      | None -> Some ((v, t) :: subst))
  | Term.Const a, Term.Const b when a = b -> Some subst
  | Term.Int a, Term.Int b when a = b -> Some subst
  | Term.Str a, Term.Str b when a = b -> Some subst
  | Term.Func (f, fa), Term.Func (g, ga)
    when f = g && List.length fa = List.length ga ->
      List.fold_left2
        (fun acc p t -> Option.bind acc (fun s -> match_term s p t))
        (Some subst) fa ga
  | _ -> None

let match_atom subst (a : Atom.t) (b : Atom.t) =
  if a.Atom.pred = b.Atom.pred && Atom.arity a = Atom.arity b then
    List.fold_left2
      (fun acc p t -> Option.bind acc (fun s -> match_term s p t))
      (Some subst) a.Atom.args b.Atom.args
  else None

let match_lit subst l1 l2 =
  match (l1, l2) with
  | Lit.Pos a, Lit.Pos b | Lit.Neg a, Lit.Neg b -> match_atom subst a b
  | Lit.Cmp (a1, op1, b1), Lit.Cmp (a2, op2, b2) when op1 = op2 ->
      Option.bind (match_term subst a1 a2) (fun s -> match_term s b1 b2)
  | _ -> None

(* theta-subsumption: every literal of the general body matches some
   literal of the specific body under one consistent substitution *)
let rec cover subst gen_body spec_body =
  match gen_body with
  | [] -> true
  | l :: rest ->
      List.exists
        (fun l2 ->
          match match_lit subst l l2 with
          | Some s -> cover s rest spec_body
          | None -> false)
        spec_body

let has_aggregate body =
  List.exists (function Lit.Count _ -> true | _ -> false) body

let subsumes r1 r2 =
  match (r1, r2) with
  | ( Rule.Rule { head = h1; body = b1; _ },
      Rule.Rule { head = h2; body = b2; _ } )
    when not (has_aggregate b1 || has_aggregate b2) -> (
      match (h1, h2) with
      | Rule.Falsity, Rule.Falsity -> cover [] b1 b2
      | Rule.Head a1, Rule.Head a2 -> (
          match match_atom [] a1 a2 with
          | Some s -> cover s b1 b2
          | None -> false)
      | _ -> false)
  | _ -> false

let max_subsume_body = 6

let check_subsumption rules =
  let eligible =
    List.filter
      (fun r ->
        match r with
        | Rule.Rule { head = Rule.Head _ | Rule.Falsity; body; _ } ->
            List.length body <= max_subsume_body
        | _ -> false)
      rules
  in
  (* group by head signature (constraints share one bucket) so the
     pairwise scan stays near-linear on fact-heavy programs *)
  let bucket r =
    match r with
    | Rule.Rule { head = Rule.Head a; _ } -> Some (Atom.signature a)
    | Rule.Rule { head = Rule.Falsity; _ } -> Some ("", -1)
    | _ -> None
  in
  let groups = Hashtbl.create 32 in
  List.iter
    (fun r ->
      match bucket r with
      | Some k ->
          Hashtbl.replace groups k (r :: Option.value ~default:[] (Hashtbl.find_opt groups k))
      | None -> ())
    eligible;
  Hashtbl.fold
    (fun _ group acc ->
      let group = List.rev group in
      List.concat_map
        (fun r2 ->
          let by =
            List.find_opt
              (fun r1 -> r1 != r2 && subsumes r1 r2 && not (subsumes r2 r1))
              group
          in
          match by with
          | None -> []
          | Some r1 ->
              [
                D.warning ~code:"L204" ?pos:(rule_pos r2)
                  ~subject:(rule_subject r2)
                  "rule is subsumed by the more general rule: %s"
                  (Rule.to_string r1);
              ])
        group
      @ acc)
    groups []

(* ------------------------------------------------------------------ *)
(* L205: derivable but never consumed (transitively)                   *)
(* ------------------------------------------------------------------ *)

let rec lit_sigs acc lit =
  match lit with
  | Lit.Pos a | Lit.Neg a -> Atom.signature a :: acc
  | Lit.Cmp _ -> acc
  | Lit.Count { cond; _ } -> List.fold_left lit_sigs acc cond

let check_unconsumed infer =
  let prog = Infer.program infer in
  let shows = Program.shows prog in
  if shows = [] then [] (* an empty #show list shows (consumes) everything *)
  else begin
    let rules = Program.rules prog in
    (* roots: shown predicates plus everything a constraint or weak
       constraint requires *)
    let roots =
      List.fold_left
        (fun acc r ->
          match r with
          | Rule.Rule { head = Rule.Falsity; body; _ }
          | Rule.Weak { body; _ } ->
              List.fold_left lit_sigs acc body
          | _ -> acc)
        shows rules
    in
    (* defining rules, indexed by head signature *)
    let defs = Hashtbl.create 64 in
    List.iter
      (fun r ->
        List.iter
          (fun a ->
            let s = Atom.signature a in
            Hashtbl.replace defs s
              (r :: Option.value ~default:[] (Hashtbl.find_opt defs s)))
          (Rule.head_atoms r))
      rules;
    let reached = Hashtbl.create 64 in
    let rec visit s =
      if not (Hashtbl.mem reached s) then begin
        Hashtbl.replace reached s ();
        List.iter
          (fun r ->
            let deps =
              List.fold_left lit_sigs [] (Rule.body r)
              |> fun acc ->
              match r with
              | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
                  List.fold_left
                    (fun acc (e : Rule.choice_elem) ->
                      List.fold_left lit_sigs acc e.Rule.cond)
                    acc elems
              | _ -> acc
            in
            List.iter visit deps)
          (Option.value ~default:[] (Hashtbl.find_opt defs s))
      end
    in
    List.iter visit roots;
    List.filter_map
      (fun (info : Infer.pred_info) ->
        if
          info.Infer.defined && info.Infer.derivable
          && not (Hashtbl.mem reached info.Infer.psig)
        then
          Some
            (D.info ~code:"L205" ~subject:(sig_to_string info.Infer.psig)
               "predicate is derivable but nothing shown or required ever \
                consumes it")
        else None)
      (Infer.preds infer)
  end

(* ------------------------------------------------------------------ *)
(* L206: non-integers flowing into arithmetic                          *)
(* ------------------------------------------------------------------ *)

(* variables appearing inside an interpreted arithmetic function *)
let rec arith_vars in_arith acc (t : Term.t) =
  match t.Term.node with
  | Term.Var v -> if in_arith then v :: acc else acc
  | Term.Func (op, args) ->
      let inside = List.mem op Term.arith_ops in
      List.fold_left (arith_vars inside) acc args
  | Term.Const _ | Term.Int _ | Term.Str _ -> acc

let rule_arith_vars r =
  let atom acc (a : Atom.t) =
    List.fold_left (arith_vars false) acc a.Atom.args
  in
  let rec lit acc l =
    match l with
    | Lit.Pos a | Lit.Neg a -> atom acc a
    | Lit.Cmp (t1, _, t2) ->
        arith_vars false (arith_vars false acc t1) t2
    | Lit.Count { kind; terms; cond; bound; _ } ->
        let acc = arith_vars false acc bound in
        let acc =
          (* #sum adds its first tuple component, so it must be integer *)
          match (kind, terms) with
          | Lit.Summation, w :: _ -> (
              match w.Term.node with
              | Term.Var v -> v :: acc
              | _ -> arith_vars false acc w)
          | _ -> acc
        in
        let acc = List.fold_left (arith_vars false) acc terms in
        List.fold_left lit acc cond
  in
  let body_vars = List.fold_left lit [] (Rule.body r) in
  match r with
  | Rule.Rule { head = Rule.Head a; _ } -> atom body_vars a
  | Rule.Rule { head = Rule.Choice { elems; _ }; _ } ->
      List.fold_left
        (fun acc (e : Rule.choice_elem) ->
          List.fold_left lit (atom acc e.Rule.atom) e.Rule.cond)
        body_vars elems
  | Rule.Rule { head = Rule.Falsity; _ } -> body_vars
  | Rule.Weak { weight; terms; _ } ->
      let acc =
        match weight.Term.node with
        | Term.Var v -> v :: body_vars
        | _ -> arith_vars false body_vars weight
      in
      List.fold_left (arith_vars false) acc terms

let check_type_clash (ri : Infer.rule_info) =
  if ri.Infer.dead <> None then []
  else
    let suspects = List.sort_uniq compare (rule_arith_vars ri.Infer.rule) in
    List.filter_map
      (fun v ->
        match List.assoc_opt v ri.Infer.env with
        | Some d when Domain.has_non_int d ->
            Some
              (D.warning ~code:"L206" ?pos:(rule_pos ri.Infer.rule)
                 ~subject:(rule_subject ri.Infer.rule)
                 "variable %s is used arithmetically but its domain %s \
                  contains non-integers"
                 v (Domain.to_string d))
        | _ -> None)
      suspects

(* ------------------------------------------------------------------ *)
(* L210/L211: degenerate argument, repeated literal                    *)
(* ------------------------------------------------------------------ *)

let check_degenerate infer =
  List.concat_map
    (fun (info : Infer.pred_info) ->
      if info.Infer.exact || (not info.Infer.derivable) || info.Infer.card <= 1.5
      then []
      else
        Array.to_list info.Infer.doms
        |> List.mapi (fun i d -> (i, Domain.singleton d))
        |> List.filter_map (fun (i, s) ->
               match s with
               | Some v ->
                   Some
                     (D.info ~code:"L210"
                        ~subject:(sig_to_string info.Infer.psig)
                        "argument %d always takes the single value %s" (i + 1)
                        (Term.to_string v))
               | None -> None))
    (Infer.preds infer)

let check_repeated_lits r =
  let body = Rule.body r in
  let rec dups seen acc = function
    | [] -> List.rev acc
    | l :: rest ->
        let key = Lit.to_string l in
        if List.mem key seen then dups seen (l :: acc) rest
        else dups (key :: seen) acc rest
  in
  List.map
    (fun l ->
      D.info ~code:"L211" ?pos:(rule_pos r) ~subject:(rule_subject r)
        "literal %s is repeated in the body" (Lit.to_string l))
    (dups [] [] body)

(* ------------------------------------------------------------------ *)

let codes =
  [
    ("L200", D.Warning, "rule can never fire (argument outside the producer's inferred domain)");
    ("L201", D.Warning, "comparison always false under inferred domains");
    ("L202", D.Info, "comparison always true under inferred domains (redundant)");
    ("L203", D.Warning, "rule duplicates an earlier rule (up to variable renaming)");
    ("L204", D.Warning, "rule subsumed by a more general rule");
    ("L205", D.Info, "predicate derivable but never consumed by a shown or required predicate");
    ("L206", D.Warning, "non-integer values flow into arithmetic");
    ("L207", D.Warning, "variable joins argument positions with disjoint domains");
    ("L208", D.Warning, "aggregate bound can never be satisfied");
    ("L209", D.Warning, "choice rule has no satisfiable element");
    ("L210", D.Info, "argument position always carries a single value");
    ("L211", D.Info, "literal repeated in a rule body");
    ("L212", D.Warning, "estimated grounding size exceeds the configured threshold");
  ]

let run_infer ?(config = default_config) infer =
  let rules = Program.rules (Infer.program infer) in
  let per_rule =
    List.concat_map
      (fun ri ->
        check_dead ri @ check_true_cmps ri @ check_choice ri
        @ check_blowup config ri @ check_type_clash ri)
      (Infer.rules infer)
  in
  let syntactic =
    check_duplicates rules @ check_subsumption rules
    @ List.concat_map check_repeated_lits rules
  in
  let global = check_unconsumed infer @ check_degenerate infer in
  D.sort (per_rule @ syntactic @ global)

let run ?config prog = run_infer ?config (Infer.analyze prog)
