(** Semantic lint: the L200–L212 family, built on the {!Infer} fixpoint.

    Where [Lint] (L0xx) is syntactic and local, these checks reason about
    inferred argument domains and cardinalities: rules that provably never
    fire, comparisons decided by the domains, duplicate/subsumed rules,
    producer/consumer type clashes, and predicted grounding blowups.
    Every [Warning]/[Error] finding is backed by an over-approximation
    proof except L212, which is an estimate-based prediction (and says
    so in its message). *)

type config = {
  blowup_threshold : float;
      (** L212 fires when a rule's estimated ground instantiations meet or
          exceed this. The default (512) is calibrated so the pigeonhole
          mutual-exclusion constraint trips it from 10 holes up. *)
}

val default_config : config

val run : ?config:config -> Asp.Program.t -> Diagnostic.t list
(** Analyze and check. Sorted like [Lint.run_program] output. *)

val run_infer : ?config:config -> Infer.t -> Diagnostic.t list
(** Same checks over an existing analysis (avoids re-running the
    fixpoint when the caller also wants the report). *)

val codes : (string * Diagnostic.severity * string) list
(** Stable registry of the semantic codes, same shape as [Lint.codes]. *)
