type backend = Water_tank | Topology | Hierarchy

let backend_to_string = function
  | Water_tank -> "water-tank"
  | Topology -> "topology"
  | Hierarchy -> "hierarchy"

let backend_of_string = function
  | "water-tank" -> Some Water_tank
  | "topology" -> Some Topology
  | "hierarchy" -> Some Hierarchy
  | _ -> None

type frontier_op = Optimal | Pareto | Budget_curve

let frontier_op_to_string = function
  | Optimal -> "optimal"
  | Pareto -> "pareto"
  | Budget_curve -> "budget-curve"

let frontier_op_of_string = function
  | "optimal" -> Some Optimal
  | "pareto" -> Some Pareto
  | "budget-curve" -> Some Budget_curve
  | _ -> None

type request =
  | Load_model of {
      name : string;
      backend : backend;
      horizon : int option;
      model_src : string option;
    }
  | Sweep of { model : string; mutations : string; jobs : int option }
  | Mitigate of {
      model : string;
      op : frontier_op;
      budget : int option;
      budgets : int list;
      jobs : int option;
    }
  | Solve of { program : string; limit : int option; optimal : bool }
  | Status
  | Stats
  | List_models
  | Evict_model of { name : string }
  | Shutdown

let request_to_json = function
  | Load_model { name; backend; horizon; model_src } ->
      Json.Obj
        (List.concat
           [
             [
               ("op", Json.String "load-model");
               ("name", Json.String name);
               ("backend", Json.String (backend_to_string backend));
             ];
             (match horizon with
             | Some h -> [ ("horizon", Json.Int h) ]
             | None -> []);
             (match model_src with
             | Some s -> [ ("model_src", Json.String s) ]
             | None -> []);
           ])
  | Sweep { model; mutations; jobs } ->
      Json.Obj
        (List.concat
           [
             [
               ("op", Json.String "sweep");
               ("model", Json.String model);
               ("mutations", Json.String mutations);
             ];
             (match jobs with Some j -> [ ("jobs", Json.Int j) ] | None -> []);
           ])
  | Mitigate { model; op; budget; budgets; jobs } ->
      Json.Obj
        (List.concat
           [
             [
               ("op", Json.String "mitigate");
               ("model", Json.String model);
               ("search", Json.String (frontier_op_to_string op));
             ];
             (match budget with
             | Some b -> [ ("budget", Json.Int b) ]
             | None -> []);
             (match budgets with
             | [] -> []
             | bs ->
                 [ ("budgets", Json.List (List.map (fun b -> Json.Int b) bs)) ]);
             (match jobs with Some j -> [ ("jobs", Json.Int j) ] | None -> []);
           ])
  | Solve { program; limit; optimal } ->
      Json.Obj
        (List.concat
           [
             [ ("op", Json.String "solve"); ("program", Json.String program) ];
             (match limit with Some l -> [ ("limit", Json.Int l) ] | None -> []);
             (if optimal then [ ("optimal", Json.Bool true) ] else []);
           ])
  | Status -> Json.Obj [ ("op", Json.String "status") ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | List_models -> Json.Obj [ ("op", Json.String "list-models") ]
  | Evict_model { name } ->
      Json.Obj [ ("op", Json.String "evict-model"); ("name", Json.String name) ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let request_of_json json =
  match Json.mem_string "op" json with
  | None -> Error "missing \"op\" field"
  | Some op -> (
      match op with
      | "load-model" -> (
          match Json.mem_string "name" json with
          | None -> Error "load-model: missing \"name\""
          | Some name -> (
              let backend_name =
                Option.value ~default:"water-tank"
                  (Json.mem_string "backend" json)
              in
              match backend_of_string backend_name with
              | None ->
                  Error
                    (Printf.sprintf
                       "load-model: unknown backend %S (water-tank | topology)"
                       backend_name)
              | Some backend ->
                  Ok
                    (Load_model
                       {
                         name;
                         backend;
                         horizon = Json.mem_int "horizon" json;
                         model_src = Json.mem_string "model_src" json;
                       })))
      | "sweep" -> (
          match
            (Json.mem_string "model" json, Json.mem_string "mutations" json)
          with
          | Some model, Some mutations ->
              Ok (Sweep { model; mutations; jobs = Json.mem_int "jobs" json })
          | None, _ -> Error "sweep: missing \"model\""
          | _, None -> Error "sweep: missing \"mutations\"")
      | "mitigate" -> (
          match Json.mem_string "model" json with
          | None -> Error "mitigate: missing \"model\""
          | Some model -> (
              let search =
                Option.value ~default:"optimal"
                  (Json.mem_string "search" json)
              in
              match frontier_op_of_string search with
              | None ->
                  Error
                    (Printf.sprintf
                       "mitigate: unknown search %S (optimal | pareto | \
                        budget-curve)"
                       search)
              | Some op ->
                  let budgets =
                    match Json.mem_list "budgets" json with
                    | None -> []
                    | Some items ->
                        List.filter_map
                          (function Json.Int b -> Some b | _ -> None)
                          items
                  in
                  if op = Budget_curve && budgets = [] then
                    Error "mitigate: budget-curve needs a \"budgets\" list"
                  else
                    Ok
                      (Mitigate
                         {
                           model;
                           op;
                           budget = Json.mem_int "budget" json;
                           budgets;
                           jobs = Json.mem_int "jobs" json;
                         })))
      | "solve" -> (
          match Json.mem_string "program" json with
          | None -> Error "solve: missing \"program\""
          | Some program ->
              Ok
                (Solve
                   {
                     program;
                     limit = Json.mem_int "limit" json;
                     optimal =
                       Option.value ~default:false
                         (Json.mem_bool "optimal" json);
                   }))
      | "status" -> Ok Status
      | "stats" -> Ok Stats
      | "list-models" -> Ok List_models
      | "evict-model" -> (
          match Json.mem_string "name" json with
          | None -> Error "evict-model: missing \"name\""
          | Some name -> Ok (Evict_model { name }))
      | "shutdown" -> Ok Shutdown
      | op -> Error (Printf.sprintf "unknown op %S" op))

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok json -> request_of_json json

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let response_result json =
  match Json.mem_bool "ok" json with
  | Some true -> Ok json
  | Some false ->
      Error
        (Option.value ~default:"unspecified server error"
           (Json.mem_string "error" json))
  | None -> Error "malformed response: missing \"ok\""
