(** The service's batching request queue. Connection handler threads
    {!submit} requests and block for their answer; a single worker thread
    drains {e all} pending requests at once and hands them to the [batch]
    function as one array — so requests that arrive while the engine is
    busy on the previous batch coalesce into a single pass over the
    {!Engine.Pool} (one shared prepare, one cache, cross-request dedup)
    instead of queuing up as N serial engine runs.

    Ordering within a batch is submission order. If [batch] raises, every
    request of that batch re-raises the same exception in its submitter;
    if it returns the wrong arity, submitters get [Invalid_argument]. *)

type ('req, 'resp) t

exception Stopped

val create : batch:('req array -> 'resp array) -> ('req, 'resp) t
(** Spawns the worker thread. [batch] runs on that thread and must return
    one response per request, in order. *)

val submit : ('req, 'resp) t -> 'req -> 'resp
(** Enqueue and block until the worker has served the containing batch.
    Raises {!Stopped} if the queue has been stopped, or the [batch]
    function's exception verbatim. *)

val stop : ('req, 'resp) t -> unit
(** Refuse new submissions, let the worker drain what was already
    accepted, and return once it has exited. Idempotent. *)

val pending : ('req, 'resp) t -> int
(** Requests waiting for the next batch (excludes the batch in flight). *)

type stats = {
  submitted : int;  (** lifetime requests accepted *)
  batches : int;  (** worker passes taken *)
  max_batch : int;  (** largest coalesced batch *)
}

val stats : ('req, 'resp) t -> stats
