let magic = "cpsrisk-store"

(* Format history:
   1 — original entry format.
   2 — [Asp.Term.t] became a hash-consed record; marshalled payloads
       containing terms changed layout, so every v1 entry is unreadable
       as the new type. Reading a v1 entry as v2 would not fail Marshal
       (the type is erased) — it would produce garbage — hence the bump:
       v1 entries are classified [Corrupt "stale format version"] and
       deleted on first touch. *)
let version = 2
let manifest_magic = "cpsrisk-manifest"
let manifest_name = "manifest"
let entry_suffix = ".ent"
let tmp_prefix = "tmp-"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stored : int;
  mutable evicted : int;
  mutable corrupt : int;
}

type meta = { size : int; mutable stamp : int }

type 'a t = {
  dir : string;
  max_bytes : int option;
  index : (string, meta) Hashtbl.t;  (* fingerprint hex -> meta *)
  lock : Mutex.t;
  stats : stats;
  mutable clock : int;  (* logical LRU clock, persisted via the manifest *)
  mutable bytes : int;
  mutable tmp_seq : int;
  mutable closed : bool;
}

let entry_path t hex = Filename.concat t.dir (hex ^ entry_suffix)
let manifest_path t = Filename.concat t.dir manifest_name

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Low-level entry IO                                                  *)
(* ------------------------------------------------------------------ *)

(* One entry file is a single header line

     cpsrisk-store <version> <ocaml-version> <fp-hex> <payload-len> <md5-hex>

   followed by exactly <payload-len> bytes of marshalled payload. The
   OCaml version participates because the Marshal format is tied to the
   compiler: entries written by another runtime are stale, not readable. *)

let write_entry_file path hex payload =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d %s %s %d %s\n" magic version Sys.ocaml_version
        hex (String.length payload)
        (Digest.to_hex (Digest.string payload));
      output_string oc payload)

type read_outcome = Value of string | Corrupt of string | Missing

let read_entry_file path hex =
  match open_in_bin path with
  | exception Sys_error _ -> Missing
  | ic -> (
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Corrupt "empty file"
          | header -> (
              match String.split_on_char ' ' header with
              | [ m; v; ocaml; fp; len; digest ] -> (
                  if m <> magic then Corrupt "bad magic"
                  else if v <> string_of_int version then
                    Corrupt (Printf.sprintf "stale format version %s" v)
                  else if ocaml <> Sys.ocaml_version then
                    Corrupt
                      (Printf.sprintf "written by OCaml %s, running %s" ocaml
                         Sys.ocaml_version)
                  else if fp <> hex then Corrupt "fingerprint mismatch"
                  else
                    match int_of_string_opt len with
                    | None -> Corrupt "bad payload length"
                    | Some len -> (
                        match really_input_string ic len with
                        | exception End_of_file -> Corrupt "truncated payload"
                        | payload ->
                            if pos_in ic <> in_channel_length ic then
                              Corrupt "trailing bytes"
                            else if
                              Digest.to_hex (Digest.string payload) <> digest
                            then Corrupt "checksum mismatch"
                            else Value payload))
              | _ -> Corrupt "bad header")))

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

(* The manifest is an index + LRU-recency snapshot, not a source of
   truth: open_ reconciles it against the entry files actually on disk,
   so a missing or stale manifest only loses access-recency, never
   entries. Lines: "<fp-hex> <size> <stamp>". *)

let write_manifest_unlocked t =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf "%s%d-manifest" tmp_prefix (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         Printf.fprintf oc "%s %d\n" manifest_magic version;
         Hashtbl.iter
           (fun hex m -> Printf.fprintf oc "%s %d %d\n" hex m.size m.stamp)
           t.index)
   with
  | () -> ()
  | exception Sys_error _ -> ());
  try Sys.rename tmp (manifest_path t) with Sys_error _ -> ()

let read_manifest dir =
  let path = Filename.concat dir manifest_name in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | header ->
              if header <> Printf.sprintf "%s %d" manifest_magic version then
                None
              else begin
                let entries = Hashtbl.create 64 in
                (try
                   while true do
                     let line = input_line ic in
                     match String.split_on_char ' ' line with
                     | [ hex; size; stamp ] -> (
                         match
                           (int_of_string_opt size, int_of_string_opt stamp)
                         with
                         | Some size, Some stamp ->
                             Hashtbl.replace entries hex { size; stamp }
                         | _ -> ())
                     | _ -> ()
                   done
                 with End_of_file -> ());
                Some entries
              end)

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?max_bytes dir =
  mkdir_p dir;
  let manifest = read_manifest dir in
  let index = Hashtbl.create 64 in
  (* scan the directory: leftover tmp files are debris of a killed writer
     (the rename never happened) and are deleted; entry files are the
     truth the manifest is reconciled against *)
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if String.length name >= String.length tmp_prefix
         && String.sub name 0 (String.length tmp_prefix) = tmp_prefix
      then (try Sys.remove path with Sys_error _ -> ())
      else if Filename.check_suffix name entry_suffix then begin
        let hex = Filename.chop_suffix name entry_suffix in
        let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        let stamp =
          match Option.bind manifest (fun m -> Hashtbl.find_opt m hex) with
          | Some m -> m.stamp
          | None -> 0
        in
        Hashtbl.replace index hex { size; stamp }
      end)
    (try Sys.readdir dir with Sys_error _ -> [||]);
  let clock = Hashtbl.fold (fun _ m acc -> max acc m.stamp) index 0 in
  let bytes = Hashtbl.fold (fun _ m acc -> acc + m.size) index 0 in
  {
    dir;
    max_bytes;
    index;
    lock = Mutex.create ();
    stats = { hits = 0; misses = 0; stored = 0; evicted = 0; corrupt = 0 };
    clock;
    bytes;
    tmp_seq = 0;
    closed = false;
  }

(* ------------------------------------------------------------------ *)
(* Eviction                                                            *)
(* ------------------------------------------------------------------ *)

let evict_until_unlocked t budget =
  (* drop least-recently-used entries until [bytes <= budget] *)
  while t.bytes > budget && Hashtbl.length t.index > 0 do
    let victim =
      Hashtbl.fold
        (fun hex m acc ->
          match acc with
          | Some (_, best) when best.stamp <= m.stamp -> acc
          | _ -> Some (hex, m))
        t.index None
    in
    match victim with
    | None -> ()
    | Some (hex, m) ->
        Hashtbl.remove t.index hex;
        t.bytes <- t.bytes - m.size;
        t.stats.evicted <- t.stats.evicted + 1;
        (try Sys.remove (entry_path t hex) with Sys_error _ -> ())
  done

let drop_unlocked t hex reason =
  ignore reason;
  (match Hashtbl.find_opt t.index hex with
  | Some m ->
      Hashtbl.remove t.index hex;
      t.bytes <- t.bytes - m.size
  | None -> ());
  t.stats.corrupt <- t.stats.corrupt + 1;
  try Sys.remove (entry_path t hex) with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let find t key =
  let hex = Engine.Fingerprint.to_hex key in
  match read_entry_file (entry_path t hex) hex with
  | Missing ->
      locked t (fun () ->
          (* the index may be stale (another handle evicted the file) *)
          (match Hashtbl.find_opt t.index hex with
          | Some m ->
              Hashtbl.remove t.index hex;
              t.bytes <- t.bytes - m.size
          | None -> ());
          t.stats.misses <- t.stats.misses + 1);
      None
  | Corrupt _reason ->
      locked t (fun () ->
          drop_unlocked t hex _reason;
          t.stats.misses <- t.stats.misses + 1);
      None
  | Value payload -> (
      match Marshal.from_string payload 0 with
      | v ->
          locked t (fun () ->
              t.stats.hits <- t.stats.hits + 1;
              t.clock <- t.clock + 1;
              match Hashtbl.find_opt t.index hex with
              | Some m -> m.stamp <- t.clock
              | None ->
                  (* written by another handle on the same directory *)
                  Hashtbl.replace t.index hex
                    { size = String.length payload; stamp = t.clock };
                  t.bytes <- t.bytes + String.length payload);
          Some v
      | exception _ ->
          locked t (fun () ->
              drop_unlocked t hex "unreadable marshal payload";
              t.stats.misses <- t.stats.misses + 1);
          None)

let store t key v =
  let hex = Engine.Fingerprint.to_hex key in
  let payload = Marshal.to_string v [] in
  let path = entry_path t hex in
  let header_overhead = 80 (* magic + versions + digest, roughly *) in
  let size = String.length payload + header_overhead in
  let admit =
    match t.max_bytes with Some b -> size <= b | None -> true
  in
  if admit then begin
    let tmp =
      locked t (fun () ->
          t.tmp_seq <- t.tmp_seq + 1;
          Filename.concat t.dir
            (Printf.sprintf "%s%d-%d-%s" tmp_prefix (Unix.getpid ()) t.tmp_seq
               hex))
    in
    match
      write_entry_file tmp hex payload;
      Sys.rename tmp path
    with
    | () ->
        let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> size in
        locked t (fun () ->
            t.clock <- t.clock + 1;
            (match Hashtbl.find_opt t.index hex with
            | Some m -> t.bytes <- t.bytes - m.size
            | None -> ());
            Hashtbl.replace t.index hex { size; stamp = t.clock };
            t.bytes <- t.bytes + size;
            t.stats.stored <- t.stats.stored + 1;
            (match t.max_bytes with
            | Some budget -> evict_until_unlocked t budget
            | None -> ());
            write_manifest_unlocked t)
    | exception Sys_error _ ->
        (* a failed write must never poison the store: drop the debris *)
        (try Sys.remove tmp with Sys_error _ -> ())
  end

let mem t key =
  Sys.file_exists (entry_path t (Engine.Fingerprint.to_hex key))

let entries t = locked t (fun () -> Hashtbl.length t.index)
let total_bytes t = locked t (fun () -> t.bytes)
let max_bytes t = t.max_bytes
let dir t = t.dir

let stats t =
  locked t (fun () ->
      {
        hits = t.stats.hits;
        misses = t.stats.misses;
        stored = t.stats.stored;
        evicted = t.stats.evicted;
        corrupt = t.stats.corrupt;
      })

let flush t = locked t (fun () -> write_manifest_unlocked t)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        write_manifest_unlocked t
      end)

let persist ?rehydrate t =
  let rehydrate = Option.value ~default:Fun.id rehydrate in
  {
    Engine.Cache.load = (fun key -> Option.map rehydrate (find t key));
    Engine.Cache.store =
      (fun key v -> try store t key v with _ -> ());
  }

let stats_to_json (s : stats) =
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("stored", Json.Int s.stored);
      ("evicted", Json.Int s.evicted);
      ("corrupt", Json.Int s.corrupt);
    ]
