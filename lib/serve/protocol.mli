(** The service's wire protocol: one JSON object per line in each
    direction (requests up, responses down — see {!Json} for the framing
    guarantee). This module is the single definition both sides compile
    against, so client and server cannot drift.

    Requests carry an ["op"] discriminator. Responses always carry
    ["ok": bool]; failures add ["error": string]; sweep responses carry
    per-job cache provenance (["source"]: fresh | memory | disk) and
    timings. *)

type backend = Water_tank | Topology | Hierarchy

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

type frontier_op = Optimal | Pareto | Budget_curve

val frontier_op_to_string : frontier_op -> string
val frontier_op_of_string : string -> frontier_op option

type request =
  | Load_model of {
      name : string;
      backend : backend;
      horizon : int option;  (** water-tank temporal horizon *)
      model_src : string option;
          (** textual system model, required by [Topology] — the client
              inlines the file so the daemon needs no shared filesystem *)
    }
  | Sweep of {
      model : string;  (** a name loaded earlier *)
      mutations : string;
          (** raw mutations-file text, parsed server-side so errors carry
              the file's own line numbers *)
      jobs : int option;  (** override the daemon's fan-out for this batch *)
    }
  | Mitigate of {
      model : string;  (** a name loaded earlier *)
      op : frontier_op;
      budget : int option;  (** for [Optimal] *)
      budgets : int list;  (** for [Budget_curve] *)
      jobs : int option;
    }
      (** mitigation-frontier search answered from the model's warm
          prepared state, through its solve cache *)
  | Solve of { program : string; limit : int option; optimal : bool }
  | Status  (** daemon liveness, uptime, queue + store summary *)
  | Stats  (** per-model cache counters and store counters *)
  | List_models
  | Evict_model of { name : string }
  | Shutdown  (** answer, then stop accepting and exit the serve loop *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val parse_request : string -> (request, string) result
(** One request line: JSON parse + {!request_of_json}. *)

val ok : (string * Json.t) list -> Json.t
(** [{"ok": true, ...fields}] *)

val error : string -> Json.t
(** [{"ok": false, "error": msg}] *)

val response_result : Json.t -> (Json.t, string) result
(** Split a response on its ["ok"] field. *)
