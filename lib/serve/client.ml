type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let roundtrip t json =
  output_string t.oc (Json.to_string json);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | exception End_of_file -> Error "connection closed by server"
  | line -> (
      match Json.parse line with
      | Error msg -> Error (Printf.sprintf "malformed response: %s" msg)
      | Ok response -> Protocol.response_result response)

let call t request = roundtrip t (Protocol.request_to_json request)

let request ~socket json =
  match connect socket with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s (is the daemon running?)"
           socket (Unix.error_message err))
  | t -> Fun.protect ~finally:(fun () -> close t) (fun () -> roundtrip t json)

let with_connection ~socket f =
  match connect socket with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s (is the daemon running?)"
           socket (Unix.error_message err))
  | t -> Fun.protect ~finally:(fun () -> close t) (fun () -> Ok (f t))
