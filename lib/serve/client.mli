(** Client side of the assessment service: connect to the daemon's
    Unix-domain socket, send one JSON line, read one JSON line back. *)

type t
(** An open connection. Requests on one connection are answered in
    order, so a connection can be reused for a whole session. *)

val connect : string -> t
(** Raises [Unix.Unix_error] (e.g. [ENOENT], [ECONNREFUSED]) if no
    daemon is listening on the socket path. *)

val close : t -> unit

val call : t -> Protocol.request -> (Json.t, string) result
(** Send a typed request, wait for its response line, split on ["ok"].
    [Error] covers transport failures, malformed responses and server-side
    refusals alike. *)

val roundtrip : t -> Json.t -> (Json.t, string) result
(** Untyped {!call} — send any JSON value as the request line. *)

val request : socket:string -> Json.t -> (Json.t, string) result
(** One-shot {!roundtrip} on a fresh connection; never raises —
    connection failures come back as [Error] with a hint that the daemon
    may not be running. *)

val with_connection : socket:string -> (t -> 'a) -> ('a, string) result
(** Run [f] over a fresh connection, closing it afterwards even on
    exceptions. [Error] only for connection failure; [f]'s exceptions
    propagate. *)
