(** The multi-tenant model store of the assessment service: named models,
    each holding a warm {!Engine.Job.prepared} base (fingerprinted and
    ground once at load) and its own {!Engine.Cache} — what-if deltas
    against a loaded model extend warm grounder state instead of paying a
    cold start, and identical requests are answered from the cache.

    All per-model caches share the registry's optional persistent
    {!Store}: the caches are content-addressed, so entries from different
    models coexist keyed by their fingerprints, and a model re-loaded
    after a daemon restart finds its old answers on disk. *)

type value = Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t
(** What the caches memoize per fingerprint — the {!Engine.Sweep} cache
    triple. *)

type entry = {
  name : string;
  backend : string;  (** display tag, e.g. ["water-tank"] or ["topology"] *)
  spec : Engine.Job.spec;  (** the [deltas] field is unused (requests bring
                               their own) *)
  prepared : Engine.Job.prepared;  (** warm base state, read-only *)
  cache : value Engine.Cache.t;
  frontier : Mitigation.Frontier.t option;
      (** mitigation frontier sharing [prepared] and [cache], when the
          backend carries an action catalog — frontier evaluations and
          sweep jobs answer each other's what-ifs *)
  loaded_at : float;
  mutable sweeps : int;  (** sweep requests served *)
  mutable jobs_served : int;  (** delta jobs across those sweeps *)
  mutable mitigations : int;  (** mitigation-frontier requests served *)
}

type t

val create : ?store:value Store.t -> unit -> t

val load :
  t ->
  ?frontier:(Engine.Job.prepared -> value Engine.Cache.t -> Mitigation.Frontier.t) ->
  name:string ->
  backend:string ->
  Engine.Job.spec ->
  entry
(** Prepare the spec's base (outside the registry lock — slow loads do
    not block lookups) and register it, replacing any previous model of
    the same name. A [frontier] builder receives the warm prepared state
    and the model's own cache, so frontier searches and sweeps share
    answers. Raises like {!Engine.Job.prepare} on an unsafe or
    overflowing base. *)

val find : t -> string -> entry option
val list : t -> entry list
(** Sorted by name. *)

val evict : t -> string -> bool
(** Forget a model (its prepared state and in-memory cache); false if it
    was not loaded. On-disk cache entries are kept — they are
    content-addressed, so a future re-load hits them again. *)

val count : t -> int
val loads : t -> int
(** Models currently loaded / lifetime [load] calls. *)

val store : t -> value Store.t option
val base_atoms : entry -> int

val entry_to_json : entry -> Json.t
(** The [list-models]/[stats] wire shape: name, backend, base size and
    the serving counters. *)
