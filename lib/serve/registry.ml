type value = Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t

type entry = {
  name : string;
  backend : string;
  spec : Engine.Job.spec;
  prepared : Engine.Job.prepared;
  cache : value Engine.Cache.t;
  frontier : Mitigation.Frontier.t option;
  loaded_at : float;
  mutable sweeps : int;
  mutable jobs_served : int;
  mutable mitigations : int;
}

type t = {
  store : value Store.t option;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable loads : int;
}

let create ?store () =
  { store; table = Hashtbl.create 8; lock = Mutex.create (); loads = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let load t ?frontier ~name ~backend spec =
  (* preparing (fingerprint + base grounding) is the expensive part and is
     done outside the lock: a slow load must not block lookups *)
  let prepared = Engine.Job.prepare spec in
  (* disk-promoted values went through Marshal, which bypasses the term
     arena: re-intern their models so they share structure (and the O(1)
     equality fast paths) with atoms built by this process *)
  let rehydrate (models, ss, gs) =
    (List.map Asp.Model.rehydrate models, ss, gs)
  in
  let cache =
    Engine.Cache.create
      ?persist:(Option.map (Store.persist ~rehydrate) t.store)
      ()
  in
  let entry =
    {
      name;
      backend;
      spec;
      prepared;
      cache;
      frontier = Option.map (fun f -> f prepared cache) frontier;
      loaded_at = Unix.gettimeofday ();
      sweeps = 0;
      jobs_served = 0;
      mitigations = 0;
    }
  in
  locked t (fun () ->
      t.loads <- t.loads + 1;
      Hashtbl.replace t.table name entry);
  entry

let find t name = locked t (fun () -> Hashtbl.find_opt t.table name)

let list t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let evict t name =
  locked t (fun () ->
      if Hashtbl.mem t.table name then begin
        Hashtbl.remove t.table name;
        true
      end
      else false)

let count t = locked t (fun () -> Hashtbl.length t.table)
let loads t = locked t (fun () -> t.loads)
let store t = t.store

let base_atoms e = Engine.Job.base_atoms e.prepared

let entry_to_json e =
  Json.Obj
    [
      ("name", Json.String e.name);
      ("backend", Json.String e.backend);
      ("base_atoms", Json.Int (base_atoms e));
      ("sweeps", Json.Int e.sweeps);
      ("jobs_served", Json.Int e.jobs_served);
      ("mitigations", Json.Int e.mitigations);
      ("cache_entries", Json.Int (Engine.Cache.length e.cache));
      ("cache_hits", Json.Int (Engine.Cache.hits e.cache));
      ("cache_disk_hits", Json.Int (Engine.Cache.disk_hits e.cache));
      ("cache_misses", Json.Int (Engine.Cache.misses e.cache));
      ("loaded_for_s", Json.Float (Unix.gettimeofday () -. e.loaded_at));
    ]
