(** A minimal, dependency-free JSON codec — just enough for the service's
    line-delimited protocol. Values round-trip through {!to_string} /
    {!parse}; printing never emits raw newlines (strings are escaped), so
    one JSON document per line is a safe framing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact, single-line rendering; control characters in strings are
    [\u]-escaped. *)

val parse : string -> (t, string) result
(** Full-document parse: trailing non-whitespace input is an error.
    Handles the usual escapes including surrogate-pair [\u] sequences. *)

(** {2 Accessors} — each returns [None] on a type or key mismatch. *)

val member : string -> t -> t option
val string_opt : t -> string option
val int_opt : t -> int option
val float_opt : t -> float option
val bool_opt : t -> bool option
val list_opt : t -> t list option

val mem_string : string -> t -> string option
val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list option
