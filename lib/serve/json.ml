type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* BMP only; surrogate pairs are recombined by the caller *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c -> v := (!v * 16) + digit c
    | None -> fail st "truncated \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let code = hex4 st in
                let code =
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    (* high surrogate: require the \uXXXX low half *)
                    expect st '\\';
                    expect st 'u';
                    let low = hex4 st in
                    if low < 0xDC00 || low > 0xDFFF then
                      fail st "unpaired surrogate"
                    else
                      0x10000
                      + ((code - 0xD800) lsl 10)
                      + (low - 0xDC00)
                  end
                  else code
                in
                utf8_of_code buf code
            | c -> fail st (Printf.sprintf "invalid escape \\%c" c));
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st (Printf.sprintf "invalid number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elems (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length src then
        Error (Printf.sprintf "at offset %d: trailing input" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_opt = function String s -> Some s | _ -> None

let int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None
let list_opt = function List xs -> Some xs | _ -> None

let mem_string key obj = Option.bind (member key obj) string_opt
let mem_int key obj = Option.bind (member key obj) int_opt
let mem_float key obj = Option.bind (member key obj) float_opt
let mem_bool key obj = Option.bind (member key obj) bool_opt
let mem_list key obj = Option.bind (member key obj) list_opt
