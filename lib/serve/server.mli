(** The assessment daemon: a Unix-domain-socket server that keeps
    prepared models, a batching request queue and the persistent answer
    store warm between requests, so interactive what-if exploration pays
    the base grounding once — not once per invocation.

    One connection handler thread per client reads line-delimited JSON
    requests ({!Protocol}) and answers in order on the same socket.
    Sweep requests go through a {!Queue}: whatever backlog accumulates
    while the engine runs the current batch is coalesced into one
    {!Engine.Sweep.run_prepared} pass per model, with cross-request
    dedup falling out of the shared content-addressed cache. *)

type config = {
  socket : string;  (** Unix-domain socket path (note ~107 byte limit) *)
  cache_dir : string option;  (** persistent {!Store} root; [None] = memory only *)
  cache_mb : int option;  (** store size bound in MiB; [None] = unbounded *)
  jobs : int option;  (** engine fan-out per batch; [None] = pool default *)
  log : (string -> unit) option;  (** server-side event log sink *)
}

val default_config : config
(** [cpsrisk.sock] in the current directory, no persistence, pool-default
    jobs, silent. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Serve until a [shutdown] request: bind the socket (replacing a stale
    socket file from a dead daemon), call [on_ready], then accept
    connections. Returns after an orderly teardown — in-flight
    connections joined, queue drained, store manifest flushed, socket
    file removed. Raises [Unix.Unix_error] if the socket cannot be
    bound. *)
