type config = {
  socket : string;
  cache_dir : string option;
  cache_mb : int option;
  jobs : int option;
  log : (string -> unit) option;
}

let default_config =
  { socket = "cpsrisk.sock"; cache_dir = None; cache_mb = None; jobs = None;
    log = None }

type sweep_request = {
  entry : Registry.entry;
  deltas : Engine.Delta.t list;
  req_jobs : int option;
}

type sweep_reply = {
  results : Engine.Job.result array;
  batch_size : int;  (** requests coalesced into the engine pass *)
  batch_wall_s : float;
}

type t = {
  config : config;
  store : Registry.value Store.t option;
  registry : Registry.t;
  queue : (sweep_request, sweep_reply) Queue.t;
  started_at : float;
  mutable listen_fd : Unix.file_descr option;
  stop_requested : bool Atomic.t;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> match t.config.log with Some f -> f s | None -> ())
    fmt

(* ------------------------------------------------------------------ *)
(* Batched sweep execution                                             *)
(* ------------------------------------------------------------------ *)

(* One queue batch may mix requests for several models: group them,
   run one engine pass per model over the concatenated deltas (identical
   deltas across requests coalesce in the entry's cache), then slice the
   result array back onto the requests in submission order. *)
let run_batch t (requests : sweep_request array) : sweep_reply array =
  let t0 = Unix.gettimeofday () in
  let n = Array.length requests in
  let replies = Array.make n None in
  let by_model = Hashtbl.create 4 in
  Array.iteri
    (fun i r ->
      let group =
        match Hashtbl.find_opt by_model r.entry.Registry.name with
        | Some g -> g
        | None ->
            let g = ref [] in
            Hashtbl.add by_model r.entry.Registry.name g;
            g
      in
      group := (i, r) :: !group)
    requests;
  Hashtbl.iter
    (fun _name group ->
      let group = List.rev !group in
      let entry = (snd (List.hd group)).entry in
      let jobs =
        let explicit =
          List.filter_map (fun (_, r) -> r.req_jobs) group
        in
        match explicit with
        | [] -> t.config.jobs
        | js -> Some (List.fold_left max 1 js)
      in
      let union = List.concat_map (fun (_, r) -> r.deltas) group in
      let report =
        Engine.Sweep.run_prepared ?jobs ~cache:entry.Registry.cache
          entry.Registry.prepared union
      in
      entry.Registry.sweeps <- entry.Registry.sweeps + List.length group;
      entry.Registry.jobs_served <-
        entry.Registry.jobs_served + List.length union;
      let offset = ref 0 in
      List.iter
        (fun (i, r) ->
          let len = List.length r.deltas in
          replies.(i) <-
            Some
              {
                results =
                  Array.sub report.Engine.Sweep.results !offset len;
                batch_size = n;
                batch_wall_s = 0.0 (* patched below *);
              };
          offset := !offset + len)
        group)
    by_model;
  let wall = Unix.gettimeofday () -. t0 in
  Array.map
    (function
      | Some r -> { r with batch_wall_s = wall }
      | None -> assert false (* every request belongs to exactly one group *))
    replies

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let result_to_json (entry : Registry.entry) (r : Engine.Job.result) =
  let backend_fields =
    (* verdicts/affected need the job's unique stable model; a delta whose
       [!] statements make the program non-unique still reports cleanly *)
    match entry.Registry.backend with
    | "water-tank" -> (
        match Cpsrisk.Sweeps.verdicts r with
        | verdicts ->
            [
              ( "verdicts",
                Json.Obj
                  (List.map (fun (req, v) -> (req, Json.Bool v)) verdicts) );
            ]
        | exception Invalid_argument _ -> [])
    | "topology" -> (
        match Cpsrisk.Sweeps.affected r with
        | affected ->
            [ ("affected", Json.List (List.map (fun c -> Json.String c) affected)) ]
        | exception Invalid_argument _ -> [])
    | "hierarchy" -> (
        match Cpsrisk.Hierarchy.frontier_measure r.Engine.Job.models with
        | residual -> [ ("residual", Json.Int residual) ]
        | exception Invalid_argument _ -> [])
    | _ -> []
  in
  Json.Obj
    (List.concat
       [
         [
           ("label", Json.String (Engine.Delta.label r.Engine.Job.delta));
           ( "fingerprint",
             Json.String (Engine.Fingerprint.to_hex r.Engine.Job.fingerprint) );
           ("models", Json.Int (List.length r.Engine.Job.models));
           ( "source",
             Json.String (Engine.Cache.source_to_string r.Engine.Job.source) );
         ];
         backend_fields;
       ])

let slice_counters results =
  let hits = ref 0 and disk = ref 0 and misses = ref 0 in
  let fresh = Asp.Solver.Stats.create () in
  let fresh_rules = ref 0 and reused_rules = ref 0 in
  let counted = Hashtbl.create 16 in
  Array.iter
    (fun (r : Engine.Job.result) ->
      match r.Engine.Job.source with
      | Engine.Cache.Memory -> incr hits
      | Engine.Cache.Disk -> incr disk
      | Engine.Cache.Fresh ->
          incr misses;
          let key = Engine.Fingerprint.to_hex r.Engine.Job.fingerprint in
          if not (Hashtbl.mem counted key) then begin
            Hashtbl.replace counted key ();
            Asp.Solver.Stats.accumulate fresh r.Engine.Job.stats;
            fresh_rules :=
              !fresh_rules
              + r.Engine.Job.gstats.Asp.Grounder.Stats.fresh_rules;
            reused_rules :=
              !reused_rules
              + r.Engine.Job.gstats.Asp.Grounder.Stats.reused_rules
          end)
    results;
  ( !hits,
    !disk,
    !misses,
    Json.Obj
      [
        ("guesses", Json.Int fresh.Asp.Solver.Stats.guesses);
        ("firings", Json.Int fresh.Asp.Solver.Stats.firings);
        ("conflicts", Json.Int fresh.Asp.Solver.Stats.conflicts);
        ("models", Json.Int fresh.Asp.Solver.Stats.models);
        ("wall_s", Json.Float fresh.Asp.Solver.Stats.wall_s);
      ],
    Json.Obj
      [
        ("fresh_rules", Json.Int !fresh_rules);
        ("reused_rules", Json.Int !reused_rules);
      ] )

let sweep_response entry (reply : sweep_reply) wall_s =
  let hits, disk_hits, misses, fresh, ground = slice_counters reply.results in
  Protocol.ok
    [
      ("model", Json.String entry.Registry.name);
      ("deltas", Json.Int (Array.length reply.results));
      ("hits", Json.Int hits);
      ("disk_hits", Json.Int disk_hits);
      ("misses", Json.Int misses);
      ("fresh", fresh);
      ("ground", ground);
      ("batched_with", Json.Int (reply.batch_size - 1));
      ("batch_wall_s", Json.Float reply.batch_wall_s);
      ("wall_s", Json.Float wall_s);
      ( "results",
        Json.List
          (Array.to_list (Array.map (result_to_json entry) reply.results)) );
    ]

let solution_to_json (s : Mitigation.Optimizer.solution) =
  Json.Obj
    [
      ( "selected",
        Json.List
          (List.map (fun a -> Json.String a) s.Mitigation.Optimizer.selected) );
      ("cost", Json.Int s.Mitigation.Optimizer.cost);
      ("residual", Json.Int s.Mitigation.Optimizer.residual);
    ]

let frontier_report_to_json (r : Mitigation.Frontier.report) =
  Json.Obj
    [
      ("evals", Json.Int r.Mitigation.Frontier.r_evals);
      ("hits", Json.Int r.Mitigation.Frontier.r_hits);
      ("disk_hits", Json.Int r.Mitigation.Frontier.r_disk_hits);
      ("fresh", Json.Int r.Mitigation.Frontier.r_fresh);
      ("pruned", Json.Int r.Mitigation.Frontier.r_pruned);
      ("sum_s", Json.Float r.Mitigation.Frontier.r_sum_s);
      ("critical_s", Json.Float r.Mitigation.Frontier.r_critical_s);
      ("wall_s", Json.Float r.Mitigation.Frontier.r_wall_s);
    ]

let mitigate_response entry op answer report wall_s =
  let answer_field =
    match (answer : Cpsrisk.Pipeline.frontier_answer) with
    | Cpsrisk.Pipeline.Frontier_solution s -> ("optimal", solution_to_json s)
    | Cpsrisk.Pipeline.Frontier_front front ->
        ("pareto", Json.List (List.map solution_to_json front))
    | Cpsrisk.Pipeline.Frontier_curve curve ->
        ( "curve",
          Json.List
            (List.map
               (fun (b, s) ->
                 Json.Obj
                   [ ("budget", Json.Int b); ("solution", solution_to_json s) ])
               curve) )
  in
  Protocol.ok
    [
      ("model", Json.String entry.Registry.name);
      ("search", Json.String (Protocol.frontier_op_to_string op));
      answer_field;
      ("report", frontier_report_to_json report);
      ("wall_s", Json.Float wall_s);
    ]

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* Each backend declares its sweep spec plus, when it carries an action
   catalog, a frontier builder over the entry's own warm state and cache
   — so mitigation searches and sweep jobs share answers. *)
let spec_of_load ~backend ~horizon ~model_src =
  match (backend : Protocol.backend) with
  | Protocol.Water_tank ->
      Ok
        ( "water-tank",
          Cpsrisk.Sweeps.water_tank_spec ?horizon [],
          Some
            (fun prepared cache ->
              Cpsrisk.Pipeline.water_tank_frontier_of ~cache prepared) )
  | Protocol.Hierarchy ->
      Ok
        ( "hierarchy",
          Cpsrisk.Hierarchy.frontier_spec (),
          Some
            (fun prepared cache ->
              Cpsrisk.Hierarchy.frontier_of ~cache prepared) )
  | Protocol.Topology -> (
      match model_src with
      | None -> Error "topology backend requires \"model_src\""
      | Some src -> (
          match Archimate.Text.parse src with
          | model -> Ok ("topology", Cpsrisk.Sweeps.topology_spec model [], None)
          | exception Archimate.Text.Error msg ->
              Error (Printf.sprintf "model parse error: %s" msg)))

let queue_to_json t =
  let q = Queue.stats t.queue in
  Json.Obj
    [
      ("submitted", Json.Int q.Queue.submitted);
      ("batches", Json.Int q.Queue.batches);
      ("max_batch", Json.Int q.Queue.max_batch);
      ("pending", Json.Int (Queue.pending t.queue));
    ]

let store_to_json t =
  match t.store with
  | None -> Json.Null
  | Some s ->
      let j = Store.stats_to_json (Store.stats s) in
      let extra =
        [
          ("dir", Json.String (Store.dir s));
          ("entries", Json.Int (Store.entries s));
          ("bytes", Json.Int (Store.total_bytes s));
          ( "max_bytes",
            match Store.max_bytes s with
            | Some b -> Json.Int b
            | None -> Json.Null );
        ]
      in
      (match j with Json.Obj fields -> Json.Obj (fields @ extra) | j -> j)

let solve_response ~program ~limit ~optimal =
  match Asp.Parser.parse_program program with
  | exception Asp.Parser.Error msg ->
      Protocol.error (Printf.sprintf "parse error: %s" msg)
  | program -> (
      match Asp.Grounder.ground program with
      | exception Asp.Grounder.Unsafe msg
      | exception Asp.Grounder.Overflow msg ->
          Protocol.error (Printf.sprintf "grounding error: %s" msg)
      | ground ->
          let models, stats =
            if optimal then Asp.Solver.solve_optimal_with_stats ground
            else Asp.Solver.solve_with_stats ?limit ground
          in
          let shows = ground.Asp.Ground.shows in
          let project m =
            if shows = [] then m else Asp.Model.project shows m
          in
          Protocol.ok
            [
              ("models", Json.Int (List.length models));
              ( "answers",
                Json.List
                  (List.map
                     (fun m -> Json.String (Asp.Model.to_string (project m)))
                     models) );
              ("guesses", Json.Int stats.Asp.Solver.Stats.guesses);
              ("conflicts", Json.Int stats.Asp.Solver.Stats.conflicts);
              ("wall_s", Json.Float stats.Asp.Solver.Stats.wall_s);
            ])

let handle_request t (request : Protocol.request) : Json.t * bool =
  let t0 = Unix.gettimeofday () in
  match request with
  | Protocol.Load_model { name; backend; horizon; model_src } -> (
      match spec_of_load ~backend ~horizon ~model_src with
      | Error msg -> (Protocol.error msg, false)
      | Ok (backend, spec, frontier) -> (
          match Registry.load t.registry ?frontier ~name ~backend spec with
          | entry ->
              log t "load-model %s (%s, %d base atoms)" name backend
                (Registry.base_atoms entry);
              ( Protocol.ok
                  [
                    ("model", Json.String name);
                    ("backend", Json.String backend);
                    ("base_atoms", Json.Int (Registry.base_atoms entry));
                    ( "wall_s",
                      Json.Float (Unix.gettimeofday () -. t0) );
                  ],
                false )
          | exception Asp.Grounder.Unsafe msg
          | exception Asp.Grounder.Overflow msg ->
              ( Protocol.error (Printf.sprintf "grounding error: %s" msg),
                false )))
  | Protocol.Sweep { model; mutations; jobs } -> (
      match Registry.find t.registry model with
      | None ->
          ( Protocol.error
              (Printf.sprintf "unknown model %S (load-model first)" model),
            false )
      | Some entry -> (
          match Engine.Delta.parse mutations with
          | Error e ->
              ( Protocol.error
                  (Printf.sprintf "mutations: %s"
                     (Engine.Delta.error_to_string e)),
                false )
          | Ok deltas -> (
              match
                Queue.submit t.queue { entry; deltas; req_jobs = jobs }
              with
              | reply ->
                  log t "sweep %s: %d deltas (batch of %d)" model
                    (List.length deltas) (reply.batch_size);
                  ( sweep_response entry reply (Unix.gettimeofday () -. t0),
                    false )
              | exception Queue.Stopped ->
                  (Protocol.error "server shutting down", false)
              | exception e ->
                  (Protocol.error (Printexc.to_string e), false))))
  | Protocol.Mitigate { model; op; budget; budgets; jobs } -> (
      match Registry.find t.registry model with
      | None ->
          ( Protocol.error
              (Printf.sprintf "unknown model %S (load-model first)" model),
            false )
      | Some entry -> (
          match entry.Registry.frontier with
          | None ->
              ( Protocol.error
                  (Printf.sprintf
                     "model %S (%s backend) carries no action catalog"
                     model entry.Registry.backend),
                false )
          | Some f -> (
              let jobs =
                match jobs with Some _ -> jobs | None -> t.config.jobs
              in
              let request =
                match op with
                | Protocol.Optimal -> Cpsrisk.Pipeline.Frontier_optimal budget
                | Protocol.Pareto -> Cpsrisk.Pipeline.Frontier_pareto
                | Protocol.Budget_curve ->
                    Cpsrisk.Pipeline.Frontier_sweep budgets
              in
              match Cpsrisk.Pipeline.mitigate_frontier ?jobs f request with
              | answer, report ->
                  entry.Registry.mitigations <- entry.Registry.mitigations + 1;
                  log t "mitigate %s: %s (%d evals, %d cached)" model
                    (Protocol.frontier_op_to_string op)
                    report.Mitigation.Frontier.r_evals
                    (report.Mitigation.Frontier.r_hits
                    + report.Mitigation.Frontier.r_disk_hits);
                  ( mitigate_response entry op answer report
                      (Unix.gettimeofday () -. t0),
                    false )
              | exception e ->
                  (Protocol.error (Printexc.to_string e), false))))
  | Protocol.Solve { program; limit; optimal } ->
      (solve_response ~program ~limit ~optimal, false)
  | Protocol.Status ->
      ( Protocol.ok
          [
            ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
            ("models", Json.Int (Registry.count t.registry));
            ("queue", queue_to_json t);
            ("store", store_to_json t);
            ( "jobs",
              match t.config.jobs with
              | Some j -> Json.Int j
              | None -> Json.Null );
          ],
        false )
  | Protocol.Stats ->
      ( Protocol.ok
          [
            ( "models",
              Json.List
                (List.map Registry.entry_to_json (Registry.list t.registry))
            );
            ("queue", queue_to_json t);
            ("store", store_to_json t);
          ],
        false )
  | Protocol.List_models ->
      ( Protocol.ok
          [
            ( "models",
              Json.List
                (List.map
                   (fun (e : Registry.entry) -> Json.String e.Registry.name)
                   (Registry.list t.registry)) );
          ],
        false )
  | Protocol.Evict_model { name } ->
      let existed = Registry.evict t.registry name in
      ( (if existed then Protocol.ok [ ("model", Json.String name) ]
         else Protocol.error (Printf.sprintf "unknown model %S" name)),
        false )
  | Protocol.Shutdown ->
      log t "shutdown requested";
      (Protocol.ok [ ("stopping", Json.Bool true) ], true)

(* ------------------------------------------------------------------ *)
(* Connection and accept loops                                         *)
(* ------------------------------------------------------------------ *)

let request_stop t =
  if not (Atomic.exchange t.stop_requested true) then
    (* wake the blocked accept with a throwaway connection — closing the
       listening fd from another thread does NOT interrupt accept(2) *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX t.config.socket)
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let response, stop =
          match Protocol.parse_request line with
          | Error msg -> (Protocol.error msg, false)
          | Ok request -> (
              match handle_request t request with
              | r -> r
              | exception e ->
                  (Protocol.error (Printexc.to_string e), false))
        in
        output_string oc (Json.to_string response);
        output_char oc '\n';
        flush oc;
        if stop then request_stop t else loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let run ?on_ready config =
  let store =
    Option.map
      (fun dir ->
        Store.open_
          ?max_bytes:(Option.map (fun mb -> mb * 1024 * 1024) config.cache_mb)
          dir)
      config.cache_dir
  in
  let registry = Registry.create ?store () in
  let t_ref = ref None in
  let queue =
    Queue.create ~batch:(fun reqs ->
        match !t_ref with
        | Some t -> run_batch t reqs
        | None -> assert false (* queue only serves after [t] is built *))
  in
  let t =
    {
      config;
      store;
      registry;
      queue;
      started_at = Unix.gettimeofday ();
      listen_fd = None;
      stop_requested = Atomic.make false;
    }
  in
  t_ref := Some t;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.stat config.socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink config.socket
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  Unix.bind fd (Unix.ADDR_UNIX config.socket);
  Unix.listen fd 64;
  t.listen_fd <- Some fd;
  log t "listening on %s%s" config.socket
    (match config.cache_dir with
    | Some d -> Printf.sprintf " (cache %s)" d
    | None -> " (no persistent cache)");
  (match on_ready with Some f -> f () | None -> ());
  let workers = ref [] in
  let rec accept_loop () =
    if not (Atomic.get t.stop_requested) then
      match Unix.accept fd with
      | client, _ when Atomic.get t.stop_requested ->
          (* the wake-up connection from request_stop, or a client racing
             the shutdown — either way, stop serving *)
          (try Unix.close client with Unix.Unix_error _ -> ())
      | client, _ ->
          workers :=
            Thread.create (fun () -> handle_connection t client) ()
            :: !workers;
          accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (* orderly teardown: finish in-flight connections, drain the queue,
     persist the store's manifest, remove the socket file *)
  List.iter
    (fun th -> try Thread.join th with _ -> ())
    !workers;
  Queue.stop t.queue;
  (match store with Some s -> Store.close s | None -> ());
  (match t.listen_fd with
  | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  log t "stopped"
