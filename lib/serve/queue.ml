type ('req, 'resp) cell = {
  req : 'req;
  mutable resp : ('resp, exn) result option;
  cell_done : Condition.t;
}

type ('req, 'resp) t = {
  batch : 'req array -> 'resp array;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable pending : ('req, 'resp) cell list;  (* newest first *)
  mutable stopped : bool;
  mutable worker_exited : bool;
  exited : Condition.t;
  (* counters *)
  mutable submitted : int;
  mutable batches : int;
  mutable max_batch : int;
}

exception Stopped

let rec worker t =
  Mutex.lock t.lock;
  while t.pending = [] && not t.stopped do
    Condition.wait t.nonempty t.lock
  done;
  if t.pending = [] (* stopped, fully drained *) then begin
    t.worker_exited <- true;
    Condition.broadcast t.exited;
    Mutex.unlock t.lock
  end
  else begin
    (* drain everything that queued up while the previous batch ran: that
       backlog is exactly what gets coalesced into one engine pass *)
    let cells = Array.of_list (List.rev t.pending) in
    t.pending <- [];
    t.batches <- t.batches + 1;
    t.max_batch <- max t.max_batch (Array.length cells);
    Mutex.unlock t.lock;
    let outcome =
      match t.batch (Array.map (fun c -> c.req) cells) with
      | resps when Array.length resps = Array.length cells ->
          Array.map (fun r -> Ok r) resps
      | _ ->
          Array.map
            (fun _ -> Error (Invalid_argument "Queue: batch arity mismatch"))
            cells
      | exception e -> Array.map (fun _ -> Error e) cells
    in
    Mutex.lock t.lock;
    Array.iteri
      (fun i c ->
        c.resp <- Some outcome.(i);
        Condition.broadcast c.cell_done)
      cells;
    Mutex.unlock t.lock;
    worker t
  end

let create ~batch =
  let t =
    {
      batch;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      pending = [];
      stopped = false;
      worker_exited = false;
      exited = Condition.create ();
      submitted = 0;
      batches = 0;
      max_batch = 0;
    }
  in
  ignore (Thread.create worker t);
  t

let submit t req =
  let cell = { req; resp = None; cell_done = Condition.create () } in
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    raise Stopped
  end;
  t.pending <- cell :: t.pending;
  t.submitted <- t.submitted + 1;
  Condition.signal t.nonempty;
  while cell.resp = None do
    Condition.wait cell.cell_done t.lock
  done;
  Mutex.unlock t.lock;
  match cell.resp with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let stop t =
  Mutex.lock t.lock;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.nonempty
  end;
  (* wait for the worker to drain what was already accepted *)
  while not t.worker_exited do
    Condition.wait t.exited t.lock
  done;
  Mutex.unlock t.lock

let pending t =
  Mutex.lock t.lock;
  let n = List.length t.pending in
  Mutex.unlock t.lock;
  n

type stats = { submitted : int; batches : int; max_batch : int }

let stats t =
  Mutex.lock t.lock;
  let s =
    { submitted = t.submitted; batches = t.batches; max_batch = t.max_batch }
  in
  Mutex.unlock t.lock;
  s
