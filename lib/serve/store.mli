(** On-disk content-addressed cache: {!Engine.Fingerprint} → marshalled
    value, one file per entry, surviving process restarts. This is the
    persistent tier behind {!Engine.Cache} (plug it in with {!persist}) —
    the piece that turns the sweep engine's ~370x cached-re-sweep advantage
    into the steady state across daemon restarts.

    {2 Format and crash safety}

    An entry file [<fp-hex>.ent] is one header line — magic, format
    version, writing OCaml version, fingerprint, payload length, MD5 — then
    the marshalled payload. Readers verify all six fields; any mismatch
    (bad magic, stale format {e or} stale OCaml runtime, truncation,
    checksum failure) classifies the entry as corrupt: it is deleted and
    reported as a miss, never misread.

    Writes go to a [tmp-]-prefixed file in the same directory and are
    published with an atomic [rename], so concurrent readers — including
    readers in other processes — observe either the old entry or the
    complete new one. A writer killed mid-write leaves only [tmp-] debris,
    which {!open_} sweeps away.

    A [manifest] file snapshots the index and the LRU recency stamps. It
    is a hint, not a source of truth: {!open_} reconciles it against the
    entry files actually present, so deleting it only forgets recency.

    {2 Eviction}

    With [max_bytes] set, storing an entry evicts least-recently-used
    entries (by a logical access clock, persisted in the manifest) until
    the total is back under the bound. A value larger than the whole bound
    is not admitted at all.

    {2 Concurrency}

    One handle may be shared across domains (a mutex guards the index).
    Several handles — even in different processes — may point at the same
    directory: rename-publishing keeps readers safe against a live writer,
    and a handle that finds an entry it did not write adopts it into its
    index. Two stores of {e different} value types must not share a
    directory; the header guards the format, not the payload type. *)

type 'a t

type stats = {
  mutable hits : int;  (** entries found, verified and unmarshalled *)
  mutable misses : int;  (** absent entries, plus corrupt ones *)
  mutable stored : int;  (** successful writes *)
  mutable evicted : int;  (** entries removed by the size bound *)
  mutable corrupt : int;  (** entries rejected and deleted *)
}

val open_ : ?max_bytes:int -> string -> 'a t
(** Open (creating if needed) the store rooted at the given directory:
    delete leftover [tmp-] files, load the manifest and reconcile it with
    the entry files on disk. [max_bytes] bounds the total entry bytes;
    omitted means unbounded. *)

val find : 'a t -> Engine.Fingerprint.t -> 'a option
(** Read and verify an entry. [None] on a miss {e and} on a corrupt entry
    (which is deleted and counted in [stats.corrupt]). A hit refreshes the
    entry's LRU stamp. *)

val store : 'a t -> Engine.Fingerprint.t -> 'a -> unit
(** Atomically publish an entry (tmp file + rename), then evict down to
    [max_bytes] and rewrite the manifest. Write failures (full disk,
    permissions) leave the store unchanged. *)

val mem : 'a t -> Engine.Fingerprint.t -> bool
(** Entry file present (without verifying it). *)

val entries : 'a t -> int
val total_bytes : 'a t -> int
(** Indexed entries / their total on-disk bytes. *)

val max_bytes : 'a t -> int option
val dir : 'a t -> string

val stats : 'a t -> stats
(** Snapshot of the lifetime counters of this handle. *)

val stats_to_json : stats -> Json.t

val flush : 'a t -> unit
(** Rewrite the manifest now (persists access recency). *)

val close : 'a t -> unit
(** {!flush} once; further calls are no-ops. The handle itself holds no
    open file descriptors between operations, so there is nothing else to
    release. *)

val persist : ?rehydrate:('a -> 'a) -> 'a t -> 'a Engine.Cache.persist
(** Adapter: use this store as the persistent tier of an
    {!Engine.Cache}. The [store] direction swallows exceptions — a broken
    disk degrades the cache to memory-only instead of failing sweeps.

    [rehydrate] is applied to every loaded value. Unmarshalling bypasses
    the smart constructors of hash-consed types ({!Asp.Term.t}): loaded
    terms are structurally correct but not interned, so they miss the
    pointer-equality fast paths and O(1) hashes until re-interned. Pass
    the value's re-interning pass (e.g. {!Asp.Model.rehydrate} over each
    model) to restore full sharing on the promotion path. *)
