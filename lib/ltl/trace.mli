(** Finite traces of qualitative states and LTLf evaluation over them. *)

type t
(** A non-empty finite sequence of {!Qual.Qstate.t}. *)

val of_list : Qual.Qstate.t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val to_list : t -> Qual.Qstate.t list
val length : t -> int
val state : t -> int -> Qual.Qstate.t
val last : t -> Qual.Qstate.t

val default_holds : Qual.Qstate.t -> string -> bool
(** Interprets the atom ["var=value"] as [Qstate.holds var value] and a bare
    atom ["var"] as [Qstate.holds var "true"]. *)

val eval : ?holds:(Qual.Qstate.t -> string -> bool) -> t -> Formula.t -> bool
(** Satisfaction at the first position (finite-trace LTLf semantics).
    Implemented by {!progress}ing the formula through the trace — a single
    O(length * |formula-closure|) pass with early exit, instead of
    {!eval_at}'s O(length²) temporal-operator rescans. *)

val eval_at :
  ?holds:(Qual.Qstate.t -> string -> bool) -> t -> int -> Formula.t -> bool
(** Satisfaction at position [i], by direct recursive evaluation. The
    reference semantics: kept as the oracle {!eval} and {!progress} are
    differentially tested against. *)

val progress :
  ?holds:(Qual.Qstate.t -> string -> bool) ->
  Qual.Qstate.t ->
  is_last:bool ->
  Formula.t ->
  Formula.t
(** Bacchus–Kabanza formula progression: the returned formula must hold on
    the remainder of the trace. With [is_last:true] the result simplifies to
    [True] or [False] — the verdict for the whole trace. Used for online
    monitoring and incremental checking. *)

val pp : Format.formatter -> t -> unit
