type t = Qual.Qstate.t array

let of_list = function
  | [] -> invalid_arg "Trace.of_list: empty trace"
  | l -> Array.of_list l

let to_list = Array.to_list
let length = Array.length
let state t i = t.(i)
let last t = t.(Array.length t - 1)

let default_holds st atom =
  match String.index_opt atom '=' with
  | Some i ->
      let var = String.sub atom 0 i in
      let value = String.sub atom (i + 1) (String.length atom - i - 1) in
      Qual.Qstate.holds var value st
  | None -> Qual.Qstate.holds atom "true" st

let rec eval_at ?(holds = default_holds) trace i f =
  let n = Array.length trace in
  let ev i f = eval_at ~holds trace i f in
  match (f : Formula.t) with
  | True -> true
  | False -> false
  | Atom a -> holds trace.(i) a
  | Not f -> not (ev i f)
  | And (a, b) -> ev i a && ev i b
  | Or (a, b) -> ev i a || ev i b
  | Implies (a, b) -> (not (ev i a)) || ev i b
  | Next f -> i + 1 < n && ev (i + 1) f
  | Wnext f -> i + 1 >= n || ev (i + 1) f
  | Eventually f ->
      let rec exists j = j < n && (ev j f || exists (j + 1)) in
      exists i
  | Always f ->
      let rec forall j = j >= n || (ev j f && forall (j + 1)) in
      forall i
  | Until (a, b) ->
      let rec go j =
        j < n && (ev j b || (ev j a && go (j + 1)))
      in
      go i
  | Release (a, b) ->
      let rec go j =
        if j >= n then true
        else if not (ev j b) then false
        else ev j a || go (j + 1)
      in
      go i

(* smart constructors with constant folding *)
let sand a b =
  match (a : Formula.t), (b : Formula.t) with
  | False, _ | _, False -> Formula.False
  | True, f | f, True -> f
  | a, b -> Formula.And (a, b)

let sor a b =
  match (a : Formula.t), (b : Formula.t) with
  | True, _ | _, True -> Formula.True
  | False, f | f, False -> f
  | a, b -> Formula.Or (a, b)

let rec progress ?(holds = default_holds) st ~is_last f =
  let prog f = progress ~holds st ~is_last f in
  match (f : Formula.t) with
  | True -> Formula.True
  | False -> Formula.False
  | Atom a -> if holds st a then Formula.True else Formula.False
  | Not f -> (
      match prog f with
      | Formula.True -> Formula.False
      | Formula.False -> Formula.True
      | g -> Formula.Not g)
  | And (a, b) -> sand (prog a) (prog b)
  | Or (a, b) -> sor (prog a) (prog b)
  | Implies (a, b) -> prog (Formula.Or (Formula.Not a, b))
  | Next f -> if is_last then Formula.False else f
  | Wnext f -> if is_last then Formula.True else f
  | Eventually f ->
      sor (prog f) (if is_last then Formula.False else Formula.Eventually f)
  | Always f ->
      sand (prog f) (if is_last then Formula.True else Formula.Always f)
  | Until (a, b) ->
      sor (prog b)
        (sand (prog a) (if is_last then Formula.False else Formula.Until (a, b)))
  | Release (a, b) ->
      sand (prog b)
        (sor (prog a) (if is_last then Formula.True else Formula.Release (a, b)))

(* Bounded checking by progression: rewrite the formula through the states
   left to right, one O(|f|) step per state. [progress ~is_last] always
   folds to a verdict at the final state, so the loop needs no lookahead
   and exits early the moment the formula collapses to True/False. *)
let eval ?(holds = default_holds) trace f =
  let n = Array.length trace in
  let rec go i f =
    match (f : Formula.t) with
    | True -> true
    | False -> false
    | f -> go (i + 1) (progress ~holds trace.(i) ~is_last:(i = n - 1) f)
  in
  go 0 f

let pp ppf t =
  Array.iteri
    (fun i st ->
      if i > 0 then Format.fprintf ppf " -> ";
      Qual.Qstate.pp ppf st)
    t
