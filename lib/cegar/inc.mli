(** Incremental CEGAR on the engine: the refinement loop of {!Loop},
    rebuilt as deltas over warm grounder state instead of fresh
    pipelines.

    A refinement schedule is a base ASP program plus a list of structural
    increments (one per refinement level). The incremental driver pays
    one {!Asp.Grounder.prepare} for the base and one
    {!Asp.Grounder.extend_prepare} per level — round [k+1] reuses round
    [k]'s ground program — where the scratch driver re-grounds the
    accumulated program from nothing every round.

    Candidates are {!Engine.Delta}s assessed against each level and kept
    or eliminated by a caller predicate over the stable models. Two
    candidate encodings are supported:

    - {b Assume}: a candidate compiles to solver assumptions over
      choice-opened control atoms. All candidates of a round then solve
      the {e identical} ground program, which makes cross-solve learned-
      nogood carry through {!Asp.Exchange} sound: the hub only ever
      receives assumption-free 1-UIP clauses (PR 7's taint discipline —
      blocking / local clauses are never exported), and such clauses are
      consequences of the shared program alone, valid under any
      assumption set. The hub persists across rounds while the program is
      unchanged and is {e flushed} at every structural level, where the
      old program's completion/loop nogoods would no longer be justified.
    - {b Increment}: a candidate compiles to a program increment applied
      via {!Asp.Grounder.extend} against the level's warm state, with
      results deduplicated through {!Engine.Cache} by structural
      fingerprint — a candidate re-assessed against an unchanged level is
      a cache hit, not a solve.

    The scratch driver {!run_scratch} is the retained oracle: cold
    grounding, no cache, no hub, sequential — differential tests pin
    {!run}'s rounds, survivors and verdicts bit-for-bit against it. *)

type level = {
  l_label : string;
  l_structure : Asp.Program.t;
      (** the structural increment this level adds; an empty program is a
          re-assessment round (same ground program — in Assume mode its
          survivors are answered from the cache) *)
}

type mode =
  | Assume of (Engine.Delta.t -> (Asp.Atom.t * bool) list)
      (** candidate -> assumption set. Every assumed atom must exist in
          the (choice-opened) universe: assuming an absent atom true is
          UNSAT by construction. *)
  | Increment of (Engine.Delta.t -> Asp.Program.t)
      (** candidate -> program increment over the level's base *)

type spec = {
  base : Asp.Program.t;
  levels : level list;
  candidates : Engine.Delta.t list;
  mode : mode;
  keep : Asp.Model.t list -> bool;
      (** survival predicate over the candidate's stable models (sorted,
          deduplicated — order-canonical, so verdicts are deterministic) *)
  limit : int option;
      (** stop each assessment after this many models. A [keep] that only
          tests satisfiability ([models <> []]) is sound with [Some 1] —
          and much cheaper on encodings with many routes per candidate.
          Both drivers apply the same limit, so outcomes stay
          differential. *)
  max_atoms : int;  (** grounder universe bound, as in {!Asp.Grounder} *)
}

type round = {
  r_level : int;  (** 0 = base abstraction, then one per schedule level *)
  r_label : string;
  r_survivors : Engine.Delta.t list;  (** in candidate order *)
  r_eliminated : Engine.Delta.t list;
      (** candidates this round proved spurious *)
}

type stats = {
  s_rounds : int;
  s_solves : int;  (** fresh solves actually run *)
  s_hits : int;  (** assessments answered from cache memory *)
  s_disk_hits : int;
  s_fresh : int;
  s_carried : int;
      (** learned nogoods imported from the hub across candidate solves
          (Assume mode; [Solver.Stats.shared_in] summed over fresh
          solves) *)
  s_published : int;  (** nogoods exported to the hub *)
  s_flushes : int;  (** hub resets forced by structural levels *)
  s_ground : Asp.Grounder.Stats.t;
      (** aggregated grounding effort — fresh vs reused instance counts
          show extend-vs-scratch sharing *)
  s_wall_s : float;
}

type outcome = {
  rounds : round list;  (** in refinement order, length = 1 + levels *)
  confirmed : Engine.Delta.t list;  (** survivors of the final round *)
  stats : stats;
}

type value = Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t
(** What the cache memoizes per candidate fingerprint — the
    {!Engine.Sweep} cache triple, so a serve-layer cache can be shared. *)

val run :
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?share:bool ->
  ?cache:value Engine.Cache.t ->
  spec ->
  outcome
(** The incremental driver. Candidates of a round are assessed in
    parallel over {!Engine.Pool} ([jobs] as in {!Engine.Pool.map});
    [share] (default true) enables the learned-nogood hub in Assume mode;
    a caller-supplied [cache] survives across calls (and, with a persist
    hook, across processes). Deterministic: the outcome is independent of
    [jobs] and [share]. Raises [Invalid_argument] on an empty candidate
    list, and like {!Asp.Grounder} on unsafe or overflowing programs. *)

val run_scratch : spec -> outcome
(** The retained scratch oracle: every round re-grounds the accumulated
    program cold ({!Asp.Grounder.ground]) and solves sequentially with no
    cache and no hub. [run spec] and [run_scratch spec] agree bit-for-bit
    on [rounds] and [confirmed]. *)

val fingerprint : spec -> int -> Engine.Delta.t -> Engine.Fingerprint.t
(** [fingerprint spec level c]: the cache key of candidate [c] assessed
    at [level] — the accumulated structural fingerprint extended with the
    candidate's assumptions or increment. Exposed for tests and the serve
    layer. *)
