type t = {
  target : string;
  parts : Archimate.Element.t list;
  internal_flows : (string * string) list;
}

let apply model r =
  (match Archimate.Model.element r.target model with
  | None ->
      invalid_arg
        (Printf.sprintf "Refine.apply: target %s not in model" r.target)
  | Some _ -> ());
  let model =
    List.fold_left (fun m e -> Archimate.Model.add_element e m) model r.parts
  in
  let model =
    List.fold_left
      (fun m (e : Archimate.Element.t) ->
        Archimate.Model.add_relationship
          (Archimate.Relationship.make
             ~id:(Printf.sprintf "comp_%s_%s" r.target e.Archimate.Element.id)
             ~source:r.target ~target:e.Archimate.Element.id
             ~kind:Archimate.Relationship.Composition ())
          m)
      model r.parts
  in
  List.fold_left
    (fun m (src, dst) ->
      Archimate.Model.add_relationship
        (Archimate.Relationship.make
           ~id:(Printf.sprintf "iflow_%s_%s" src dst)
           ~source:src ~target:dst ~kind:Archimate.Relationship.Flow ())
        m)
    model r.internal_flows

let parts_of model id =
  List.map
    (fun (e : Archimate.Element.t) -> e.Archimate.Element.id)
    (Archimate.Model.parts id model)

let attack_path model ~entry ~target =
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen entry ();
  let rec bfs frontier =
    if frontier = [] then None
    else if List.exists (fun (id, _) -> id = target) frontier then
      let _, path = List.find (fun (id, _) -> id = target) frontier in
      Some (List.rev path)
    else
      let next =
        List.concat_map
          (fun (id, path) ->
            Archimate.Model.successors ~kind:Archimate.Relationship.Flow id model
            |> List.filter_map (fun (e : Archimate.Element.t) ->
                   let eid = e.Archimate.Element.id in
                   if Hashtbl.mem seen eid then None
                   else begin
                     Hashtbl.replace seen eid ();
                     Some (eid, eid :: path)
                   end))
          frontier
      in
      bfs next
  in
  bfs [ (entry, [ entry ]) ]

let flatten model id =
  (* hashed seen-set: nested compositions revisit shared parts, and the
     [List.mem] accumulator scan was quadratic in the part count *)
  let seen = Hashtbl.create 32 in
  let to_remove = ref [] in
  let rec collect eid =
    List.iter
      (fun (e : Archimate.Element.t) ->
        let pid = e.Archimate.Element.id in
        if not (Hashtbl.mem seen pid) then begin
          Hashtbl.replace seen pid ();
          to_remove := pid :: !to_remove;
          collect pid
        end)
      (Archimate.Model.parts eid model)
  in
  collect id;
  List.fold_left
    (fun m eid -> Archimate.Model.remove_element eid m)
    model !to_remove
