(** CEGAR-styled refinement loop (Fig. 1 step 5): the abstract analysis
    over-approximates — "the method guarantees that no actual hazardous
    attack is overlooked" — and successive refinement rounds eliminate
    spurious candidates until the candidate set stabilizes or no refinement
    remains.

    The driver is generic in the candidate type: the water-tank tool
    instantiates it with attack scenarios, with refinement moving from
    topology-based propagation to behaviour-level EPA. *)

type 'c round = {
  level : int;                (** 0 = initial abstraction *)
  candidates : 'c list;       (** hazard candidates surviving this level *)
  eliminated : 'c list;       (** spurious candidates removed by this level *)
}

type 'c outcome = {
  rounds : 'c round list;     (** in refinement order *)
  confirmed : 'c list;        (** candidates of the final round *)
  converged : bool;           (** no refinement remained applicable *)
}

val run :
  ?max_rounds:int ->
  ?key:('c -> string) ->
  equal:('c -> 'c -> bool) ->
  initial:(unit -> 'c list) ->
  refine:(int -> 'c list -> 'c list option) ->
  unit ->
  'c outcome
(** [refine level candidates] re-analyzes at the next refinement level and
    returns the surviving candidates, or [None] when no further refinement
    exists. Candidates {e introduced} by a refinement (absent from the
    abstract round) violate the over-approximation contract and raise
    [Invalid_argument] — abstraction soundness is enforced, not assumed.
    [max_rounds] defaults to 10.

    [key], when given, must agree with [equal] ([equal a b] iff
    [key a = key b]); the per-round membership diffs then use hashed key
    sets — linear per round — instead of the pairwise [equal] scans,
    which are quadratic in the candidate count. *)
