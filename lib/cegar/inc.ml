module Fp = Engine.Fingerprint

type level = { l_label : string; l_structure : Asp.Program.t }

type mode =
  | Assume of (Engine.Delta.t -> (Asp.Atom.t * bool) list)
  | Increment of (Engine.Delta.t -> Asp.Program.t)

type spec = {
  base : Asp.Program.t;
  levels : level list;
  candidates : Engine.Delta.t list;
  mode : mode;
  keep : Asp.Model.t list -> bool;
  limit : int option;
  max_atoms : int;
}

type round = {
  r_level : int;
  r_label : string;
  r_survivors : Engine.Delta.t list;
  r_eliminated : Engine.Delta.t list;
}

type stats = {
  s_rounds : int;
  s_solves : int;
  s_hits : int;
  s_disk_hits : int;
  s_fresh : int;
  s_carried : int;
  s_published : int;
  s_flushes : int;
  s_ground : Asp.Grounder.Stats.t;
  s_wall_s : float;
}

type outcome = {
  rounds : round list;
  confirmed : Engine.Delta.t list;
  stats : stats;
}

type value = Asp.Model.t list * Asp.Solver.Stats.t * Asp.Grounder.Stats.t

(* The accumulated structural fingerprint after [level] increments, under
   the engine's extend law: fingerprint(base ++ d) = extend (fp base) d. *)
let level_fp spec level =
  let rec go fp k = function
    | l :: rest when k < level -> go (Fp.extend fp l.l_structure) (k + 1) rest
    | _ -> fp
  in
  go (Fp.program spec.base) 0 spec.levels

(* Assumption sets address the cache through a content hash of the
   (atom, value) pairs — [Hashtbl.hash] on strings is deterministic
   across processes, so persisted entries stay addressable. *)
let assumption_fp assumptions =
  Fp.ints
    (List.concat_map
       (fun (a, v) -> [ Hashtbl.hash (Asp.Atom.to_string a); Bool.to_int v ])
       assumptions)

let candidate_fp mode fp c =
  match mode with
  | Assume f -> Fp.combine fp (assumption_fp (f c))
  | Increment f -> Fp.extend fp (f c)

let fingerprint spec level c = candidate_fp spec.mode (level_fp spec level) c

let add_gstats (acc : Asp.Grounder.Stats.t) (d : Asp.Grounder.Stats.t) =
  let open Asp.Grounder.Stats in
  acc.passes <- acc.passes + d.passes;
  acc.firings <- acc.firings + d.firings;
  acc.probes <- acc.probes + d.probes;
  acc.fresh_rules <- acc.fresh_rules + d.fresh_rules;
  acc.reused_rules <- acc.reused_rules + d.reused_rules;
  acc.wall_s <- acc.wall_s +. d.wall_s

let run ?jobs ?oversubscribe ?(share = true) ?cache spec =
  if spec.candidates = [] then invalid_arg "Cegar.Inc.run: no candidates";
  let t0 = Unix.gettimeofday () in
  let cache = match cache with Some c -> c | None -> Engine.Cache.create () in
  let gstats = Asp.Grounder.Stats.create () in
  let n0 = List.length spec.candidates in
  let prep =
    ref (Asp.Grounder.prepare ~max_atoms:spec.max_atoms ~stats:gstats spec.base)
  in
  let fp = ref (Fp.program spec.base) in
  let hub = ref (Asp.Exchange.create ~paths:n0 ()) in
  let flushes = ref 0 in
  let hits = ref 0 and disk = ref 0 and fresh = ref 0 in
  let carried = ref 0 and published = ref 0 and solves = ref 0 in
  (* Assess the surviving candidates of one round in parallel. Workers
     only read shared state and report through the (domain-safe) cache;
     counters are tallied from the result array in this domain. *)
  let assess survivors =
    let cur_fp = !fp and cur_prep = !prep and cur_hub = !hub in
    let ground_now =
      match spec.mode with
      | Assume _ -> Some (Asp.Grounder.base cur_prep)
      | Increment _ -> None
    in
    Engine.Pool.map ?oversubscribe ?jobs
      (fun i ->
        let orig, c = survivors.(i) in
        let cfp = candidate_fp spec.mode cur_fp c in
        let value, src =
          Engine.Cache.find_or_compute_src cache cfp (fun () ->
              match spec.mode with
              | Assume f ->
                  let config =
                    if share then
                      { Asp.Solver.Config.default with
                        exchange = Some (cur_hub, orig)
                      }
                    else Asp.Solver.Config.default
                  in
                  let models, ss =
                    Asp.Solver.solve_with_stats ?limit:spec.limit ~config
                      ~assumptions:(f c)
                      (Option.get ground_now)
                  in
                  (models, ss, Asp.Grounder.Stats.create ())
              | Increment f ->
                  let gs = Asp.Grounder.Stats.create () in
                  let g = Asp.Grounder.extend ~stats:gs cur_prep (f c) in
                  let models, ss =
                    Asp.Solver.solve_with_stats ?limit:spec.limit g
                  in
                  (models, ss, gs))
        in
        (c, value, src))
      (Array.length survivors)
  in
  let tally results =
    Array.iter
      (fun (_, ((_, ss, gs) : value), src) ->
        match src with
        | Engine.Cache.Fresh ->
            incr fresh;
            incr solves;
            carried := !carried + ss.Asp.Solver.Stats.shared_in;
            published := !published + ss.Asp.Solver.Stats.shared_out;
            add_gstats gstats gs
        | Engine.Cache.Memory -> incr hits
        | Engine.Cache.Disk -> incr disk)
      results
  in
  let rounds = ref [] in
  let survivors =
    ref (Array.of_list (List.mapi (fun i c -> (i, c)) spec.candidates))
  in
  let do_round lvl label =
    let res = assess !survivors in
    tally res;
    let surv = ref [] and elim = ref [] in
    Array.iteri
      (fun i (c, ((models, _, _) : value), _) ->
        let orig = fst !survivors.(i) in
        if spec.keep models then surv := (orig, c) :: !surv
        else elim := c :: !elim)
      res;
    let surv = Array.of_list (List.rev !surv) in
    rounds :=
      {
        r_level = lvl;
        r_label = label;
        r_survivors = Array.to_list (Array.map snd surv);
        r_eliminated = List.rev !elim;
      }
      :: !rounds;
    survivors := surv
  in
  do_round 0 "base";
  List.iteri
    (fun k l ->
      if Asp.Program.rules l.l_structure <> [] then begin
        prep := Asp.Grounder.extend_prepare ~stats:gstats !prep l.l_structure;
        fp := Fp.extend !fp l.l_structure;
        match spec.mode with
        | Assume _ when share ->
            (* the ground program changed: the old program's learned
               clauses are no longer justified — start a fresh hub *)
            hub := Asp.Exchange.create ~paths:n0 ();
            incr flushes
        | _ -> ()
      end;
      do_round (k + 1) l.l_label)
    spec.levels;
  let rounds = List.rev !rounds in
  {
    rounds;
    confirmed = Array.to_list (Array.map snd !survivors);
    stats =
      {
        s_rounds = List.length rounds;
        s_solves = !solves;
        s_hits = !hits;
        s_disk_hits = !disk;
        s_fresh = !fresh;
        s_carried = !carried;
        s_published = !published;
        s_flushes = !flushes;
        s_ground = gstats;
        s_wall_s = Unix.gettimeofday () -. t0;
      };
  }

let run_scratch spec =
  if spec.candidates = [] then
    invalid_arg "Cegar.Inc.run_scratch: no candidates";
  let t0 = Unix.gettimeofday () in
  let gstats = Asp.Grounder.Stats.create () in
  let solves = ref 0 in
  let rounds = ref [] in
  let survivors = ref spec.candidates in
  let program = ref spec.base in
  let do_round lvl label =
    (* cold every round: one scratch ground shared by the round's
       assumption solves, or one per candidate increment *)
    let ground_shared =
      match spec.mode with
      | Assume _ when !survivors <> [] ->
          Some
            (Asp.Grounder.ground ~max_atoms:spec.max_atoms ~stats:gstats
               !program)
      | _ -> None
    in
    let surv = ref [] and elim = ref [] in
    List.iter
      (fun c ->
        incr solves;
        let models =
          match spec.mode with
          | Assume f ->
              Asp.Solver.solve ?limit:spec.limit ~assumptions:(f c)
                (Option.get ground_shared)
          | Increment f ->
              Asp.Solver.solve ?limit:spec.limit
                (Asp.Grounder.ground ~max_atoms:spec.max_atoms ~stats:gstats
                   (Asp.Program.append !program (f c)))
        in
        if spec.keep models then surv := c :: !surv else elim := c :: !elim)
      !survivors;
    rounds :=
      {
        r_level = lvl;
        r_label = label;
        r_survivors = List.rev !surv;
        r_eliminated = List.rev !elim;
      }
      :: !rounds;
    survivors := List.rev !surv
  in
  do_round 0 "base";
  List.iteri
    (fun k l ->
      if Asp.Program.rules l.l_structure <> [] then
        program := Asp.Program.append !program l.l_structure;
      do_round (k + 1) l.l_label)
    spec.levels;
  {
    rounds = List.rev !rounds;
    confirmed = !survivors;
    stats =
      {
        s_rounds = List.length !rounds;
        s_solves = !solves;
        s_hits = 0;
        s_disk_hits = 0;
        s_fresh = !solves;
        s_carried = 0;
        s_published = 0;
        s_flushes = 0;
        s_ground = gstats;
        s_wall_s = Unix.gettimeofday () -. t0;
      };
  }
