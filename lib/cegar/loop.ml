type 'c round = {
  level : int;
  candidates : 'c list;
  eliminated : 'c list;
}

type 'c outcome = {
  rounds : 'c round list;
  confirmed : 'c list;
  converged : bool;
}

let run ?(max_rounds = 10) ?key ~equal ~initial ~refine () =
  let initial_candidates = initial () in
  (* membership test over [l]: a hashed key set when the caller supplies
     an injective [key] (O(1) per probe), the pairwise [equal] scan
     otherwise — refinement rounds over large candidate sets were
     quadratic in both the soundness check and the elimination diff *)
  let mem_of l =
    match key with
    | Some key ->
        let tbl = Hashtbl.create (max 16 (2 * List.length l)) in
        List.iter (fun c -> Hashtbl.replace tbl (key c) ()) l;
        fun c -> Hashtbl.mem tbl (key c)
    | None -> fun c -> List.exists (equal c) l
  in
  let rec go level candidates rounds =
    if level >= max_rounds then
      { rounds = List.rev rounds; confirmed = candidates; converged = false }
    else
      match refine level candidates with
      | None ->
          { rounds = List.rev rounds; confirmed = candidates; converged = true }
      | Some refined ->
          let in_candidates = mem_of candidates in
          let fresh =
            List.filter (fun c -> not (in_candidates c)) refined
          in
          if fresh <> [] then
            invalid_arg
              (Printf.sprintf
                 "Cegar.Loop.run: refinement at level %d introduced %d \
                  candidates absent from the abstraction (unsound abstraction)"
                 (level + 1) (List.length fresh));
          let in_refined = mem_of refined in
          let eliminated =
            List.filter (fun c -> not (in_refined c)) candidates
          in
          let round = { level = level + 1; candidates = refined; eliminated } in
          go (level + 1) refined (round :: rounds)
  in
  let round0 = { level = 0; candidates = initial_candidates; eliminated = [] } in
  go 0 initial_candidates [ round0 ]
