#!/usr/bin/env bash
# End-to-end check of the assessment service (ISSUE acceptance criteria):
#   1. `cpsrisk request sweep` against a warm daemon is bit-for-bit
#      identical to the one-shot `cpsrisk sweep` on the same mutations;
#   2. re-sweeping on the SAME daemon is answered from memory
#      (misses = 0);
#   3. re-sweeping against a RESTARTED daemon is answered entirely from
#      the persistent store — every job a disk hit, zero fresh grounding
#      and zero fresh solving, proven by the response's own accounting.
set -eu

CLI=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
dir=$(mktemp -d)
daemon=
cleanup() {
  [ -n "$daemon" ] && kill "$daemon" 2>/dev/null
  rm -rf "$dir"
}
trap cleanup EXIT
cd "$dir"

# distinct deltas, so the one-shot run prints no [cached] markers
cat > muts.txt <<'EOF'
s1: F1
s2: F2 / M1
s3: F1,F3 / M2
EOF

"$CLI" sweep muts.txt > oneshot.txt

start_daemon() {
  "$CLI" serve --socket s.sock --cache-dir cache --jobs 2 --quiet &
  daemon=$!
  for _ in $(seq 1 100); do
    [ -S s.sock ] && return
    sleep 0.1
  done
  echo "serve-smoke: daemon did not come up" >&2
  exit 1
}

stop_daemon() {
  "$CLI" request shutdown --socket s.sock > /dev/null
  wait "$daemon"
  daemon=
}

expect() { # expect <file> <needle> <what>
  if ! grep -qF "$2" "$1"; then
    echo "serve-smoke: $3: expected $2 in:" >&2
    cat "$1" >&2
    exit 1
  fi
}

# --- first daemon: cold cache, then warm memory --------------------------
start_daemon
"$CLI" request load-model --socket s.sock --name wt > /dev/null
"$CLI" request sweep muts.txt --socket s.sock --name wt > warm.txt
diff oneshot.txt warm.txt \
  || { echo "serve-smoke: served sweep differs from one-shot" >&2; exit 1; }
"$CLI" request sweep muts.txt --socket s.sock --name wt --json > repeat.json
expect repeat.json '"hits":3,"disk_hits":0,"misses":0' "warm-memory repeat"

# --- mitigation frontier answered from the loaded model's warm state -----
"$CLI" request mitigate --socket s.sock --name wt > mit.json
"$CLI" mitigate --frontier --case water-tank --json \
  | grep -o '"optimal": {[^}]*}' | tr -d ' ' > mit_oneshot.txt
grep -o '"optimal":{[^}]*}' mit.json > mit_served.txt
diff mit_oneshot.txt mit_served.txt \
  || { echo "serve-smoke: served mitigate differs from one-shot" >&2; exit 1; }
"$CLI" request mitigate --socket s.sock --name wt --json > mit2.json
expect mit2.json '"fresh":0' "warm mitigate repeat runs no fresh solves"

# the hierarchy backend serves the 12-action catalog the same way
"$CLI" request load-model --socket s.sock --name hier --backend hierarchy \
  > /dev/null
"$CLI" request mitigate --socket s.sock --name hier --budgets 3,9 > hier.json
expect hier.json '"curve":[{"budget":3' "hierarchy budget curve"
stop_daemon

# --- restarted daemon: everything must come from the persistent store ----
start_daemon
"$CLI" request load-model --socket s.sock --name wt > /dev/null
"$CLI" request sweep muts.txt --socket s.sock --name wt --json > restart.json
expect restart.json '"hits":0,"disk_hits":3,"misses":0' "restart provenance"
expect restart.json '"fresh":{"guesses":0,"firings":0' "no fresh solving"
expect restart.json '"ground":{"fresh_rules":0' "no fresh grounding"
"$CLI" request sweep muts.txt --socket s.sock --name wt > restarted.txt
diff oneshot.txt restarted.txt \
  || { echo "serve-smoke: restarted sweep differs from one-shot" >&2; exit 1; }
stop_daemon

echo "serve-smoke: restart served from disk, output identical to one-shot"
