(* Tests for the LTLf layer (lib/ltl). *)

let check = Alcotest.check
let fail = Alcotest.fail

let formula_testable = Alcotest.testable Ltl.Formula.pp Ltl.Formula.equal

let st bindings = Qual.Qstate.of_list bindings

let trace_of_levels levels =
  Ltl.Trace.of_list (List.map (fun l -> st [ ("level", l) ]) levels)

let parse = Ltl.Parser.parse
let eval tr f = Ltl.Trace.eval tr (parse f)

(* -------------------------------------------------------------------- *)
(* Parser                                                                *)
(* -------------------------------------------------------------------- *)

let test_parser_precedence () =
  check formula_testable "and binds tighter than or"
    Ltl.Formula.(Or (Atom "a", And (Atom "b", Atom "c")))
    (parse "a | b & c");
  check formula_testable "implies right assoc"
    Ltl.Formula.(Implies (Atom "a", Implies (Atom "b", Atom "c")))
    (parse "a -> b -> c");
  check formula_testable "until lowest"
    Ltl.Formula.(Until (Atom "a", Or (Atom "b", Atom "c")))
    (parse "a U b | c");
  check formula_testable "unary chain"
    Ltl.Formula.(Always (Not (Atom "a")))
    (parse "G ! a")

let test_parser_atoms_with_equals () =
  check formula_testable "embedded equals"
    Ltl.Formula.(Always (Not (Atom "level=overflow")))
    (parse "G !level=overflow")

let test_parser_roundtrip () =
  let formulas =
    [
      "G !level=overflow";
      "G (level=overflow -> F alert)";
      "a U (b R c)";
      "X a & WX b";
      "F (a & !b) -> G c";
    ]
  in
  List.iter
    (fun src ->
      let f = parse src in
      let f' = parse (Ltl.Formula.to_string f) in
      check formula_testable ("roundtrip " ^ src) f f')
    formulas

let test_parser_errors () =
  List.iter
    (fun src ->
      match parse src with
      | exception Ltl.Parser.Error _ -> ()
      | _ -> fail (Printf.sprintf "accepted malformed %S" src))
    [ "a &"; "(a"; "a Q b"; "" ]

(* -------------------------------------------------------------------- *)
(* Finite-trace semantics                                                *)
(* -------------------------------------------------------------------- *)

let test_eval_basic () =
  let tr = trace_of_levels [ "normal"; "high"; "overflow" ] in
  check Alcotest.bool "atom at start" true (eval tr "level=normal");
  check Alcotest.bool "not high at start" false (eval tr "level=high");
  check Alcotest.bool "next" true (eval tr "X level=high");
  check Alcotest.bool "eventually" true (eval tr "F level=overflow");
  check Alcotest.bool "always fails" false (eval tr "G level=normal");
  check Alcotest.bool "negation" true (eval tr "!level=high")

let test_eval_next_at_end () =
  let tr = trace_of_levels [ "normal" ] in
  check Alcotest.bool "strong next false at last" false (eval tr "X true");
  check Alcotest.bool "weak next true at last" true (eval tr "WX false")

let test_eval_until () =
  let tr = trace_of_levels [ "low"; "low"; "normal"; "high" ] in
  check Alcotest.bool "low until normal" true (eval tr "level=low U level=normal");
  check Alcotest.bool "until needs witness" false
    (eval tr "level=low U level=overflow");
  (* release: b must hold up to and including the release point *)
  let tr2 = trace_of_levels [ "safe"; "safe"; "done" ] in
  ignore tr2;
  check Alcotest.bool "release holds forever" true
    (eval (trace_of_levels [ "low"; "low" ]) "false R level=low")

let test_eval_requirements_of_paper () =
  (* R1: G !overflow; R2: G (overflow -> F alert) *)
  let mk level alert = st [ ("level", level); ("alert", alert) ] in
  let violating =
    Ltl.Trace.of_list
      [ mk "normal" "false"; mk "overflow" "false"; mk "overflow" "false" ]
  in
  let alerted =
    Ltl.Trace.of_list
      [ mk "normal" "false"; mk "overflow" "false"; mk "overflow" "true" ]
  in
  let r1 = "G !level=overflow" and r2 = "G (level=overflow -> F alert)" in
  check Alcotest.bool "R1 violated" false (Ltl.Trace.eval violating (parse r1));
  check Alcotest.bool "R2 violated without alert" false
    (Ltl.Trace.eval violating (parse r2));
  check Alcotest.bool "R2 holds with alert" true
    (Ltl.Trace.eval alerted (parse r2));
  check Alcotest.bool "R1 still violated with alert" false
    (Ltl.Trace.eval alerted (parse r1))

let test_nnf_preserves_semantics () =
  let tr = trace_of_levels [ "low"; "normal"; "high"; "high" ] in
  let formulas =
    [
      "!(level=low U level=high)";
      "!G (level=low -> F level=high)";
      "!(X level=normal & F level=high)";
      "!WX level=normal";
      "!(a R level=normal)";
    ]
  in
  List.iter
    (fun src ->
      let f = parse src in
      check Alcotest.bool ("nnf " ^ src)
        (Ltl.Trace.eval tr f)
        (Ltl.Trace.eval tr (Ltl.Formula.nnf f)))
    formulas

(* -------------------------------------------------------------------- *)
(* Progression agrees with direct evaluation                             *)
(* -------------------------------------------------------------------- *)

let formula_gen =
  let open QCheck.Gen in
  let atom = oneofl [ "level=low"; "level=normal"; "level=high"; "alert" ] in
  fix
    (fun self depth ->
      if depth <= 0 then map Ltl.Formula.atom atom
      else
        let sub = self (depth - 1) in
        frequency
          [
            (2, map Ltl.Formula.atom atom);
            (1, return Ltl.Formula.True);
            (1, return Ltl.Formula.False);
            (2, map Ltl.Formula.not_ sub);
            (2, map2 (fun a b -> Ltl.Formula.And (a, b)) sub sub);
            (2, map2 (fun a b -> Ltl.Formula.Or (a, b)) sub sub);
            (1, map2 Ltl.Formula.implies sub sub);
            (2, map Ltl.Formula.next sub);
            (1, map Ltl.Formula.wnext sub);
            (2, map Ltl.Formula.eventually sub);
            (2, map Ltl.Formula.always sub);
            (1, map2 Ltl.Formula.until sub sub);
            (1, map2 Ltl.Formula.release sub sub);
          ])
    3

let trace_gen =
  let open QCheck.Gen in
  let state =
    map2
      (fun level alert ->
        st [ ("level", level); ("alert", string_of_bool alert) ])
      (oneofl [ "low"; "normal"; "high" ])
      bool
  in
  map Ltl.Trace.of_list (list_size (int_range 1 6) state)

let prop_progression_agrees =
  QCheck.Test.make ~name:"ltl: progression verdict = direct evaluation"
    ~count:500
    (QCheck.make
       ~print:(fun (f, tr) ->
         Ltl.Formula.to_string f ^ " on trace of length "
         ^ string_of_int (Ltl.Trace.length tr))
       (QCheck.Gen.pair formula_gen trace_gen))
    (fun (f, tr) ->
      let n = Ltl.Trace.length tr in
      let rec drive f i =
        let is_last = i = n - 1 in
        let f' = Ltl.Trace.progress (Ltl.Trace.state tr i) ~is_last f in
        if is_last then f'
        else
          match f' with
          | Ltl.Formula.True | Ltl.Formula.False -> f'
          | _ -> drive f' (i + 1)
      in
      let verdict =
        match drive f 0 with
        | Ltl.Formula.True -> true
        | Ltl.Formula.False -> false
        | other ->
            QCheck.Test.fail_reportf "non-verdict %s"
              (Ltl.Formula.to_string other)
      in
      verdict = Ltl.Trace.eval_at tr 0 f)

(* [Trace.eval] is itself progression-based now, so the recursive
   [eval_at] is the reference it is checked against. *)
let prop_eval_agrees_eval_at =
  QCheck.Test.make ~name:"ltl: progression eval = recursive eval_at oracle"
    ~count:500
    (QCheck.make
       ~print:(fun (f, tr) ->
         Ltl.Formula.to_string f ^ " on trace of length "
         ^ string_of_int (Ltl.Trace.length tr))
       (QCheck.Gen.pair formula_gen trace_gen))
    (fun (f, tr) -> Ltl.Trace.eval tr f = Ltl.Trace.eval_at tr 0 f)

let prop_eval_at_is_suffix_eval =
  QCheck.Test.make ~name:"ltl: eval_at i = eval of the suffix trace"
    ~count:500
    (QCheck.make
       ~print:(fun (f, tr, _) ->
         Ltl.Formula.to_string f ^ " on trace of length "
         ^ string_of_int (Ltl.Trace.length tr))
       (QCheck.Gen.triple formula_gen trace_gen (QCheck.Gen.int_bound 5)))
    (fun (f, tr, k) ->
      let n = Ltl.Trace.length tr in
      let i = k mod n in
      let suffix =
        Ltl.Trace.of_list
          (List.filteri (fun j _ -> j >= i) (Ltl.Trace.to_list tr))
      in
      Ltl.Trace.eval_at tr i f = Ltl.Trace.eval suffix f)

let prop_nnf_agrees =
  QCheck.Test.make ~name:"ltl: nnf preserves finite-trace semantics" ~count:500
    (QCheck.make
       ~print:(fun (f, _) -> Ltl.Formula.to_string f)
       (QCheck.Gen.pair formula_gen trace_gen))
    (fun (f, tr) -> Ltl.Trace.eval tr f = Ltl.Trace.eval tr (Ltl.Formula.nnf f))

(* -------------------------------------------------------------------- *)
(* Transition systems                                                    *)
(* -------------------------------------------------------------------- *)

(* A tiny tank: level rises until high, then controller drains it back. *)
let tank_ts =
  let next s =
    match Qual.Qstate.get "level" s with
    | "low" -> [ Qual.Qstate.set "level" "normal" s ]
    | "normal" -> [ Qual.Qstate.set "level" "high" s ]
    | "high" -> [ Qual.Qstate.set "level" "normal" s ]
    | _ -> []
  in
  Ltl.Ts.make ~init:[ st [ ("level", "low") ] ] ~next

let test_ts_run_cycle_detection () =
  let tr = Ltl.Ts.run tank_ts (st [ ("level", "low") ]) in
  (* low normal high normal: stops when "normal" repeats *)
  check Alcotest.int "trace length" 4 (Ltl.Trace.length tr)

let test_ts_check_holds () =
  match Ltl.Ts.check tank_ts (parse "G !level=overflow") with
  | Ltl.Ts.Holds -> ()
  | Ltl.Ts.Counterexample _ -> fail "expected the property to hold"

let test_ts_check_counterexample () =
  match Ltl.Ts.check tank_ts (parse "G level=low") with
  | Ltl.Ts.Counterexample tr ->
      check Alcotest.bool "cex has at least 2 states" true
        (Ltl.Trace.length tr >= 2)
  | Ltl.Ts.Holds -> fail "expected a counterexample"

let test_ts_nondeterministic_traces () =
  (* branching system: from start, go to a or b; both terminal *)
  let next s =
    match Qual.Qstate.get "v" s with
    | "start" -> [ st [ ("v", "a") ]; st [ ("v", "b") ] ]
    | _ -> []
  in
  let ts = Ltl.Ts.make ~init:[ st [ ("v", "start") ] ] ~next in
  check Alcotest.int "two traces" 2 (List.length (Ltl.Ts.traces ts));
  (* F v=a holds only on one branch: universal check must fail *)
  match Ltl.Ts.check ts (parse "F v=a") with
  | Ltl.Ts.Counterexample _ -> ()
  | Ltl.Ts.Holds -> fail "expected failure on the b-branch"

let test_ts_reachable () =
  let states = Ltl.Ts.reachable tank_ts in
  check Alcotest.int "three reachable" 3 (List.length states)

let test_ts_horizon () =
  (* unbounded counter: horizon must cut exploration *)
  let next s =
    let n = int_of_string (Qual.Qstate.get "n" s) in
    [ st [ ("n", string_of_int (n + 1)) ] ]
  in
  let ts = Ltl.Ts.make ~init:[ st [ ("n", "0") ] ] ~next in
  let tr = Ltl.Ts.run ~horizon:10 ts (st [ ("n", "0") ]) in
  check Alcotest.int "horizon cut" 11 (Ltl.Trace.length tr);
  check Alcotest.int "reachable bounded" 11
    (List.length (Ltl.Ts.reachable ~horizon:10 ts))

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "ltl.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parser_precedence;
        Alcotest.test_case "atoms with equals" `Quick
          test_parser_atoms_with_equals;
        Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
        Alcotest.test_case "errors" `Quick test_parser_errors;
      ] );
    ( "ltl.semantics",
      [
        Alcotest.test_case "basic" `Quick test_eval_basic;
        Alcotest.test_case "next at end" `Quick test_eval_next_at_end;
        Alcotest.test_case "until/release" `Quick test_eval_until;
        Alcotest.test_case "paper requirements" `Quick
          test_eval_requirements_of_paper;
        Alcotest.test_case "nnf cases" `Quick test_nnf_preserves_semantics;
        qcheck prop_progression_agrees;
        qcheck prop_eval_agrees_eval_at;
        qcheck prop_eval_at_is_suffix_eval;
        qcheck prop_nnf_agrees;
      ] );
    ( "ltl.ts",
      [
        Alcotest.test_case "run cycle detection" `Quick
          test_ts_run_cycle_detection;
        Alcotest.test_case "check holds" `Quick test_ts_check_holds;
        Alcotest.test_case "check counterexample" `Quick
          test_ts_check_counterexample;
        Alcotest.test_case "nondeterministic traces" `Quick
          test_ts_nondeterministic_traces;
        Alcotest.test_case "reachable" `Quick test_ts_reachable;
        Alcotest.test_case "horizon" `Quick test_ts_horizon;
      ] );
  ]
