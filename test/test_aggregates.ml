(* Tests for the #count aggregate of the ASP engine. *)

let check = Alcotest.check
let fail = Alcotest.fail

let solve_str src =
  Asp.Solver.solve (Asp.Grounder.ground (Asp.Parser.parse_program src))

let single_model src =
  match solve_str src with
  | [ m ] -> m
  | ms -> fail (Printf.sprintf "expected one model, got %d" (List.length ms))

let holds m s = Asp.Model.holds m (Asp.Parser.parse_atom s)

let test_count_facts () =
  let m = single_model "p(1..3). q :- #count { X : p(X) } >= 3." in
  check Alcotest.bool "q derived" true (holds m "q");
  let m = single_model "p(1..3). q :- #count { X : p(X) } < 2." in
  check Alcotest.bool "q not derived" false (holds m "q");
  let m = single_model "p(1..3). q :- #count { X : p(X) } = 3." in
  check Alcotest.bool "exact count" true (holds m "q")

let test_count_with_negated_condition () =
  let m =
    single_model
      "p(1..3). bad(2). q :- #count { X : p(X), not bad(X) } = 2."
  in
  check Alcotest.bool "negation inside condition" true (holds m "q")

let test_count_distinct_tuples () =
  (* the same tuple via two derivations counts once *)
  let m =
    single_model
      "a(1). b(1). v(X) :- a(X). v(X) :- b(X).\n\
       q :- #count { X : v(X) } = 1."
  in
  check Alcotest.bool "deduplicated" true (holds m "q")

let test_count_global_variable () =
  let m =
    single_model
      "group(ga). group(gb). member(ga, 1). member(ga, 2). member(gb, 1).\n\
       big(G) :- group(G), #count { X : member(G, X) } >= 2."
  in
  check Alcotest.bool "big(ga)" true (holds m "big(ga)");
  check Alcotest.bool "not big(gb)" false (holds m "big(gb)")

let test_count_over_derived_predicate () =
  let m =
    single_model
      "e(1,2). e(2,3). r(X,Y) :- e(X,Y). r(X,Z) :- r(X,Y), e(Y,Z).\n\
       hub :- #count { Y : r(1, Y) } >= 2."
  in
  check Alcotest.bool "counts the transitive closure" true (holds m "hub")

let test_count_constrains_choices () =
  let models =
    solve_str "item(1..4). { pick(X) : item(X) }. :- #count { X : pick(X) } > 2."
  in
  (* subsets of size <= 2: 1 + 4 + 6 *)
  check Alcotest.int "bounded subsets" 11 (List.length models)

let test_count_derived_from_choices () =
  let models =
    solve_str
      "item(1..3). { pick(X) : item(X) }.\n\
       single :- #count { X : pick(X) } = 1."
  in
  let with_single =
    List.filter (fun m -> holds m "single") models
  in
  check Alcotest.int "eight models" 8 (List.length models);
  check Alcotest.int "three singletons" 3 (List.length with_single)

let test_count_in_weak_constraint () =
  let models =
    Asp.Solver.solve_optimal
      (Asp.Grounder.ground
         (Asp.Parser.parse_program
            "item(1..2). { pick(X) : item(X) }. :- #count { X : pick(X) } < 1.\n\
             :~ pick(X). [1@1, X]"))
  in
  (* must pick at least one; optimum picks exactly one (two optima) *)
  check Alcotest.int "two optima" 2 (List.length models);
  List.iter
    (fun m ->
      check Alcotest.int "one pick" 1
        (List.length (Asp.Model.by_predicate m "pick")))
    models

let test_count_models_pass_gl_oracle () =
  let g =
    Asp.Grounder.ground
      (Asp.Parser.parse_program
         "item(1..3). { pick(X) : item(X) }.\n\
          pair :- #count { X : pick(X) } = 2.\n\
          :- #count { X : pick(X) } > 2.")
  in
  let models = Asp.Solver.solve g in
  check Alcotest.bool "has models" true (models <> []);
  List.iter
    (fun m ->
      check Alcotest.bool "stable" true
        (Asp.Solver.is_stable_model g (Asp.Model.atoms m)))
    models

let test_count_unsafe_bound () =
  match solve_str "p(1). q :- #count { X : p(X) } >= N." with
  | exception Asp.Grounder.Unsafe _ -> ()
  | _ -> fail "unbound aggregate bound accepted"

let test_count_nested_rejected () =
  match
    solve_str "p(1). q :- #count { X : p(X), #count { Y : p(Y) } >= 1 } >= 1."
  with
  | exception Asp.Grounder.Unsafe _ -> ()
  | _ -> fail "nested aggregate accepted"

let test_count_in_choice_condition_rejected () =
  match solve_str "p(1). { q(X) : p(X), #count { Y : p(Y) } >= 1 }." with
  | exception Asp.Grounder.Unsafe _ -> ()
  | _ -> fail "aggregate in choice condition accepted"

let test_count_nonstratified () =
  (* aggregates in non-stratified programs: still beyond the exhaustive
     reference's stratification requirement, but the CDNL solver answers *)
  let src = "p(1). a :- not b. b :- not a. q :- #count { X : p(X) } >= 1." in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  (match Asp.Naive.solve g with
  | exception Asp.Naive.Unsupported _ -> ()
  | _ -> fail "expected the reference to reject the non-stratified aggregate");
  let models = Asp.Solver.solve g in
  check Alcotest.int "two models" 2 (List.length models);
  List.iter
    (fun m ->
      check Alcotest.bool "q derived through the aggregate" true
        (Asp.Model.holds m (Asp.Atom.prop "q")))
    models

let test_count_pp_roundtrip () =
  let src = "q(G) :- group(G), #count { X : member(G, X), not bad(X) } >= 2." in
  let r = Asp.Parser.parse_rule src in
  let r' = Asp.Parser.parse_rule (Asp.Rule.to_string r) in
  check Alcotest.string "roundtrip" (Asp.Rule.to_string r) (Asp.Rule.to_string r')

let test_count_zero_and_empty_condition_set () =
  (* counting over an empty extension: 0 tuples *)
  let m = single_model "q :- #count { X : ghost(X) } = 0. p." in
  check Alcotest.bool "zero count" true (holds m "q")

(* ----------------------------- #sum ---------------------------------- *)

let test_sum_facts () =
  let m =
    single_model
      "cost(a, 3). cost(b, 5). expensive :- #sum { C, X : cost(X, C) } > 7."
  in
  check Alcotest.bool "3+5 > 7" true (holds m "expensive");
  let m =
    single_model
      "cost(a, 3). cost(b, 5). cheap :- #sum { C, X : cost(X, C) } <= 8."
  in
  check Alcotest.bool "3+5 <= 8" true (holds m "cheap")

let test_sum_distinct_tuples () =
  (* the discriminating second component keeps equal weights apart *)
  let m =
    single_model
      "cost(a, 3). cost(b, 3). total :- #sum { C, X : cost(X, C) } = 6."
  in
  check Alcotest.bool "both 3s counted" true (holds m "total");
  (* without the discriminator the identical weights collapse to one *)
  let m =
    single_model
      "cost(a, 3). cost(b, 3). collapsed :- #sum { C : cost(X, C) } = 3."
  in
  check Alcotest.bool "tuple semantics" true (holds m "collapsed")

let test_sum_budget_constraint () =
  (* the classic encoding: forbid selections above a budget *)
  let models =
    solve_str
      "price(x, 4). price(y, 3). price(z, 6).\n\
       { buy(I) : price(I, _C) }.\n\
       :- #sum { C, I : buy(I), price(I, C) } > 7."
  in
  (* subsets with total <= 7: {}, {x}, {y}, {z}, {x,y} -> 5 *)
  check Alcotest.int "within budget" 5 (List.length models)

let test_sum_non_integer_weight_ignored () =
  let m =
    single_model "w(a, 2). w(b, oops). q :- #sum { C, X : w(X, C) } = 2."
  in
  check Alcotest.bool "symbolic weight contributes 0" true (holds m "q")

(* brute-force cross-check: counting picks over random bounds *)
let prop_count_matches_bruteforce =
  QCheck.Test.make ~name:"aggregates: choice counting matches brute force"
    ~count:60
    (QCheck.make
       ~print:(fun (n, b) -> Printf.sprintf "n=%d bound=%d" n b)
       QCheck.Gen.(pair (int_range 1 5) (int_range 0 5)))
    (fun (n, b) ->
      let src =
        Printf.sprintf
          "item(1..%d). { pick(X) : item(X) }. :- #count { X : pick(X) } != %d."
          n b
      in
      let models = solve_str src in
      (* number of size-b subsets of n items *)
      let rec choose n k =
        if k < 0 || k > n then 0
        else if k = 0 || k = n then 1
        else choose (n - 1) (k - 1) + choose (n - 1) k
      in
      List.length models = choose n b)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "asp.aggregates",
      [
        Alcotest.test_case "count facts" `Quick test_count_facts;
        Alcotest.test_case "negated condition" `Quick
          test_count_with_negated_condition;
        Alcotest.test_case "distinct tuples" `Quick test_count_distinct_tuples;
        Alcotest.test_case "global variable" `Quick test_count_global_variable;
        Alcotest.test_case "derived predicate" `Quick
          test_count_over_derived_predicate;
        Alcotest.test_case "constrains choices" `Quick
          test_count_constrains_choices;
        Alcotest.test_case "derived from choices" `Quick
          test_count_derived_from_choices;
        Alcotest.test_case "weak constraint interplay" `Quick
          test_count_in_weak_constraint;
        Alcotest.test_case "GL oracle" `Quick test_count_models_pass_gl_oracle;
        Alcotest.test_case "unsafe bound" `Quick test_count_unsafe_bound;
        Alcotest.test_case "nested rejected" `Quick test_count_nested_rejected;
        Alcotest.test_case "choice condition rejected" `Quick
          test_count_in_choice_condition_rejected;
        Alcotest.test_case "non-stratified solved" `Quick
          test_count_nonstratified;
        Alcotest.test_case "pp roundtrip" `Quick test_count_pp_roundtrip;
        Alcotest.test_case "zero count" `Quick
          test_count_zero_and_empty_condition_set;
        Alcotest.test_case "sum facts" `Quick test_sum_facts;
        Alcotest.test_case "sum tuple semantics" `Quick test_sum_distinct_tuples;
        Alcotest.test_case "sum budget constraint" `Quick
          test_sum_budget_constraint;
        Alcotest.test_case "sum symbolic weight" `Quick
          test_sum_non_integer_weight_ignored;
        qcheck prop_count_matches_bruteforce;
      ] );
  ]
