(* Second differential fuzzer, folded in from the PR-2 review scratch work:
   a different seed base and a generator biased toward larger programs (more
   atoms, more strata, more choice rules, weak constraints with tuple terms)
   than the one in [Test_solver_diff]. The production solver and the
   exhaustive reference must agree on the model sets, the per-model costs,
   the optima, and on which programs are rejected. *)

let gen_program rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let n_atoms = 5 + int 5 in
  let atom i = Printf.sprintf "a%d" i in
  let rand_atom () = atom (int n_atoms) in
  let lit () = (if int 3 = 0 then "not " else "") ^ rand_atom () in
  let lits n = List.init n (fun _ -> lit ()) in
  let buf = Buffer.create 256 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  for _ = 1 to 1 + int 2 do stmt "%s." (rand_atom ()) done;
  for _ = 1 to 3 + int 5 do
    stmt "%s :- %s." (rand_atom ()) (String.concat ", " (lits (1 + int 3)))
  done;
  for _ = 1 to 1 + int 3 do
    let elems =
      List.init (1 + int 3) (fun _ ->
          if bool () then rand_atom ()
          else Printf.sprintf "%s : %s" (rand_atom ()) (rand_atom ()))
    in
    let body =
      match int 3 with 0 -> "" | n -> " :- " ^ String.concat ", " (lits n)
    in
    let lower = if int 3 = 0 then string_of_int (int 2) ^ " " else "" in
    let upper = if int 3 = 0 then " " ^ string_of_int (1 + int 2) else "" in
    stmt "%s{ %s }%s%s." lower (String.concat " ; " elems) upper body
  done;
  for _ = 1 to int 4 do stmt ":- %s." (String.concat ", " (lits (1 + int 2))) done;
  if int 2 = 0 then begin
    let op = match int 4 with 0 -> ">" | 1 -> "<=" | 2 -> "=" | _ -> ">=" in
    let agg = if bool () then "#count" else "#sum" in
    let body =
      Printf.sprintf "%s { %d : %s } %s %d" agg (1 + int 3)
        (String.concat ", " (lits (1 + int 2))) op (int 3)
    in
    if bool () then stmt ":- %s." body else stmt "%s :- %s." (rand_atom ()) body
  end;
  for _ = 1 to int 4 do
    let weight = int 8 - 3 in
    let terms = if bool () then ", t" ^ string_of_int (int 2) else "" in
    stmt ":~ %s. [%d@%d%s]"
      (String.concat ", " (lits (1 + int 2)))
      weight (1 + int 3) terms
  done;
  Buffer.contents buf

type outcome =
  | Models of (string list * Asp.Model.cost) list
  | Rejected of string

let outcome_of_models models =
  Models
    (List.map
       (fun m ->
         ( List.map Asp.Atom.to_string (Asp.Model.to_list m),
           Asp.Model.cost m ))
       models)

let run f =
  match f () with
  | models -> outcome_of_models models
  | exception Asp.Solver.Unsupported msg -> Rejected msg
  | exception Asp.Naive.Unsupported msg -> Rejected msg

let agree a b =
  match (a, b) with
  | Rejected x, Rejected y -> x = y
  | Models xs, Models ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (ax, cx) (ay, cy) -> ax = ay && Asp.Model.compare_cost cx cy = 0)
           xs ys
  | _ -> false

let test_fuzz_seeded () =
  for seed = 0 to 149 do
    let rng = Random.State.make [| 0xBEEF; seed |] in
    let src = gen_program rng in
    let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
    let fast = run (fun () -> Asp.Solver.solve ~max_guess:16 g) in
    let slow = run (fun () -> Asp.Naive.solve ~max_guess:16 g) in
    if not (agree fast slow) then
      Alcotest.fail (Printf.sprintf "solve divergence at seed %d:\n%s" seed src);
    let fast_opt = run (fun () -> Asp.Solver.solve_optimal ~max_guess:16 g) in
    let slow_opt = run (fun () -> Asp.Naive.solve_optimal ~max_guess:16 g) in
    if not (agree fast_opt slow_opt) then
      Alcotest.fail
        (Printf.sprintf "solve_optimal divergence at seed %d:\n%s" seed src)
  done

let suites =
  [
    ( "asp.solver_fuzz",
      [
        Alcotest.test_case "150 seeded large random programs" `Quick
          test_fuzz_seeded;
      ] );
  ]
