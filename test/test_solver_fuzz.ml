(* Second differential fuzzer, folded in from the PR-2 review scratch work:
   a different seed base and a generator biased toward larger programs (more
   atoms, more strata, more choice rules, weak constraints with tuple terms)
   than the one in [Test_solver_diff], plus dedicated generators for
   non-tight programs (positive recursion with choice-controlled external
   support) and non-stratified programs (even loops through negation,
   choices conditioned on loop atoms). The CDNL solver, the retained DFS
   and the exhaustive reference must agree on the model sets, the
   per-model costs and the optima; where an oracle rejects, the CDNL
   answer is verified through the Gelfond–Lifschitz check. *)

type outcome =
  | Models of (string list * Asp.Model.cost) list
  | Rejected of string

let outcome_of_models models =
  Models
    (List.map
       (fun m ->
         ( List.map Asp.Atom.to_string (Asp.Model.to_list m),
           Asp.Model.cost m ))
       models)

let run f =
  match f () with
  | models -> outcome_of_models models
  | exception Asp.Dfs.Unsupported msg -> Rejected msg
  | exception Asp.Naive.Unsupported msg -> Rejected msg

let agree a b =
  match (a, b) with
  | Rejected x, Rejected y -> x = y
  | Models xs, Models ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (ax, cx) (ay, cy) -> ax = ay && Asp.Model.compare_cost cx cy = 0)
           xs ys
  | _ -> false

let assert_stable ~tag src g models =
  List.iter
    (fun m ->
      if not (Asp.Solver.is_stable_model g (Asp.Model.atoms m)) then
        Alcotest.fail
          (Printf.sprintf "%s: non-stable model {%s} on:\n%s" tag
             (String.concat ","
                (List.map Asp.Atom.to_string (Asp.Model.to_list m)))
             src))
    models

(* Three-way differential on one program: Dfs must match Naive exactly
   (including rejection messages); the CDNL solver must match Naive when
   Naive accepts and pass the GL check otherwise. *)
let diff3 ~tag seed src =
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  let fail_diverge what a b =
    Alcotest.fail
      (Printf.sprintf "%s divergence (%s) at %s seed %d:\n%s" what
         (match (a, b) with
         | Rejected x, Rejected y when x <> y -> "rejection messages"
         | Rejected _, _ | _, Rejected _ -> "rejection vs models"
         | _ -> "model sets")
         tag seed src)
  in
  let naive = run (fun () -> Asp.Naive.solve ~max_guess:16 g) in
  let dfs = run (fun () -> Asp.Dfs.solve ~max_guess:16 g) in
  if not (agree dfs naive) then fail_diverge "solve dfs/naive" dfs naive;
  let cdnl_models = Asp.Solver.solve g in
  let cdnl = outcome_of_models cdnl_models in
  (match naive with
  | Models _ ->
      if not (agree cdnl naive) then fail_diverge "solve cdnl/naive" cdnl naive
  | Rejected _ -> assert_stable ~tag src g cdnl_models);
  let naive_opt = run (fun () -> Asp.Naive.solve_optimal ~max_guess:16 g) in
  let dfs_opt = run (fun () -> Asp.Dfs.solve_optimal ~max_guess:16 g) in
  if not (agree dfs_opt naive_opt) then
    fail_diverge "solve_optimal dfs/naive" dfs_opt naive_opt;
  let cdnl_opt = outcome_of_models (Asp.Solver.solve_optimal g) in
  (match naive_opt with
  | Models _ ->
      if not (agree cdnl_opt naive_opt) then
        fail_diverge "solve_optimal cdnl/naive" cdnl_opt naive_opt
  | Rejected _ -> ());
  (* preprocessing and the cheap tier are pure accelerations: every
     switch combination must reproduce the default answer bit for bit *)
  List.iter
    (fun config ->
      let variant = outcome_of_models (Asp.Solver.solve ~config g) in
      if not (agree variant cdnl) then
        fail_diverge "solve config A/B" variant cdnl)
    [
      { Asp.Solver.Config.default with preprocess = false };
      { Asp.Solver.Config.default with cheap_tier = false };
      { Asp.Solver.Config.default with preprocess = false; cheap_tier = false };
    ];
  (* guiding-path sharing on a sample of the corpus (every fifth seed,
     to keep the suite quick): 2- and 4-domain enumeration, shared and
     isolated, must reproduce the sequential model sets and costs *)
  if seed mod 5 = 0 then
    List.iter
      (fun (jobs, share) ->
        let r = Engine.Par.enumerate ~oversubscribe:true ~jobs ~share g in
        let par = outcome_of_models r.Engine.Par.models in
        if not (agree par cdnl) then
          fail_diverge
            (Printf.sprintf "par jobs=%d share=%b" jobs share)
            par cdnl)
      [ (2, true); (2, false); (4, true); (4, false) ]

(* ------------------------------------------------------------------ *)
(* Generator 1: large mixed programs (the original fuzzer)              *)
(* ------------------------------------------------------------------ *)

let gen_program rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let n_atoms = 5 + int 5 in
  let atom i = Printf.sprintf "a%d" i in
  let rand_atom () = atom (int n_atoms) in
  let lit () = (if int 3 = 0 then "not " else "") ^ rand_atom () in
  let lits n = List.init n (fun _ -> lit ()) in
  let buf = Buffer.create 256 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  for _ = 1 to 1 + int 2 do stmt "%s." (rand_atom ()) done;
  for _ = 1 to 3 + int 5 do
    stmt "%s :- %s." (rand_atom ()) (String.concat ", " (lits (1 + int 3)))
  done;
  for _ = 1 to 1 + int 3 do
    let elems =
      List.init (1 + int 3) (fun _ ->
          if bool () then rand_atom ()
          else Printf.sprintf "%s : %s" (rand_atom ()) (rand_atom ()))
    in
    let body =
      match int 3 with 0 -> "" | n -> " :- " ^ String.concat ", " (lits n)
    in
    let lower = if int 3 = 0 then string_of_int (int 2) ^ " " else "" in
    let upper = if int 3 = 0 then " " ^ string_of_int (1 + int 2) else "" in
    stmt "%s{ %s }%s%s." lower (String.concat " ; " elems) upper body
  done;
  for _ = 1 to int 4 do stmt ":- %s." (String.concat ", " (lits (1 + int 2))) done;
  if int 2 = 0 then begin
    let op = match int 4 with 0 -> ">" | 1 -> "<=" | 2 -> "=" | _ -> ">=" in
    let agg = if bool () then "#count" else "#sum" in
    let body =
      Printf.sprintf "%s { %d : %s } %s %d" agg (1 + int 3)
        (String.concat ", " (lits (1 + int 2))) op (int 3)
    in
    if bool () then stmt ":- %s." body else stmt "%s :- %s." (rand_atom ()) body
  end;
  for _ = 1 to int 4 do
    let weight = int 8 - 3 in
    let terms = if bool () then ", t" ^ string_of_int (int 2) else "" in
    stmt ":~ %s. [%d@%d%s]"
      (String.concat ", " (lits (1 + int 2)))
      weight (1 + int 3) terms
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Generator 2: non-tight programs                                      *)
(* ------------------------------------------------------------------ *)

(* Positive recursion: pairs of mutually dependent atoms whose external
   support comes (or fails to come) from choice atoms. Exercises the
   CDNL solver's unfounded-set checks against oracles that handle these
   programs natively (no negation inside the cycles). *)
let gen_nontight rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let n_choice = 2 + int 3 in
  let n_pairs = 2 + int 3 in
  let choice i = Printf.sprintf "c%d" i in
  let p i = Printf.sprintf "p%d" i and q i = Printf.sprintf "q%d" i in
  let buf = Buffer.create 256 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  stmt "{ %s }." (String.concat " ; " (List.init n_choice choice));
  for i = 0 to n_pairs - 1 do
    stmt "%s :- %s." (p i) (q i);
    stmt "%s :- %s." (q i) (p i);
    (* external support, sometimes absent: the cycle must then stay false *)
    if int 4 > 0 then stmt "%s :- %s." (p i) (choice (int n_choice));
    (* occasionally chain cycles together into a bigger SCC *)
    if i > 0 && int 3 = 0 then begin
      stmt "%s :- %s." (p i) (q (int i));
      if bool () then stmt "%s :- %s." (q (int i)) (p i)
    end
  done;
  (* derived layer with negation outside the cycles *)
  for _ = 1 to 1 + int 2 do
    stmt "d :- %s, not %s." (p (int n_pairs)) (choice (int n_choice))
  done;
  (* constraints over cycle atoms *)
  for _ = 1 to int 3 do
    if bool () then stmt ":- not %s." (p (int n_pairs))
    else stmt ":- %s, %s." (q (int n_pairs)) (choice (int n_choice))
  done;
  (* weak constraints, mixed sign *)
  for _ = 1 to int 3 do
    stmt ":~ %s. [%d@%d]" (p (int n_pairs)) (int 5 - 2) (1 + int 2)
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Generator 3: non-stratified programs                                 *)
(* ------------------------------------------------------------------ *)

(* Even loops through negation, choices conditioned on loop atoms, and
   occasionally positive recursion supported by a negation-derived atom
   (non-tight and non-stratified at once). Small enough for the oracles'
   exhaustive fallback. *)
let gen_nonstrat rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let n_pairs = 2 + int 2 in
  let x i = Printf.sprintf "x%d" i and y i = Printf.sprintf "y%d" i in
  let buf = Buffer.create 256 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  for i = 0 to n_pairs - 1 do
    let extra =
      if i > 0 && int 3 = 0 then Printf.sprintf ", %s" (x (int i)) else ""
    in
    stmt "%s :- not %s%s." (x i) (y i) extra;
    stmt "%s :- not %s." (y i) (x i)
  done;
  (* a choice conditioned on a loop atom *)
  if bool () then stmt "{ c : %s ; e }." (x (int n_pairs))
  else stmt "{ c ; e }.";
  (* positive cycle fed by a negation-derived atom *)
  if int 2 = 0 then begin
    stmt "p :- q. q :- p.";
    stmt "p :- %s." (x (int n_pairs));
    if bool () then stmt ":- not p."
  end;
  for _ = 1 to int 3 do
    let a = if bool () then x (int n_pairs) else y (int n_pairs) in
    let b = if bool () then "c" else "e" in
    if bool () then stmt ":- %s, %s." a b else stmt ":- %s, not %s." a b
  done;
  for _ = 1 to int 3 do
    let a = if bool () then x (int n_pairs) else "c" in
    stmt ":~ %s. [%d@%d]" a (int 6 - 2) (1 + int 2)
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Suites                                                               *)
(* ------------------------------------------------------------------ *)

let test_fuzz_seeded () =
  for seed = 0 to 149 do
    let rng = Random.State.make [| 0xBEEF; seed |] in
    diff3 ~tag:"mixed" seed (gen_program rng)
  done

let test_fuzz_nontight () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 0x710; seed |] in
    diff3 ~tag:"nontight" seed (gen_nontight rng)
  done

let test_fuzz_nonstrat () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 0x57A7; seed |] in
    diff3 ~tag:"nonstrat" seed (gen_nonstrat rng)
  done

(* Stats must be fresh per call: two consecutive solves of the same
   program report independent wall times and identical (deterministic)
   counters, and the first report is not mutated by the second solve. *)
let test_stats_reentrant () =
  let src = "{ a ; b ; c }. p :- q. q :- p. p :- a. :- a, b, c." in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  let ms1, s1 = Asp.Solver.solve_with_stats g in
  let w1 = s1.Asp.Solver.Stats.wall_s in
  let g1 = s1.Asp.Solver.Stats.guesses in
  let ms2, s2 = Asp.Solver.solve_with_stats g in
  if s1 == s2 then Alcotest.fail "solve_with_stats reused the stats record";
  Alcotest.check (Alcotest.float 0.0) "first wall time left untouched" w1
    s1.Asp.Solver.Stats.wall_s;
  Alcotest.check Alcotest.int "deterministic guess count" g1
    s2.Asp.Solver.Stats.guesses;
  if not (s2.Asp.Solver.Stats.wall_s >= 0.0) then
    Alcotest.fail "second wall time negative";
  Alcotest.check Alcotest.int "same models both times" (List.length ms1)
    (List.length ms2);
  (* same property for the retained DFS *)
  let _, d1 = Asp.Dfs.solve_with_stats g in
  let dw1 = d1.Asp.Dfs.Stats.wall_s in
  let _, d2 = Asp.Dfs.solve_with_stats g in
  if d1 == d2 then Alcotest.fail "Dfs.solve_with_stats reused the stats record";
  Alcotest.check (Alcotest.float 0.0) "dfs first wall time left untouched" dw1
    d1.Asp.Dfs.Stats.wall_s

let suites =
  [
    ( "asp.solver_fuzz",
      [
        Alcotest.test_case "150 seeded large random programs" `Quick
          test_fuzz_seeded;
        Alcotest.test_case "100 seeded non-tight programs" `Quick
          test_fuzz_nontight;
        Alcotest.test_case "100 seeded non-stratified programs" `Quick
          test_fuzz_nonstrat;
        Alcotest.test_case "stats are fresh per call" `Quick
          test_stats_reentrant;
      ] );
  ]
