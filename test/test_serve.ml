(* The assessment service: the hand-rolled JSON layer, the on-disk
   content-addressed store (eviction, corruption recovery, crash debris,
   cross-process concurrency), the batching queue, the wire protocol and
   the model registry. The end-to-end daemon path — restart, disk-served
   re-sweep, bit-for-bit parity with the one-shot CLI — is exercised by
   test/serve_smoke.sh (@serve-smoke). *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Serve.Json.Obj
      [
        ("s", Serve.Json.String "a\"b\\c\nd\te");
        ("i", Serve.Json.Int (-42));
        ("f", Serve.Json.Float 1.5);
        ("b", Serve.Json.Bool true);
        ("n", Serve.Json.Null);
        ( "l",
          Serve.Json.List
            [ Serve.Json.Int 1; Serve.Json.String ""; Serve.Json.Bool false ]
        );
        ("o", Serve.Json.Obj [ ("nested", Serve.Json.Int 7) ]);
      ]
  in
  let s = Serve.Json.to_string v in
  checkb "single line" false (String.contains s '\n');
  (match Serve.Json.parse s with
  | Ok v' -> checkb "roundtrip" true (v = v')
  | Error e -> Alcotest.fail e);
  (* printed floats survive a second trip *)
  match Serve.Json.parse "{\"x\": 0.1}" with
  | Ok (Serve.Json.Obj [ ("x", Serve.Json.Float f) ]) ->
      checkb "float value" true (abs_float (f -. 0.1) < 1e-12)
  | _ -> Alcotest.fail "float parse"

let test_json_escapes () =
  (* \uXXXX escapes decode to UTF-8, including a surrogate pair (U+1F600) *)
  (match Serve.Json.parse "\"a\\u00e9\\ud83d\\ude00b\"" with
  | Ok (Serve.Json.String s) ->
      check Alcotest.string "utf-8 decoding" "a\xc3\xa9\xf0\x9f\x98\x80b" s
  | _ -> Alcotest.fail "unicode escape");
  (* control characters are escaped on output and decode back *)
  check Alcotest.string "control escape" "\"\\u0001\""
    (Serve.Json.to_string (Serve.Json.String "\x01"));
  match Serve.Json.parse "\"\\u0001\"" with
  | Ok (Serve.Json.String "\x01") -> ()
  | _ -> Alcotest.fail "control roundtrip"

let test_json_errors () =
  let bad s =
    match Serve.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  in
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{\"a\":1}x" ]

(* ------------------------------------------------------------------ *)
(* Store                                                                *)
(* ------------------------------------------------------------------ *)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cpsrisk-store-test-%d-%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) mod 1_000_000))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let fp i = Engine.Fingerprint.ints [ 0xbeef; i ]

let test_store_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let s = Serve.Store.open_ dir in
  checki "fresh store is empty" 0 (Serve.Store.entries s);
  Serve.Store.store s (fp 1) "one";
  Serve.Store.store s (fp 2) "two";
  check (Alcotest.option Alcotest.string) "hit" (Some "one")
    (Serve.Store.find s (fp 1));
  check (Alcotest.option Alcotest.string) "miss" None
    (Serve.Store.find s (fp 99));
  Serve.Store.close s;
  (* a second handle — as after a daemon restart — sees the entries *)
  let s2 = Serve.Store.open_ dir in
  checki "reopened entries" 2 (Serve.Store.entries s2);
  check (Alcotest.option Alcotest.string) "hit across restart" (Some "two")
    (Serve.Store.find s2 (fp 2));
  let st = Serve.Store.stats s2 in
  checki "restart hits" 1 st.Serve.Store.hits;
  Serve.Store.close s2

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ent")

let test_store_eviction () =
  with_tmp_dir @@ fun dir ->
  (* size one entry, then bound the store to roughly three of them *)
  let payload i = String.make 100 (Char.chr (65 + i)) in
  let probe = Serve.Store.open_ dir in
  Serve.Store.store probe (fp 0) (payload 0);
  let entry_bytes = Serve.Store.total_bytes probe in
  Serve.Store.close probe;
  Sys.remove (Filename.concat dir (List.hd (entry_files dir)));
  let s = Serve.Store.open_ ~max_bytes:(3 * entry_bytes) dir in
  for i = 1 to 5 do
    Serve.Store.store s (fp i) (payload i)
  done;
  checkb "bounded" true (Serve.Store.total_bytes s <= 3 * entry_bytes);
  checki "evicted count" 2 (Serve.Store.stats s).Serve.Store.evicted;
  (* least recently used go first: 1 and 2 are gone, 3..5 remain *)
  checkb "oldest evicted" true (Serve.Store.find s (fp 1) = None);
  checkb "newest kept" true (Serve.Store.find s (fp 5) <> None);
  (* a hit refreshes recency: touch 3, add one more, then 4 is the LRU *)
  ignore (Serve.Store.find s (fp 3));
  Serve.Store.store s (fp 6) (payload 6);
  checkb "recently-read survives" true (Serve.Store.find s (fp 3) <> None);
  checkb "untouched evicted" true (Serve.Store.find s (fp 4) = None);
  (* an entry larger than the whole bound is refused outright *)
  Serve.Store.store s (fp 7) (String.make (4 * entry_bytes) 'x');
  checkb "oversized not admitted" true (Serve.Store.find s (fp 7) = None);
  Serve.Store.close s

let test_store_corruption () =
  with_tmp_dir @@ fun dir ->
  let s = Serve.Store.open_ dir in
  Serve.Store.store s (fp 1) "payload-one";
  Serve.Store.close s;
  let file = Filename.concat dir (List.hd (entry_files dir)) in
  (* truncate mid-payload, as a crash during a non-atomic write would *)
  let truncated =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let data = really_input_string ic (n - 4) in
    close_in ic;
    data
  in
  let oc = open_out_bin file in
  output_string oc truncated;
  close_out oc;
  let s = Serve.Store.open_ dir in
  check (Alcotest.option Alcotest.string) "truncated entry is a miss" None
    (Serve.Store.find s (fp 1));
  checki "counted corrupt" 1 (Serve.Store.stats s).Serve.Store.corrupt;
  checkb "corrupt file deleted" true (not (Sys.file_exists file));
  (* deleted means a later store can re-publish it cleanly *)
  Serve.Store.store s (fp 1) "payload-one-again";
  check (Alcotest.option Alcotest.string) "re-stored" (Some "payload-one-again")
    (Serve.Store.find s (fp 1));
  Serve.Store.close s;
  (* flip one payload byte: the MD5 check must reject it *)
  let file = Filename.concat dir (List.hd (entry_files dir)) in
  let data =
    let ic = open_in_bin file in
    let d = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
    close_in ic;
    d
  in
  let last = Bytes.length data - 1 in
  Bytes.set data last (Char.chr (Char.code (Bytes.get data last) lxor 0xff));
  let oc = open_out_bin file in
  output_bytes oc (Bytes.unsafe_to_string data |> Bytes.of_string);
  close_out oc;
  let s = Serve.Store.open_ dir in
  check (Alcotest.option Alcotest.string) "checksum mismatch is a miss" None
    (Serve.Store.find s (fp 1));
  checki "flip counted corrupt" 1 (Serve.Store.stats s).Serve.Store.corrupt;
  Serve.Store.close s

let test_store_killed_writer () =
  with_tmp_dir @@ fun dir ->
  let s = Serve.Store.open_ dir in
  Serve.Store.store s (fp 1) "survivor";
  Serve.Store.close s;
  (* a writer killed mid-write leaves only tmp- debris *)
  let debris = Filename.concat dir "tmp-12345-0-deadbeef" in
  let oc = open_out_bin debris in
  output_string oc "half-written marshal bytes";
  close_out oc;
  let s = Serve.Store.open_ dir in
  checkb "debris swept at open" true (not (Sys.file_exists debris));
  checki "published entries unaffected" 1 (Serve.Store.entries s);
  check (Alcotest.option Alcotest.string) "survivor readable" (Some "survivor")
    (Serve.Store.find s (fp 1));
  Serve.Store.close s

(* One writer domain publishing new entries while reader domains hammer
   the same handle and a second same-directory handle: every find must
   return either the published value or a clean miss — never a torn or
   misread entry. *)
let test_store_concurrent () =
  with_tmp_dir @@ fun dir ->
  let n = 50 in
  let writer_store = Serve.Store.open_ dir in
  let other_handle = Serve.Store.open_ dir in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Serve.Store.store writer_store (fp i) (Printf.sprintf "value-%d" i)
        done)
  in
  let reader handle () =
    let anomalies = ref 0 in
    for _round = 1 to 20 do
      for i = 1 to n do
        match Serve.Store.find handle (fp i) with
        | None -> () (* not published yet — a clean miss is fine *)
        | Some v -> if v <> Printf.sprintf "value-%d" i then incr anomalies
      done
    done;
    !anomalies
  in
  let readers =
    [ Domain.spawn (reader writer_store); Domain.spawn (reader other_handle) ]
  in
  Domain.join writer;
  let anomalies = List.fold_left (fun a d -> a + Domain.join d) 0 readers in
  checki "no torn reads" 0 anomalies;
  List.iter
    (fun i ->
      check (Alcotest.option Alcotest.string)
        (Printf.sprintf "final value %d" i)
        (Some (Printf.sprintf "value-%d" i))
        (Serve.Store.find writer_store (fp i)))
    [ 1; n / 2; n ];
  Serve.Store.close writer_store;
  Serve.Store.close other_handle

let test_store_cache_adapter () =
  with_tmp_dir @@ fun dir ->
  (* first process: a cache backed by the store computes and persists *)
  let s = Serve.Store.open_ dir in
  let cache = Engine.Cache.create ~persist:(Serve.Store.persist s) () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    "computed"
  in
  let v, src = Engine.Cache.find_or_compute_src cache (fp 1) compute in
  check Alcotest.string "fresh value" "computed" v;
  checkb "fresh provenance" true (src = Engine.Cache.Fresh);
  Serve.Store.close s;
  (* second process: a cold cache on the same directory hits the disk *)
  let s = Serve.Store.open_ dir in
  let cache = Engine.Cache.create ~persist:(Serve.Store.persist s) () in
  let v, src = Engine.Cache.find_or_compute_src cache (fp 1) compute in
  check Alcotest.string "disk value" "computed" v;
  checkb "disk provenance" true (src = Engine.Cache.Disk);
  checki "no recompute" 1 !computes;
  checki "cache counts it" 1 (Engine.Cache.disk_hits cache);
  (* and the now-warm memory tier answers the repeat *)
  let _, src = Engine.Cache.find_or_compute_src cache (fp 1) compute in
  checkb "memory provenance" true (src = Engine.Cache.Memory);
  Serve.Store.close s

(* ------------------------------------------------------------------ *)
(* Queue                                                                *)
(* ------------------------------------------------------------------ *)

let test_queue_batching () =
  let batches = ref [] in
  let lock = Mutex.create () in
  let q =
    Serve.Queue.create ~batch:(fun reqs ->
        Mutex.lock lock;
        batches := Array.to_list reqs :: !batches;
        Mutex.unlock lock;
        (* linger so the next submissions pile up into one backlog *)
        Thread.delay 0.02;
        Array.map (fun i -> i * 10) reqs)
  in
  checki "single request" 10 (Serve.Queue.submit q 1);
  (* concurrent burst: the worker is busy, so the backlog coalesces *)
  let results = Array.make 8 0 in
  let threads =
    List.init 8 (fun i ->
        Thread.create (fun () -> results.(i) <- Serve.Queue.submit q (i + 1)) ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r -> checki (Printf.sprintf "burst result %d" i) ((i + 1) * 10) r)
    results;
  let st = Serve.Queue.stats q in
  checki "all submitted" 9 st.Serve.Queue.submitted;
  checkb "burst coalesced" true (st.Serve.Queue.batches < 9);
  checkb "a multi-request batch happened" true (st.Serve.Queue.max_batch > 1);
  Serve.Queue.stop q;
  (match Serve.Queue.submit q 1 with
  | _ -> Alcotest.fail "submit after stop must raise"
  | exception Serve.Queue.Stopped -> ());
  ignore !batches

let test_queue_errors () =
  let q =
    Serve.Queue.create ~batch:(fun reqs ->
        Array.map (fun i -> if i < 0 then failwith "bad request" else i) reqs)
  in
  checki "good request" 5 (Serve.Queue.submit q 5);
  (match Serve.Queue.submit q (-1) with
  | _ -> Alcotest.fail "batch exception must surface in the submitter"
  | exception Failure m -> check Alcotest.string "verbatim" "bad request" m);
  checki "queue survives the exception" 7 (Serve.Queue.submit q 7);
  Serve.Queue.stop q;
  (* stop is idempotent *)
  Serve.Queue.stop q

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let requests =
    [
      Serve.Protocol.Load_model
        {
          name = "wt";
          backend = Serve.Protocol.Water_tank;
          horizon = Some 8;
          model_src = None;
        };
      Serve.Protocol.Load_model
        {
          name = "plant";
          backend = Serve.Protocol.Topology;
          horizon = None;
          model_src = Some "element \"A\" { }";
        };
      Serve.Protocol.Sweep
        { model = "wt"; mutations = "s1: F1 / M1\n"; jobs = Some 4 };
      Serve.Protocol.Solve
        { program = "p(1)."; limit = Some 2; optimal = false };
      Serve.Protocol.Solve { program = "q."; limit = None; optimal = true };
      Serve.Protocol.Status;
      Serve.Protocol.Stats;
      Serve.Protocol.List_models;
      Serve.Protocol.Evict_model { name = "wt" };
      Serve.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      let line = Serve.Json.to_string (Serve.Protocol.request_to_json r) in
      match Serve.Protocol.parse_request line with
      | Ok r' -> checkb (Printf.sprintf "roundtrip %s" line) true (r = r')
      | Error e -> Alcotest.fail e)
    requests

let test_protocol_errors () =
  let bad line =
    match Serve.Protocol.parse_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" line)
  in
  List.iter bad
    [
      "not json";
      "{}";
      {|{"op":"teleport"}|};
      {|{"op":"sweep","model":"wt"}|};
      {|{"op":"load-model","name":"x","backend":"quantum"}|};
    ];
  (* responses split on "ok" *)
  (match Serve.Protocol.response_result (Serve.Protocol.ok []) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Serve.Protocol.response_result (Serve.Protocol.error "nope") with
  | Error "nope" -> ()
  | _ -> Alcotest.fail "error response must surface its message"

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  with_tmp_dir @@ fun dir ->
  let store = Serve.Store.open_ dir in
  let reg = Serve.Registry.create ~store () in
  let spec = Cpsrisk.Sweeps.water_tank_spec ~horizon:6 [] in
  let entry = Serve.Registry.load reg ~name:"wt" ~backend:"water-tank" spec in
  checkb "base grounded at load" true (Serve.Registry.base_atoms entry > 0);
  checkb "find" true (Serve.Registry.find reg "wt" <> None);
  checkb "find miss" true (Serve.Registry.find reg "nope" = None);
  (* a loaded model serves sweeps through its entry cache into the store *)
  let deltas = [ Engine.Delta.make ~label:"s1" [ "F1" ] ] in
  let report =
    Engine.Sweep.run_prepared ~jobs:1 ~cache:entry.Serve.Registry.cache
      entry.Serve.Registry.prepared deltas
  in
  checki "one fresh job" 1 report.Engine.Sweep.misses;
  checki "persisted" 1 (Serve.Store.entries store);
  (* re-loading under the same name replaces, but disk entries remain:
     the fresh cache answers the same delta from disk *)
  let entry = Serve.Registry.load reg ~name:"wt" ~backend:"water-tank" spec in
  let report =
    Engine.Sweep.run_prepared ~jobs:1 ~cache:entry.Serve.Registry.cache
      entry.Serve.Registry.prepared deltas
  in
  checki "re-load answers from disk" 1 report.Engine.Sweep.disk_hits;
  checki "no fresh work" 0 report.Engine.Sweep.misses;
  checki "still one model" 1 (Serve.Registry.count reg);
  checki "two lifetime loads" 2 (Serve.Registry.loads reg);
  checkb "evict" true (Serve.Registry.evict reg "wt");
  checkb "evict twice" false (Serve.Registry.evict reg "wt");
  checki "empty" 0 (Serve.Registry.count reg);
  Serve.Store.close store

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "json: roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json: unicode and control escapes" `Quick
          test_json_escapes;
        Alcotest.test_case "json: malformed input" `Quick test_json_errors;
        Alcotest.test_case "store: roundtrip across handles" `Quick
          test_store_roundtrip;
        Alcotest.test_case "store: LRU eviction under a size bound" `Quick
          test_store_eviction;
        Alcotest.test_case "store: corrupt entries detected and skipped"
          `Quick test_store_corruption;
        Alcotest.test_case "store: killed-writer debris swept" `Quick
          test_store_killed_writer;
        Alcotest.test_case "store: concurrent readers vs writer" `Quick
          test_store_concurrent;
        Alcotest.test_case "store: Engine.Cache persistence adapter" `Quick
          test_store_cache_adapter;
        Alcotest.test_case "queue: burst coalesces into batches" `Quick
          test_queue_batching;
        Alcotest.test_case "queue: exceptions and stop" `Quick
          test_queue_errors;
        Alcotest.test_case "protocol: request roundtrip" `Quick
          test_protocol_roundtrip;
        Alcotest.test_case "protocol: rejections and responses" `Quick
          test_protocol_errors;
        Alcotest.test_case "registry: load, serve, re-load from disk" `Quick
          test_registry;
      ] );
  ]
