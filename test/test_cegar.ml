(* Tests for hierarchical refinement (lib/cegar). *)

let check = Alcotest.check
let fail = Alcotest.fail

let el id name kind = Archimate.Element.make ~id ~name ~kind ()

(* -------------------------------------------------------------------- *)
(* Levels (Fig. 3)                                                       *)
(* -------------------------------------------------------------------- *)

let test_levels_focus_mapping () =
  let open Cegar.Levels in
  check Alcotest.string "aspect -> topology" "topology-based propagation"
    (focus_to_string (focus_for A_system T_aspect));
  check Alcotest.string "fault -> detailed" "detailed propagation analysis"
    (focus_to_string (focus_for A_subsystem T_fault));
  check Alcotest.string "mitigation -> plan" "mitigation plan"
    (focus_to_string (focus_for A_component T_mitigation))

let test_levels_refinement_order () =
  let open Cegar.Levels in
  check Alcotest.bool "system -> component" true
    (refines ~coarse:A_system ~fine:A_component);
  check Alcotest.bool "not reflexive" false
    (refines ~coarse:A_subsystem ~fine:A_subsystem);
  check Alcotest.bool "not backwards" false
    (refines ~coarse:A_component ~fine:A_system)

let test_levels_matrix_render () =
  let s = Cegar.Levels.render_matrix () in
  check Alcotest.bool "3 asset rows + header" true
    (List.length (String.split_on_char '\n' s) >= 5)

(* -------------------------------------------------------------------- *)
(* Asset refinement (Fig. 4)                                             *)
(* -------------------------------------------------------------------- *)

let base_model () =
  let open Archimate in
  Model.empty ~name:"case study"
  |> Model.add_element (el "ews" "Engineering Workstation" Element.Node)
  |> Model.add_element (el "ctrl" "Water Tank Controller" Element.Application_component)
  |> Model.add_relationship
       (Relationship.make ~id:"r1" ~source:"ews" ~target:"ctrl"
          ~kind:Relationship.Serving ())

(* the paper's refinement: E-mail Client -> Browser -> Infected Computer *)
let ews_refinement =
  {
    Cegar.Refine.target = "ews";
    parts =
      [
        el "email" "E-mail Client" Archimate.Element.Application_component;
        el "browser" "Browser" Archimate.Element.Application_component;
        el "infected" "Infected Computer" Archimate.Element.Node;
      ];
    internal_flows = [ ("email", "browser"); ("browser", "infected") ];
  }

let test_refine_apply () =
  let m = Cegar.Refine.apply (base_model ()) ews_refinement in
  check Alcotest.int "elements grew" 5 (Archimate.Model.element_count m);
  check (Alcotest.list Alcotest.string) "parts attached"
    [ "email"; "browser"; "infected" ]
    (Cegar.Refine.parts_of m "ews");
  check Alcotest.bool "still valid" true (Archimate.Validate.is_valid m)

let test_refine_attack_path () =
  let m = Cegar.Refine.apply (base_model ()) ews_refinement in
  match Cegar.Refine.attack_path m ~entry:"email" ~target:"infected" with
  | Some path ->
      check (Alcotest.list Alcotest.string) "spam-link chain"
        [ "email"; "browser"; "infected" ] path
  | None -> fail "expected an attack path"

let test_refine_attack_path_absent () =
  let m = Cegar.Refine.apply (base_model ()) ews_refinement in
  check Alcotest.bool "no reverse path" true
    (Cegar.Refine.attack_path m ~entry:"infected" ~target:"email" = None)

let test_refine_flatten_roundtrip () =
  let m0 = base_model () in
  let m1 = Cegar.Refine.apply m0 ews_refinement in
  let m2 = Cegar.Refine.flatten m1 "ews" in
  check Alcotest.int "back to coarse" (Archimate.Model.element_count m0)
    (Archimate.Model.element_count m2);
  check (Alcotest.list Alcotest.string) "no parts left" []
    (Cegar.Refine.parts_of m2 "ews")

let test_refine_errors () =
  (match Cegar.Refine.apply (base_model ()) { ews_refinement with Cegar.Refine.target = "ghost" } with
  | exception Invalid_argument _ -> ()
  | _ -> fail "unknown target accepted");
  let clash =
    { ews_refinement with
      Cegar.Refine.parts = [ el "ctrl" "Duplicate" Archimate.Element.Node ] }
  in
  match Cegar.Refine.apply (base_model ()) clash with
  | exception Invalid_argument _ -> ()
  | _ -> fail "id collision accepted"

(* -------------------------------------------------------------------- *)
(* CEGAR loop                                                            *)
(* -------------------------------------------------------------------- *)

let test_loop_eliminates_spurious () =
  (* abstraction: candidates 1..6; level 1 removes odd; level 2 removes >4 *)
  let refine level candidates =
    match level with
    | 0 -> Some (List.filter (fun c -> c mod 2 = 0) candidates)
    | 1 -> Some (List.filter (fun c -> c <= 4) candidates)
    | _ -> None
  in
  let outcome =
    Cegar.Loop.run ~equal:Int.equal
      ~initial:(fun () -> [ 1; 2; 3; 4; 5; 6 ])
      ~refine ()
  in
  check (Alcotest.list Alcotest.int) "confirmed" [ 2; 4 ]
    outcome.Cegar.Loop.confirmed;
  check Alcotest.bool "converged" true outcome.Cegar.Loop.converged;
  check Alcotest.int "three rounds recorded" 3
    (List.length outcome.Cegar.Loop.rounds);
  let round1 = List.nth outcome.Cegar.Loop.rounds 1 in
  check (Alcotest.list Alcotest.int) "eliminated at level 1" [ 1; 3; 5 ]
    round1.Cegar.Loop.eliminated

let test_loop_rejects_unsound_refinement () =
  let refine _ _ = Some [ 42 ] in
  match
    Cegar.Loop.run ~equal:Int.equal ~initial:(fun () -> [ 1 ]) ~refine ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "refinement introducing candidates accepted"

let test_loop_max_rounds () =
  (* refinement that never terminates: stop at max_rounds, not converged *)
  let refine _ candidates = Some candidates in
  let outcome =
    Cegar.Loop.run ~max_rounds:4 ~equal:Int.equal
      ~initial:(fun () -> [ 1; 2 ])
      ~refine ()
  in
  check Alcotest.bool "not converged" false outcome.Cegar.Loop.converged;
  check Alcotest.int "bounded rounds" 5 (List.length outcome.Cegar.Loop.rounds)

let test_loop_immediate_convergence () =
  let outcome =
    Cegar.Loop.run ~equal:Int.equal
      ~initial:(fun () -> [ 7 ])
      ~refine:(fun _ _ -> None)
      ()
  in
  check Alcotest.bool "converged" true outcome.Cegar.Loop.converged;
  check (Alcotest.list Alcotest.int) "kept" [ 7 ] outcome.Cegar.Loop.confirmed

let prop_loop_candidates_shrink =
  QCheck.Test.make ~name:"cegar: candidate sets only shrink" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 8) (int_range 0 20)))
    (fun initial ->
      let initial = List.sort_uniq compare initial in
      let refine level candidates =
        if level >= 3 then None
        else Some (List.filter (fun c -> c mod (level + 2) <> 0) candidates)
      in
      let outcome =
        Cegar.Loop.run ~equal:Int.equal ~initial:(fun () -> initial) ~refine ()
      in
      let sizes =
        List.map
          (fun r -> List.length r.Cegar.Loop.candidates)
          outcome.Cegar.Loop.rounds
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [ _ ] | [] -> true
      in
      non_increasing sizes)

let test_loop_keyed_matches_unkeyed () =
  let refine level candidates =
    match level with
    | 0 -> Some (List.filter (fun c -> c mod 2 = 0) candidates)
    | 1 -> Some (List.filter (fun c -> c <= 4) candidates)
    | _ -> None
  in
  let initial () = [ 1; 2; 3; 4; 5; 6 ] in
  let plain = Cegar.Loop.run ~equal:Int.equal ~initial ~refine () in
  let keyed =
    Cegar.Loop.run ~key:string_of_int ~equal:Int.equal ~initial ~refine ()
  in
  check (Alcotest.list Alcotest.int) "same confirmed"
    plain.Cegar.Loop.confirmed keyed.Cegar.Loop.confirmed;
  check Alcotest.int "same rounds"
    (List.length plain.Cegar.Loop.rounds)
    (List.length keyed.Cegar.Loop.rounds);
  List.iter2
    (fun (a : int Cegar.Loop.round) (b : int Cegar.Loop.round) ->
      check (Alcotest.list Alcotest.int) "same survivors"
        a.Cegar.Loop.candidates b.Cegar.Loop.candidates;
      check (Alcotest.list Alcotest.int) "same eliminated"
        a.Cegar.Loop.eliminated b.Cegar.Loop.eliminated)
    plain.Cegar.Loop.rounds keyed.Cegar.Loop.rounds

let test_loop_keyed_rejects_unsound () =
  (* the soundness check must fire through the hashed key sets too *)
  let refine _ _ = Some [ 42 ] in
  match
    Cegar.Loop.run ~key:string_of_int ~equal:Int.equal
      ~initial:(fun () -> [ 1 ])
      ~refine ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "keyed run accepted an introduced candidate"

let test_refine_flatten_nested () =
  (* refine, then refine a part; flattening the root must remove the
     transitive decomposition, not just the direct parts *)
  let m1 = Cegar.Refine.apply (base_model ()) ews_refinement in
  let nested =
    {
      Cegar.Refine.target = "browser";
      parts = [ el "js" "JS Engine" Archimate.Element.Application_component ];
      internal_flows = [];
    }
  in
  let m2 = Cegar.Refine.apply m1 nested in
  check (Alcotest.list Alcotest.string) "nested part attached" [ "js" ]
    (Cegar.Refine.parts_of m2 "browser");
  let m3 = Cegar.Refine.flatten m2 "ews" in
  check Alcotest.int "back to coarse"
    (Archimate.Model.element_count (base_model ()))
    (Archimate.Model.element_count m3);
  check (Alcotest.list Alcotest.string) "no parts left" []
    (Cegar.Refine.parts_of m3 "ews")

(* -------------------------------------------------------------------- *)
(* Incremental CEGAR (Cegar.Inc) on the hierarchical case study          *)
(* -------------------------------------------------------------------- *)

let labels = List.map Engine.Delta.label

let check_outcome_equal tag (a : Cegar.Inc.outcome) (b : Cegar.Inc.outcome) =
  check (Alcotest.list Alcotest.string)
    (tag ^ ": confirmed")
    (labels a.Cegar.Inc.confirmed)
    (labels b.Cegar.Inc.confirmed);
  check Alcotest.int
    (tag ^ ": rounds")
    (List.length a.Cegar.Inc.rounds)
    (List.length b.Cegar.Inc.rounds);
  List.iter2
    (fun (ra : Cegar.Inc.round) (rb : Cegar.Inc.round) ->
      check Alcotest.string (tag ^ ": label") ra.Cegar.Inc.r_label
        rb.Cegar.Inc.r_label;
      check (Alcotest.list Alcotest.string)
        (tag ^ ": survivors")
        (labels ra.Cegar.Inc.r_survivors)
        (labels rb.Cegar.Inc.r_survivors);
      check (Alcotest.list Alcotest.string)
        (tag ^ ": eliminated")
        (labels ra.Cegar.Inc.r_eliminated)
        (labels rb.Cegar.Inc.r_eliminated))
    a.Cegar.Inc.rounds b.Cegar.Inc.rounds

let test_inc_hierarchy_schedule () =
  let spec = Cpsrisk.Hierarchy.refine_spec () in
  let o = Cegar.Inc.run spec in
  check Alcotest.int "1 + levels rounds" 7 (List.length o.Cegar.Inc.rounds);
  check (Alcotest.list Alcotest.string) "confirmed entries"
    [ "E7"; "E8"; "E9" ]
    (labels o.Cegar.Inc.confirmed);
  List.iteri
    (fun i (r : Cegar.Inc.round) ->
      let expect = if i = 0 then [] else [ Printf.sprintf "E%d" i ] in
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "eliminated at round %d" i)
        expect
        (labels r.Cegar.Inc.r_eliminated))
    o.Cegar.Inc.rounds;
  check (Alcotest.list Alcotest.string) "spurious schedule"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6" ]
    (Cpsrisk.Hierarchy.spurious_entries ~levels:6)

let test_inc_matches_scratch () =
  List.iter
    (fun (tag, mode) ->
      let spec = Cpsrisk.Hierarchy.refine_spec ~levels:3 ~entries:5 ~mode () in
      let oracle = Cegar.Inc.run_scratch spec in
      check_outcome_equal (tag ^ "/seq") (Cegar.Inc.run ~jobs:1 spec) oracle;
      check_outcome_equal (tag ^ "/par")
        (Cegar.Inc.run ~jobs:2 ~oversubscribe:true spec)
        oracle;
      check_outcome_equal
        (tag ^ "/no-share")
        (Cegar.Inc.run ~share:false spec)
        oracle)
    [ ("assume", `Assume); ("increment", `Increment) ]

let test_inc_seeded_matches_scratch () =
  (* seeded schedule shapes: every (levels, entries, mode) combination
     must agree with the scratch oracle bit-for-bit *)
  List.iter
    (fun seed ->
      let levels = 1 + (seed mod 4) in
      let entries = levels + 1 + (seed * 3 mod 4) in
      let mode = if seed mod 2 = 0 then `Assume else `Increment in
      let spec = Cpsrisk.Hierarchy.refine_spec ~levels ~entries ~mode () in
      check_outcome_equal
        (Printf.sprintf "seed %d (L=%d C=%d)" seed levels entries)
        (Cegar.Inc.run spec)
        (Cegar.Inc.run_scratch spec))
    [ 0; 1; 2; 3; 4; 5 ]

let test_inc_cache_reuse () =
  let spec = Cpsrisk.Hierarchy.refine_spec ~levels:2 ~entries:4 () in
  let cache = Engine.Cache.create () in
  let first = Cegar.Inc.run ~cache spec in
  check Alcotest.bool "first run solves" true
    (first.Cegar.Inc.stats.Cegar.Inc.s_fresh > 0);
  let second = Cegar.Inc.run ~cache spec in
  check_outcome_equal "warm rerun" second first;
  check Alcotest.int "no fresh work on rerun" 0
    second.Cegar.Inc.stats.Cegar.Inc.s_fresh;
  check Alcotest.int "all assessments answered from memory"
    (first.Cegar.Inc.stats.Cegar.Inc.s_fresh
    + first.Cegar.Inc.stats.Cegar.Inc.s_hits)
    second.Cegar.Inc.stats.Cegar.Inc.s_hits

let test_inc_empty_level_is_cached () =
  (* an empty structural increment is a re-assessment round: in Assume
     mode the ground program is unchanged, so it costs only cache hits *)
  let spec = Cpsrisk.Hierarchy.refine_spec ~levels:2 ~entries:4 () in
  let spec =
    {
      spec with
      Cegar.Inc.levels =
        spec.Cegar.Inc.levels
        @ [ { Cegar.Inc.l_label = "recheck"; l_structure = Asp.Program.empty } ];
    }
  in
  let o = Cegar.Inc.run spec in
  let oracle = Cegar.Inc.run_scratch spec in
  check_outcome_equal "with re-assessment round" o oracle;
  let last = List.nth o.Cegar.Inc.rounds 3 in
  let prev = List.nth o.Cegar.Inc.rounds 2 in
  check (Alcotest.list Alcotest.string) "recheck keeps survivors"
    (labels prev.Cegar.Inc.r_survivors)
    (labels last.Cegar.Inc.r_survivors);
  check Alcotest.bool "recheck round hit the cache" true
    (o.Cegar.Inc.stats.Cegar.Inc.s_hits
    >= List.length last.Cegar.Inc.r_survivors)

let test_inc_stats_shape () =
  let spec = Cpsrisk.Hierarchy.refine_spec () in
  let o = Cegar.Inc.run spec in
  let s = o.Cegar.Inc.stats in
  check Alcotest.int "one flush per structural level (Assume + share)" 6
    s.Cegar.Inc.s_flushes;
  check Alcotest.bool "grounding reused instances across levels" true
    (s.Cegar.Inc.s_ground.Asp.Grounder.Stats.reused_rules > 0);
  check Alcotest.bool "dead-end conflicts published to the hub" true
    (s.Cegar.Inc.s_published > 0);
  let o' = Cegar.Inc.run ~share:false spec in
  check_outcome_equal "share-independent" o' o;
  check Alcotest.int "no hub without sharing" 0
    o'.Cegar.Inc.stats.Cegar.Inc.s_published

let test_inc_empty_candidates () =
  let spec = Cpsrisk.Hierarchy.refine_spec () in
  let spec = { spec with Cegar.Inc.candidates = [] } in
  (match Cegar.Inc.run spec with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty candidate list accepted");
  match Cegar.Inc.run_scratch spec with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty candidate list accepted by scratch driver"

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "cegar.levels",
      [
        Alcotest.test_case "focus mapping" `Quick test_levels_focus_mapping;
        Alcotest.test_case "refinement order" `Quick test_levels_refinement_order;
        Alcotest.test_case "matrix render" `Quick test_levels_matrix_render;
      ] );
    ( "cegar.refine",
      [
        Alcotest.test_case "apply" `Quick test_refine_apply;
        Alcotest.test_case "attack path" `Quick test_refine_attack_path;
        Alcotest.test_case "no reverse path" `Quick test_refine_attack_path_absent;
        Alcotest.test_case "flatten roundtrip" `Quick
          test_refine_flatten_roundtrip;
        Alcotest.test_case "flatten nested composition" `Quick
          test_refine_flatten_nested;
        Alcotest.test_case "errors" `Quick test_refine_errors;
      ] );
    ( "cegar.loop",
      [
        Alcotest.test_case "eliminates spurious" `Quick
          test_loop_eliminates_spurious;
        Alcotest.test_case "rejects unsound refinement" `Quick
          test_loop_rejects_unsound_refinement;
        Alcotest.test_case "max rounds" `Quick test_loop_max_rounds;
        Alcotest.test_case "immediate convergence" `Quick
          test_loop_immediate_convergence;
        Alcotest.test_case "keyed matches unkeyed" `Quick
          test_loop_keyed_matches_unkeyed;
        Alcotest.test_case "keyed rejects unsound refinement" `Quick
          test_loop_keyed_rejects_unsound;
        qcheck prop_loop_candidates_shrink;
      ] );
    ( "cegar.inc",
      [
        Alcotest.test_case "hierarchy schedule" `Quick
          test_inc_hierarchy_schedule;
        Alcotest.test_case "matches scratch oracle" `Quick
          test_inc_matches_scratch;
        Alcotest.test_case "seeded schedules match scratch" `Quick
          test_inc_seeded_matches_scratch;
        Alcotest.test_case "cache reuse across runs" `Quick
          test_inc_cache_reuse;
        Alcotest.test_case "empty level answered from cache" `Quick
          test_inc_empty_level_is_cached;
        Alcotest.test_case "stats shape" `Quick test_inc_stats_shape;
        Alcotest.test_case "empty candidates rejected" `Quick
          test_inc_empty_candidates;
      ] );
  ]
