(* Tests for the ASP engine (lib/asp): terms, parser, grounder, solver. *)

let check = Alcotest.check
let fail = Alcotest.fail

let term_testable = Alcotest.testable Asp.Term.pp Asp.Term.equal
let atom_testable = Alcotest.testable Asp.Atom.pp Asp.Atom.equal

let solve_str ?limit src =
  Asp.Solver.solve ?limit (Asp.Grounder.ground (Asp.Parser.parse_program src))

let solve_optimal_str src =
  Asp.Solver.solve_optimal (Asp.Grounder.ground (Asp.Parser.parse_program src))

let model_strings m =
  List.map Asp.Atom.to_string (Asp.Model.to_list m)

let models_as_strings models = List.map model_strings models

(* -------------------------------------------------------------------- *)
(* Term                                                                  *)
(* -------------------------------------------------------------------- *)

let test_term_eval () =
  let t = Asp.Parser.parse_term "1+2*3" in
  check term_testable "precedence" (Asp.Term.int 7) (Asp.Term.eval t);
  let t = Asp.Parser.parse_term "(1+2)*3" in
  check term_testable "parens" (Asp.Term.int 9) (Asp.Term.eval t);
  let t = Asp.Parser.parse_term "-4" in
  check term_testable "negative" (Asp.Term.int (-4)) (Asp.Term.eval t);
  check (Alcotest.option Alcotest.int) "eval_int" (Some 10)
    (Asp.Term.eval_int (Asp.Parser.parse_term "20/2"))

let test_term_eval_errors () =
  (match Asp.Term.eval (Asp.Parser.parse_term "1/0") with
  | exception Invalid_argument _ -> ()
  | _ -> fail "division by zero accepted");
  match Asp.Term.eval (Asp.Term.var "X") with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-ground eval accepted"

let test_term_substitute () =
  let t = Asp.Parser.parse_term "f(X, g(Y), X)" in
  let s = [ ("X", Asp.Term.int 1); ("Y", Asp.Term.const "a") ] in
  check term_testable "substitution"
    (Asp.Parser.parse_term "f(1, g(a), 1)")
    (Asp.Term.substitute s t)

let test_term_vars () =
  let t = Asp.Parser.parse_term "f(X, g(Y, X), Z)" in
  check (Alcotest.list Alcotest.string) "first-occurrence order"
    [ "X"; "Y"; "Z" ] (Asp.Term.vars t)

(* -------------------------------------------------------------------- *)
(* Parser                                                                *)
(* -------------------------------------------------------------------- *)

let test_parse_paper_listing1 () =
  (* Listing 1 of the paper, verbatim modulo whitespace. *)
  let r =
    Asp.Parser.parse_rule
      "potential_fault(C, F) :- component(C), fault(F), mitigation(F, M), \
       not active_mitigation(C, M)."
  in
  check Alcotest.string "roundtrip"
    "potential_fault(C,F) :- component(C), fault(F), mitigation(F,M), not \
     active_mitigation(C,M)."
    (Asp.Rule.to_string r)

let test_parse_paper_listing2 () =
  let r =
    Asp.Parser.parse_rule
      "component_state(C, X) :- prev_component_state(C, X), active_fault(C, \
       stuck_at_x)."
  in
  match Asp.Rule.head_atoms r with
  | [ a ] -> check Alcotest.string "head pred" "component_state" a.Asp.Atom.pred
  | _ -> fail "expected one head atom"

let test_parse_choice () =
  let r = Asp.Parser.parse_rule "1 { a(X) : b(X) ; c } 2 :- d." in
  match r with
  | Asp.Rule.Rule { head = Asp.Rule.Choice { lower; upper; elems }; body; _ } ->
      check (Alcotest.option Alcotest.int) "lower" (Some 1) lower;
      check (Alcotest.option Alcotest.int) "upper" (Some 2) upper;
      check Alcotest.int "elems" 2 (List.length elems);
      check Alcotest.int "body" 1 (List.length body)
  | _ -> fail "expected a choice rule"

let test_parse_constraint_weak () =
  (match Asp.Parser.parse_rule ":- a, not b." with
  | Asp.Rule.Rule { head = Asp.Rule.Falsity; body; _ } ->
      check Alcotest.int "body size" 2 (List.length body)
  | _ -> fail "expected a constraint");
  match Asp.Parser.parse_rule ":~ cost(C). [C@1, C]" with
  | Asp.Rule.Weak { priority; _ } -> check Alcotest.int "priority" 1 priority
  | _ -> fail "expected a weak constraint"

let test_parse_intervals () =
  let p = Asp.Parser.parse_program "time(0..3)." in
  check Alcotest.int "expanded facts" 4 (Asp.Program.size p)

let test_parse_comments () =
  let p =
    Asp.Parser.parse_program
      "a. % line comment\n%* block\n comment *% b :- a."
  in
  check Alcotest.int "two statements" 2 (Asp.Program.size p)

let test_parse_show () =
  let p = Asp.Parser.parse_program "#show risk/2. a." in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "shows" [ ("risk", 2) ] (Asp.Program.shows p)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Asp.Parser.parse_program src with
      | exception Asp.Parser.Error _ -> ()
      | _ -> fail (Printf.sprintf "accepted malformed input %S" src))
    [ "a :- b"; "a b."; ":- ."; "{a} 2 1."; "#minimize { 1 }." ]

let test_parse_strings_and_negatives () =
  let r = Asp.Parser.parse_rule "label(c, \"Engineering Workstation\")." in
  match Asp.Rule.head_atoms r with
  | [ a ] ->
      check atom_testable "string arg"
        (Asp.Atom.make "label"
           [ Asp.Term.const "c"; Asp.Term.str "Engineering Workstation" ])
        a
  | _ -> fail "expected a fact"

(* -------------------------------------------------------------------- *)
(* Grounder                                                              *)
(* -------------------------------------------------------------------- *)

let test_ground_transitive_closure () =
  let g =
    Asp.Grounder.ground
      (Asp.Parser.parse_program
         "edge(a,b). edge(b,c). edge(c,d).\n\
          path(X,Y) :- edge(X,Y).\n\
          path(X,Z) :- path(X,Y), edge(Y,Z).")
  in
  (* 3 edges + 6 paths *)
  check Alcotest.int "universe" 9 (Asp.Ground.atom_count g)

let test_ground_arithmetic () =
  let g =
    Asp.Grounder.ground
      (Asp.Parser.parse_program "n(1..4). sq(X, X*X) :- n(X), X < 4.")
  in
  let models = Asp.Solver.solve g in
  match models with
  | [ m ] ->
      check
        (Alcotest.list Alcotest.string)
        "squares"
        [ "sq(1,1)"; "sq(2,4)"; "sq(3,9)" ]
        (List.map Asp.Atom.to_string (Asp.Model.by_predicate m "sq"))
  | _ -> fail "expected exactly one model"

let test_ground_assignment () =
  let models = solve_str "n(2). m(Y) :- n(X), Y = X + 3." in
  match models with
  | [ m ] ->
      check Alcotest.bool "m(5)" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "m(5)"))
  | _ -> fail "expected exactly one model"

let test_ground_unsafe () =
  List.iter
    (fun src ->
      match Asp.Grounder.ground (Asp.Parser.parse_program src) with
      | exception Asp.Grounder.Unsafe _ -> ()
      | _ -> fail (Printf.sprintf "unsafe rule accepted: %S" src))
    [
      "p(X) :- q.";
      "p(X) :- not q(X).";
      "p :- q(X), X < Y.";
      ":~ q. [W@1]";
    ]

let test_ground_overflow () =
  match
    Asp.Grounder.ground ~max_atoms:50
      (Asp.Parser.parse_program "p(0). p(X+1) :- p(X).")
  with
  | exception Asp.Grounder.Overflow _ -> ()
  | _ -> fail "unbounded recursion accepted"

let test_ground_negation_simplification () =
  (* q is never derivable, so "not q" disappears from the ground rule *)
  let g = Asp.Grounder.ground (Asp.Parser.parse_program "a :- not q. ") in
  match g.Asp.Ground.rules with
  | [ Asp.Ground.Gfact a ] ->
      check Alcotest.string "simplified to fact" "a" (Asp.Atom.to_string a)
  | _ -> fail "expected the rule to simplify to a fact"

(* -------------------------------------------------------------------- *)
(* Solver: deterministic programs                                        *)
(* -------------------------------------------------------------------- *)

let test_solve_stratified_negation () =
  let models =
    solve_str "bird(tweety). bird(sam). penguin(sam).\n\
               flies(X) :- bird(X), not penguin(X)."
  in
  match models with
  | [ m ] ->
      check Alcotest.bool "tweety flies" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "flies(tweety)"));
      check Alcotest.bool "sam does not" false
        (Asp.Model.holds m (Asp.Parser.parse_atom "flies(sam)"))
  | _ -> fail "expected exactly one model"

let test_solve_unsat_constraint () =
  check Alcotest.int "no models" 0 (List.length (solve_str "a. :- a."))

let test_solve_multilevel_stratification () =
  let models =
    solve_str
      "p(1). p(2). q(X) :- p(X), not r(X). r(1).\n\
       s(X) :- q(X), not t(X). t :- q(2), not u. "
  in
  match models with
  | [ m ] ->
      check Alcotest.bool "q(2)" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "q(2)"));
      check Alcotest.bool "t derived" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "t"));
      (* t/0 differs from t/1: s(2) needs "not t(2)", t(2) is not derivable *)
      check Alcotest.bool "s(2)" true
        (Asp.Model.holds m (Asp.Parser.parse_atom "s(2)"))
  | _ -> fail "expected exactly one model"

(* -------------------------------------------------------------------- *)
(* Solver: choice rules                                                  *)
(* -------------------------------------------------------------------- *)

let test_solve_choice_free () =
  let models = solve_str "{ a ; b }." in
  check Alcotest.int "2^2 models" 4 (List.length models)

let test_solve_choice_bounds () =
  let models = solve_str "1 { a ; b ; c } 2." in
  (* subsets of size 1 or 2: 3 + 3 = 6 *)
  check Alcotest.int "bounded subsets" 6 (List.length models)

let test_solve_choice_conditional () =
  let models = solve_str "item(1). item(2). { pick(X) : item(X) }." in
  check Alcotest.int "4 models" 4 (List.length models)

let test_solve_choice_with_body () =
  let models = solve_str "{ a } :- b." in
  (* b is false, so the choice never fires: single empty model *)
  check Alcotest.int "one model" 1 (List.length models);
  check Alcotest.int "empty model" 0
    (List.length (Asp.Model.to_list (List.hd models)))

let test_solve_choice_then_constraint () =
  let models = solve_str "{ a ; b }. :- a, b. :- not a, not b." in
  check Alcotest.int "exactly a or b" 2 (List.length models)

let test_solve_derived_from_choice () =
  let models =
    solve_str "{ fault }. alarm :- fault. ok :- not alarm."
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "both worlds"
    [ [ "alarm"; "fault" ]; [ "ok" ] ]
    (models_as_strings models)

(* -------------------------------------------------------------------- *)
(* Solver: non-stratified programs                                       *)
(* -------------------------------------------------------------------- *)

let test_solve_even_loop () =
  (* Classic: two stable models {a} and {b}. *)
  let models = solve_str "a :- not b. b :- not a." in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "two models"
    [ [ "a" ]; [ "b" ] ]
    (models_as_strings models)

let test_solve_odd_loop () =
  (* p :- not p. has no stable model. *)
  check Alcotest.int "no model" 0 (List.length (solve_str "p :- not p."))

let test_solve_positive_loop_unsupported_atoms () =
  (* a :- b. b :- a. must not make a,b true out of thin air. *)
  let models = solve_str "a :- b. b :- a." in
  match models with
  | [ m ] -> check Alcotest.int "empty model" 0 (List.length (Asp.Model.to_list m))
  | _ -> fail "expected exactly one (empty) model"

(* -------------------------------------------------------------------- *)
(* Solver: optimization                                                  *)
(* -------------------------------------------------------------------- *)

let test_solve_weak_simple () =
  let models = solve_optimal_str "{ a ; b }. :- not a, not b. :~ a. [3@1] :~ b. [1@1]" in
  match models with
  | [ m ] ->
      check Alcotest.bool "picked cheap b" true
        (Asp.Model.holds m (Asp.Atom.prop "b"));
      check Alcotest.bool "avoided a" false (Asp.Model.holds m (Asp.Atom.prop "a"));
      check Alcotest.int "cost 1" 0
        (Asp.Model.compare_cost (Asp.Model.cost m) [ (1, 1) ])
  | _ -> fail "expected a unique optimum"

let test_solve_weak_priorities () =
  (* higher priority level dominates: prefer paying 10@1 over 1@2 *)
  let models =
    solve_optimal_str
      "1 { a ; b } 1. :~ a. [1@2] :~ b. [10@1]"
  in
  match models with
  | [ m ] ->
      check Alcotest.bool "picked b (low priority cost)" true
        (Asp.Model.holds m (Asp.Atom.prop "b"))
  | _ -> fail "expected a unique optimum"

let test_solve_weak_terms_dedup () =
  (* two weak instances with the same tuple count once *)
  let models =
    solve_optimal_str
      "a. b. :~ a. [1@1, t] :~ b. [1@1, t]"
  in
  match models with
  | [ m ] ->
      check Alcotest.int "deduplicated cost" 0
        (Asp.Model.compare_cost (Asp.Model.cost m) [ (1, 1) ])
  | _ -> fail "expected one model"

let test_solve_limit () =
  let models = solve_str ~limit:3 "{ a ; b ; c ; d }." in
  check Alcotest.int "limited" 3 (List.length models)

let test_solver_guess_bound () =
  (* the guess cap survives only in the retained DFS; the CDNL solver has
     no cap and must answer (full enumeration would be 2^70 models, so the
     check goes through [satisfiable] and [limit]) *)
  let atoms =
    String.concat " ; " (List.init 70 (fun i -> Printf.sprintf "x%d" i))
  in
  let src = Printf.sprintf "{ %s }." atoms in
  let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
  (match Asp.Dfs.solve g with
  | exception Asp.Dfs.Unsupported _ -> ()
  | _ -> fail "expected Dfs.Unsupported for a 70-atom guess space");
  check Alcotest.bool "cdnl satisfiable" true (Asp.Solver.satisfiable g);
  check Alcotest.int "cdnl limited enumeration" 4
    (List.length (Asp.Solver.solve ~limit:4 g))

let test_solver_beyond_naive_bound () =
  (* 28 choice atoms, far past the exhaustive enumerator's cap of 24: each
     atom is pinned by a constraint, so the pruned search closes the out
     branches immediately instead of walking 2^28 subsets *)
  let n = 28 in
  let atoms = String.concat " ; " (List.init n (Printf.sprintf "x%d")) in
  let pins =
    String.concat "\n" (List.init n (Printf.sprintf ":- not x%d."))
  in
  let models = solve_str (Printf.sprintf "{ %s }.\n%s" atoms pins) in
  match models with
  | [ m ] -> check Alcotest.int "all pinned in" n (List.length (Asp.Model.to_list m))
  | ms -> fail (Printf.sprintf "expected one model, got %d" (List.length ms))

let test_solver_stats () =
  let g =
    Asp.Grounder.ground
      (Asp.Parser.parse_program "{ a ; b }. c :- a. :- a, b.")
  in
  let models, stats = Asp.Solver.solve_with_stats g in
  check Alcotest.int "three models" 3 (List.length models);
  check Alcotest.int "stats agree on model count" 3 stats.Asp.Solver.Stats.models;
  check Alcotest.bool "explored both branches of both choices" true
    (stats.Asp.Solver.Stats.guesses >= 2);
  check Alcotest.bool "hit the a,b conflict" true
    (stats.Asp.Solver.Stats.conflicts + stats.Asp.Solver.Stats.pruned >= 1);
  check Alcotest.bool "propagations counted" true
    (stats.Asp.Solver.Stats.firings >= 3);
  check Alcotest.bool "wall clock measured" true
    (stats.Asp.Solver.Stats.wall_s >= 0.)

let test_solver_optimal_stats () =
  let g =
    Asp.Grounder.ground
      (Asp.Parser.parse_program
         "1 { a ; b } 1. :~ a. [5@1] :~ b. [1@1]")
  in
  let models, stats = Asp.Solver.solve_optimal_with_stats g in
  (match models with
  | [ m ] ->
      check Alcotest.bool "picked the cheap atom" true
        (Asp.Model.holds m (Asp.Atom.prop "b"))
  | _ -> fail "expected a unique optimum");
  check Alcotest.bool "found both candidates" true
    (stats.Asp.Solver.Stats.models >= 1)

(* -------------------------------------------------------------------- *)
(* Deps                                                                  *)
(* -------------------------------------------------------------------- *)

let test_deps_stratified () =
  let p =
    Asp.Parser.parse_program "a :- not b. b :- c. c."
  in
  let g = Asp.Deps.of_program p in
  check Alcotest.bool "stratified" true (Asp.Deps.stratified g);
  match Asp.Deps.strata g with
  | Some strata ->
      let stratum name = List.assoc (name, 0) strata in
      check Alcotest.bool "a above b" true (stratum "a" > stratum "b")
  | None -> fail "expected strata"

let test_deps_not_stratified () =
  let p = Asp.Parser.parse_program "a :- not b. b :- not a." in
  let g = Asp.Deps.of_program p in
  check Alcotest.bool "not stratified" false (Asp.Deps.stratified g);
  check Alcotest.bool "no strata" true (Asp.Deps.strata g = None)

let test_deps_choice_predicates () =
  let p = Asp.Parser.parse_program "{ a(X) : b(X) }. b(1)." in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "choice preds" [ ("a", 1) ]
    (Asp.Deps.choice_predicates p)

(* -------------------------------------------------------------------- *)
(* Property tests: solver models pass the Gelfond–Lifschitz oracle       *)
(* -------------------------------------------------------------------- *)

(* Random propositional programs over a small vocabulary. *)
let random_program_gen =
  let open QCheck.Gen in
  let atom_name = oneofl [ "a"; "b"; "c"; "d" ] in
  let lit = map2 (fun neg a -> (neg, a)) bool atom_name in
  let rule =
    map2
      (fun head body ->
        let body_str =
          body
          |> List.map (fun (neg, a) -> if neg then "not " ^ a else a)
          |> String.concat ", "
        in
        if body = [] then head ^ "."
        else Printf.sprintf "%s :- %s." head body_str)
      atom_name
      (list_size (int_range 0 3) lit)
  in
  let choice =
    map
      (fun atoms ->
        Printf.sprintf "{ %s }." (String.concat " ; " atoms))
      (list_size (int_range 1 2) atom_name)
  in
  let statement = frequency [ (3, rule); (1, choice) ] in
  map (String.concat "\n") (list_size (int_range 1 6) statement)

let prop_models_are_stable =
  QCheck.Test.make ~name:"solver: every model passes the GL oracle" ~count:300
    (QCheck.make ~print:(fun s -> s) random_program_gen)
    (fun src ->
      let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
      let models = Asp.Solver.solve g in
      List.for_all
        (fun m -> Asp.Solver.is_stable_model g (Asp.Model.atoms m))
        models)

let prop_models_unique =
  QCheck.Test.make ~name:"solver: models are pairwise distinct" ~count:200
    (QCheck.make ~print:(fun s -> s) random_program_gen)
    (fun src ->
      let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
      let models = Asp.Solver.solve g in
      let rec distinct = function
        | [] -> true
        | m :: rest ->
            (not (List.exists (Asp.Model.equal m) rest)) && distinct rest
      in
      distinct models)

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"parser: print-parse roundtrip on programs" ~count:200
    (QCheck.make ~print:(fun s -> s) random_program_gen)
    (fun src ->
      let p = Asp.Parser.parse_program src in
      let p' = Asp.Parser.parse_program (Asp.Program.to_string p) in
      Asp.Program.to_string p = Asp.Program.to_string p')

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "asp.term",
      [
        Alcotest.test_case "eval" `Quick test_term_eval;
        Alcotest.test_case "eval errors" `Quick test_term_eval_errors;
        Alcotest.test_case "substitute" `Quick test_term_substitute;
        Alcotest.test_case "vars" `Quick test_term_vars;
      ] );
    ( "asp.parser",
      [
        Alcotest.test_case "paper listing 1" `Quick test_parse_paper_listing1;
        Alcotest.test_case "paper listing 2" `Quick test_parse_paper_listing2;
        Alcotest.test_case "choice" `Quick test_parse_choice;
        Alcotest.test_case "constraint & weak" `Quick test_parse_constraint_weak;
        Alcotest.test_case "intervals" `Quick test_parse_intervals;
        Alcotest.test_case "comments" `Quick test_parse_comments;
        Alcotest.test_case "show" `Quick test_parse_show;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "strings" `Quick test_parse_strings_and_negatives;
        qcheck prop_parser_roundtrip;
      ] );
    ( "asp.grounder",
      [
        Alcotest.test_case "transitive closure" `Quick
          test_ground_transitive_closure;
        Alcotest.test_case "arithmetic" `Quick test_ground_arithmetic;
        Alcotest.test_case "assignment" `Quick test_ground_assignment;
        Alcotest.test_case "unsafe rules" `Quick test_ground_unsafe;
        Alcotest.test_case "overflow" `Quick test_ground_overflow;
        Alcotest.test_case "negation simplification" `Quick
          test_ground_negation_simplification;
      ] );
    ( "asp.solver",
      [
        Alcotest.test_case "stratified negation" `Quick
          test_solve_stratified_negation;
        Alcotest.test_case "unsat constraint" `Quick test_solve_unsat_constraint;
        Alcotest.test_case "multi-level strata" `Quick
          test_solve_multilevel_stratification;
        Alcotest.test_case "choice free" `Quick test_solve_choice_free;
        Alcotest.test_case "choice bounds" `Quick test_solve_choice_bounds;
        Alcotest.test_case "choice conditional" `Quick
          test_solve_choice_conditional;
        Alcotest.test_case "choice with false body" `Quick
          test_solve_choice_with_body;
        Alcotest.test_case "choice + constraints" `Quick
          test_solve_choice_then_constraint;
        Alcotest.test_case "derived from choice" `Quick
          test_solve_derived_from_choice;
        Alcotest.test_case "even negative loop" `Quick test_solve_even_loop;
        Alcotest.test_case "odd negative loop" `Quick test_solve_odd_loop;
        Alcotest.test_case "positive loop unsupported" `Quick
          test_solve_positive_loop_unsupported_atoms;
        Alcotest.test_case "weak constraints" `Quick test_solve_weak_simple;
        Alcotest.test_case "weak priorities" `Quick test_solve_weak_priorities;
        Alcotest.test_case "weak tuple dedup" `Quick test_solve_weak_terms_dedup;
        Alcotest.test_case "limit" `Quick test_solve_limit;
        Alcotest.test_case "guess bound" `Quick test_solver_guess_bound;
        Alcotest.test_case "beyond naive guess bound" `Quick
          test_solver_beyond_naive_bound;
        Alcotest.test_case "search stats" `Quick test_solver_stats;
        Alcotest.test_case "optimal search stats" `Quick
          test_solver_optimal_stats;
        qcheck prop_models_are_stable;
        qcheck prop_models_unique;
      ] );
    ( "asp.deps",
      [
        Alcotest.test_case "stratified" `Quick test_deps_stratified;
        Alcotest.test_case "not stratified" `Quick test_deps_not_stratified;
        Alcotest.test_case "choice predicates" `Quick test_deps_choice_predicates;
      ] );
  ]
