(* Integration tests for the tool core (lib/cpsrisk): the exact Table II
   reproduction, agreement of the dynamics and ASP backends, the Fig. 1
   pipeline, and report rendering. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* -------------------------------------------------------------------- *)
(* Table II — the paper's analysis results, row by row                   *)
(* -------------------------------------------------------------------- *)

(* (scenario, R1 violated, R2 violated) exactly as printed in Table II *)
let paper_table_ii =
  [
    ("S1", false, false);
    ("S2", true, true);
    ("S3", false, false);
    ("S4", true, false);
    ("S5", true, true);
    ("S6", false, false);
    ("S7", true, true);
  ]

let verdict_of row rid =
  match List.assoc_opt rid row.Epa.Analysis.verdicts with
  | Some v -> Epa.Requirement.violated v
  | None -> fail ("missing verdict " ^ rid)

let test_table_ii_exact () =
  let rows = Cpsrisk.Water_tank.table_ii_rows () in
  List.iter
    (fun (label, r1, r2) ->
      match List.assoc_opt label rows with
      | Some row ->
          check Alcotest.bool (label ^ " R1") r1 (verdict_of row "R1");
          check Alcotest.bool (label ^ " R2") r2 (verdict_of row "R2")
      | None -> fail ("missing row " ^ label))
    paper_table_ii

let test_table_ii_s2_expansion () =
  (* S2: the compromised workstation induces all three physical faults *)
  let rows = Cpsrisk.Water_tank.table_ii_rows () in
  let s2 = List.assoc "S2" rows in
  check (Alcotest.list Alcotest.string) "induced closure"
    [ "F1"; "F2"; "F3"; "F4" ] s2.Epa.Analysis.effective

let test_table_ii_mitigated_f4_excluded () =
  (* activating M1/M2 excludes the F4 scenario (§VII: "it allows excluding
     this specific scenario from the evaluation") *)
  let row =
    Epa.Analysis.run_scenario Cpsrisk.Water_tank.system
      (Epa.Scenario.make ~mitigations:[ "M1"; "M2" ] [ "F4" ])
  in
  check (Alcotest.list Alcotest.string) "nothing effective" []
    row.Epa.Analysis.effective;
  check (Alcotest.list Alcotest.string) "no violations" []
    (Epa.Analysis.violations row)

let test_s5_most_severe () =
  (* §VII: S5 (two faults) dominates S7 (three faults, same violations) *)
  let rows = Cpsrisk.Water_tank.full_sweep ~mitigations:[ "M1"; "M2" ] () in
  match Epa.Analysis.most_severe rows with
  | first :: _ ->
      check (Alcotest.list Alcotest.string) "S5 faults first" [ "F2"; "F3" ]
        first.Epa.Analysis.scenario.Epa.Scenario.faults;
      check Alcotest.int "both requirements violated" 2
        (List.length (Epa.Analysis.violations first))
  | [] -> fail "expected hazards"

let test_full_sweep_size () =
  check Alcotest.int "2^4 scenarios" 16
    (List.length (Cpsrisk.Water_tank.full_sweep ()))

(* -------------------------------------------------------------------- *)
(* Backend agreement: dynamics+LTLf vs generated temporal ASP            *)
(* -------------------------------------------------------------------- *)

let test_asp_backend_agrees_on_paper_scenarios () =
  List.iter
    (fun (label, scenario) ->
      let row = Epa.Analysis.run_scenario Cpsrisk.Water_tank.system scenario in
      let asp = Cpsrisk.Water_tank.asp_verdicts ~scenario () in
      List.iter
        (fun (rid, asp_violated) ->
          check Alcotest.bool
            (Printf.sprintf "%s/%s backends agree" label rid)
            (verdict_of row rid) asp_violated)
        asp)
    Cpsrisk.Water_tank.paper_scenarios

let prop_backends_agree_everywhere =
  (* all 16 fault combinations x random mitigation subsets *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 4) (oneofl [ "F1"; "F2"; "F3"; "F4" ]))
        (list_size (int_range 0 3) (oneofl [ "M1"; "M2"; "M3"; "M4"; "M5" ])))
  in
  QCheck.Test.make ~name:"water tank: ASP and dynamics backends agree"
    ~count:60
    (QCheck.make
       ~print:(fun (fs, ms) ->
         Printf.sprintf "{%s}+{%s}" (String.concat "," fs) (String.concat "," ms))
       gen)
    (fun (fault_ids, mitigation_ids) ->
      let scenario = Epa.Scenario.make ~mitigations:mitigation_ids fault_ids in
      let row = Epa.Analysis.run_scenario Cpsrisk.Water_tank.system scenario in
      let asp = Cpsrisk.Water_tank.asp_verdicts ~scenario () in
      List.for_all
        (fun (rid, asp_violated) -> verdict_of row rid = asp_violated)
        asp)

let test_asp_backend_horizon_robustness () =
  (* the qualitative system settles quickly: verdicts must not depend on
     the unrolling depth once past the settling time *)
  let scenario = Epa.Scenario.make [ "F2"; "F3" ] in
  let reference = Cpsrisk.Water_tank.asp_verdicts ~horizon:12 ~scenario () in
  List.iter
    (fun horizon ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
        (Printf.sprintf "horizon %d" horizon)
        reference
        (Cpsrisk.Water_tank.asp_verdicts ~horizon ~scenario ()))
    [ 8; 10; 16 ]

let test_asp_program_is_stratified_single_model () =
  let scenario = Epa.Scenario.make [ "F2"; "F3" ] in
  let g =
    Asp.Grounder.ground (Cpsrisk.Water_tank.asp_program ~scenario ())
  in
  let models = Asp.Solver.solve g in
  check Alcotest.int "unique stable model" 1 (List.length models);
  check Alcotest.bool "passes the GL oracle" true
    (Asp.Solver.is_stable_model g (Asp.Model.atoms (List.hd models)))

let test_dynamics_trace_shape () =
  (* fault-free: level cycles low..high, never overflow *)
  let ts = Cpsrisk.Water_tank.build_dynamics ~faults:[] in
  let tr = Ltl.Ts.run ts (List.hd (Ltl.Ts.init ts)) in
  let levels =
    List.map (Qual.Qstate.get "level") (Ltl.Trace.to_list tr)
  in
  check Alcotest.bool "visits high" true (List.mem "high" levels);
  check Alcotest.bool "never overflows" false (List.mem "overflow" levels)

let test_dynamics_f2_overflow_path () =
  let ts = Cpsrisk.Water_tank.build_dynamics ~faults:[ "F2" ] in
  let tr = Ltl.Ts.run ts (List.hd (Ltl.Ts.init ts)) in
  let states = Ltl.Trace.to_list tr in
  let levels = List.map (Qual.Qstate.get "level") states in
  check Alcotest.bool "overflows" true (List.mem "overflow" levels);
  (* alert fires because the HMI is healthy *)
  check Alcotest.bool "alert latched" true
    (List.exists (Qual.Qstate.holds "alert" "true") states)

(* -------------------------------------------------------------------- *)
(* §V.B non-deterministic over-approximation                             *)
(* -------------------------------------------------------------------- *)

let test_uncertain_over_approximates () =
  (* every hazard of the exact model is also flagged by the uncertain one *)
  let exact = Cpsrisk.Water_tank.full_sweep () in
  List.iter
    (fun (row : Epa.Analysis.row) ->
      let uncertain_row =
        Epa.Analysis.run_scenario ~horizon:12 Cpsrisk.Water_tank.uncertain_system
          row.Epa.Analysis.scenario
      in
      List.iter
        (fun rid ->
          check Alcotest.bool
            (Printf.sprintf "%s/%s preserved"
               (Epa.Scenario.label row.Epa.Analysis.scenario)
               rid)
            true
            (List.mem rid (Epa.Analysis.violations uncertain_row)))
        (Epa.Analysis.violations row))
    exact

let test_uncertain_has_spurious_hazards () =
  (* the fault-free scenario is spuriously hazardous under ambiguity *)
  let row =
    Epa.Analysis.run_scenario ~horizon:12 Cpsrisk.Water_tank.uncertain_system
      (Epa.Scenario.make [])
  in
  check Alcotest.bool "spurious violation" true
    (Epa.Analysis.violations row <> []);
  (* and the exact model clears it *)
  let exact_row =
    Epa.Analysis.run_scenario Cpsrisk.Water_tank.system (Epa.Scenario.make [])
  in
  check (Alcotest.list Alcotest.string) "exact is clean" []
    (Epa.Analysis.violations exact_row)

let test_uncertain_cegar_refinement () =
  (* CEGAR: abstract (uncertain) candidates refined by the exact model *)
  let label (r : Epa.Analysis.row) = Epa.Scenario.label r.Epa.Analysis.scenario in
  let outcome =
    Cegar.Loop.run
      ~equal:(fun a b -> label a = label b)
      ~initial:(fun () ->
        Epa.Analysis.hazardous
          (Epa.Analysis.run ~horizon:12 Cpsrisk.Water_tank.uncertain_system))
      ~refine:(fun level candidates ->
        match level with
        | 0 ->
            Some
              (List.filter
                 (fun (row : Epa.Analysis.row) ->
                   Epa.Analysis.violations
                     (Epa.Analysis.run_scenario Cpsrisk.Water_tank.system
                        row.Epa.Analysis.scenario)
                   <> [])
                 candidates)
        | _ -> None)
      ()
  in
  check Alcotest.int "16 abstract candidates" 16
    (List.length (List.hd outcome.Cegar.Loop.rounds).Cegar.Loop.candidates);
  check Alcotest.int "12 confirmed" 12 (List.length outcome.Cegar.Loop.confirmed);
  check Alcotest.int "4 spurious eliminated" 4
    (List.length
       (List.concat_map
          (fun r -> r.Cegar.Loop.eliminated)
          outcome.Cegar.Loop.rounds))

(* -------------------------------------------------------------------- *)
(* §II.C cost-metric search inside the reasoner                          *)
(* -------------------------------------------------------------------- *)

let test_asp_critical_scenario_unmitigated () =
  (* without mitigations, a single fault (the workstation compromise)
     already produces the worst consequence *)
  let faults, violated = Cpsrisk.Water_tank.asp_critical_scenario () in
  check (Alcotest.list Alcotest.string) "F4 alone" [ "F4" ] faults;
  check (Alcotest.list Alcotest.string) "both requirements" [ "R1"; "R2" ]
    violated

let test_asp_critical_scenario_reproduces_s5 () =
  (* §VII: "the most severe fault combination is when the output valve is
     stuck in the closed state, and the HMI does not get an alert" *)
  let faults, violated =
    Cpsrisk.Water_tank.asp_critical_scenario ~mitigations:[ "M1"; "M2" ] ()
  in
  check (Alcotest.list Alcotest.string) "S5 = {F2,F3}" [ "F2"; "F3" ] faults;
  check (Alcotest.list Alcotest.string) "both requirements" [ "R1"; "R2" ]
    violated;
  (* agreement with the native severity ranking *)
  let rows = Cpsrisk.Water_tank.full_sweep ~mitigations:[ "M1"; "M2" ] () in
  match Epa.Analysis.most_severe rows with
  | top :: _ ->
      check (Alcotest.list Alcotest.string) "matches most_severe"
        top.Epa.Analysis.scenario.Epa.Scenario.faults faults
  | [] -> fail "expected hazards"

(* -------------------------------------------------------------------- *)
(* Joint ASP mitigation optimization (§IV.C-D)                           *)
(* -------------------------------------------------------------------- *)

let test_asp_mitigation_optimum_agrees () =
  (* the single joint logic program (all scenarios + mitigation choice +
     weak constraints) must find the same optimum as the exact OCaml
     search over the same objective *)
  let asp_selected, asp_residual = Cpsrisk.Water_tank.asp_optimal_mitigations () in
  let ocaml =
    Mitigation.Optimizer.optimal Cpsrisk.Water_tank.optimization_problem
  in
  check (Alcotest.list Alcotest.string) "same selection"
    ocaml.Mitigation.Optimizer.selected asp_selected;
  check Alcotest.int "same residual" ocaml.Mitigation.Optimizer.residual
    asp_residual

let test_asp_mitigation_budget_agrees () =
  (* budget 5: the #sum constraint must match the OCaml budgeted optimum *)
  List.iter
    (fun budget ->
      let asp_selected, asp_residual =
        Cpsrisk.Water_tank.asp_optimal_mitigations ~budget ()
      in
      let ocaml =
        Mitigation.Optimizer.optimal ~budget
          Cpsrisk.Water_tank.optimization_problem
      in
      check Alcotest.int
        (Printf.sprintf "budget %d residual" budget)
        ocaml.Mitigation.Optimizer.residual asp_residual;
      check Alcotest.bool
        (Printf.sprintf "budget %d cost bound" budget)
        true
        (Mitigation.Action.total_cost Cpsrisk.Water_tank.mitigations asp_selected
        <= budget))
    [ 2; 5 ]

let test_asp_mitigation_no_selection_residual () =
  (* with every mitigation forbidden, the priority-2 weight equals the
     OCaml residual objective for the empty selection *)
  let program =
    Asp.Program.append
      (Cpsrisk.Water_tank.asp_mitigation_program ())
      (Asp.Parser.parse_program ":- chosen(M).")
  in
  match Asp.Solver.solve (Asp.Grounder.ground program) with
  | m :: _ ->
      let weight = Option.value ~default:0 (List.assoc_opt 2 (Asp.Model.cost m)) in
      check Alcotest.int "residual matches"
        (Cpsrisk.Water_tank.residual_loss ~active:[])
        weight
  | [] -> fail "expected a model"

(* -------------------------------------------------------------------- *)
(* Models                                                                *)
(* -------------------------------------------------------------------- *)

let test_case_study_model_valid () =
  check Alcotest.bool "high-level model valid" true
    (Archimate.Validate.is_valid Cpsrisk.Water_tank.model);
  check Alcotest.bool "refined model valid" true
    (Archimate.Validate.is_valid Cpsrisk.Water_tank.refined_model)

let test_refined_model_attack_path () =
  match
    Cegar.Refine.attack_path Cpsrisk.Water_tank.refined_model ~entry:"email"
      ~target:"infected"
  with
  | Some [ "email"; "browser"; "infected" ] -> ()
  | Some other -> fail ("unexpected path " ^ String.concat "," other)
  | None -> fail "expected the spam-link attack path"

let test_topology_ews_reaches_tank () =
  (* the IT compromise can reach the physical asset through the valves *)
  let active =
    [
      Epa.Fault.make ~id:"FX" ~component:"ews" ~mode:Epa.Fault.Compromise ();
    ]
  in
  let r = Epa.Propagation.analyze Cpsrisk.Water_tank.topology ~active in
  check Alcotest.bool "tank affected" true
    (List.mem "tank" (Epa.Propagation.affected r));
  let path = Epa.Propagation.path_to "tank" Epa.Propagation.Value_err r in
  check Alcotest.bool "path starts at the workstation" true
    (match path with ("ews", _) :: _ -> true | _ -> false)

(* -------------------------------------------------------------------- *)
(* Optimization objective                                                *)
(* -------------------------------------------------------------------- *)

let test_residual_loss_decreases () =
  let base = Cpsrisk.Water_tank.residual_loss ~active:[] in
  let with_m1 = Cpsrisk.Water_tank.residual_loss ~active:[ "M1" ] in
  let all = Cpsrisk.Water_tank.residual_loss ~active:[ "M1"; "M3"; "M4"; "M5" ] in
  check Alcotest.bool "M1 helps" true (with_m1 < base);
  check Alcotest.int "full protection" 0 all

let test_optimizer_prefers_cheaper_equivalent () =
  (* M1 and M2 both block F4; the optimum must pick M1 (cost 2 < 5) *)
  let s =
    Mitigation.Optimizer.optimal ~budget:6 Cpsrisk.Water_tank.optimization_problem
  in
  check Alcotest.bool "M1 selected" true
    (List.mem "M1" s.Mitigation.Optimizer.selected);
  check Alcotest.bool "M2 skipped" false
    (List.mem "M2" s.Mitigation.Optimizer.selected)

(* -------------------------------------------------------------------- *)
(* Pipeline (Fig. 1)                                                     *)
(* -------------------------------------------------------------------- *)

let test_pipeline_end_to_end () =
  let artifacts = Cpsrisk.Pipeline.run (Cpsrisk.Pipeline.water_tank_config ()) in
  check Alcotest.int "seven log lines" 7 (List.length artifacts.Cpsrisk.Pipeline.log);
  check Alcotest.int "scenario space" 16 artifacts.Cpsrisk.Pipeline.scenario_count;
  check Alcotest.bool "mutations include faults and techniques" true
    (List.exists
       (fun m -> match m.Cpsrisk.Pipeline.source with `Fault _ -> true | _ -> false)
       artifacts.Cpsrisk.Pipeline.mutations
    && List.exists
         (fun m ->
           match m.Cpsrisk.Pipeline.source with `Technique _ -> true | _ -> false)
         artifacts.Cpsrisk.Pipeline.mutations);
  (* refinement eliminated the compensated scenarios *)
  check Alcotest.bool "spurious eliminated" true
    (artifacts.Cpsrisk.Pipeline.spurious_eliminated <> []);
  check Alcotest.bool "hazards confirmed" true
    (artifacts.Cpsrisk.Pipeline.confirmed_hazards <> []);
  (* every confirmed hazard indeed violates something *)
  List.iter
    (fun h ->
      check Alcotest.bool "confirmed violates" true
        (Epa.Analysis.violations h.Cpsrisk.Pipeline.row <> []))
    artifacts.Cpsrisk.Pipeline.confirmed_hazards

let test_pipeline_budget_respected () =
  let artifacts =
    Cpsrisk.Pipeline.run (Cpsrisk.Pipeline.water_tank_config ~budget:2 ())
  in
  check Alcotest.bool "cost within budget" true
    (artifacts.Cpsrisk.Pipeline.plan.Mitigation.Optimizer.cost <= 2)

let test_pipeline_semantic_gate () =
  (* the opt-in L2xx gate runs against the full-activation encoding, which
     must be semantically clean — the pipeline completes and logs the
     extra step; the default config skips the gate entirely *)
  let artifacts =
    Cpsrisk.Pipeline.run
      (Cpsrisk.Pipeline.water_tank_config ~semantic_lint:true ())
  in
  check Alcotest.int "eight log lines with the gate" 8
    (List.length artifacts.Cpsrisk.Pipeline.log);
  check Alcotest.bool "gate line present" true
    (List.exists
       (fun l ->
         String.length l >= 24
         && String.sub l 0 24 = "step 1 (semantic lint): ")
       artifacts.Cpsrisk.Pipeline.log);
  check Alcotest.bool "hazards still confirmed" true
    (artifacts.Cpsrisk.Pipeline.confirmed_hazards <> [])

let test_pipeline_candidates_superset_confirmed () =
  let artifacts = Cpsrisk.Pipeline.run (Cpsrisk.Pipeline.water_tank_config ()) in
  List.iter
    (fun h ->
      let label =
        Epa.Scenario.label h.Cpsrisk.Pipeline.row.Epa.Analysis.scenario
      in
      check Alcotest.bool ("candidate covers " ^ label) true
        (List.mem label artifacts.Cpsrisk.Pipeline.candidate_hazards))
    artifacts.Cpsrisk.Pipeline.confirmed_hazards

(* -------------------------------------------------------------------- *)
(* Reports                                                               *)
(* -------------------------------------------------------------------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_table_ii_rendering () =
  let s =
    Cpsrisk.Report.table_ii
      ~fault_ids:[ "F1"; "F2"; "F3"; "F4" ]
      ~mitigation_ids:[ "M1"; "M2" ]
      (Cpsrisk.Water_tank.table_ii_rows ())
  in
  check Alcotest.bool "has S5" true (contains s "S5");
  check Alcotest.bool "has Violated" true (contains s "Violated");
  check Alcotest.bool "has Active" true (contains s "Active");
  (* S3 row: F1 active but nothing violated *)
  let s3_line =
    List.find (fun l -> String.length l >= 2 && String.sub l 0 2 = "S3")
      (String.split_on_char '\n' s)
  in
  check Alcotest.bool "S3 not violated" false (contains s3_line "Violated")

let test_report_table_i_rendering () =
  let s = Cpsrisk.Report.table_i () in
  check Alcotest.bool "labels" true (contains s "LM");
  check Alcotest.bool "has VH cells" true (contains s "VH")

let test_report_model_inventory () =
  let s = Cpsrisk.Report.model_inventory Cpsrisk.Water_tank.refined_model in
  check Alcotest.bool "engineering workstation listed" true
    (contains s "Engineering Workstation");
  check Alcotest.bool "browser listed after refinement" true
    (contains s "Browser");
  check Alcotest.bool "composition shown" true (contains s "composition")

let test_report_markdown_table () =
  let s =
    Cpsrisk.Report.markdown_table ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333" ] ]
  in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "5 lines (incl trailing)" 5 (List.length lines);
  check Alcotest.bool "separator" true (contains s "|-")

let test_report_propagation_paths () =
  let r =
    Epa.Propagation.analyze Cpsrisk.Water_tank.topology
      ~active:
        [ Epa.Fault.make ~id:"F4" ~component:"ews" ~mode:Epa.Fault.Compromise () ]
  in
  let s = Cpsrisk.Report.propagation_paths r in
  check Alcotest.bool "mentions the workstation" true (contains s "ews");
  check Alcotest.bool "mentions the tank" true (contains s "tank");
  check Alcotest.bool "shows provenance" true (contains s "from ")

let test_solver_show_projection () =
  (* #show projects the models the CLI prints *)
  let g =
    Asp.Grounder.ground
      (Asp.Parser.parse_program "#show b/1. a(1..2). b(X) :- a(X).")
  in
  match Asp.Solver.solve g with
  | [ m ] ->
      let projected = Asp.Model.project g.Asp.Ground.shows m in
      check Alcotest.int "only b atoms" 2
        (List.length (Asp.Model.to_list projected));
      check Alcotest.bool "a filtered" false
        (Asp.Model.holds_pred projected "a")
  | _ -> fail "expected one model"

(* paper listings parse with the embedded engine *)
let test_paper_listings_parse () =
  let listing1 =
    "potential_fault(C, F) :- component(C), fault(F), mitigation(F, M), not \
     active_mitigation(C, M)."
  in
  let listing2 =
    "component_state(C, X) :- prev_component_state(C, X), active_fault(C, \
     stuck_at_x)."
  in
  List.iter
    (fun src ->
      match Asp.Parser.parse_rule src with
      | _ -> ()
      | exception Asp.Parser.Error e -> fail e)
    [ listing1; listing2 ]

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "cpsrisk.table2",
      [
        Alcotest.test_case "Table II exact" `Quick test_table_ii_exact;
        Alcotest.test_case "S2 induced closure" `Quick test_table_ii_s2_expansion;
        Alcotest.test_case "mitigated F4 excluded" `Quick
          test_table_ii_mitigated_f4_excluded;
        Alcotest.test_case "S5 most severe" `Quick test_s5_most_severe;
        Alcotest.test_case "sweep size" `Quick test_full_sweep_size;
      ] );
    ( "cpsrisk.backends",
      [
        Alcotest.test_case "ASP agrees on S1-S7" `Quick
          test_asp_backend_agrees_on_paper_scenarios;
        Alcotest.test_case "ASP program single model" `Quick
          test_asp_program_is_stratified_single_model;
        Alcotest.test_case "ASP horizon robustness" `Quick
          test_asp_backend_horizon_robustness;
        Alcotest.test_case "fault-free trace" `Quick test_dynamics_trace_shape;
        Alcotest.test_case "F2 overflow path" `Quick
          test_dynamics_f2_overflow_path;
        qcheck prop_backends_agree_everywhere;
        Alcotest.test_case "uncertain over-approximates" `Quick
          test_uncertain_over_approximates;
        Alcotest.test_case "uncertain spurious hazards" `Quick
          test_uncertain_has_spurious_hazards;
        Alcotest.test_case "uncertain CEGAR refinement" `Quick
          test_uncertain_cegar_refinement;
        Alcotest.test_case "ASP critical scenario (unmitigated)" `Quick
          test_asp_critical_scenario_unmitigated;
        Alcotest.test_case "ASP critical scenario = S5" `Quick
          test_asp_critical_scenario_reproduces_s5;
        Alcotest.test_case "ASP mitigation optimum agrees" `Slow
          test_asp_mitigation_optimum_agrees;
        Alcotest.test_case "ASP no-mitigation residual" `Slow
          test_asp_mitigation_no_selection_residual;
        Alcotest.test_case "ASP budgeted optimum agrees" `Slow
          test_asp_mitigation_budget_agrees;
      ] );
    ( "cpsrisk.models",
      [
        Alcotest.test_case "case-study models valid" `Quick
          test_case_study_model_valid;
        Alcotest.test_case "refined attack path" `Quick
          test_refined_model_attack_path;
        Alcotest.test_case "IT reaches OT" `Quick test_topology_ews_reaches_tank;
      ] );
    ( "cpsrisk.optimization",
      [
        Alcotest.test_case "residual decreases" `Quick test_residual_loss_decreases;
        Alcotest.test_case "cheaper equivalent preferred" `Quick
          test_optimizer_prefers_cheaper_equivalent;
      ] );
    ( "cpsrisk.pipeline",
      [
        Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
        Alcotest.test_case "budget respected" `Quick test_pipeline_budget_respected;
        Alcotest.test_case "semantic gate" `Quick test_pipeline_semantic_gate;
        Alcotest.test_case "over-approximation" `Quick
          test_pipeline_candidates_superset_confirmed;
      ] );
    ( "cpsrisk.report",
      [
        Alcotest.test_case "table II rendering" `Quick
          test_report_table_ii_rendering;
        Alcotest.test_case "table I rendering" `Quick test_report_table_i_rendering;
        Alcotest.test_case "model inventory" `Quick test_report_model_inventory;
        Alcotest.test_case "markdown table" `Quick test_report_markdown_table;
        Alcotest.test_case "propagation paths" `Quick
          test_report_propagation_paths;
        Alcotest.test_case "#show projection" `Quick test_solver_show_projection;
        Alcotest.test_case "paper listings parse" `Quick test_paper_listings_parse;
      ] );
  ]
