(* The batch sweep engine: content addressing, the worker pool, the solve
   cache, and the end-to-end guarantees the docs promise — parallel runs
   bit-identical to sequential ones, and a repeated sweep answered entirely
   from the cache with zero fresh solver work. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                          *)
(* ------------------------------------------------------------------ *)

let fp_hex p = Engine.Fingerprint.to_hex (Engine.Fingerprint.program p)

let test_fp_structural () =
  let a = Asp.Parser.parse_program "p(1). q(X) :- p(X), not r(X)." in
  let b = Asp.Parser.parse_program "p(1). q(X) :- p(X), not r(X)." in
  check Alcotest.string "identical programs" (fp_hex a) (fp_hex b);
  (* layout and source positions must not matter *)
  let c =
    Asp.Parser.parse_program "\n\n  p(1).\n\n  q(X) :-\n     p(X), not r(X).\n"
  in
  check Alcotest.string "whitespace-insensitive" (fp_hex a) (fp_hex c)

let test_fp_perturbation () =
  let base = "p(1). q(X) :- p(X), not r(X)." in
  let variants =
    [
      "p(2). q(X) :- p(X), not r(X)."; (* constant *)
      "p(1). q(X) :- p(X), r(X)."; (* polarity *)
      "p(1). q(X) :- p(X)."; (* dropped literal *)
      "p(1). s(X) :- p(X), not r(X)."; (* head predicate *)
      "q(X) :- p(X), not r(X). p(1)."; (* rule order is significant *)
    ]
  in
  let h = fp_hex (Asp.Parser.parse_program base) in
  List.iter
    (fun v ->
      checkb (Printf.sprintf "distinct from %S" v) false
        (String.equal h (fp_hex (Asp.Parser.parse_program v))))
    variants

let test_fp_extend_append () =
  let base = Asp.Parser.parse_program "p(1). #show q/1. q(X) :- p(X)." in
  let inc = Asp.Parser.parse_program "p(2). #show p/1." in
  check Alcotest.string "extend distributes over append"
    (Engine.Fingerprint.to_hex
       (Engine.Fingerprint.program (Asp.Program.append base inc)))
    (Engine.Fingerprint.to_hex
       (Engine.Fingerprint.extend (Engine.Fingerprint.program base) inc))

(* Golden values: the on-disk store ({!Serve.Store}) addresses entries by
   these hex strings, so a silent change to the fingerprint function would
   orphan every persisted cache on upgrade. Drift must be a conscious
   decision — if this test fails, either revert the hash change or accept
   that existing cache directories go cold and update the values here. *)
let test_fp_golden () =
  List.iter
    (fun (src, hex) ->
      check Alcotest.string
        (Printf.sprintf "program %S" src)
        hex
        (fp_hex (Asp.Parser.parse_program src)))
    [
      ("", "cbf29ce4842223250000000000000000");
      ("p(1).", "4a3d5a823823bccc0000000000000000");
      ("p(1). q(X) :- p(X), not r(X).", "ac8af7c121239fc60000000000000000");
      ("p(1). #show p/1.", "4a3d5a823823bcccc20dd19c4d1ccedd");
    ];
  let base = Engine.Fingerprint.program (Asp.Parser.parse_program "p(1).") in
  check Alcotest.string "extend"
    "d5b219d9091180750000000000000000"
    (Engine.Fingerprint.to_hex
       (Engine.Fingerprint.extend base (Asp.Parser.parse_program "q(2).")));
  check Alcotest.string "ints"
    "da2bfb225e0d1f050000000000000000"
    (Engine.Fingerprint.to_hex (Engine.Fingerprint.ints [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Delta parsing                                                        *)
(* ------------------------------------------------------------------ *)

let test_delta_parse () =
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.fail (Engine.Delta.error_to_string e)
  in
  let d = ok (Engine.Delta.parse_line "worst: F2, F3 / M1 ! fix(a). fix(b).") in
  (match d with
  | Some d ->
      check Alcotest.string "label" "worst" d.Engine.Delta.label;
      check (Alcotest.list Alcotest.string) "faults" [ "F2"; "F3" ]
        d.Engine.Delta.faults;
      check (Alcotest.list Alcotest.string) "mitigations" [ "M1" ]
        d.Engine.Delta.mitigations;
      checkb "extra" true (d.Engine.Delta.extra <> [])
  | None -> Alcotest.fail "expected a delta");
  (match ok (Engine.Delta.parse_line "  # comment only") with
  | None -> ()
  | Some _ -> Alcotest.fail "comment line should produce no delta");
  (match ok (Engine.Delta.parse_line "- / M1") with
  | Some d ->
      check (Alcotest.list Alcotest.string) "no faults" [] d.Engine.Delta.faults
  | None -> Alcotest.fail "expected a delta");
  match Engine.Delta.parse "F1\nF2 // M1\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check Alcotest.int "line number in error" 2 e.Engine.Delta.line

(* The two diagnostics a mutations file can raise must carry the position
   of the offending character, in the Lint.Diagnostic "line N, col C"
   spelling, against the raw line (label and comment included). *)
let test_delta_error_positions () =
  (match Engine.Delta.parse "F1\nF2 // M1\nF3" with
  | Ok _ -> Alcotest.fail "double separator must not parse"
  | Error e ->
      check Alcotest.int "separator line" 2 e.Engine.Delta.line;
      check Alcotest.int "separator col (the second '/')" 5
        e.Engine.Delta.col;
      check Alcotest.string "separator rendering"
        "line 2, col 5: more than one '/' separator (expected FAULTS [/ \
         MITIGATIONS])"
        (Engine.Delta.error_to_string e));
  match Engine.Delta.parse "ok: F1\nbad: F1 ! p(." with
  | Ok _ -> Alcotest.fail "invalid ASP tail must not parse"
  | Error e ->
      check Alcotest.int "asp-tail line" 2 e.Engine.Delta.line;
      check Alcotest.int "asp-tail col (after the '!')" 10 e.Engine.Delta.col;
      checkb "asp-tail message names the construct" true
        (String.length e.Engine.Delta.msg >= 22
        && String.sub e.Engine.Delta.msg 0 22 = "invalid ASP after '!':")

let test_delta_label () =
  check Alcotest.string "derived label" "{F2,F3}+{M1}"
    (Engine.Delta.label (Engine.Delta.make ~mitigations:[ "M1" ] [ "F3"; "F2" ]));
  check Alcotest.string "empty" "{}"
    (Engine.Delta.label (Engine.Delta.make []))

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  let f i = i * i in
  List.iter
    (fun jobs ->
      check
        (Alcotest.array Alcotest.int)
        (Printf.sprintf "jobs=%d" jobs)
        (Array.init 37 f)
        (Engine.Pool.map ~oversubscribe:true ~jobs f 37))
    [ 1; 2; 4; 8 ];
  check (Alcotest.array Alcotest.int) "empty" [||]
    (Engine.Pool.map ~jobs:4 f 0)

let test_pool_exception () =
  match
    Engine.Pool.map ~oversubscribe:true ~jobs:4
      (fun i -> if i >= 5 then failwith (string_of_int i) else i)
      20
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure i ->
      (* every task still ran; the lowest-indexed failure wins *)
      check Alcotest.string "lowest-indexed failure" "5" i

(* ------------------------------------------------------------------ *)
(* Cache                                                                *)
(* ------------------------------------------------------------------ *)

let test_cache () =
  let c = Engine.Cache.create () in
  let key s = Engine.Fingerprint.program (Asp.Parser.parse_program s) in
  let calls = ref 0 in
  let compute () = incr calls; !calls in
  let v1, cached1 = Engine.Cache.find_or_compute c (key "a.") compute in
  let v2, cached2 = Engine.Cache.find_or_compute c (key "a.") compute in
  let v3, cached3 = Engine.Cache.find_or_compute c (key "b.") compute in
  check Alcotest.int "computed once per distinct key" 2 !calls;
  checkb "first is a miss" false cached1;
  checkb "second is a hit" true cached2;
  checkb "new key is a miss" false cached3;
  check Alcotest.int "hit returns the memo" v1 v2;
  check Alcotest.int "fresh value" 2 v3;
  check Alcotest.int "hits" 1 (Engine.Cache.hits c);
  check Alcotest.int "misses" 2 (Engine.Cache.misses c);
  (* a failing computation releases the key for the next caller *)
  (match Engine.Cache.find_or_compute c (key "c.") (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the thunk's exception"
  | exception Failure _ -> ());
  let v4, cached4 = Engine.Cache.find_or_compute c (key "c.") compute in
  checkb "released after failure" false cached4;
  check Alcotest.int "recomputed" 3 v4

(* ------------------------------------------------------------------ *)
(* Sweep: determinism and cache accounting                              *)
(* ------------------------------------------------------------------ *)

let result_key (r : Engine.Job.result) =
  Printf.sprintf "[%d] %s %s %s" r.Engine.Job.index
    (Engine.Delta.label r.Engine.Job.delta)
    (Engine.Fingerprint.to_hex r.Engine.Job.fingerprint)
    (String.concat " | " (List.map Asp.Model.to_string r.Engine.Job.models))

let sweep_keys report =
  Array.to_list (Array.map result_key report.Engine.Sweep.results)

let tiny_spec () =
  Cpsrisk.Sweeps.water_tank_spec ~horizon:6
    (Cpsrisk.Sweeps.random_deltas ~seed:7 40)

let test_sweep_deterministic () =
  let sequential = Engine.Sweep.run ~jobs:1 (tiny_spec ()) in
  List.iter
    (fun jobs ->
      let parallel =
        Engine.Sweep.run ~oversubscribe:true ~jobs (tiny_spec ())
      in
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "jobs=%d bit-identical to sequential" jobs)
        (sweep_keys sequential) (sweep_keys parallel))
    [ 2; 3; 4 ]

let test_sweep_cache_accounting () =
  let cache = Engine.Cache.create () in
  let first = Engine.Sweep.run ~jobs:1 ~cache (tiny_spec ()) in
  let n = Array.length first.Engine.Sweep.results in
  check Alcotest.int "all jobs ran" 40 n;
  checkb "repeated deltas hit within the first sweep" true
    (first.Engine.Sweep.hits > 0);
  check Alcotest.int "hits + misses = jobs" n
    (first.Engine.Sweep.hits + first.Engine.Sweep.misses);
  (* the second identical sweep is pure lookups: no fresh solver work *)
  let second = Engine.Sweep.run ~jobs:1 ~cache (tiny_spec ()) in
  check Alcotest.int "second sweep: all hits" n second.Engine.Sweep.hits;
  check Alcotest.int "second sweep: no misses" 0 second.Engine.Sweep.misses;
  check Alcotest.int "second sweep: zero fresh guesses" 0
    second.Engine.Sweep.fresh.Asp.Solver.Stats.guesses;
  check Alcotest.int "second sweep: zero fresh firings" 0
    second.Engine.Sweep.fresh.Asp.Solver.Stats.firings;
  check (Alcotest.float 1e-9) "hit rate" 1.0 (Engine.Sweep.hit_rate second);
  check
    (Alcotest.list Alcotest.string)
    "cached results identical to fresh ones" (sweep_keys first)
    (sweep_keys second)

let test_mode_not_conflated () =
  let spec mode =
    Cpsrisk.Sweeps.water_tank_spec ~horizon:4 ~mode
      [ Engine.Delta.make [ "F2" ] ]
  in
  let p = Engine.Job.prepare (spec (Engine.Job.Enumerate None)) in
  let o = Engine.Job.prepare (spec Engine.Job.Optimal) in
  let d = Engine.Delta.make [ "F2" ] in
  checkb "Enumerate and Optimal address different cache slots" false
    (Engine.Fingerprint.equal
       (Engine.Job.fingerprint p d)
       (Engine.Job.fingerprint o d))

(* ------------------------------------------------------------------ *)
(* Sweep vs the per-scenario reference encodings                        *)
(* ------------------------------------------------------------------ *)

let test_sweep_matches_reference () =
  let deltas =
    Cpsrisk.Sweeps.all_fault_deltas ~mitigations:[ "M1" ]
      Cpsrisk.Water_tank.faults
  in
  let report =
    Engine.Sweep.run ~jobs:1 (Cpsrisk.Sweeps.water_tank_spec ~horizon:8 deltas)
  in
  Array.iter
    (fun (r : Engine.Job.result) ->
      let scenario = Cpsrisk.Sweeps.delta_scenario r.Engine.Job.delta in
      let reference =
        Cpsrisk.Water_tank.asp_verdicts ~horizon:8 ~scenario ()
      in
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
        (Engine.Delta.label r.Engine.Job.delta)
        reference
        (Cpsrisk.Sweeps.verdicts r))
    report.Engine.Sweep.results

let test_topology_sweep () =
  let config = Cpsrisk.Pipeline.water_tank_config () in
  let report, impacts = Cpsrisk.Pipeline.topology_sweep ~jobs:1 config in
  check Alcotest.int "one job per component delta"
    (List.length (Cpsrisk.Sweeps.model_element_deltas config.Cpsrisk.Pipeline.model))
    (Array.length report.Engine.Sweep.results);
  (* an unmitigated injection reaches at least itself *)
  List.iter
    (fun (label, affected) ->
      checkb (label ^ " affects itself") true (affected <> []))
    impacts;
  (* activating M1 (user training, associated with the e-mail client)
     shields the injection point and contains the error *)
  let spec deltas =
    Cpsrisk.Sweeps.topology_spec config.Cpsrisk.Pipeline.model deltas
  in
  let unshielded =
    Engine.Sweep.run ~jobs:1 (spec [ Engine.Delta.make [ "email" ] ])
  in
  checkb "unshielded e-mail client propagates" true
    (List.length (Cpsrisk.Sweeps.affected unshielded.Engine.Sweep.results.(0))
    > 1);
  let shielded =
    Engine.Sweep.run ~jobs:1
      (spec [ Engine.Delta.make ~mitigations:[ "M1" ] [ "email" ] ])
  in
  check
    (Alcotest.list Alcotest.string)
    "mitigated e-mail client contained" []
    (Cpsrisk.Sweeps.affected shielded.Engine.Sweep.results.(0))

(* ------------------------------------------------------------------ *)
(* Optimizer: parallel entry points                                     *)
(* ------------------------------------------------------------------ *)

let test_optimizer_par () =
  let problem = Cpsrisk.Water_tank.optimization_problem in
  let same name a b =
    check Alcotest.string name
      (Format.asprintf "%a" Mitigation.Optimizer.pp_solution a)
      (Format.asprintf "%a" Mitigation.Optimizer.pp_solution b)
  in
  same "unconstrained"
    (Mitigation.Optimizer.optimal problem)
    (Mitigation.Optimizer.optimal_par ~jobs:3 problem);
  List.iter
    (fun budget ->
      same
        (Printf.sprintf "budget %d" budget)
        (Mitigation.Optimizer.optimal ~budget problem)
        (Mitigation.Optimizer.optimal_par ~jobs:3 ~budget problem))
    [ 0; 2; 5 ];
  let budgets = [ 0; 1; 2; 3; 5; 10 ] in
  List.iter2
    (fun (b, s) (b', s') ->
      check Alcotest.int "budget" b b';
      same (Printf.sprintf "sweep budget %d" b) s s')
    (Mitigation.Optimizer.budget_sweep problem ~budgets)
    (Mitigation.Optimizer.budget_sweep_par ~jobs:3 problem ~budgets)

(* ------------------------------------------------------------------ *)
(* Par: guiding-path parallel model enumeration                         *)
(* ------------------------------------------------------------------ *)

let par_programs =
  [
    "{ a ; b ; c ; d }. :- a, b.";
    "{ c0 ; c1 ; c2 }. p :- q. q :- p. p :- c0. :- not p.";
    "a :- not b. b :- not a. { c : a ; d }.";
    "{ a ; b ; c }. :~ a. [-2@1] :~ b. [1@1] :~ c. [1@2]";
    "p :- not p.";
  ]

let test_par_enumerate () =
  List.iter
    (fun src ->
      let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
      let seq = Asp.Solver.solve g in
      List.iter
        (fun jobs ->
          let r = Engine.Par.enumerate ~oversubscribe:true ~jobs g in
          check Alcotest.int
            (Printf.sprintf "par %d model count on:\n%s" jobs src)
            (List.length seq) (List.length r.Engine.Par.models);
          if not (List.for_all2 Asp.Model.equal seq r.Engine.Par.models) then
            Alcotest.fail
              (Printf.sprintf "par %d enumeration diverged on:\n%s" jobs src);
          check Alcotest.int
            (Printf.sprintf "par %d stats model count on:\n%s" jobs src)
            (List.length seq)
            r.Engine.Par.stats.Asp.Solver.Stats.models)
        [ 1; 2; 4 ])
    par_programs

let test_par_optimal () =
  List.iter
    (fun src ->
      let g = Asp.Grounder.ground (Asp.Parser.parse_program src) in
      let seq = Asp.Solver.solve_optimal g in
      List.iter
        (fun jobs ->
          let r = Engine.Par.optimal ~oversubscribe:true ~jobs g in
          check Alcotest.int
            (Printf.sprintf "par-opt %d front size on:\n%s" jobs src)
            (List.length seq) (List.length r.Engine.Par.models);
          if not (List.for_all2 Asp.Model.equal seq r.Engine.Par.models) then
            Alcotest.fail
              (Printf.sprintf "par-opt %d front diverged on:\n%s" jobs src))
        [ 1; 2; 4 ])
    par_programs

let test_par_limit_sequential () =
  let g =
    Asp.Grounder.ground (Asp.Parser.parse_program "{ a ; b ; c ; d }.")
  in
  let r = Engine.Par.enumerate ~oversubscribe:true ~jobs:4 ~limit:3 g in
  check Alcotest.int "limited count" 3 (List.length r.Engine.Par.models);
  check Alcotest.int "limit forces one path" 1 r.Engine.Par.paths

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "fingerprint: structural equality" `Quick
          test_fp_structural;
        Alcotest.test_case "fingerprint: perturbations change it" `Quick
          test_fp_perturbation;
        Alcotest.test_case "fingerprint: extend/append law" `Quick
          test_fp_extend_append;
        Alcotest.test_case "fingerprint: golden values (store format)" `Quick
          test_fp_golden;
        Alcotest.test_case "delta: mutations-file parsing" `Quick
          test_delta_parse;
        Alcotest.test_case "delta: error positions" `Quick
          test_delta_error_positions;
        Alcotest.test_case "delta: derived labels" `Quick test_delta_label;
        Alcotest.test_case "pool: map equals Array.init" `Quick test_pool_map;
        Alcotest.test_case "pool: deterministic exception" `Quick
          test_pool_exception;
        Alcotest.test_case "cache: memoization and accounting" `Quick
          test_cache;
        Alcotest.test_case "sweep: parallel identical to sequential" `Quick
          test_sweep_deterministic;
        Alcotest.test_case "sweep: second run is all cache hits" `Quick
          test_sweep_cache_accounting;
        Alcotest.test_case "sweep: solve mode is part of the address" `Quick
          test_mode_not_conflated;
        Alcotest.test_case "sweep: agrees with per-scenario encoding" `Quick
          test_sweep_matches_reference;
        Alcotest.test_case "sweep: pipeline topology what-ifs" `Quick
          test_topology_sweep;
        Alcotest.test_case "par: enumeration equals sequential" `Quick
          test_par_enumerate;
        Alcotest.test_case "par: optima equal sequential" `Quick
          test_par_optimal;
        Alcotest.test_case "par: limit stays sequential" `Quick
          test_par_limit_sequential;
        Alcotest.test_case "optimizer: parallel equals sequential" `Quick
          test_optimizer_par;
      ] );
  ]
