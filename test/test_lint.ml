(* Tests for the lint layer: one firing (positive) and one silent
   (negative) case per diagnostic code, the diagnostics framework itself,
   and the regression that the shipped artifacts lint clean. *)

let check = Alcotest.check
module D = Lint.Diagnostic

let with_code code ds = List.filter (fun (d : D.t) -> d.D.code = code) ds
let fires code ds = with_code code ds <> []

let check_fires ?(neg = false) code ds =
  check Alcotest.bool
    (Printf.sprintf "%s %s" code (if neg then "silent" else "fires"))
    (not neg) (fires code ds)

let severity_of code ds =
  match with_code code ds with
  | d :: _ -> Some d.D.severity
  | [] -> None

(* -------------------------------------------------------------------- *)
(* Diagnostics framework                                                 *)
(* -------------------------------------------------------------------- *)

let test_diag_to_string () =
  let d =
    D.error ~code:"L001" ~pos:{ D.line = 3; col = 5 } ~subject:"p/1" "boom"
  in
  check Alcotest.string "rendering" "line 3, col 5: error[L001] p/1: boom"
    (D.to_string d);
  let line_only = D.warning ~code:"L109" ~pos:{ D.line = 7; col = 0 } "dup" in
  check Alcotest.string "line-only rendering" "line 7: warning[L109] dup"
    (D.to_string line_only)

let test_diag_sort_and_summary () =
  let w = D.warning ~code:"L002" "w" in
  let e = D.error ~code:"L001" ~pos:{ D.line = 9; col = 1 } "e" in
  let i = D.info ~code:"L004" "i" in
  let sorted = D.sort [ w; i; e ] in
  check Alcotest.(list string) "errors first"
    [ "L001"; "L002"; "L004" ]
    (List.map (fun (d : D.t) -> d.D.code) sorted);
  check Alcotest.string "summary" "1 error, 1 warning, 1 info"
    (D.summary [ w; i; e ]);
  check Alcotest.string "clean summary" "clean" (D.summary []);
  check Alcotest.bool "errors detected" true (D.has_errors [ w; e ]);
  check Alcotest.bool "infos are clean" true (D.is_clean [ i ]);
  check Alcotest.bool "warnings are dirty" false (D.is_clean [ w ])

let test_diag_json () =
  let d =
    D.error ~code:"L000" ~pos:{ D.line = 2; col = 7 } "bad \"quote\"\nnewline"
  in
  check Alcotest.string "escaped json"
    {|{"code":"L000","severity":"error","line":2,"col":7,"message":"bad \"quote\"\nnewline"}|}
    (D.to_json d);
  let unlocated = D.info ~code:"L004" ~subject:"p/1" "unused" in
  check Alcotest.string "optional fields omitted"
    {|{"code":"L004","severity":"info","subject":"p/1","message":"unused"}|}
    (D.to_json unlocated);
  check Alcotest.string "empty list" "[]" (D.list_to_json [])

(* -------------------------------------------------------------------- *)
(* ASP program checks (L000–L008)                                        *)
(* -------------------------------------------------------------------- *)

let clean_src = "dom(1..3). p(X) :- dom(X). q :- p(X). #show q/0."

let test_l000_parse_error () =
  let ds = Lint.run_source "p(X :- q(X)." in
  check_fires "L000" ds;
  (match ds with
  | [ d ] ->
      check Alcotest.bool "located" true (d.D.pos <> None);
      check Alcotest.bool "error severity" true (d.D.severity = D.Error)
  | _ -> Alcotest.fail "expected exactly one diagnostic");
  check_fires ~neg:true "L000" (Lint.run_source clean_src)

let test_l001_unsafe () =
  let ds = Lint.run_source "p(X, Y) :- q(X).\nq(1)." in
  check_fires "L001" ds;
  (match with_code "L001" ds with
  | [ d ] ->
      check Alcotest.bool "names the variable" true
        (String.length d.D.message > 0
        && String.index_opt d.D.message 'Y' <> None);
      check
        Alcotest.(option (pair int int))
        "position" (Some (1, 1))
        (Option.map (fun p -> (p.D.line, p.D.col)) d.D.pos)
  | _ -> Alcotest.fail "expected one L001");
  (* every offending rule is reported, not just the first *)
  let two = Lint.run_source "p(Y) :- q.\nr(Z) :- q.\nq." in
  check Alcotest.int "all unsafe rules reported" 2
    (List.length (with_code "L001" two));
  check_fires ~neg:true "L001" (Lint.run_source clean_src)

let test_l002_stratification () =
  let ds =
    Lint.run_source
      "dom(1). p(X) :- dom(X), not q(X). q(X) :- dom(X), not p(X)."
  in
  check_fires "L002" ds;
  check_fires ~neg:true "L002"
    (Lint.run_source "dom(1). p(X) :- dom(X), not q(X). q(1).")

let test_l003_undefined () =
  let ds = Lint.run_source "dom(1). r(X) :- dom(X), ghost(X)." in
  check_fires "L003" ds;
  (match with_code "L003" ds with
  | [ d ] -> check Alcotest.(option string) "subject" (Some "ghost/1") d.D.subject
  | _ -> Alcotest.fail "expected one L003");
  check_fires ~neg:true "L003" (Lint.run_source clean_src)

let test_l004_unused () =
  let ds = Lint.run_source "dom(1). p(X) :- dom(X)." in
  check_fires "L004" ds;
  check Alcotest.(option string) "info severity"
    (Some "info")
    (Option.map D.severity_to_string (severity_of "L004" ds));
  (* #show consumes the predicate *)
  check_fires ~neg:true "L004"
    (Lint.run_source "dom(1). p(X) :- dom(X). #show p/1. #show dom/1.")

let test_l005_arities () =
  let ds = Lint.run_source "s(1). s(1,2). q :- s(X), s(X,Y)." in
  check_fires "L005" ds;
  check_fires ~neg:true "L005" (Lint.run_source clean_src)

let test_l006_singleton () =
  let ds = Lint.run_source "edge(1,2). reach(X) :- edge(X, Y)." in
  check_fires "L006" ds;
  check Alcotest.(option string) "info severity"
    (Some "info")
    (Option.map D.severity_to_string (severity_of "L006" ds));
  (* underscore-prefixed variables are deliberate projections *)
  check_fires ~neg:true "L006"
    (Lint.run_source "edge(1,2). reach(X) :- edge(X, _Y).")

let test_l007_dead_rule () =
  let ds = Lint.run_source "a :- b. b :- c." in
  (* both rules are transitively dead: c has no derivation at all *)
  check Alcotest.int "transitively dead" 2 (List.length (with_code "L007" ds));
  check_fires ~neg:true "L007" (Lint.run_source "a :- b. b :- c. c.")

let test_l008_function_recursion () =
  let ds = Lint.run_source "count(0). count(N+1) :- count(N)." in
  check_fires "L008" ds;
  (* non-recursive function-symbol heads are fine *)
  check_fires ~neg:true "L008" (Lint.run_source "dom(1). p(f(X)) :- dom(X).")

let test_l010_tightness () =
  (* mutual positive recursion *)
  let ds = Lint.run_source "{ c }. p :- q. q :- p. p :- c." in
  check_fires "L010" ds;
  check Alcotest.(option string) "info severity"
    (Some "info")
    (Option.map D.severity_to_string (severity_of "L010" ds));
  (match with_code "L010" ds with
  | [ d ] ->
      (* the warning names the cycle *)
      check Alcotest.bool "cycle annotated" true
        (String.index_opt d.D.message 'p' <> None
        && String.length d.D.message > 0);
      check Alcotest.bool "mentions both predicates" true
        (let has s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         has d.D.message "p/0" && has d.D.message "q/0")
  | _ -> Alcotest.fail "expected one L010");
  (* self-recursion is a one-element positive cycle *)
  check_fires "L010" (Lint.run_source "r :- r.");
  (* variable-level recursion (transitive closure) is predicate-level
     recursion too *)
  check_fires "L010"
    (Lint.run_source
       "edge(1,2). reach(X,Y) :- edge(X,Y). reach(X,Y) :- reach(X,Z), \
        edge(Z,Y).");
  (* a cycle through negation is L002's finding, not L010's *)
  let neg_cycle = Lint.run_source "a :- not b. b :- not a." in
  check_fires "L002" neg_cycle;
  check_fires ~neg:true "L010" neg_cycle;
  (* acyclic programs are tight *)
  check_fires ~neg:true "L010" (Lint.run_source "a :- b. b :- c. c.")

(* -------------------------------------------------------------------- *)
(* L009: requirement coverage                                            *)
(* -------------------------------------------------------------------- *)

let test_l009_coverage () =
  let req =
    ("R1", Ltl.Formula.Eventually (Ltl.Formula.Atom "level=overflow"))
  in
  let covered =
    Asp.Parser.parse_program "time(0). holds(level, overflow, 0)."
  in
  let uncovered = Asp.Parser.parse_program "time(0). holds(level, low, 0)." in
  check_fires "L009" (Lint.run_requirements ~program:uncovered [ req ]);
  (match Lint.run_requirements ~program:uncovered [ req ] with
  | [ d ] -> check Alcotest.(option string) "subject" (Some "R1") d.D.subject
  | _ -> Alcotest.fail "expected one L009");
  check_fires ~neg:true "L009" (Lint.run_requirements ~program:covered [ req ]);
  (* a variable head argument can produce any instance *)
  let generic =
    Asp.Parser.parse_program "time(0). holds(level, V, 0) :- value(V). value(overflow)."
  in
  check_fires ~neg:true "L009" (Lint.run_requirements ~program:generic [ req ])

(* -------------------------------------------------------------------- *)
(* Model checks (L101–L110)                                              *)
(* -------------------------------------------------------------------- *)

let model_src body = "model \"M\"\n" ^ body

let clean_model_src =
  model_src
    "element a \"Plant\" equipment\n\
     element b \"Sensor\" device\n\
     relation r1 association a -> b\n"

let test_l101_composition_cycle () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          element b \"B\" equipment\n\
          relation r1 composition a -> b\n\
          relation r2 composition b -> a\n")
  in
  check_fires "L101" ds;
  check_fires ~neg:true "L101" (Lint.run_model_source clean_model_src)

let test_l102_multiple_parents () =
  let ds =
    Lint.run_model_source
      (model_src
         "element p1 \"P1\" equipment\n\
          element p2 \"P2\" equipment\n\
          element c \"C\" device\n\
          relation r1 composition p1 -> c\n\
          relation r2 composition p2 -> c\n")
  in
  check_fires "L102" ds;
  check_fires ~neg:true "L102" (Lint.run_model_source clean_model_src)

let test_l103_flow_motivation () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          element g \"G\" goal\n\
          relation r1 flow a -> g\n")
  in
  check_fires "L103" ds;
  check_fires ~neg:true "L103" (Lint.run_model_source clean_model_src)

let test_l104_empty_name () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"\" equipment\n\
          element b \"B\" device\n\
          relation r1 association a -> b\n")
  in
  check_fires "L104" ds;
  check_fires ~neg:true "L104" (Lint.run_model_source clean_model_src)

let test_l105_duplicate_names () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"Pump\" equipment\n\
          element b \"Pump\" device\n\
          relation r1 association a -> b\n")
  in
  check_fires "L105" ds;
  check_fires ~neg:true "L105" (Lint.run_model_source clean_model_src)

let test_l106_isolated () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          element b \"B\" device\n\
          element lone \"Lonely\" device\n\
          relation r1 association a -> b\n")
  in
  check_fires "L106" ds;
  check_fires ~neg:true "L106" (Lint.run_model_source clean_model_src)

let test_l107_self_loop () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          relation r1 association a -> a\n")
  in
  check_fires "L107" ds;
  check_fires ~neg:true "L107" (Lint.run_model_source clean_model_src)

let test_l108_dangling_endpoint () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          relation r1 association a -> nowhere\n")
  in
  check_fires "L108" ds;
  (match with_code "L108" ds with
  | [ d ] ->
      check
        Alcotest.(option (pair int int))
        "line-located" (Some (3, 0))
        (Option.map (fun p -> (p.D.line, p.D.col)) d.D.pos)
  | _ -> Alcotest.fail "expected one L108");
  check_fires ~neg:true "L108" (Lint.run_model_source clean_model_src)

let test_l109_duplicate_relationship () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          element b \"B\" device\n\
          relation r1 association a -> b\n\
          relation r1 serving b -> a\n")
  in
  check_fires "L109" ds;
  check Alcotest.(option string) "warning severity"
    (Some "warning")
    (Option.map D.severity_to_string (severity_of "L109" ds));
  check_fires ~neg:true "L109" (Lint.run_model_source clean_model_src)

let test_l110_duplicate_element () =
  let ds =
    Lint.run_model_source
      (model_src
         "element a \"A\" equipment\n\
          element a \"A again\" device\n")
  in
  check_fires "L110" ds;
  check_fires ~neg:true "L110" (Lint.run_model_source clean_model_src)

let test_model_l000 () =
  let ds = Lint.run_model_source "element a \"A\" device\n" in
  check_fires "L000" ds;
  check_fires ~neg:true "L000" (Lint.run_model_source clean_model_src)

(* -------------------------------------------------------------------- *)
(* Integration / regressions                                             *)
(* -------------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_shipped_models_lint_clean () =
  let dir = "../examples/models" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".model")
  in
  check Alcotest.bool "at least one shipped model" true (files <> []);
  List.iter
    (fun f ->
      let ds = Lint.run_model_source (read_file (Filename.concat dir f)) in
      check Alcotest.bool (f ^ " lints clean") true (D.is_clean ds))
    files

let test_water_tank_program_lints_clean () =
  let scenario = List.assoc "S5" Cpsrisk.Water_tank.paper_scenarios in
  let program = Cpsrisk.Water_tank.asp_program ~scenario () in
  let encode atom time_term =
    if atom = "alert" then Asp.Lit.Pos (Asp.Atom.make "alert" [ time_term ])
    else Telingo.Compile.default_encoding atom time_term
  in
  let requirements =
    List.map
      (fun (r : Epa.Requirement.t) ->
        (r.Epa.Requirement.id, r.Epa.Requirement.formula))
      Cpsrisk.Water_tank.requirements
  in
  let ds = Lint.run_program ~requirements ~encode program in
  check Alcotest.bool
    ("water_tank encoding lints clean, got: " ^ D.summary ds)
    true (D.is_clean ds)

let test_water_tank_joint_program_lints_clean () =
  let ds = Lint.run_program (Cpsrisk.Water_tank.asp_mitigation_program ()) in
  check Alcotest.bool
    ("joint mitigation program lints clean, got: " ^ D.summary ds)
    true (D.is_clean ds)

let test_water_tank_model_lints_clean () =
  let ds = Lint.run_model Cpsrisk.Water_tank.refined_model in
  check Alcotest.bool "refined model has no lint errors" false
    (D.has_errors ds)

let test_grounder_reports_all_unsafe_vars_with_pos () =
  (* the grounder's exception now carries position and every variable *)
  let program = Asp.Parser.parse_program "q.\np(X, Y) :- q." in
  match Asp.Grounder.ground program with
  | _ -> Alcotest.fail "expected Unsafe"
  | exception Asp.Grounder.Unsafe msg ->
      let contains needle =
        let nl = String.length needle and hl = String.length msg in
        let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "position in message" true (contains "line 2, col 1");
      check Alcotest.bool "first variable" true (contains "X");
      check Alcotest.bool "second variable" true (contains "Y")

(* The README's lint-code table must stay in sync with the registries the
   CLI prints for `cpsrisk lint --list-codes` ([Lint.codes] plus
   [Analysis.Semlint.codes]): same codes, same severities, same one-line
   descriptions, in both directions. Backticks are markdown-only. *)
let test_readme_code_table_in_sync () =
  let strip_backticks s = String.concat "" (String.split_on_char '`' s) in
  let is_code s =
    String.length s >= 2
    && s.[0] = 'L'
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub s 1 (String.length s - 1))
  in
  let rows = ref [] in
  let ic = open_in "../README.md" in
  (try
     while true do
       match String.split_on_char '|' (input_line ic) with
       | [ ""; code; sev; desc; "" ] ->
           let code = String.trim (strip_backticks code) in
           if is_code code then
             rows :=
               (code, String.trim sev, String.trim (strip_backticks desc))
               :: !rows
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  let rows = List.rev !rows in
  let registry =
    List.map
      (fun (code, sev, desc) -> (code, D.severity_to_string sev, desc))
      (Lint.codes @ Analysis.Semlint.codes)
  in
  List.iter
    (fun (code, sev, desc) ->
      match List.find_opt (fun (c, _, _) -> c = code) rows with
      | None -> Alcotest.failf "%s registered but missing from the README" code
      | Some (_, rsev, rdesc) ->
          check Alcotest.string (code ^ " severity") sev rsev;
          check Alcotest.string (code ^ " description") desc rdesc)
    registry;
  List.iter
    (fun (code, _, _) ->
      if not (List.exists (fun (c, _, _) -> c = code) registry) then
        Alcotest.failf "%s in the README but not registered" code)
    rows;
  check Alcotest.int "one README row per registered code" (List.length registry)
    (List.length rows)

let test_requirement_atoms () =
  let r =
    Epa.Requirement.make ~id:"R" ~description:"d"
      ~formula:"G (level=overflow -> F alert)"
  in
  check
    Alcotest.(slist string String.compare)
    "atoms" [ "level=overflow"; "alert" ] (Epa.Requirement.atoms r)

let suites =
  [
    ( "lint.diagnostic",
      [
        Alcotest.test_case "to_string" `Quick test_diag_to_string;
        Alcotest.test_case "sort & summary" `Quick test_diag_sort_and_summary;
        Alcotest.test_case "json" `Quick test_diag_json;
      ] );
    ( "lint.program",
      [
        Alcotest.test_case "L000 parse error" `Quick test_l000_parse_error;
        Alcotest.test_case "L001 unsafe" `Quick test_l001_unsafe;
        Alcotest.test_case "L002 stratification" `Quick test_l002_stratification;
        Alcotest.test_case "L003 undefined" `Quick test_l003_undefined;
        Alcotest.test_case "L004 unused" `Quick test_l004_unused;
        Alcotest.test_case "L005 arities" `Quick test_l005_arities;
        Alcotest.test_case "L006 singleton" `Quick test_l006_singleton;
        Alcotest.test_case "L007 dead rule" `Quick test_l007_dead_rule;
        Alcotest.test_case "L008 function recursion" `Quick
          test_l008_function_recursion;
        Alcotest.test_case "L009 coverage" `Quick test_l009_coverage;
        Alcotest.test_case "L010 tightness" `Quick test_l010_tightness;
      ] );
    ( "lint.model",
      [
        Alcotest.test_case "L101 composition cycle" `Quick
          test_l101_composition_cycle;
        Alcotest.test_case "L102 multiple parents" `Quick
          test_l102_multiple_parents;
        Alcotest.test_case "L103 flow/motivation" `Quick
          test_l103_flow_motivation;
        Alcotest.test_case "L104 empty name" `Quick test_l104_empty_name;
        Alcotest.test_case "L105 duplicate names" `Quick
          test_l105_duplicate_names;
        Alcotest.test_case "L106 isolated" `Quick test_l106_isolated;
        Alcotest.test_case "L107 self-loop" `Quick test_l107_self_loop;
        Alcotest.test_case "L108 dangling endpoint" `Quick
          test_l108_dangling_endpoint;
        Alcotest.test_case "L109 duplicate relationship" `Quick
          test_l109_duplicate_relationship;
        Alcotest.test_case "L110 duplicate element" `Quick
          test_l110_duplicate_element;
        Alcotest.test_case "model parse error" `Quick test_model_l000;
      ] );
    ( "lint.regressions",
      [
        Alcotest.test_case "README code table in sync" `Quick
          test_readme_code_table_in_sync;
        Alcotest.test_case "shipped models clean" `Quick
          test_shipped_models_lint_clean;
        Alcotest.test_case "water-tank program clean" `Quick
          test_water_tank_program_lints_clean;
        Alcotest.test_case "joint program clean" `Slow
          test_water_tank_joint_program_lints_clean;
        Alcotest.test_case "water-tank model clean" `Quick
          test_water_tank_model_lints_clean;
        Alcotest.test_case "grounder unsafe message" `Quick
          test_grounder_reports_all_unsafe_vars_with_pos;
        Alcotest.test_case "requirement atoms" `Quick test_requirement_atoms;
      ] );
  ]
