let () =
  Alcotest.run "cpsrisk"
    (Test_qual.suites @ Test_asp.suites @ Test_analysis.suites @ Test_grounder_diff.suites @ Test_solver_diff.suites @ Test_solver_fuzz.suites @ Test_ltl.suites @ Test_archimate.suites @ Test_threatdb.suites @ Test_epa.suites @ Test_risk.suites @ Test_rough.suites @ Test_sensitivity.suites @ Test_fta.suites @ Test_mitigation.suites @ Test_cegar.suites @ Test_telingo.suites @ Test_lint.suites @ Test_cpsrisk.suites @ Test_quant.suites @ Test_attackgraph.suites @ Test_cascade.suites @ Test_petri.suites @ Test_aggregates.suites @ Test_engine.suites)
