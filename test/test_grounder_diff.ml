(* Differential tests for the grounder rewrite: the production grounder
   (Asp.Grounder — semi-naive fixpoint, first-argument indexes, incremental
   extend) against the retained naive oracle (Asp.Naive_ground) on seeded
   random non-ground programs and hand-picked corners. One-shot grounding
   must agree bit-for-bit on the produced Ground.t; prepare/extend must
   agree with grounding base+delta from scratch up to the duplicate-rule
   caveat documented on [Asp.Grounder.extend]. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* keep the universes small so unbounded arithmetic recursion, when the
   generator produces it, overflows quickly on both sides *)
let max_atoms = 400

(* ------------------------------------------------------------------ *)
(* Seeded random non-ground program generator                           *)
(* ------------------------------------------------------------------ *)

(* Programs over unary preds p/q/t, binary r/e, choice-head h, with
   integer constants only (so comparisons and assignments always evaluate),
   exercising joins, recursion, default negation, assignments, builtin
   comparisons, choice rules with conditions, aggregates over variables,
   integrity and weak constraints. Safety is maintained by construction:
   head, negated and builtin variables are drawn from variables already
   used in positive body literals (or assigned). *)

let upreds = [| "p"; "q"; "t" |]
let bpreds = [| "r"; "e" |]

let gen_facts rng buf n =
  let int n = Random.State.int rng n in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  for _ = 1 to n do
    if Random.State.bool rng then
      stmt "%s(%d)." upreds.(int 3) (1 + int 4)
    else stmt "%s(%d,%d)." bpreds.(int 2) (1 + int 4) (1 + int 4)
  done

let gen_rule rng buf =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let vars = [| "X"; "Y"; "Z" |] in
  let used = ref [] in
  let use v = if not (List.mem v !used) then used := v :: !used in
  let arg () =
    if int 4 = 0 then string_of_int (1 + int 4)
    else begin
      let v = vars.(int 3) in
      use v;
      v
    end
  in
  let body =
    List.init (1 + int 2) (fun _ ->
        if bool () then Printf.sprintf "%s(%s)" upreds.(int 3) (arg ())
        else Printf.sprintf "%s(%s,%s)" bpreds.(int 2) (arg ()) (arg ()))
  in
  let bound () =
    match !used with
    | [] -> string_of_int (1 + int 4)
    | l -> List.nth l (int (List.length l))
  in
  let body, assigned =
    if !used <> [] && int 3 = 0 then
      (body @ [ Printf.sprintf "W = %s + %d" (bound ()) (int 3) ], true)
    else (body, false)
  in
  let body =
    if int 3 = 0 then
      body
      @ [
          (if bool () then Printf.sprintf "not %s(%s)" upreds.(int 3) (bound ())
           else
             Printf.sprintf "not %s(%s,%s)" bpreds.(int 2) (bound ()) (bound ()));
        ]
    else body
  in
  let body =
    if !used <> [] && int 3 = 0 then begin
      let ops = [| "<"; "<="; ">"; ">="; "!="; "=" |] in
      body
      @ [
          Printf.sprintf "%s %s %s" (bound ()) ops.(int 6)
            (if bool () then bound () else string_of_int (int 5));
        ]
    end
    else body
  in
  let head_arg () =
    if assigned && bool () then "W"
    else if int 4 = 0 then string_of_int (1 + int 4)
    else bound ()
  in
  let head =
    if bool () then Printf.sprintf "%s(%s)" upreds.(int 3) (head_arg ())
    else Printf.sprintf "%s(%s,%s)" bpreds.(int 2) (head_arg ()) (head_arg ())
  in
  stmt "%s :- %s." head (String.concat ", " body)

let gen_choice rng buf =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let elems =
    List.init (1 + int 2) (fun _ ->
        let v = [| "X"; "Y" |].(int 2) in
        Printf.sprintf "h(%s) : %s(%s)" v upreds.(int 3) v)
  in
  let body =
    if bool () then ""
    else Printf.sprintf " :- %s(%s)" upreds.(int 3) (string_of_int (1 + int 4))
  in
  let lower = if int 3 = 0 then string_of_int (int 2) ^ " " else "" in
  let upper = if int 3 = 0 then " " ^ string_of_int (1 + int 2) else "" in
  stmt "%s{ %s }%s%s." lower (String.concat " ; " elems) upper body

let gen_extras rng buf =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* aggregates over variables: multi-element ground aggregates *)
  if int 2 = 0 then begin
    let agg = if bool () then "#count" else "#sum" in
    let op = [| ">="; "<="; ">"; "<" |].(int 4) in
    stmt "g(X) :- %s(X), %s { Y : %s(X,Y) } %s %d." upreds.(int 3) agg
      bpreds.(int 2) op (int 3)
  end;
  if int 3 = 0 then stmt "win :- #count { X : h(X) } >= %d." (1 + int 2);
  (* integrity constraints *)
  if int 2 = 0 then
    stmt ":- %s(X), not %s(X)." upreds.(int 3) upreds.(int 3);
  (* weak constraints, sometimes with a variable weight *)
  if int 2 = 0 then begin
    if bool () then stmt ":~ %s(X). [X@%d, X]" upreds.(int 3) (1 + int 2)
    else
      stmt ":~ %s(X,Y). [%d@1, X, Y]" bpreds.(int 2) (1 + int 3)
  end

let gen_program rng =
  let int n = Random.State.int rng n in
  let buf = Buffer.create 512 in
  gen_facts rng buf (3 + int 4);
  for _ = 1 to 2 + int 4 do
    gen_rule rng buf
  done;
  for _ = 1 to 1 + int 2 do
    gen_choice rng buf
  done;
  gen_extras rng buf;
  Buffer.contents buf

(* a small increment over the same vocabulary, for the extend tests *)
let gen_delta rng =
  let int n = Random.State.int rng n in
  let buf = Buffer.create 128 in
  gen_facts rng buf (1 + int 3);
  for _ = 1 to int 3 do
    gen_rule rng buf
  done;
  if int 3 = 0 then gen_choice rng buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Builtin-heavy and interval-comparison generators                     *)
(* ------------------------------------------------------------------ *)

(* Rules whose bodies are dominated by builtins — several comparisons and
   chained assignments per rule over integer-valued predicates — so the
   pending-builtin discharge order and the builtin-aware index probing
   carry most of the work. *)
let gen_builtin_rule rng buf =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let ops = [| "<"; "<="; ">"; ">="; "!=" |] in
  let body = ref [ Printf.sprintf "%s(X)" upreds.(int 3) ] in
  let used = ref [ "X" ] in
  if bool () then begin
    body := !body @ [ Printf.sprintf "%s(X,Y)" bpreds.(int 2) ];
    used := "Y" :: !used
  end;
  let pick l = List.nth l (int (List.length l)) in
  (* one to three comparisons: variable vs constant (the range-probe
     shape) and variable vs variable *)
  for _ = 1 to 1 + int 3 do
    let l = pick !used in
    let r = if bool () then string_of_int (int 6) else pick !used in
    body := !body @ [ Printf.sprintf "%s %s %s" l ops.(int 5) r ]
  done;
  (* zero to two chained assignments *)
  let assigned = ref [] in
  for i = 1 to int 3 do
    let w = Printf.sprintf "W%d" i in
    let src =
      match !assigned with
      | a :: _ when bool () -> a
      | _ -> pick !used
    in
    let op = if bool () then "+" else "*" in
    body := !body @ [ Printf.sprintf "%s = %s %s %d" w src op (1 + int 3) ];
    assigned := w :: !assigned
  done;
  let head_arg =
    match !assigned with w :: _ when bool () -> w | _ -> pick !used
  in
  stmt "%s(%s) :- %s." upreds.(int 3) head_arg (String.concat ", " !body)

let gen_builtin_program rng =
  let int n = Random.State.int rng n in
  let buf = Buffer.create 512 in
  gen_facts rng buf (4 + int 5);
  for _ = 1 to 3 + int 4 do
    gen_builtin_rule rng buf
  done;
  Buffer.contents buf

(* Interval-comparison joins over dense integer ranges: the enumerated
   literal's only variable is bounded by comparisons against constants or
   against already-bound variables — exactly the shape the grounder's
   range tier narrows. A sparse integer predicate rides along so missing
   buckets and partial ranges are hit too. *)
let gen_interval_program rng =
  let int n = Random.State.int rng n in
  let bool () = Random.State.bool rng in
  let buf = Buffer.create 512 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let n = 8 + int 17 in
  stmt "m(1..%d)." (4 + int 8);
  stmt "n(1..%d)." n;
  for _ = 1 to 3 + int 4 do
    stmt "s(%d)." (1 + int (2 * n))
  done;
  let ops = [| "<"; "<="; ">"; ">=" |] in
  for _ = 1 to 3 + int 4 do
    let second = if bool () then "n" else "s" in
    let guards =
      Printf.sprintf "Y %s X" ops.(int 4)
      ::
      (if bool () then [ Printf.sprintf "Y %s %d" ops.(int 4) (1 + int n) ]
       else [])
    in
    stmt "j%d(X,Y) :- m(X), %s(Y), %s." (int 5) second
      (String.concat ", " guards)
  done;
  (* interval membership between two constants *)
  for _ = 1 to 1 + int 3 do
    let a = 1 + int n and b = 1 + int n in
    stmt "in%d(Y) :- n(Y), Y >= %d, Y <= %d." (int 3) (min a b) (max a b)
  done;
  (* recursion through an interval guard *)
  if bool () then stmt "r(1). r(X+1) :- r(X), X < %d." (3 + int 10);
  Buffer.contents buf

(* increments over the interval vocabulary: new sparse facts, sometimes a
   widened dense range or a fresh guarded rule *)
let gen_interval_delta rng =
  let int n = Random.State.int rng n in
  let buf = Buffer.create 128 in
  let stmt fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  for _ = 1 to 2 + int 3 do
    stmt "s(%d)." (1 + int 40)
  done;
  if int 2 = 0 then stmt "n(%d..%d)." (20 + int 5) (26 + int 6);
  if int 2 = 0 then stmt "k%d(Y) :- n(Y), Y > %d." (int 3) (int 20);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* One-shot grounding: bit-for-bit parity                               *)
(* ------------------------------------------------------------------ *)

type outcome = Grounded of Asp.Ground.t | Unsafe | Overflow

let outcome_name = function
  | Grounded g ->
      Printf.sprintf "ground (%d rules, %d atoms)" (Asp.Ground.rule_count g)
        (Asp.Ground.atom_count g)
  | Unsafe -> "Unsafe"
  | Overflow -> "Overflow"

let run_new p =
  match Asp.Grounder.ground ~max_atoms p with
  | g -> Grounded g
  | exception Asp.Grounder.Unsafe _ -> Unsafe
  | exception Asp.Grounder.Overflow _ -> Overflow

let run_oracle p =
  match Asp.Naive_ground.ground ~max_atoms p with
  | g -> Grounded g
  | exception Asp.Naive_ground.Unsafe _ -> Unsafe
  | exception Asp.Naive_ground.Overflow _ -> Overflow

let render g =
  String.concat "\n"
    (List.map (Format.asprintf "%a" Asp.Ground.pp_rule) g.Asp.Ground.rules)

let diff_one src =
  let p = Asp.Parser.parse_program src in
  let a = run_new p and b = run_oracle p in
  match (a, b) with
  | Grounded ga, Grounded gb ->
      if not (Asp.Ground.equal ga gb) then
        fail
          (Printf.sprintf
             "grounders diverged on program:\n%s\n--- new:\n%s\n--- oracle:\n%s"
             src (render ga) (render gb))
  | Unsafe, Unsafe | Overflow, Overflow -> ()
  | a, b ->
      fail
        (Printf.sprintf "outcome divergence on program:\n%s\n  new: %s\n  oracle: %s"
           src (outcome_name a) (outcome_name b))

let test_diff_seeded () =
  for seed = 0 to 199 do
    let rng = Random.State.make [| 0x96D; seed |] in
    diff_one (gen_program rng)
  done

let test_diff_builtin_seeded () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 0xB17; seed |] in
    diff_one (gen_builtin_program rng)
  done

let test_diff_interval_seeded () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 0x1A7; seed |] in
    diff_one (gen_interval_program rng)
  done

let corners =
  [
    (* transitive closure: recursion through a binary predicate *)
    "edge(1,2). edge(2,3). edge(3,4). path(X,Y) :- edge(X,Y).\n\
     path(X,Z) :- path(X,Y), edge(Y,Z).";
    (* symbolic constants and function terms *)
    "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y).\n\
     path(X,Z) :- path(X,Y), edge(Y,Z).";
    "f(1). g(f(X)) :- f(X). h(X) :- g(f(X)).";
    (* joins that profit from (and must not be changed by) the first-arg index *)
    "n(1..4). e(X,Y) :- n(X), n(Y), Y = X + 1. two(Z) :- e(1,Z). tri(X,Z) :- \
     e(X,Y), e(Y,Z).";
    (* assignments chained through builtins *)
    "base(5). a(X) :- base(B), X = B + 1. b(Y) :- a(X), Y = X * 2.";
    (* comparisons incl. equality used as a test *)
    "n(1..4). sq(X, X*X) :- n(X), X < 4. d(X) :- n(X), X != 2, X >= 2.";
    (* negation with universe simplification across predicates *)
    "p(1). p(2). s(1). q(X) :- p(X), not s(X). w :- not missing.";
    (* choice rules: bounds, conditions, multiple elements *)
    "item(1). item(2). item(3). 1 { pick(X) : item(X) } 2.";
    "t(1). t(2). 1 { c(X) : t(X) ; d(X) : t(X) } 3 :- t(1).";
    "a(1). { h(X) : a(X), not b(X) }. b(1) :- h(1).";
    (* aggregates over variables: multi-element, outer-variable conditions *)
    "p(1). p(2). q(X) :- p(X), #count { Y : p(Y), Y <= X } >= 2.";
    "v(1). v(2). v(3). w(X,Y) :- v(X), v(Y). big :- #sum { X,Y : w(X,Y) } >= \
     10.";
    "item(1). item(2). { in(X) : item(X) }. :- #count { X : in(X) } > 1.";
    (* weak constraints: variable weights, tuples, priorities *)
    "p(1). p(2). :~ p(X). [X@1, X]";
    "p(1). p(2). cost(X,2) :- p(X). :~ cost(X,W). [W@2, X]";
    (* non-integer weak weight rejected identically *)
    "sym(c1). :~ sym(X). [X@1]";
    (* bounded arithmetic recursion terminates identically *)
    "n(0). n(X+1) :- n(X), X < 50.";
    (* unbounded arithmetic recursion overflows identically *)
    "p(0). p(X + 1) :- p(X).";
    (* unsafe rules rejected identically *)
    "p(X) :- q.";
    "p(X) :- not q(X).";
    (* duplicate rules and facts: global dedup parity *)
    "p(1). p(1). q(X) :- p(X). q(X) :- p(X).";
  ]

let test_diff_corners () = List.iter diff_one corners

(* ------------------------------------------------------------------ *)
(* Selectivity-ordered grounding: still bit-for-bit                    *)
(* ------------------------------------------------------------------ *)

(* [ground ~order] with the analysis-inferred join ordering must stay
   bit-for-bit equal to the oracle: the permutation only changes the
   enumeration, and the per-rule sort restores canonical emission order. *)

let run_ordered p =
  let order = Analysis.Infer.join_order (Analysis.Infer.analyze p) in
  match Asp.Grounder.ground ~max_atoms ~order p with
  | g -> Grounded g
  | exception Asp.Grounder.Unsafe _ -> Unsafe
  | exception Asp.Grounder.Overflow _ -> Overflow

let diff_one_ordered src =
  let p = Asp.Parser.parse_program src in
  let a = run_ordered p and b = run_oracle p in
  match (a, b) with
  | Grounded ga, Grounded gb ->
      if not (Asp.Ground.equal ga gb) then
        fail
          (Printf.sprintf
             "ordered grounder diverged on program:\n%s\n--- ordered:\n%s\n\
              --- oracle:\n%s"
             src (render ga) (render gb))
  | Unsafe, Unsafe | Overflow, Overflow -> ()
  | a, b ->
      fail
        (Printf.sprintf
           "ordered outcome divergence on program:\n%s\n  ordered: %s\n\
           \  oracle: %s"
           src (outcome_name a) (outcome_name b))

let test_ordered_seeded () =
  for seed = 0 to 199 do
    let rng = Random.State.make [| 0x96D; seed |] in
    diff_one_ordered (gen_program rng)
  done

let test_ordered_corners () = List.iter diff_one_ordered corners

(* the ordering must actually fire on a join written worst-first, and the
   output must still match both the unordered and the naive groundings *)
let test_ordered_reorders () =
  let src =
    "big(1..60). tiny(1). tiny(2). tiny(3).\n\
     hit(X) :- big(X), tiny(X).\n\
     pair(X,Y) :- big(X), big(Y), tiny(Y)."
  in
  let p = Asp.Parser.parse_program src in
  let info = Analysis.Infer.analyze p in
  let order = Analysis.Infer.join_order info in
  let reordered =
    List.exists
      (fun r -> Asp.Rule.body r <> [] && order r <> None)
      (Asp.Program.rules p)
  in
  check Alcotest.bool "some rule was reordered" true reordered;
  let ga = Asp.Grounder.ground ~order p in
  let gu = Asp.Grounder.ground p in
  let gn = Asp.Naive_ground.ground p in
  check Alcotest.bool "ordered = unordered" true (Asp.Ground.equal ga gu);
  check Alcotest.bool "ordered = naive" true (Asp.Ground.equal ga gn)

(* prepare/extend with an ordering: base equals the unordered one-shot
   grounding, and extending stays equivalent to grounding from scratch *)
let test_ordered_prepare_extend () =
  let base_src =
    "e(1,2). e(2,3). e(3,4). n(1..40).\n\
     path(X,Y) :- e(X,Y). path(X,Z) :- path(X,Y), e(Y,Z).\n\
     touch(X) :- n(X), path(1,X)."
  in
  let base = Asp.Parser.parse_program base_src in
  let order = Analysis.Infer.join_order (Analysis.Infer.analyze base) in
  let st = Asp.Grounder.prepare ~order base in
  check Alcotest.bool "ordered base = unordered ground" true
    (Asp.Ground.equal (Asp.Grounder.base st) (Asp.Grounder.ground base));
  let delta = Asp.Parser.parse_program "e(4,5). e(5,6)." in
  let ge = Asp.Grounder.extend st delta in
  let gs = Asp.Grounder.ground (Asp.Program.append base delta) in
  check Alcotest.bool "universes" true
    (Asp.Model.AtomSet.equal ge.Asp.Ground.universe gs.Asp.Ground.universe);
  let canon rules = List.sort_uniq compare rules in
  if canon ge.Asp.Ground.rules <> canon gs.Asp.Ground.rules then
    fail "ordered extend diverged from scratch grounding"

(* ------------------------------------------------------------------ *)
(* prepare/extend soundness                                             *)
(* ------------------------------------------------------------------ *)

(* extend's output may repeat a ground rule that two source rules share
   (no cross-rule dedup on reused instances), so rule lists are compared
   as sorted duplicate-free sets; universes and shows must match exactly. *)
let canon rules = List.sort_uniq compare rules

let extend_one base_src delta_src =
  let base = Asp.Parser.parse_program base_src in
  let delta = Asp.Parser.parse_program delta_src in
  match Asp.Grounder.prepare ~max_atoms base with
  | exception (Asp.Grounder.Unsafe _ | Asp.Grounder.Overflow _) -> ()
  | st -> (
      (* the base's own grounding is exactly the one-shot result *)
      if not (Asp.Ground.equal (Asp.Grounder.base st) (Asp.Grounder.ground ~max_atoms base))
      then fail (Printf.sprintf "prepare diverged from ground on base:\n%s" base_src);
      let ext =
        match Asp.Grounder.extend st delta with
        | g -> Grounded g
        | exception Asp.Grounder.Unsafe _ -> Unsafe
        | exception Asp.Grounder.Overflow _ -> Overflow
      in
      let scratch = run_new (Asp.Program.append base delta) in
      match (ext, scratch) with
      | Grounded ge, Grounded gs ->
          if not (Asp.Model.AtomSet.equal ge.Asp.Ground.universe gs.Asp.Ground.universe)
          then
            fail
              (Printf.sprintf "extend universe diverged on:\n%s\n+ delta:\n%s"
                 base_src delta_src);
          check
            (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
            "shows" gs.Asp.Ground.shows ge.Asp.Ground.shows;
          if canon ge.Asp.Ground.rules <> canon gs.Asp.Ground.rules then
            fail
              (Printf.sprintf
                 "extend rules diverged on:\n%s\n+ delta:\n%s\n--- extend:\n\
                  %s\n--- scratch:\n%s"
                 base_src delta_src (render ge) (render gs))
      | Unsafe, Unsafe | Overflow, Overflow -> ()
      | e, s ->
          fail
            (Printf.sprintf
               "extend outcome divergence on:\n%s\n+ delta:\n%s\n  extend: %s\n\
               \  scratch: %s"
               base_src delta_src (outcome_name e) (outcome_name s)))

let test_extend_seeded () =
  for seed = 0 to 119 do
    let rng = Random.State.make [| 0xE7E; seed |] in
    let base = gen_program rng in
    let delta = gen_delta rng in
    extend_one base delta
  done

let test_extend_builtin_seeded () =
  for seed = 0 to 59 do
    let rng = Random.State.make [| 0xB1E; seed |] in
    let base = gen_builtin_program rng in
    (* gen_delta shares the p/q/t/r/e vocabulary, so increments feed the
       builtin-heavy rules *)
    extend_one base (gen_delta rng)
  done

let test_extend_interval_seeded () =
  for seed = 0 to 59 do
    let rng = Random.State.make [| 0x17E; seed |] in
    let base = gen_interval_program rng in
    extend_one base (gen_interval_delta rng)
  done

let test_extend_corners () =
  List.iter
    (fun (base, delta) -> extend_one base delta)
    [
      (* empty delta: extend must reproduce the base grounding *)
      ("p(1). q(X) :- p(X), not s(X). s(2).", "");
      (* new facts feeding an existing join (augment path) *)
      ("e(1,2). e(2,3). path(X,Y) :- e(X,Y). path(X,Z) :- path(X,Y), e(Y,Z).",
       "e(3,4). e(4,5).");
      (* delta makes a previously-simplified negation derivable (recompute) *)
      ("p(1). p(2). q(X) :- p(X), not s(X).", "s(1).");
      (* delta touches a choice element's condition *)
      ("a(1). { h(X) : a(X) } 2.", "a(2). a(3).");
      (* delta touches an aggregate's condition *)
      ("p(1). p(2). r(1,1). g(X) :- p(X), #count { Y : r(X,Y) } >= 1.",
       "r(2,1). r(2,2).");
      (* delta adds rules over base predicates *)
      ("p(1). p(2). r(1,2).", "t2(X) :- r(X,Y), p(Y). t2(9) :- p(1).");
      (* delta rule derives into a base predicate, re-firing base rules *)
      ("p(1). q(X) :- p(X).", "p(X+1) :- p(X), X < 4.");
      (* weak constraints in base and delta *)
      (":~ p(X). [X@1, X] p(1).", "p(2). :~ p(X). [1@2, X]");
      (* delta with its own choice + aggregate over shared predicates *)
      ("n(1). n(2). big :- #count { X : n(X) } >= 3.",
       "n(3). { pick(X) : n(X) }.");
    ]

let test_extend_reuses () =
  let base =
    Asp.Parser.parse_program
      "p(1). p(2). q(X) :- p(X). e(1,2). e(2,3). path(X,Y) :- e(X,Y).\n\
       path(X,Z) :- path(X,Y), e(Y,Z)."
  in
  let st = Asp.Grounder.prepare base in
  let stats = Asp.Grounder.Stats.create () in
  let g =
    Asp.Grounder.extend ~stats st (Asp.Parser.parse_program "p(3). s(9).")
  in
  check Alcotest.bool "reused instances" true (stats.Asp.Grounder.Stats.reused_rules > 0);
  check Alcotest.bool "fresh instances" true (stats.Asp.Grounder.Stats.fresh_rules > 0);
  (* the delta-derived instance is present *)
  let has_q3 =
    List.exists
      (function
        | Asp.Ground.Gfact a | Asp.Ground.Grule { head = a; _ } ->
            Asp.Atom.to_string a = "q(3)"
        | _ -> false)
      g.Asp.Ground.rules
  in
  check Alcotest.bool "q(3) derived from the delta" true has_q3;
  (* untouched recursive instances were not re-derived: the path rules'
     signatures gained no atoms, so all their instances count as reused *)
  check Alcotest.bool "universe grew" true
    (Asp.Ground.atom_count g
    > Asp.Model.AtomSet.cardinal (Asp.Grounder.base_universe st))

(* ------------------------------------------------------------------ *)
(* extend_prepare: chained structural increments                       *)
(* ------------------------------------------------------------------ *)

(* Same comparison discipline as [extend_one]: universes and shows
   exact, rule lists as canonical sets (shared instances skip the
   cross-rule dedup). Each chained level is checked against a scratch
   grounding of the accumulated program, and the final warm state must
   still answer what-if extends exactly. *)
let extend_prepare_one base_src d1_src d2_src probe_src =
  let parse = Asp.Parser.parse_program in
  let base = parse base_src in
  let d1 = parse d1_src and d2 = parse d2_src and probe = parse probe_src in
  let compare_ground ctx ge gs =
    if not (Asp.Model.AtomSet.equal ge.Asp.Ground.universe gs.Asp.Ground.universe)
    then
      fail
        (Printf.sprintf "%s: universe diverged on:\n%s\n+ %s / %s" ctx base_src
           d1_src d2_src);
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
      (ctx ^ " shows") gs.Asp.Ground.shows ge.Asp.Ground.shows;
    if canon ge.Asp.Ground.rules <> canon gs.Asp.Ground.rules then
      fail
        (Printf.sprintf
           "%s: rules diverged on:\n%s\n+ %s / %s\n--- incremental:\n%s\n--- \
            scratch:\n%s"
           ctx base_src d1_src d2_src (render ge) (render gs))
  in
  match Asp.Grounder.prepare ~max_atoms base with
  | exception (Asp.Grounder.Unsafe _ | Asp.Grounder.Overflow _) -> ()
  | st0 -> (
      let step ctx st dp accum =
        let inc =
          match Asp.Grounder.extend_prepare st dp with
          | st' -> Ok st'
          | exception Asp.Grounder.Unsafe _ -> Error Unsafe
          | exception Asp.Grounder.Overflow _ -> Error Overflow
        in
        match (inc, run_new accum) with
        | Ok st', Grounded gs ->
            compare_ground ctx (Asp.Grounder.base st') gs;
            Some st'
        | Error Unsafe, Unsafe | Error Overflow, Overflow -> None
        | Ok _, o ->
            fail
              (Printf.sprintf "%s: scratch %s where extend_prepare grounded"
                 ctx (outcome_name o))
        | Error e, o ->
            fail
              (Printf.sprintf "%s: extend_prepare %s vs scratch %s" ctx
                 (outcome_name (match e with Unsafe -> Unsafe | _ -> Overflow))
                 (outcome_name o))
      in
      let acc1 = Asp.Program.append base d1 in
      match step "level 1" st0 d1 acc1 with
      | None -> ()
      | Some st1 -> (
          let acc2 = Asp.Program.append acc1 d2 in
          match step "level 2" st1 d2 acc2 with
          | None -> ()
          | Some st2 -> (
              let acc3 = Asp.Program.append acc2 probe in
              let ext =
                match Asp.Grounder.extend st2 probe with
                | g -> Grounded g
                | exception Asp.Grounder.Unsafe _ -> Unsafe
                | exception Asp.Grounder.Overflow _ -> Overflow
              in
              match (ext, run_new acc3) with
              | Grounded ge, Grounded gs -> compare_ground "probe" ge gs
              | Unsafe, Unsafe | Overflow, Overflow -> ()
              | e, s ->
                  fail
                    (Printf.sprintf "probe divergence: extend %s, scratch %s"
                       (outcome_name e) (outcome_name s)))))

let test_extend_prepare_seeded () =
  for seed = 0 to 79 do
    let rng = Random.State.make [| 0x1CE; seed |] in
    let base = gen_program rng in
    let d1 = gen_delta rng and d2 = gen_delta rng and probe = gen_delta rng in
    extend_prepare_one base d1 d2 probe
  done

let test_extend_prepare_corners () =
  List.iter
    (fun (b, d1, d2, p) -> extend_prepare_one b d1 d2 p)
    [
      (* negation re-simplified at both levels *)
      ("p(1). q(X) :- p(X), not s(X).", "s(1).", "p(2). p(3).", "s(2).");
      (* recursion fed level by level, cyclic probe *)
      ( "e(1,2). path(X,Y) :- e(X,Y). path(X,Z) :- path(X,Y), e(Y,Z).",
        "e(2,3).",
        "e(3,4).",
        "e(4,1)." );
      (* choice condition growing, aggregate added mid-chain *)
      ( "a(1). { h(X) : a(X) } 2.",
        "a(2).",
        "big :- #count { X : a(X) } >= 2.",
        "a(3)." );
      (* empty increments chain without disturbing warm state *)
      ("p(1). q(X) :- p(X).", "", "q2(X) :- q(X).", "p(2).");
      (* delta rules deriving into base predicates at each level *)
      ("p(1). q(X) :- p(X).", "p(X+1) :- p(X), X < 3.", "r(X) :- q(X).",
       "p(7).");
    ]

(* ------------------------------------------------------------------ *)
(* Parallel grounding: bit-for-bit vs sequential                        *)
(* ------------------------------------------------------------------ *)

(* [min_items:1] forces every multi-item fixpoint round through the
   domain pool, so the partition/merge path is exercised across the whole
   corpus rather than only on wide rounds. The contract is exact: the
   parallel grounding is the same Ground.t, bit for bit. *)
let par = Engine.Pool.grounder_par ~min_items:1 ()

let run_par p =
  match Asp.Grounder.ground ~max_atoms ~par p with
  | g -> Grounded g
  | exception Asp.Grounder.Unsafe _ -> Unsafe
  | exception Asp.Grounder.Overflow _ -> Overflow

let diff_one_par src =
  let p = Asp.Parser.parse_program src in
  match (run_par p, run_new p) with
  | Grounded ga, Grounded gb ->
      if not (Asp.Ground.equal ga gb) then
        fail
          (Printf.sprintf
             "parallel grounding diverged on program:\n%s\n--- parallel:\n\
              %s\n--- sequential:\n%s"
             src (render ga) (render gb))
  | Unsafe, Unsafe | Overflow, Overflow -> ()
  | a, b ->
      fail
        (Printf.sprintf
           "parallel outcome divergence on program:\n%s\n  parallel: %s\n\
           \  sequential: %s"
           src (outcome_name a) (outcome_name b))

let test_par_seeded () =
  for seed = 0 to 199 do
    let rng = Random.State.make [| 0x96D; seed |] in
    diff_one_par (gen_program rng)
  done

let test_par_corners () = List.iter diff_one_par corners

(* prepare/extend under the pool: base grounding and every extension stay
   bit-for-bit equal to their sequential counterparts *)
let test_par_prepare_extend () =
  for seed = 0 to 59 do
    let rng = Random.State.make [| 0xFA2; seed |] in
    let base = Asp.Parser.parse_program (gen_program rng) in
    let delta = Asp.Parser.parse_program (gen_delta rng) in
    let prep p =
      match Asp.Grounder.prepare ~max_atoms ?par:p base with
      | st -> Some st
      | exception (Asp.Grounder.Unsafe _ | Asp.Grounder.Overflow _) -> None
    in
    match (prep (Some par), prep None) with
    | None, None -> ()
    | Some _, None | None, Some _ ->
        fail "parallel prepare outcome diverged from sequential"
    | Some stp, Some sts -> (
        if
          not
            (Asp.Ground.equal (Asp.Grounder.base stp) (Asp.Grounder.base sts))
        then fail "parallel prepare grounding diverged from sequential";
        let ext st p =
          match Asp.Grounder.extend ?par:p st delta with
          | g -> Grounded g
          | exception Asp.Grounder.Unsafe _ -> Unsafe
          | exception Asp.Grounder.Overflow _ -> Overflow
        in
        match (ext stp (Some par), ext sts None) with
        | Grounded ge, Grounded gs ->
            if not (Asp.Ground.equal ge gs) then
              fail "parallel extend diverged from sequential"
        | Unsafe, Unsafe | Overflow, Overflow -> ()
        | e, s ->
            fail
              (Printf.sprintf "parallel extend outcome %s vs sequential %s"
                 (outcome_name e) (outcome_name s)))
  done

let suites =
  [
    ( "asp.grounder_diff",
      [
        Alcotest.test_case "200 seeded random programs" `Quick test_diff_seeded;
        Alcotest.test_case "builtin-heavy: 100 seeded programs" `Quick
          test_diff_builtin_seeded;
        Alcotest.test_case "interval: 100 seeded programs" `Quick
          test_diff_interval_seeded;
        Alcotest.test_case "corner programs" `Quick test_diff_corners;
        Alcotest.test_case "ordered: 200 seeded random programs" `Quick
          test_ordered_seeded;
        Alcotest.test_case "ordered: corner programs" `Quick
          test_ordered_corners;
        Alcotest.test_case "ordered: reorders and stays exact" `Quick
          test_ordered_reorders;
        Alcotest.test_case "ordered: prepare/extend" `Quick
          test_ordered_prepare_extend;
        Alcotest.test_case "extend vs scratch (120 seeded)" `Quick
          test_extend_seeded;
        Alcotest.test_case "extend vs scratch (corners)" `Quick
          test_extend_corners;
        Alcotest.test_case "extend vs scratch (60 builtin-heavy)" `Quick
          test_extend_builtin_seeded;
        Alcotest.test_case "extend vs scratch (60 interval)" `Quick
          test_extend_interval_seeded;
        Alcotest.test_case "parallel: 200 seeded bit-for-bit" `Quick
          test_par_seeded;
        Alcotest.test_case "parallel: corner programs" `Quick test_par_corners;
        Alcotest.test_case "parallel: prepare/extend (60 seeded)" `Quick
          test_par_prepare_extend;
        Alcotest.test_case "extend reuses base instances" `Quick
          test_extend_reuses;
        Alcotest.test_case "extend_prepare chains vs scratch (80 seeded)"
          `Quick test_extend_prepare_seeded;
        Alcotest.test_case "extend_prepare chains vs scratch (corners)" `Quick
          test_extend_prepare_corners;
      ] );
  ]
